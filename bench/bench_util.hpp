// Shared plumbing for the table/figure reproduction harnesses.
//
// Every bench binary prints (a) the reproduced table in paper-style rows
// and (b) a SHAPE-CHECK section stating which qualitative property of the
// paper's result the numbers should exhibit. Model-mode numbers come from
// the calibrated pipeline simulator at full chromosome scale; real-mode
// numbers execute every matrix cell on this host at a reduced scale set
// by --scale (sequence lengths divided by that factor).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "base/flags.hpp"
#include "base/format.hpp"
#include "base/json.hpp"
#include "core/engine.hpp"
#include "seq/synth.hpp"
#include "sim/pipeline_sim.hpp"
#include "sw/kernel.hpp"
#include "sw/linear.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw::bench {

/// Paper-scale simulator run for a chromosome pair on the given devices.
inline sim::SimResult simulate_pair(const seq::ChromosomePair& pair,
                                    std::vector<vgpu::DeviceSpec> devices,
                                    std::int64_t block_rows = 512,
                                    std::int64_t block_cols = 512,
                                    std::int64_t buffer_capacity = 64,
                                    std::vector<double> weights = {}) {
  sim::SimConfig config;
  config.rows = pair.human_length;
  config.cols = pair.chimp_length;
  config.block_rows = block_rows;
  config.block_cols = block_cols;
  config.buffer_capacity = buffer_capacity;
  config.devices = std::move(devices);
  config.weights = std::move(weights);
  return sim::simulate_pipeline(config);
}

/// Result of a real-mode engine run plus its serial-oracle cross-check.
struct RealRun {
  core::EngineResult engine;
  sw::ScoreResult oracle;
  [[nodiscard]] bool matches() const { return engine.best == oracle; }
};

/// Runs the real engine on synthetic homologs of `pair` scaled down by
/// `scale`, on `count` toy devices (heterogeneous when step != 0), and
/// cross-checks the score against the serial scan.
inline RealRun run_real(const seq::ChromosomePair& pair, std::int64_t scale,
                        int device_count, core::EngineConfig config,
                        std::uint64_t seed = 1) {
  const seq::HomologPair homologs =
      seq::make_homolog_pair(seq::scaled_pair(pair, scale), seed);

  std::vector<std::unique_ptr<vgpu::Device>> devices;
  std::vector<vgpu::Device*> pointers;
  for (int d = 0; d < device_count; ++d) {
    devices.push_back(
        std::make_unique<vgpu::Device>(vgpu::toy_device(10.0 + 5.0 * d)));
    pointers.push_back(devices.back().get());
  }

  core::MultiDeviceEngine engine(config, pointers);
  RealRun run;
  run.engine = engine.run(homologs.query, homologs.subject);
  run.oracle = sw::linear_score(config.scheme, homologs.query,
                                homologs.subject);
  return run;
}

/// Prints the standard bench header.
inline void print_header(const std::string& experiment,
                         const std::string& paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim (reconstructed): %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

inline void print_shape_check(const std::vector<std::string>& checks) {
  std::printf("\nSHAPE-CHECK (what should hold, cf. EXPERIMENTS.md):\n");
  for (const std::string& check : checks) {
    std::printf("  * %s\n", check.c_str());
  }
  std::printf("\n");
}

/// Standard flags shared by the harnesses.
inline base::FlagSet standard_flags(const std::string& description) {
  base::FlagSet flags(description);
  flags.add_int("scale", 4096,
                "real-mode reduction factor applied to chromosome lengths");
  flags.add_int("block_rows", 512, "block height (model mode)");
  flags.add_int("block_cols", 512, "block width (model mode)");
  flags.add_int("buffer", 64, "circular buffer capacity in chunks");
  flags.add_bool("real", true, "also run real-mode scaled execution");
  flags.add_string("csv", "", "write the primary data series to this CSV");
  std::vector<std::string> kernels;
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    kernels.push_back(info.name);
  }
  flags.add_choice("kernel", std::string(sw::kDefaultKernel),
                   std::move(kernels),
                   "block kernel for real-mode runs (sw::kernel_registry)");
  return flags;
}

inline std::string gcups_str(double gcups) {
  return base::format_double(gcups, 2);
}

/// Writes a rendered JSON document (plus trailing newline) to `path`.
/// Returns false with a warning on stderr when the file cannot be
/// opened — benches keep printing their tables even when the artifact
/// path is bad. Every BENCH_*.json emitter renders with base::JsonWriter
/// and lands here, so the artifacts share one layout convention.
inline bool write_json_file(const std::string& path,
                            const std::string& json) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);
  return true;
}

/// Writes a data series as CSV for plotting when --csv is non-empty.
/// Values containing commas are not expected (numbers and short labels).
inline void maybe_write_csv(const std::string& path,
                            const std::vector<std::string>& header,
                            const std::vector<std::vector<std::string>>& rows) {
  if (path.empty()) return;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::fputs(row[i].c_str(), file);
      std::fputc(i + 1 < row.size() ? ',' : '\n', file);
    }
  };
  write_row(header);
  for (const auto& row : rows) write_row(row);
  std::fclose(file);
  std::printf("(series written to %s)\n", path.c_str());
}

}  // namespace mgpusw::bench
