// R-C2 (extension): what feedback-driven rebalancing buys back.
//
// The paper splits columns once, from a static profile. When that
// profile is wrong — a mis-calibrated entry, or a device that throttles
// mid-run — the whole pipeline drains at the pace of the most
// over-loaded device. This bench quantifies the recovery: model mode
// runs the pipeline simulator with a 4x mis-calibrated profile, static
// split vs. feedback re-split; real mode executes a 2-device run where
// one virtual device is throttled 4x but the planner believes the
// devices are equal. Both modes must stay bit-identical (real mode) /
// cell-identical (model mode) to the static run. Records everything in
// BENCH_rebalance.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/recovery.hpp"

namespace {

using namespace mgpusw;

struct RealMode {
  std::string name;
  core::EngineResult run;
  int rebalances = 0;
  std::vector<double> weights;
};

void write_rebalance_json(const std::string& path, std::int64_t scale,
                          double slowdown, const sim::SimResult& model_static,
                          const sim::RebalanceSimResult& model_dynamic,
                          const std::vector<RealMode>& real_modes) {
  base::JsonWriter w;
  w.begin_object();
  w.key("bench").value("rebalance_gain");
  w.key("scale").value(scale);
  w.key("slowdown").value(slowdown);
  w.key("model").begin_object();
  w.key("static_gcups").value_fixed(model_static.gcups(), 4);
  w.key("dynamic_gcups").value_fixed(model_dynamic.gcups(), 4);
  w.key("gain").value_fixed(model_dynamic.gcups() / model_static.gcups(), 4);
  w.key("resplits").value(model_dynamic.resplits);
  w.key("wasted_cells").value(model_dynamic.wasted_cells);
  w.end_object();
  w.key("real").begin_array();
  for (const RealMode& mode : real_modes) {
    w.begin_object();
    w.key("name").value(mode.name);
    w.key("wall_seconds").value_fixed(mode.run.wall_seconds, 6);
    w.key("gcups").value_fixed(mode.run.gcups(), 4);
    w.key("score").value(mode.run.best.score);
    w.key("rebalances").value(mode.rebalances);
    w.key("weights").begin_array(base::JsonWriter::kCompact);
    for (double weight : mode.weights) w.value_fixed(weight, 4);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (real_modes.size() == 2) {
    w.key("real_gain")
        .value_fixed(real_modes[1].run.gcups() / real_modes[0].run.gcups(),
                     4);
  }
  w.end_object();
  if (!bench::write_json_file(path, w.str())) return;
  std::printf("(rebalance results written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  base::FlagSet flags = bench::standard_flags(
      "R-C2: static vs feedback-rebalanced column split");
  flags.add_double("slowdown", 4.0,
                   "throttle factor applied to device 1 in real mode");
  flags.add_int("check_rows", 4,
                "rebalance check interval, block rows per device");
  flags.add_double("min_imbalance", 0.5,
                   "projected finish-time spread that triggers a re-split");
  flags.add_int("max_resplits", 2, "re-split budget per comparison");
  flags.add_string("rebalance_json", "BENCH_rebalance.json",
                   "write both modes to this JSON file (empty disables)");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-C2  Rebalance gain: static mis-split vs feedback re-split",
      "a 4x profile mis-calibration drains at the overloaded device's "
      "pace; one measured-rate re-split recovers most of the loss");

  const std::int64_t scale = flags.get_int("scale");
  const double slowdown = flags.get_double("slowdown");

  core::RebalancePolicy rebalance;
  rebalance.enabled = true;
  rebalance.check_every_rows = flags.get_int("check_rows");
  rebalance.min_imbalance = flags.get_double("min_imbalance");
  rebalance.max_resplits = static_cast<int>(flags.get_int("max_resplits"));

  // ---- Model mode: paper-scale simulator, 4x mis-calibrated profile.
  const seq::ChromosomePair pair = seq::paper_chromosome_pairs()[2];
  sim::SimConfig model;
  model.rows = pair.human_length;
  model.cols = pair.chimp_length;
  model.block_rows = flags.get_int("block_rows");
  model.block_cols = flags.get_int("block_cols");
  model.buffer_capacity = flags.get_int("buffer");
  model.devices = {vgpu::toy_device(10.0), vgpu::toy_device(10.0)};
  model.weights = {slowdown, 1.0};  // planner's (wrong) belief
  model.rebalance = rebalance;
  model.rebalance.check_every_rows = 8;  // paper-scale rows are cheap
  const sim::SimResult model_static = sim::simulate_pipeline(model);
  const sim::RebalanceSimResult model_dynamic =
      sim::simulate_rebalance(model);

  base::TextTable model_table({"mode", "GCUPS", "re-splits", "wasted cells"});
  model_table.add_row({"static mis-split",
                       bench::gcups_str(model_static.gcups()), "0", "0"});
  model_table.add_row({"dynamic re-split",
                       bench::gcups_str(model_dynamic.gcups()),
                       std::to_string(model_dynamic.resplits),
                       std::to_string(model_dynamic.wasted_cells)});
  std::printf("Model mode (%lld x %lld, 4x mis-calibrated profile):\n",
              static_cast<long long>(model.rows),
              static_cast<long long>(model.cols));
  std::fputs(model_table.str().c_str(), stdout);
  std::printf("model gain: %.2fx\n\n",
              model_dynamic.gcups() / model_static.gcups());

  // ---- Real mode: device 1 throttled, planner believes equal devices.
  std::vector<RealMode> real_modes;
  bool identical = true;
  if (flags.get_bool("real")) {
    const seq::HomologPair homologs =
        seq::make_homolog_pair(seq::scaled_pair(pair, scale), 7);

    core::EngineConfig config;
    config.kernel = flags.get_string("kernel");
    config.block_rows = 128;
    config.block_cols = 128;
    config.balance = core::BalanceMode::kEqual;  // the mis-calibration

    vgpu::Device d0(vgpu::toy_device(10.0));
    vgpu::Device d1(vgpu::toy_device(10.0));
    d1.set_slowdown(slowdown);

    {
      core::MultiDeviceEngine engine(config, {&d0, &d1});
      real_modes.push_back(
          {"static", engine.run(homologs.query, homologs.subject)});
    }
    {
      core::EngineConfig dynamic = config;
      dynamic.rebalance = rebalance;
      core::RecoveryPolicy policy;
      policy.max_restarts = rebalance.max_resplits + 1;
      const core::RecoveryResult recovered = core::run_with_recovery(
          dynamic, {&d0, &d1}, homologs.query, homologs.subject, policy);
      real_modes.push_back({"dynamic", recovered.result,
                            recovered.rebalances,
                            recovered.rebalanced_weights});
    }
    identical = real_modes[0].run.best == real_modes[1].run.best;

    base::TextTable real_table(
        {"mode", "wall time", "GCUPS", "rebalances"});
    for (const RealMode& mode : real_modes) {
      real_table.add_row({
          mode.name,
          base::human_duration(mode.run.wall_seconds),
          bench::gcups_str(mode.run.gcups()),
          std::to_string(mode.rebalances),
      });
    }
    std::printf("Real mode (scale %lld, device 1 throttled %.1fx, planner "
                "assumes equal):\n",
                static_cast<long long>(scale), slowdown);
    std::fputs(real_table.str().c_str(), stdout);
    std::printf("real gain: %.2fx\n",
                real_modes[1].run.gcups() / real_modes[0].run.gcups());
    std::printf("scores bit-identical: %s\n", identical ? "yes" : "NO (bug!)");
  }

  const std::string json_path = flags.get_string("rebalance_json");
  if (!json_path.empty()) {
    write_rebalance_json(json_path, scale, slowdown, model_static,
                         model_dynamic, real_modes);
  }

  bench::print_shape_check({
      "model: one re-split under a 4x mis-calibration recovers >= 1.3x "
      "GCUPS over the static split (the acceptance threshold)",
      "real: the rebalanced run beats the static mis-split despite "
      "paying a restart, and the scores stay bit-identical",
      "the re-split weights track the measured rates: the throttled "
      "device's share shrinks to roughly 1/(1+slowdown)",
  });
  return identical ? 0 : 1;
}
