// R-B1: baseline comparison with real cell updates on this host.
//
// Serial linear-memory Gotoh scan (the CPU baseline every SW paper
// reports) vs the engine with 1..3 virtual devices, all computing every
// cell of a scaled chromosome pair. On a single-core host the devices
// time-share, so multi-device host GCUPS stays flat — the point of this
// bench is (a) the serial-vs-engine overhead and (b) exact score
// agreement; wall-clock scaling lives in the model-mode benches.
#include <cstdio>

#include "base/time.hpp"
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-B1: serial CPU baseline vs engine (real execution)");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-B1  CPU baseline vs multi-device engine (real cell updates)",
      "the engine's blocking/communication overhead over a raw serial "
      "scan is small");

  const seq::ChromosomePair pair = seq::paper_chromosome_pairs()[2];
  const seq::HomologPair homologs = seq::make_homolog_pair(
      seq::scaled_pair(pair, flags.get_int("scale")), 1);
  const std::int64_t cells =
      homologs.query.size() * homologs.subject.size();
  std::printf("workload: %s x %s (%s cells)\n\n",
              base::human_bp(homologs.query.size()).c_str(),
              base::human_bp(homologs.subject.size()).c_str(),
              base::with_thousands(cells).c_str());

  base::TextTable table({"configuration", "time", "host GCUPS", "score"});

  base::WallTimer timer;
  const sw::ScoreResult serial = sw::linear_score(
      sw::ScoreScheme{}, homologs.query, homologs.subject);
  const double serial_s = timer.elapsed_seconds();
  table.add_row({"serial linear scan", base::human_duration(serial_s),
                 base::format_double(base::gcups(cells, serial_s), 3),
                 std::to_string(serial.score)});

  for (int count = 1; count <= 3; ++count) {
    core::EngineConfig config;
    config.kernel = flags.get_string("kernel");
    config.block_rows = 128;
    config.block_cols = 128;
    const bench::RealRun run =
        bench::run_real(pair, flags.get_int("scale"), count, config);
    table.add_row(
        {"engine, " + std::to_string(count) + " device(s)",
         base::human_duration(run.engine.wall_seconds),
         base::format_double(run.engine.gcups(), 3),
         std::to_string(run.engine.best.score) +
             (run.engine.best == serial ? "" : "  MISMATCH!")});
  }
  std::fputs(table.str().c_str(), stdout);

  bench::print_shape_check({
      "every engine configuration reports exactly the serial score",
      "1-device engine GCUPS is within ~20% of the raw serial scan "
      "(blocking overhead)",
      "multi-device host GCUPS stays roughly flat on this single-core "
      "host (devices time-share; see model-mode benches for scaling)",
  });
  return 0;
}
