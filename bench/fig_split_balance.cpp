// R-F3: static load balancing for heterogeneous GPUs.
//
// The paper sizes slices proportionally to device speed. This harness
// sweeps the split ratio for a two-GPU heterogeneous pair and shows the
// optimum sits at the speed-proportional point; it also compares
// equal-vs-proportional splits for the full 3-GPU environment.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-F3: split ratio sweep for heterogeneous devices");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-F3  Static split balance (GTX 560 Ti + GTX 680, chr21)",
      "speed-proportional slices are optimal; equal slices waste the fast "
      "GPU");

  const seq::ChromosomePair pair = seq::paper_chromosome_pairs()[2];
  const std::vector<vgpu::DeviceSpec> duo = {vgpu::gtx_560_ti(),
                                             vgpu::gtx_680()};
  const double proportional =
      duo[0].sw_gcups / (duo[0].sw_gcups + duo[1].sw_gcups);

  base::TextTable table({"slow-GPU share", "GCUPS", "note"});
  std::vector<std::vector<std::string>> csv_rows;
  double best_gcups = 0.0;
  double best_share = 0.0;
  for (int percent = 10; percent <= 90; percent += 10) {
    const double share = percent / 100.0;
    const sim::SimResult result = bench::simulate_pair(
        pair, duo, flags.get_int("block_rows"), flags.get_int("block_cols"),
        flags.get_int("buffer"), {share, 1.0 - share});
    csv_rows.push_back({std::to_string(percent),
                        base::format_double(result.gcups(), 4)});
    if (result.gcups() > best_gcups) {
      best_gcups = result.gcups();
      best_share = share;
    }
    std::string note;
    if (percent == 50) note = "equal split";
    if (std::abs(share - proportional) < 0.05) {
      note = "~speed-proportional";
    }
    table.add_row({std::to_string(percent) + "%",
                   bench::gcups_str(result.gcups()), note});
  }
  std::fputs(table.str().c_str(), stdout);
  bench::maybe_write_csv(flags.get_string("csv"),
                         {"slow_share_percent", "gcups"}, csv_rows);
  std::printf("\nbest observed share: %.0f%%  (speed-proportional: %.0f%%)\n",
              best_share * 100.0, proportional * 100.0);

  // Equal vs proportional on the full environment 1.
  const auto env = vgpu::environment1();
  const sim::SimResult equal = bench::simulate_pair(
      pair, env, flags.get_int("block_rows"), flags.get_int("block_cols"),
      flags.get_int("buffer"), {1.0, 1.0, 1.0});
  const sim::SimResult prop = bench::simulate_pair(
      pair, env, flags.get_int("block_rows"), flags.get_int("block_cols"),
      flags.get_int("buffer"));
  std::printf(
      "\nenv-1 (3 GPUs): equal split %.2f GCUPS vs proportional %.2f "
      "GCUPS (%.1f%% gain)\n",
      equal.gcups(), prop.gcups(),
      (prop.gcups() / equal.gcups() - 1.0) * 100.0);

  bench::print_shape_check({
      "GCUPS peaks near the speed-proportional share (~36% for the slow "
      "GPU)",
      "the curve falls off on both sides of the optimum",
      "proportional beats equal split on env-1 by roughly the speed "
      "imbalance",
  });
  return 0;
}
