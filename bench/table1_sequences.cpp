// R-T1: the sequence pairs of the evaluation.
//
// The paper compares 4 pairs of human-chimpanzee homologous chromosomes
// (chr19..chr22). This harness prints the pair table at paper scale and
// demonstrates the synthetic-homolog substitution: it generates the
// scaled pairs and reports their measured divergence statistics.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-T1: sequence pairs used in the evaluation");
  if (!flags.parse(argc, argv)) return 0;
  const std::int64_t scale = flags.get_int("scale");

  bench::print_header(
      "R-T1  Sequence pairs (human vs chimpanzee homologous chromosomes)",
      "4 pairs of homologous chromosomes, tens of Mbp each; matrix sizes "
      "of 10^15 cells order");

  base::TextTable table({"pair", "human (rows)", "chimp (cols)",
                         "matrix cells", "scaled rows", "scaled cols",
                         "snp divergence", "indel events"});
  for (const seq::ChromosomePair& pair : seq::paper_chromosome_pairs()) {
    const seq::ChromosomePair scaled = seq::scaled_pair(pair, scale);
    const seq::HomologPair homologs = seq::make_homolog_pair(scaled, 7);
    table.add_row({
        pair.id,
        base::human_bp(pair.human_length),
        base::human_bp(pair.chimp_length),
        base::with_thousands(pair.matrix_cells()),
        base::with_thousands(homologs.query.size()),
        base::with_thousands(homologs.subject.size()),
        base::format_double(
            homologs.stats.divergence(scaled.human_length) * 100.0, 2) +
            "%",
        base::with_thousands(homologs.stats.insertions +
                             homologs.stats.deletions),
    });
  }
  std::fputs(table.str().c_str(), stdout);

  bench::print_shape_check({
      "all four pairs are megabase-scale (tens of Mbp per side)",
      "matrix sizes are on the order of 10^15 cells at paper scale",
      "synthetic homologs diverge ~1-2% by substitutions, like real "
      "human-chimp chromosomes",
  });
  return 0;
}
