// R-F5: communication/computation overlap.
//
// Per-device time breakdown (busy vs waiting for borders vs blocked on a
// full buffer) at paper scale, demonstrating that the circular buffer
// hides transfers: with a reasonable buffer, devices are busy almost all
// the time; the only irreducible wait is the pipeline fill of downstream
// devices.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-F5: per-device busy/wait breakdown");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-F5  Communication overlap: per-device time breakdown (chr21)",
      "devices spend >95% of the makespan computing; border waits are "
      "hidden by the circular buffer");

  const seq::ChromosomePair pair = seq::paper_chromosome_pairs()[2];
  const auto env = vgpu::environment1();

  for (const std::int64_t capacity : {1, 64}) {
    const sim::SimResult result = bench::simulate_pair(
        pair, env, flags.get_int("block_rows"), flags.get_int("block_cols"),
        capacity);
    std::printf("buffer capacity = %lld chunks, makespan %s, %.2f GCUPS\n",
                static_cast<long long>(capacity),
                base::human_duration(result.seconds()).c_str(),
                result.gcups());
    base::TextTable table({"device", "slice cols", "busy", "recv wait",
                           "send wait", "busy share"});
    for (const auto& device : result.devices) {
      table.add_row({
          device.device_name,
          base::with_thousands(device.slice.cols),
          base::human_duration(static_cast<double>(device.busy_ns) * 1e-9),
          base::human_duration(static_cast<double>(device.recv_wait_ns) *
                               1e-9),
          base::human_duration(static_cast<double>(device.send_wait_ns) *
                               1e-9),
          base::format_double(static_cast<double>(device.busy_ns) /
                                  static_cast<double>(result.makespan_ns) *
                                  100.0,
                              1) +
              "%",
      });
    }
    std::fputs(table.str().c_str(), stdout);

    // Text Gantt: each device's active span within the makespan ('#'
    // busy span, '.' before start). With fine-grain chunks all bars
    // nearly fill the makespan — the visual form of "communication is
    // hidden".
    constexpr int kBarWidth = 60;
    for (const auto& device : result.devices) {
      const int start = static_cast<int>(
          device.start_ns * kBarWidth / result.makespan_ns);
      const int finish = static_cast<int>(
          device.finish_ns * kBarWidth / result.makespan_ns);
      std::string bar(static_cast<std::size_t>(kBarWidth), ' ');
      for (int k = 0; k < kBarWidth; ++k) {
        bar[static_cast<std::size_t>(k)] =
            k < start ? '.' : (k < finish ? '#' : ' ');
      }
      std::printf("  %-12s |%s|\n", device.device_name.c_str(),
                  bar.c_str());
    }
    std::printf("\n");
  }

  if (flags.get_bool("real")) {
    std::printf("Real-mode breakdown (scaled chr21, 3 devices, host "
                "threads time-share one core):\n");
    core::EngineConfig config;
    config.kernel = flags.get_string("kernel");
    config.block_rows = 64;
    config.block_cols = 64;
    const bench::RealRun run =
        bench::run_real(pair, flags.get_int("scale"), 3, config);
    base::TextTable real({"device", "cells", "busy", "recv stall",
                          "send stall"});
    for (const auto& device : run.engine.devices) {
      real.add_row({device.device_name, base::with_thousands(device.cells),
                    base::human_duration(
                        static_cast<double>(device.busy_ns) * 1e-9),
                    base::human_duration(
                        static_cast<double>(device.recv_stall_ns) * 1e-9),
                    base::human_duration(
                        static_cast<double>(device.send_stall_ns) * 1e-9)});
    }
    std::fputs(real.str().c_str(), stdout);
    std::printf("score cross-check: %s\n",
                run.matches() ? "exact" : "MISMATCH");
  }

  bench::print_shape_check({
      "with a deep buffer every device is busy >95% of the makespan",
      "with capacity 1 upstream devices accumulate send waits "
      "(back-pressure) and GCUPS drops",
      "downstream devices accumulate recv waits only during pipeline fill",
  });
  return 0;
}
