// R-F1: speedup and efficiency vs number of GPUs, homogeneous and
// heterogeneous, at paper scale (model mode) on chr21.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-F1: speedup/efficiency vs device count");
  flags.add_int("max_devices", 8, "largest device count in the sweep");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-F1  Speedup and efficiency vs number of GPUs (chr21)",
      "near-linear scaling; heterogeneous mixes scale by aggregate speed");

  const seq::ChromosomePair pair = seq::paper_chromosome_pairs()[2];
  const auto max_devices = static_cast<int>(flags.get_int("max_devices"));

  // Homogeneous sweep: N x Tesla M2090.
  base::TextTable homo({"M2090 GPUs", "GCUPS", "speedup", "efficiency"});
  std::vector<std::vector<std::string>> csv_rows;
  double base_gcups = 0.0;
  for (int count = 1; count <= max_devices; ++count) {
    const std::vector<vgpu::DeviceSpec> devices(
        static_cast<std::size_t>(count), vgpu::tesla_m2090());
    const sim::SimResult result = bench::simulate_pair(
        pair, devices, flags.get_int("block_rows"),
        flags.get_int("block_cols"), flags.get_int("buffer"));
    if (count == 1) base_gcups = result.gcups();
    csv_rows.push_back({std::to_string(count),
                        base::format_double(result.gcups(), 4)});
    homo.add_row({std::to_string(count), bench::gcups_str(result.gcups()),
                  base::format_double(result.gcups() / base_gcups, 2) + "x",
                  base::format_double(
                      result.gcups() / base_gcups / count * 100.0, 1) +
                      "%"});
  }
  std::printf("Homogeneous (Tesla M2090):\n%s\n", homo.str().c_str());

  // Heterogeneous: growing prefix of environment 1 then repeats.
  base::TextTable hetero({"devices", "mix", "GCUPS", "aggregate",
                          "efficiency"});
  const auto env = vgpu::environment1();
  std::vector<vgpu::DeviceSpec> mix;
  for (int count = 1; count <= max_devices; ++count) {
    mix.push_back(env[static_cast<std::size_t>((count - 1) % 3)]);
    const sim::SimResult result = bench::simulate_pair(
        pair, mix, flags.get_int("block_rows"), flags.get_int("block_cols"),
        flags.get_int("buffer"));
    const double aggregate = sim::aggregate_gcups(mix);
    std::string names;
    for (const auto& spec : mix) {
      if (!names.empty()) names += "+";
      names += spec.name.substr(spec.name.rfind(' ') + 1);
    }
    hetero.add_row({std::to_string(count), names,
                    bench::gcups_str(result.gcups()),
                    bench::gcups_str(aggregate),
                    base::format_double(result.gcups() / aggregate * 100.0,
                                        1) +
                        "%"});
  }
  std::printf("Heterogeneous (cycling env-1 cards):\n%s\n",
              hetero.str().c_str());
  bench::maybe_write_csv(flags.get_string("csv"),
                         {"devices", "gcups_m2090"}, csv_rows);

  bench::print_shape_check({
      "homogeneous efficiency stays above ~90% through the sweep",
      "heterogeneous GCUPS tracks the aggregate profile rate, not the "
      "device count",
      "efficiency decays gently as device count grows (deeper pipeline "
      "fill, narrower slices)",
  });
  return 0;
}
