// R-T2: GCUPS on Environment 1 (heterogeneous: GTX 560 Ti + GTX 580 +
// GTX 680) for the four chromosome pairs and 1..3 GPUs.
//
// Model mode reproduces the paper-scale numbers (headline: up to 140.36
// GCUPS with 3 heterogeneous GPUs); real mode executes a scaled-down
// version of chr21 on virtual devices and cross-checks the score against
// the serial oracle.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-T2: GCUPS per chromosome pair on the heterogeneous environment");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-T2  GCUPS on Environment 1 (GTX 560 Ti + GTX 580 + GTX 680)",
      "up to 140.36 GCUPS with 3 heterogeneous GPUs");

  const auto env = vgpu::environment1();
  const std::int64_t block_rows = flags.get_int("block_rows");
  const std::int64_t block_cols = flags.get_int("block_cols");
  const std::int64_t buffer = flags.get_int("buffer");

  base::TextTable table({"pair", "1 GPU (560Ti)", "2 GPUs (+580)",
                         "3 GPUs (+680)", "time (3 GPUs)", "efficiency"});
  double best_gcups = 0.0;
  for (const seq::ChromosomePair& pair : seq::paper_chromosome_pairs()) {
    std::vector<std::string> row{pair.id};
    double three = 0.0;
    double seconds = 0.0;
    for (std::size_t count = 1; count <= env.size(); ++count) {
      const std::vector<vgpu::DeviceSpec> devices(env.begin(),
                                                  env.begin() + count);
      const sim::SimResult result = bench::simulate_pair(
          pair, devices, block_rows, block_cols, buffer);
      row.push_back(bench::gcups_str(result.gcups()));
      if (count == env.size()) {
        three = result.gcups();
        seconds = result.seconds();
      }
    }
    best_gcups = std::max(best_gcups, three);
    row.push_back(base::human_duration(seconds));
    row.push_back(
        base::format_double(three / sim::aggregate_gcups(env) * 100.0, 1) +
        "%");
    table.add_row(row);
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("\npeak aggregate: %.2f GCUPS (paper headline: 140.36)\n",
              best_gcups);

  if (flags.get_bool("real")) {
    std::printf("\nReal-mode cross-check (scaled chr21, every cell computed "
                "on this host):\n");
    core::EngineConfig config;
    config.kernel = flags.get_string("kernel");
    config.block_rows = 64;
    config.block_cols = 64;
    config.buffer_capacity = buffer;
    base::TextTable real({"devices", "score", "oracle", "match",
                          "host GCUPS"});
    for (int count = 1; count <= 3; ++count) {
      const bench::RealRun run = bench::run_real(
          seq::paper_chromosome_pairs()[2], flags.get_int("scale"), count,
          config);
      real.add_row({std::to_string(count),
                    std::to_string(run.engine.best.score),
                    std::to_string(run.oracle.score),
                    run.matches() ? "yes" : "NO",
                    base::format_double(run.engine.gcups(), 3)});
    }
    std::fputs(real.str().c_str(), stdout);
  }

  bench::print_shape_check({
      "GCUPS grows with every added GPU on every pair",
      "3 heterogeneous GPUs approach the aggregate profile rate "
      "(~140 GCUPS, efficiency > 90%)",
      "larger chromosome pairs achieve slightly higher efficiency "
      "(pipeline fill amortises)",
      "real-mode scores equal the serial oracle for every device count",
  });
  return 0;
}
