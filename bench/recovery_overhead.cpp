// R-C1 (extension): the price of surviving a failure.
//
// Checkpointing special rows is what makes restart-after-death possible,
// and it is pure overhead while nothing fails. This bench quantifies both
// sides: GCUPS with checkpointing off, with checkpointing on, and with
// checkpointing on plus one injected mid-run device death (the run
// finishes on the surviving devices, restarted from the last checkpoint).
// All three modes compute the same matrix; the death mode must still
// produce a bit-identical score. Records all modes in BENCH_recovery.json.
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "core/recovery.hpp"
#include "vgpu/fault.hpp"

namespace {

using namespace mgpusw;

struct ModeResult {
  std::string name;
  core::EngineResult run;
  int restarts = 0;
  std::vector<std::string> lost_devices;
};

void write_recovery_json(const std::string& path, std::int64_t scale,
                         std::int64_t interval,
                         const std::string& fault_plan,
                         const std::vector<ModeResult>& modes) {
  base::JsonWriter w;
  w.begin_object();
  w.key("bench").value("recovery_overhead");
  w.key("scale").value(scale);
  w.key("checkpoint_interval").value(interval);
  w.key("fault").value(fault_plan);
  w.key("modes").begin_array();
  for (const ModeResult& mode : modes) {
    w.begin_object();
    w.key("name").value(mode.name);
    w.key("wall_seconds").value_fixed(mode.run.wall_seconds, 6);
    w.key("gcups").value_fixed(mode.run.gcups(), 4);
    w.key("score").value(mode.run.best.score);
    w.key("restarts").value(mode.restarts);
    w.key("lost_devices").begin_array(base::JsonWriter::kCompact);
    for (const std::string& name : mode.lost_devices) {
      w.value(name);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  if (!bench::write_json_file(path, w.str())) return;
  std::printf("(recovery results written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  base::FlagSet flags = bench::standard_flags(
      "R-C1: checkpointing and recovery overhead");
  flags.add_int("interval", 4, "checkpoint every this many block rows");
  flags.add_string("fault", "",
                   "fault plan for the death mode (default: kill device 1 "
                   "halfway through its blocks); " +
                       vgpu::fault_plan_grammar());
  flags.add_string("recovery_json", "BENCH_recovery.json",
                   "write all modes to this JSON file (empty disables)");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-C1  Recovery overhead: checkpointing off / on / on + device death",
      "special-row checkpointing costs a few percent of GCUPS and buys "
      "restart-after-death with a bit-identical result");

  const std::int64_t scale = flags.get_int("scale");
  const std::int64_t interval = flags.get_int("interval");
  const seq::HomologPair homologs = seq::make_homolog_pair(
      seq::scaled_pair(seq::paper_chromosome_pairs()[2], scale), 7);

  // The paper's setting: a small heterogeneous pool.
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(16.0));
  vgpu::Device d2(vgpu::toy_device(22.0));
  const std::vector<vgpu::Device*> pool = {&d0, &d1, &d2};

  core::EngineConfig config;
  config.kernel = flags.get_string("kernel");
  config.block_rows = 128;
  config.block_cols = 128;

  std::vector<ModeResult> modes;

  // Mode 1: checkpointing off (the raw engine).
  {
    core::MultiDeviceEngine engine(config, pool);
    modes.push_back(
        {"checkpoint-off", engine.run(homologs.query, homologs.subject)});
  }

  // Mode 2: checkpointing on, nothing fails.
  core::EngineConfig checkpointed = config;
  core::SpecialRowStore store;
  checkpointed.special_rows = &store;
  checkpointed.special_row_interval = interval;
  checkpointed.checkpoint_f = true;
  {
    core::MultiDeviceEngine engine(checkpointed, pool);
    modes.push_back(
        {"checkpoint-on", engine.run(homologs.query, homologs.subject)});
    store.clear();
  }

  // Mode 3: checkpointing on + one injected device death; the run
  // restarts from the last checkpoint on the surviving two devices.
  std::string fault_plan = flags.get_string("fault");
  if (fault_plan.empty()) {
    // Kill device 1 halfway through its share of blocks.
    core::MultiDeviceEngine probe(checkpointed, pool);
    const core::AlignmentPlan plan =
        probe.plan(homologs.query.size(), homologs.subject.size());
    const std::int64_t launches =
        plan.block_row_count * plan.devices[1].block_columns;
    fault_plan = "dev1:die@kernel=" + std::to_string(launches / 2);
  }
  {
    vgpu::FaultInjector injector(vgpu::parse_fault_plan(fault_plan));
    core::EngineConfig faulted = checkpointed;
    faulted.fault = &injector;
    core::RecoveryPolicy policy;
    policy.max_restarts = 2;
    policy.checkpoint_interval = interval;
    const core::RecoveryResult recovered = core::run_with_recovery(
        faulted, pool, homologs.query, homologs.subject, policy);
    modes.push_back({"checkpoint-on+death", recovered.result,
                     recovered.restarts, recovered.lost_devices});
    store.clear();
  }

  bool identical = true;
  for (const ModeResult& mode : modes) {
    identical = identical && mode.run.best == modes[0].run.best;
  }

  base::TextTable table(
      {"mode", "wall time", "GCUPS", "restarts", "devices at finish"});
  for (const ModeResult& mode : modes) {
    table.add_row({
        mode.name,
        base::human_duration(mode.run.wall_seconds),
        bench::gcups_str(mode.run.gcups()),
        std::to_string(mode.restarts),
        std::to_string(mode.run.devices.size()),
    });
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("fault plan (death mode): %s\n", fault_plan.c_str());
  std::printf("scores bit-identical across all modes: %s\n",
              identical ? "yes" : "NO (bug!)");

  const std::string json_path = flags.get_string("recovery_json");
  if (!json_path.empty()) {
    write_recovery_json(json_path, scale, interval, fault_plan, modes);
  }

  bench::print_shape_check({
      "all three modes produce bit-identical scores: checkpointing and "
      "recovery are invisible in the result",
      "checkpoint-on GCUPS trails checkpoint-off by only a few percent "
      "(one border row copied every `interval` block rows)",
      "the death mode recomputes the rows after the last checkpoint on "
      "one fewer device yet still finishes; shrinking --interval shrinks "
      "the recomputed region (virtual devices time-share host cores, so "
      "its wall time understates what real GPUs would pay)",
  });
  return identical ? 0 : 1;
}
