// R-A3 (extension): batch scheduling throughput.
//
// The paper evaluates four chromosome pairs back to back, each spanning
// every GPU. With a DeviceFleet the same four comparisons can instead run
// concurrently on disjoint single-device leases. Per-item results are
// bit-identical either way (the engine's reduction is a total order);
// what changes is aggregate throughput, because concurrent items skip the
// per-item pipeline fill/drain and keep every device busy. Real
// execution; records both modes in BENCH_batch.json.
//
// A third section benchmarks the inter-sequence SIMD pre-pass on a batch
// of short pairs (--short_pairs / --short_len): the same batch runs once
// through the block engine and once with interseq_max_len routing every
// item through the one-pair-per-lane kernel, and both results must match.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/batch.hpp"
#include "core/fleet.hpp"
#include "seq/synth.hpp"

namespace {

using namespace mgpusw;

struct ModeResult {
  std::string name;
  core::BatchResult batch;
};

core::BatchResult run_mode(const core::BatchConfig& config,
                           const std::vector<vgpu::DeviceSpec>& specs,
                           const std::vector<core::BatchItem>& items) {
  // A fresh fleet per mode so device busy-counters start equal.
  core::DeviceFleet fleet = core::DeviceFleet::from_specs(specs);
  return core::run_batch(config, fleet, items);
}

void write_batch_json(const std::string& path, std::int64_t scale,
                      int device_count,
                      const std::vector<ModeResult>& modes) {
  base::JsonWriter w;
  w.begin_object();
  w.key("bench").value("batch_throughput");
  w.key("scale").value(scale);
  w.key("devices").value(device_count);
  w.key("modes").begin_array();
  for (const ModeResult& mode : modes) {
    const core::BatchResult& batch = mode.batch;
    w.begin_object();
    w.key("name").value(mode.name);
    w.key("wall_seconds").value_fixed(batch.wall_seconds, 6);
    w.key("aggregate_gcups").value_fixed(batch.gcups(), 4);
    w.key("items").begin_array();
    for (const core::BatchItemResult& item : batch.items) {
      w.begin_object(base::JsonWriter::kCompact);
      w.key("label").value(item.label);
      w.key("seconds").value_fixed(item.result.wall_seconds, 6);
      w.key("gcups").value_fixed(item.result.gcups(), 4);
      w.key("score").value(item.result.best.score);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  if (!bench::write_json_file(path, w.str())) return;
  std::printf("(batch results written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  base::FlagSet flags = bench::standard_flags(
      "R-A3: batch throughput, sequential vs concurrent scheduling");
  flags.add_int("devices", 4, "fleet size");
  flags.add_string("batch_json", "BENCH_batch.json",
                   "write both modes to this JSON file (empty disables)");
  flags.add_int("short_pairs", 128,
                "short-pair batch size for the inter-sequence section "
                "(0 disables)");
  flags.add_int("short_len", 512, "short-pair length in bases");
  flags.add_string("interseq_kernel", "interseq",
                   "batch kernel for the inter-sequence pre-pass");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-A3  Batch scheduling: whole-fleet sequential vs per-device "
      "concurrent",
      "independent comparisons on disjoint leases raise aggregate GCUPS "
      "without changing any per-item result");

  const std::int64_t scale = flags.get_int("scale");
  std::vector<core::BatchItem> items;
  for (const seq::ChromosomePair& pair : seq::paper_chromosome_pairs()) {
    const seq::HomologPair homologs =
        seq::make_homolog_pair(seq::scaled_pair(pair, scale), 13);
    items.push_back(
        core::BatchItem{pair.id, homologs.query, homologs.subject});
  }

  const int device_count = static_cast<int>(flags.get_int("devices"));
  std::vector<vgpu::DeviceSpec> specs;
  for (int d = 0; d < device_count; ++d) {
    specs.push_back(vgpu::toy_device(10.0 + 5.0 * d));
  }

  core::BatchConfig sequential;
  sequential.engine.kernel = flags.get_string("kernel");
  sequential.engine.block_rows = 128;
  sequential.engine.block_cols = 128;
  sequential.devices_per_item = 0;  // whole fleet, one item at a time
  sequential.max_in_flight = 1;

  core::BatchConfig concurrent = sequential;
  concurrent.devices_per_item = 1;
  concurrent.max_in_flight = device_count;

  std::vector<ModeResult> modes;
  modes.push_back({"sequential", run_mode(sequential, specs, items)});
  modes.push_back({"concurrent", run_mode(concurrent, specs, items)});

  bool identical = true;
  for (std::size_t i = 0; i < items.size(); ++i) {
    identical = identical && modes[0].batch.items[i].result.best ==
                                 modes[1].batch.items[i].result.best;
  }

  base::TextTable table(
      {"mode", "wall time", "aggregate GCUPS", "summed item GCUPS"});
  for (const ModeResult& mode : modes) {
    table.add_row({
        mode.name,
        base::human_duration(mode.batch.wall_seconds),
        bench::gcups_str(mode.batch.gcups()),
        bench::gcups_str(mode.batch.summed_gcups()),
    });
  }
  std::fputs(table.str().c_str(), stdout);
  std::printf("per-item results bit-identical across modes: %s\n",
              identical ? "yes" : "NO (bug!)");
  const double speedup =
      modes[1].batch.wall_seconds > 0.0
          ? modes[0].batch.wall_seconds / modes[1].batch.wall_seconds
          : 0.0;
  std::printf("concurrent speedup over sequential: %.2fx\n", speedup);

  // --- inter-sequence pre-pass on a batch of short pairs -------------
  bool short_identical = true;
  const std::int64_t short_pairs = flags.get_int("short_pairs");
  if (short_pairs > 0) {
    const std::int64_t short_len = flags.get_int("short_len");
    std::vector<core::BatchItem> shorts;
    for (std::int64_t k = 0; k < short_pairs; ++k) {
      // Vary the lengths a little so lane groups see realistic padding.
      const std::int64_t len = short_len + (k % 7) * (short_len / 16 + 1);
      const seq::Sequence ancestor = seq::generate_chromosome(
          "s" + std::to_string(k), len, 0x5EED0000ULL + k);
      shorts.push_back(core::BatchItem{
          "short-" + std::to_string(k), ancestor,
          seq::mutate_homolog(ancestor, seq::MutationModel{},
                              0xAB0000ULL + k, "t" + std::to_string(k))});
    }

    core::BatchConfig engine_path = sequential;
    core::BatchConfig interseq_path = sequential;
    interseq_path.interseq_max_len = short_len * 2;
    interseq_path.interseq_kernel = flags.get_string("interseq_kernel");

    modes.push_back({"short_engine", run_mode(engine_path, specs, shorts)});
    modes.push_back(
        {"short_interseq", run_mode(interseq_path, specs, shorts)});
    const core::BatchResult& by_engine = modes[modes.size() - 2].batch;
    const core::BatchResult& by_lane = modes[modes.size() - 1].batch;
    for (std::size_t i = 0; i < shorts.size(); ++i) {
      short_identical = short_identical &&
                        by_engine.items[i].result.best ==
                            by_lane.items[i].result.best;
    }

    base::TextTable short_table({"mode", "wall time", "aggregate GCUPS"});
    short_table.add_row({"block engine",
                         base::human_duration(by_engine.wall_seconds),
                         bench::gcups_str(by_engine.gcups())});
    short_table.add_row({"interseq pre-pass",
                         base::human_duration(by_lane.wall_seconds),
                         bench::gcups_str(by_lane.gcups())});
    std::printf("\nInter-sequence pre-pass, %lld pairs of ~%lld bases "
                "(kernel %s):\n",
                static_cast<long long>(short_pairs),
                static_cast<long long>(short_len),
                interseq_path.interseq_kernel.c_str());
    std::fputs(short_table.str().c_str(), stdout);
    std::printf("short-pair results bit-identical across paths: %s\n",
                short_identical ? "yes" : "NO (bug!)");
    const double lane_speedup =
        by_lane.wall_seconds > 0.0
            ? by_engine.wall_seconds / by_lane.wall_seconds
            : 0.0;
    std::printf("interseq speedup over block engine: %.2fx\n",
                lane_speedup);
  }

  const std::string json_path = flags.get_string("batch_json");
  if (!json_path.empty()) {
    write_batch_json(json_path, scale, device_count, modes);
  }

  bench::print_shape_check({
      "per-item scores and end positions are bit-identical in both modes",
      "on multi-core hosts concurrent aggregate GCUPS exceeds "
      "sequential: no per-item pipeline fill/drain and no cross-device "
      "border traffic when each item runs on one device (device threads "
      "time-share on this host, so real-mode wall time shows overlap "
      "only when cores are available)",
      "the gap narrows as items grow: large matrices amortise the fill, "
      "so whole-fleet runs approach the aggregate rate on their own",
      "the inter-sequence pre-pass beats the block engine on short-pair "
      "batches: one pair per lane has no skew, no strip borders, and no "
      "per-item engine setup",
  });
  return identical && short_identical ? 0 : 1;
}
