// R-F2: impact of the circular buffer capacity on GCUPS.
//
// The paper's circular buffer hides communication: a sufficiently large
// buffer lets producers run ahead while borders are in flight; a tiny
// buffer couples the devices tightly and exposes transfer latency.
// Model mode sweeps the capacity at paper scale; real mode measures the
// actual producer/consumer stall times on this host.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-F2: GCUPS vs circular buffer capacity");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-F2  Circular buffer capacity vs GCUPS (chr21, env-1 GPUs)",
      "communication overhead is hidden once the buffer is a few chunks "
      "deep");

  const seq::ChromosomePair pair = seq::paper_chromosome_pairs()[2];
  const auto env = vgpu::environment1();

  base::TextTable table({"capacity (chunks)", "GCUPS", "vs max",
                         "max recv wait", "max send wait"});
  // First find the asymptote with a generous buffer.
  const double relaxed =
      bench::simulate_pair(pair, env, flags.get_int("block_rows"),
                           flags.get_int("block_cols"), 1024)
          .gcups();
  for (const std::int64_t capacity : {1, 2, 4, 8, 16, 32, 64, 256}) {
    const sim::SimResult result = bench::simulate_pair(
        pair, env, flags.get_int("block_rows"), flags.get_int("block_cols"),
        capacity);
    base::SimTime recv = 0;
    base::SimTime send = 0;
    for (const auto& device : result.devices) {
      recv = std::max(recv, device.recv_wait_ns);
      send = std::max(send, device.send_wait_ns);
    }
    table.add_row({std::to_string(capacity),
                   bench::gcups_str(result.gcups()),
                   base::format_double(result.gcups() / relaxed * 100.0, 1) +
                       "%",
                   base::human_duration(static_cast<double>(recv) * 1e-9),
                   base::human_duration(static_cast<double>(send) * 1e-9)});
  }
  std::fputs(table.str().c_str(), stdout);

  // Stress variant: a deliberately high-latency interconnect with small
  // chunks. At chromosome scale with PCIe the buffer always hides the
  // transfers (the flat curve above — the paper's claim); this variant
  // shows what the circular buffer protects against when transfer
  // latency becomes comparable to a chunk's compute time (e.g. multiple
  // hosts on a slow network).
  std::printf("\nStress variant: 50 ms interconnect latency, 64-row "
              "chunks:\n");
  std::vector<vgpu::DeviceSpec> slow_net = env;
  for (auto& spec : slow_net) spec.pcie_latency_us = 50'000.0;
  base::TextTable stress({"capacity (chunks)", "GCUPS", "vs deep buffer"});
  const double stress_relaxed =
      bench::simulate_pair(pair, slow_net, 64, flags.get_int("block_cols"),
                           1024)
          .gcups();
  for (const std::int64_t capacity : {1, 2, 4, 8, 16, 64}) {
    const sim::SimResult result = bench::simulate_pair(
        pair, slow_net, 64, flags.get_int("block_cols"), capacity);
    stress.add_row({std::to_string(capacity),
                    bench::gcups_str(result.gcups()),
                    base::format_double(
                        result.gcups() / stress_relaxed * 100.0, 1) +
                        "%"});
  }
  std::fputs(stress.str().c_str(), stdout);

  if (flags.get_bool("real")) {
    std::printf(
        "\nReal-mode stall measurement (scaled chr21, 3 devices):\n");
    base::TextTable real({"capacity", "score ok", "recv stall", "send stall"});
    for (const std::int64_t capacity : {1, 4, 32}) {
      core::EngineConfig config;
      config.kernel = flags.get_string("kernel");
      config.block_rows = 64;
      config.block_cols = 64;
      config.buffer_capacity = capacity;
      const bench::RealRun run = bench::run_real(
          pair, flags.get_int("scale"), 3, config);
      std::int64_t recv = 0;
      std::int64_t send = 0;
      for (const auto& device : run.engine.devices) {
        recv = std::max(recv, device.recv_stall_ns);
        send = std::max(send, device.send_stall_ns);
      }
      real.add_row({std::to_string(capacity),
                    run.matches() ? "yes" : "NO",
                    base::human_duration(static_cast<double>(recv) * 1e-9),
                    base::human_duration(static_cast<double>(send) * 1e-9)});
    }
    std::fputs(real.str().c_str(), stdout);
  }

  bench::print_shape_check({
      "GCUPS is lowest at capacity 1 and saturates after a few chunks",
      "send-side waiting vanishes as the buffer grows",
      "scores stay exact at every capacity (back-pressure never corrupts)",
  });
  return 0;
}
