// R-T3: GCUPS on Environment 2 (homogeneous Tesla M2090 nodes) for the
// four chromosome pairs and 1..3 GPUs, model mode.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-T3: GCUPS per chromosome pair on the homogeneous environment");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-T3  GCUPS on Environment 2 (Tesla M2090 x 1/2/3)",
      "near-linear scaling on homogeneous compute GPUs");

  const auto env = vgpu::environment2();
  base::TextTable table({"pair", "1 GPU", "2 GPUs", "3 GPUs",
                         "speedup(3)", "efficiency(3)"});
  for (const seq::ChromosomePair& pair : seq::paper_chromosome_pairs()) {
    std::vector<std::string> row{pair.id};
    double one = 0.0;
    double three = 0.0;
    for (std::size_t count = 1; count <= env.size(); ++count) {
      const std::vector<vgpu::DeviceSpec> devices(env.begin(),
                                                  env.begin() + count);
      const sim::SimResult result = bench::simulate_pair(
          pair, devices, flags.get_int("block_rows"),
          flags.get_int("block_cols"), flags.get_int("buffer"));
      if (count == 1) one = result.gcups();
      if (count == 3) three = result.gcups();
      row.push_back(bench::gcups_str(result.gcups()));
    }
    row.push_back(base::format_double(three / one, 2) + "x");
    row.push_back(base::format_double(three / one / 3.0 * 100.0, 1) + "%");
    table.add_row(row);
  }
  std::fputs(table.str().c_str(), stdout);

  if (flags.get_bool("real")) {
    std::printf("\nReal-mode cross-check (scaled chr22, homogeneous toy "
                "devices):\n");
    core::EngineConfig config;
    config.kernel = flags.get_string("kernel");
    config.block_rows = 64;
    config.block_cols = 64;
    config.balance = core::BalanceMode::kEqual;
    base::TextTable real({"devices", "score", "oracle", "match"});
    for (int count = 1; count <= 3; ++count) {
      const bench::RealRun run = bench::run_real(
          seq::paper_chromosome_pairs()[3], flags.get_int("scale"), count,
          config);
      real.add_row({std::to_string(count),
                    std::to_string(run.engine.best.score),
                    std::to_string(run.oracle.score),
                    run.matches() ? "yes" : "NO"});
    }
    std::fputs(real.str().c_str(), stdout);
  }

  bench::print_shape_check({
      "speedup with 3 homogeneous GPUs is close to 3x (efficiency > 90%)",
      "all four chromosome pairs show the same scaling shape",
  });
  return 0;
}
