// R-F6: why *megabase*? GCUPS vs sequence length.
//
// The paper's title promises megabase comparisons; this figure shows the
// reason. Short sequences cannot saturate a GPU's wavefront (ramp-up),
// give each device only a narrow slice, and cannot amortise the pipeline
// fill — so multi-GPU only pays off beyond a crossover length. Model
// mode, square matrices, env-1 devices.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-F6: GCUPS vs sequence length; multi- vs single-GPU crossover");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-F6  Sequence length sensitivity (env-1 GPUs, square matrices)",
      "multi-GPU wins only beyond a crossover length; megabase inputs "
      "are needed to approach peak GCUPS");

  const auto env = vgpu::environment1();

  base::TextTable table({"length", "1 GPU (680)", "3 GPUs", "ratio"});
  std::vector<std::vector<std::string>> csv_rows;
  for (const std::int64_t length :
       {16'384L, 65'536L, 262'144L, 1'048'576L, 4'194'304L, 16'777'216L,
        47'000'000L}) {
    sim::SimConfig multi;
    multi.rows = multi.cols = length;
    multi.block_rows = flags.get_int("block_rows");
    multi.block_cols = flags.get_int("block_cols");
    multi.buffer_capacity = flags.get_int("buffer");
    multi.devices = env;

    sim::SimConfig solo = multi;
    solo.devices = {vgpu::gtx_680()};
    solo.weights.clear();

    const double three = sim::simulate_pipeline(multi).gcups();
    const double one = sim::simulate_pipeline(solo).gcups();
    table.add_row({base::human_bp(length), bench::gcups_str(one),
                   bench::gcups_str(three),
                   base::format_double(three / one, 2) + "x"});
    csv_rows.push_back({std::to_string(length),
                        base::format_double(one, 4),
                        base::format_double(three, 4)});
  }
  std::fputs(table.str().c_str(), stdout);
  bench::maybe_write_csv(flags.get_string("csv"),
                         {"length", "gcups_1gpu", "gcups_3gpu"}, csv_rows);

  sim::SimConfig config;
  config.block_rows = flags.get_int("block_rows");
  config.block_cols = flags.get_int("block_cols");
  config.buffer_capacity = flags.get_int("buffer");
  config.devices = env;
  const std::int64_t break_even = sim::find_crossover_length(config, 1.0);
  const std::int64_t double_up = sim::find_crossover_length(config, 2.0);
  std::printf("\ncrossover: 3 heterogeneous GPUs beat the single fastest "
              "GPU from %s; 2x faster from %s\n",
              base::human_bp(break_even).c_str(),
              base::human_bp(double_up).c_str());

  bench::print_shape_check({
      "GCUPS rises with length and saturates near the aggregate rate "
      "only for megabase inputs",
      "below the crossover length a single fast GPU wins (slice "
      "narrowing + pipeline fill dominate)",
      "the paper's chromosome-scale inputs sit far above the crossover",
  });
  return 0;
}
