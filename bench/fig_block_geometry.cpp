// R-F4: block geometry sensitivity.
//
// Block height fixes the border-chunk granularity (communication), block
// width fixes how many columns a device sweeps per row (pipeline lag).
// Model mode sweeps block_rows at paper scale; real mode sweeps the
// kernel tile size on this host (cache effects).
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-F4: block geometry sweep");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-F4  Block geometry sensitivity (chr21, env-1 GPUs)",
      "a wide plateau of good block sizes; extremes lose to latency "
      "(tiny chunks) or pipeline lag (huge chunks)");

  const seq::ChromosomePair pair = seq::paper_chromosome_pairs()[2];
  const auto env = vgpu::environment1();

  base::TextTable table({"block_rows", "chunks", "chunk payload", "GCUPS"});
  for (const std::int64_t block_rows :
       {64L, 128L, 256L, 512L, 2048L, 8192L, 65536L, 1048576L}) {
    const sim::SimResult result = bench::simulate_pair(
        pair, env, block_rows, flags.get_int("block_cols"),
        flags.get_int("buffer"));
    const std::int64_t chunks =
        (pair.human_length + block_rows - 1) / block_rows;
    table.add_row({base::with_thousands(block_rows),
                   base::with_thousands(chunks),
                   base::human_bytes(block_rows * comm::kBorderCellBytes),
                   bench::gcups_str(result.gcups())});
  }
  std::fputs(table.str().c_str(), stdout);

  if (flags.get_bool("real")) {
    std::printf("\nReal-mode kernel tile sweep (scaled chr21, 1 device, "
                "host cache effects):\n");
    base::TextTable real({"tile", "host GCUPS", "score ok"});
    for (const std::int64_t tile : {16L, 64L, 256L, 1024L}) {
      core::EngineConfig config;
      config.kernel = flags.get_string("kernel");
      config.block_rows = tile;
      config.block_cols = tile;
      const bench::RealRun run =
          bench::run_real(pair, flags.get_int("scale"), 1, config);
      real.add_row({std::to_string(tile),
                    base::format_double(run.engine.gcups(), 3),
                    run.matches() ? "yes" : "NO"});
    }
    std::fputs(real.str().c_str(), stdout);
  }

  bench::print_shape_check({
      "moderate block heights (hundreds to thousands of rows) sit on a "
      "GCUPS plateau",
      "very large blocks lengthen the inter-device lag (chunk ships only "
      "per block row) and cost GCUPS",
      "very small blocks pay per-chunk latency",
  });
  return 0;
}
