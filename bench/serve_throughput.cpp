// Service-path throughput: jobs/sec and submit-to-result latency of the
// mgpusw-serve daemon, measured through the real wire protocol against
// an in-process server (loopback TCP, the same path mgpusw-client
// takes). Each job size runs twice: on a healthy fleet and with a
// device death injected mid-run (--fault plan), so the artifact records
// what recovery costs the service tail.
//
// Latency is measured per job by a dedicated client thread (submit,
// then RESULT with wait) — queue wait, scheduling, the engine run and
// result publication are all inside the clock, which is what a tenant
// sees. Each size also runs once with the durable job journal enabled,
// so the artifact records what crash-durability costs the same path.
// Writes BENCH_serve.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "base/flags.hpp"
#include "base/json.hpp"
#include "bench/bench_util.hpp"
#include "serve/client_lib.hpp"
#include "serve/server.hpp"

namespace {

using namespace mgpusw;
using Clock = std::chrono::steady_clock;

struct SizeResult {
  std::int64_t size = 0;
  bool fault = false;
  bool journal = false;
  int jobs = 0;
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int restarts = 0;  // summed over jobs (nonzero only under fault)
  int failed = 0;    // jobs not in state done (must stay 0)
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

SizeResult run_config(std::int64_t size, int jobs, const std::string& fault,
                      int devices, bool journal) {
  serve::ServerConfig config;
  config.port = 0;
  config.devices = devices;
  config.scheduler_threads = devices;  // death degrades concurrency
  config.devices_per_job = 1;
  config.block = 128;
  config.quota.max_running_per_tenant = 0;  // the bench is the only tenant
  config.quota.max_pending_per_tenant = 0;
  config.fault_plan = fault;
  std::string journal_dir;
  if (journal) {
    journal_dir = (std::filesystem::temp_directory_path() /
                   ("mgpusw_bench_journal_" + std::to_string(size)))
                      .string();
    std::filesystem::remove_all(journal_dir);
    config.journal_dir = journal_dir;
  }
  serve::AlignServer server(config);
  server.start();

  std::vector<double> latency_ms(jobs, 0.0);
  std::vector<int> restarts(jobs, 0);
  std::vector<char> done_ok(jobs, 0);
  const Clock::time_point wall_start = Clock::now();
  std::vector<std::thread> tenants;
  tenants.reserve(jobs);
  for (int j = 0; j < jobs; ++j) {
    tenants.emplace_back([&, j] {
      serve::ServeClient client =
          serve::ServeClient::connect("127.0.0.1", server.port());
      serve::SubmitRequest request;
      request.tenant = "bench-" + std::to_string(j);
      request.rows = size;
      request.cols = size;
      request.seed = 100 + j;
      const Clock::time_point t0 = Clock::now();
      const serve::JobStatus done = client.result(client.submit(request));
      latency_ms[j] = std::chrono::duration<double, std::milli>(
                          Clock::now() - t0)
                          .count();
      restarts[j] = done.restarts;
      done_ok[j] = done.state == serve::JobState::kDone ? 1 : 0;
    });
  }
  for (std::thread& tenant : tenants) tenant.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  server.stop();
  if (!journal_dir.empty()) std::filesystem::remove_all(journal_dir);

  SizeResult result;
  result.size = size;
  result.fault = !fault.empty();
  result.journal = journal;
  result.jobs = jobs;
  result.wall_seconds = wall;
  result.jobs_per_sec = static_cast<double>(jobs) / wall;
  std::sort(latency_ms.begin(), latency_ms.end());
  result.p50_ms = percentile(latency_ms, 0.50);
  result.p99_ms = percentile(latency_ms, 0.99);
  for (const int r : restarts) result.restarts += r;
  for (const char ok : done_ok) result.failed += ok ? 0 : 1;
  return result;
}

void write_serve_json(const std::string& path, int devices, int jobs,
                      const std::string& fault,
                      const std::vector<SizeResult>& results) {
  base::JsonWriter w;
  w.begin_object();
  w.key("bench").value("serve_throughput");
  w.key("devices").value(devices);
  w.key("jobs_per_config").value(jobs);
  w.key("fault_plan").value(fault);
  w.key("configs").begin_array();
  for (const SizeResult& r : results) {
    w.begin_object();
    w.key("size").value(r.size);
    w.key("fault").value(r.fault);
    w.key("journal").value(r.journal);
    w.key("wall_seconds").value_fixed(r.wall_seconds, 6);
    w.key("jobs_per_sec").value_fixed(r.jobs_per_sec, 2);
    w.key("p50_ms").value_fixed(r.p50_ms, 3);
    w.key("p99_ms").value_fixed(r.p99_ms, 3);
    w.key("restarts").value(r.restarts);
    w.key("failed").value(r.failed);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  if (!bench::write_json_file(path, w.str())) return;
  std::printf("(serve results written to %s)\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  base::FlagSet flags(
      "Alignment-service throughput: jobs/sec and submit-to-result "
      "latency through the wire protocol, healthy vs device-death runs.");
  flags.add_int("devices", 3, "fleet size (and scheduler threads)");
  flags.add_int("jobs", 12, "concurrent jobs per configuration");
  flags.add_string("sizes", "512,2048,8192",
                   "comma-separated synthetic job sizes (rows = cols)");
  // kernel=10 fires even for the smallest default size (512/128 squared
  // = 16 launches on the first device).
  flags.add_string("fault", "dev0:die@kernel=10",
                   "fault plan for the death runs (empty skips them)");
  flags.add_string("json", "BENCH_serve.json", "artifact path");
  if (!flags.parse(argc, argv)) return 0;

  const int devices = static_cast<int>(flags.get_int("devices"));
  const int jobs = static_cast<int>(flags.get_int("jobs"));
  const std::string fault = flags.get_string("fault");

  std::vector<std::int64_t> sizes;
  {
    const std::string spec = flags.get_string("sizes");
    std::size_t at = 0;
    while (at < spec.size()) {
      const std::size_t comma = spec.find(',', at);
      sizes.push_back(std::atoll(spec.substr(at, comma - at).c_str()));
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
  }

  bench::print_header(
      "SERVE-1: service throughput and latency (jobs/sec, p50/p99)",
      "a daemon front door adds queueing but keeps the fleet saturated; "
      "a device death degrades, never kills, a tenant's job");

  // Per size: healthy, healthy+journal (durability overhead), fault.
  struct Mode {
    bool with_fault;
    bool journal;
  };
  const Mode modes[] = {{false, false}, {false, true}, {true, false}};

  std::vector<SizeResult> results;
  std::printf("%8s %6s %8s %8s %10s %10s %10s %9s %7s\n", "size", "fault",
              "journal", "jobs/s", "p50 ms", "p99 ms", "wall s", "restarts",
              "failed");
  int total_failed = 0;
  for (const std::int64_t size : sizes) {
    for (const Mode mode : modes) {
      if (mode.with_fault && fault.empty()) continue;
      const SizeResult r =
          run_config(size, jobs, mode.with_fault ? fault : std::string(),
                     devices, mode.journal);
      std::printf("%8lld %6s %8s %8.2f %10.3f %10.3f %10.3f %9d %7d\n",
                  static_cast<long long>(r.size), r.fault ? "yes" : "no",
                  r.journal ? "yes" : "no", r.jobs_per_sec, r.p50_ms,
                  r.p99_ms, r.wall_seconds, r.restarts, r.failed);
      results.push_back(r);
      total_failed += r.failed;
    }
  }

  bench::print_shape_check(
      {"jobs/sec falls as job size grows (bigger matrices, same fleet)",
       "journal overhead is a fixed per-job cost (a few WAL appends plus "
       "a checkpoint spill dir) — visible on tiny jobs, amortized to a "
       "few percent at realistic sizes",
       "death runs record >= 1 restart (the replayed job) and 0 failed "
       "jobs — the death degrades the fleet, never a tenant's result",
       "p50 latency grows with job size in both modes"});

  write_serve_json(flags.get_string("json"), devices, jobs, fault, results);
  if (total_failed > 0) {
    std::fprintf(stderr, "FAIL: %d job(s) did not complete\n", total_failed);
    return 1;
  }
  return 0;
}
