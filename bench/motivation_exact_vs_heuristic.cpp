// R-M1: the paper's motivation — what exact Smith-Waterman buys over a
// fast heuristic.
//
// BLAST-style seed-and-extend runs in roughly linear time but cannot
// cross indels (ungapped extensions) and only looks where seeds land;
// exact SW over the full matrix — what the paper's multi-GPU engine
// makes affordable at megabase scale — recovers the true optimum. This
// bench measures both on the synthetic homolog pairs and reports the
// score gap, real execution end to end.
#include <cstdio>

#include "base/time.hpp"
#include "bench/bench_util.hpp"
#include "sw/heuristic.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-M1: exact Smith-Waterman vs seed-and-extend heuristic");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-M1  Motivation: exact SW vs BLAST-style heuristic (real runs)",
      "heuristics are much faster but leave alignment score on the "
      "table; exactness is the reason to build the multi-GPU engine");

  base::TextTable table({"pair", "exact score", "exact time",
                         "heuristic score", "heuristic time", "recovered"});
  for (const seq::ChromosomePair& pair : seq::paper_chromosome_pairs()) {
    const seq::HomologPair homologs = seq::make_homolog_pair(
        seq::scaled_pair(pair, flags.get_int("scale")), 7);

    base::WallTimer exact_timer;
    const sw::ScoreResult exact = sw::linear_score(
        sw::ScoreScheme{}, homologs.query, homologs.subject);
    const double exact_seconds = exact_timer.elapsed_seconds();

    base::WallTimer heuristic_timer;
    sw::SeedExtendConfig config;
    config.word = 14;
    const sw::Extension heuristic = sw::seed_and_extend(
        sw::ScoreScheme{}, homologs.query, homologs.subject, config);
    const double heuristic_seconds = heuristic_timer.elapsed_seconds();

    table.add_row({
        pair.id,
        std::to_string(exact.score),
        base::human_duration(exact_seconds),
        std::to_string(heuristic.score),
        base::human_duration(heuristic_seconds),
        base::format_double(100.0 * static_cast<double>(heuristic.score) /
                                static_cast<double>(
                                    std::max(exact.score, sw::Score{1})),
                            1) + "%",
    });
  }
  std::fputs(table.str().c_str(), stdout);

  bench::print_shape_check({
      "the heuristic runs orders of magnitude faster (linear vs "
      "quadratic)",
      "the heuristic recovers only a small fraction of the exact score "
      "on indel-rich homologs (ungapped extensions stop at the first "
      "gap)",
      "this gap is the paper's reason to make exact SW fast instead of "
      "settling for heuristics",
  });
  return 0;
}
