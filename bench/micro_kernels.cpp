// R-B2: microbenchmarks of the computational kernels (google-benchmark).
//
// Measures the raw cell-update rate of the block kernel across tile
// sizes, the serial scan, banded scan, chunk serialization and channel
// round-trips. These host rates are what the `toy_device` profiles and
// the real-mode GCUPS numbers trace back to.
#include <benchmark/benchmark.h>

#include <thread>

#include "base/rng.hpp"
#include "comm/channel.hpp"
#include "comm/serialize.hpp"
#include "sw/banded.hpp"
#include "sw/block.hpp"
#include "sw/block_antidiag.hpp"
#include "sw/block_strip.hpp"
#include "sw/linear.hpp"
#include "sw/myers_miller.hpp"

namespace {

using namespace mgpusw;

std::vector<seq::Nt> random_bases(std::int64_t length, std::uint64_t seed) {
  base::Rng rng(seed);
  std::vector<seq::Nt> out(static_cast<std::size_t>(length));
  for (auto& nt : out) nt = static_cast<seq::Nt>(rng.next_below(4));
  return out;
}

template <int Kind>  // 0 = row scan, 1 = anti-diagonal, 2 = strip-mined
void BM_BlockKernel(benchmark::State& state) {
  const std::int64_t tile = state.range(0);
  const auto query = random_bases(tile, 1);
  const auto subject = random_bases(tile, 2);
  std::vector<sw::Score> row_h(static_cast<std::size_t>(tile), 0);
  std::vector<sw::Score> row_f(static_cast<std::size_t>(tile), sw::kNegInf);
  std::vector<sw::Score> col_h(static_cast<std::size_t>(tile), 0);
  std::vector<sw::Score> col_e(static_cast<std::size_t>(tile), sw::kNegInf);
  const sw::ScoreScheme scheme;

  for (auto _ : state) {
    sw::BlockArgs args;
    args.query = query.data();
    args.subject = subject.data();
    args.rows = tile;
    args.cols = tile;
    args.top_h = row_h.data();
    args.top_f = row_f.data();
    args.left_h = col_h.data();
    args.left_e = col_e.data();
    args.bottom_h = row_h.data();
    args.bottom_f = row_f.data();
    args.right_h = col_h.data();
    args.right_e = col_e.data();
    if constexpr (Kind == 1) {
      benchmark::DoNotOptimize(sw::compute_block_antidiag(scheme, args));
    } else if constexpr (Kind == 2) {
      benchmark::DoNotOptimize(sw::compute_block_strip(scheme, args));
    } else {
      benchmark::DoNotOptimize(sw::compute_block(scheme, args));
    }
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(tile) * static_cast<double>(tile) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BlockKernel<0>)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_BlockKernel<1>)->Arg(256)->Arg(1024);
BENCHMARK(BM_BlockKernel<2>)->Arg(64)->Arg(256)->Arg(1024);

void BM_LinearScan(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const seq::Sequence a("a", random_bases(n, 3));
  const seq::Sequence b("b", random_bases(n, 4));
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::linear_score(scheme, a, b));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(n) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LinearScan)->Arg(512)->Arg(2048);

void BM_BandedScan(benchmark::State& state) {
  const std::int64_t n = 4096;
  const std::int64_t radius = state.range(0);
  const seq::Sequence a("a", random_bases(n, 5));
  const seq::Sequence b("b", random_bases(n, 6));
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::banded_score(scheme, a, b, radius));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(2 * radius + 1) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BandedScan)->Arg(32)->Arg(256);

void BM_MyersMillerGlobal(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const seq::Sequence a("a", random_bases(n, 7));
  const seq::Sequence b("b", random_bases(n, 8));
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::global_align(scheme, a, b));
  }
}
BENCHMARK(BM_MyersMillerGlobal)->Arg(256)->Arg(1024);

void BM_ChunkSerialize(benchmark::State& state) {
  comm::BorderChunk chunk;
  chunk.h.assign(static_cast<std::size_t>(state.range(0)), 42);
  chunk.e.assign(static_cast<std::size_t>(state.range(0)), -7);
  for (auto _ : state) {
    const auto frame = comm::serialize_chunk(chunk);
    benchmark::DoNotOptimize(
        comm::deserialize_chunk(frame.data(), frame.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              comm::frame_bytes(state.range(0))));
}
BENCHMARK(BM_ChunkSerialize)->Arg(512)->Arg(8192);

void BM_RingChannelRoundTrip(benchmark::State& state) {
  auto channel = comm::make_ring_channel(16);
  comm::BorderChunk chunk;
  chunk.h.assign(512, 1);
  chunk.e.assign(512, 2);
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (true) {
      auto received = channel.source->recv();
      if (!received.has_value()) break;
    }
  });
  for (auto _ : state) {
    channel.sink->send(chunk);
  }
  channel.sink->close();
  consumer.join();
  stop = true;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingChannelRoundTrip);

}  // namespace

BENCHMARK_MAIN();
