// R-B2: microbenchmarks of the computational kernels (google-benchmark).
//
// Measures the raw cell-update rate of every registered block kernel
// (sw::kernel_registry — the benchmark set grows automatically with the
// registry) across tile sizes, plus the serial scan, banded scan, chunk
// serialization and channel round-trips. These host rates are what the
// `toy_device` profiles and the real-mode GCUPS numbers trace back to.
//
// After the google-benchmark run, a summary pass times each kernel on a
// 1024x1024 block, prints a per-kernel GCUPS table with the speedup over
// the scalar `row` reference, and records the run in a JSON file
// (--kernels_json=PATH, default BENCH_kernels.json; empty disables).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/format.hpp"
#include "base/json.hpp"
#include "base/rng.hpp"
#include "base/time.hpp"
#include "bench/bench_util.hpp"
#include "comm/channel.hpp"
#include "comm/serialize.hpp"
#include "sw/banded.hpp"
#include "sw/block.hpp"
#include "sw/block_simd.hpp"
#include "sw/kernel.hpp"
#include "sw/linear.hpp"
#include "sw/myers_miller.hpp"

namespace {

using namespace mgpusw;

std::vector<seq::Nt> random_bases(std::int64_t length, std::uint64_t seed) {
  base::Rng rng(seed);
  std::vector<seq::Nt> out(static_cast<std::size_t>(length));
  for (auto& nt : out) nt = static_cast<seq::Nt>(rng.next_below(4));
  return out;
}

/// Reusable square-block harness; borders are reset per run because the
/// kernel overwrites them in place.
class BlockHarness {
 public:
  explicit BlockHarness(std::int64_t tile)
      : tile_(tile),
        query_(random_bases(tile, 1)),
        subject_(random_bases(tile, 2)),
        row_h_(static_cast<std::size_t>(tile)),
        row_f_(static_cast<std::size_t>(tile)),
        col_h_(static_cast<std::size_t>(tile)),
        col_e_(static_cast<std::size_t>(tile)) {}

  sw::BlockResult run(sw::BlockKernelFn fn, const sw::ScoreScheme& scheme) {
    std::fill(row_h_.begin(), row_h_.end(), 0);
    std::fill(row_f_.begin(), row_f_.end(), sw::kNegInf);
    std::fill(col_h_.begin(), col_h_.end(), 0);
    std::fill(col_e_.begin(), col_e_.end(), sw::kNegInf);
    sw::BlockArgs args;
    args.query = query_.data();
    args.subject = subject_.data();
    args.rows = tile_;
    args.cols = tile_;
    args.top_h = row_h_.data();
    args.top_f = row_f_.data();
    args.left_h = col_h_.data();
    args.left_e = col_e_.data();
    args.bottom_h = row_h_.data();
    args.bottom_f = row_f_.data();
    args.right_h = col_h_.data();
    args.right_e = col_e_.data();
    return fn(scheme, args);
  }

 private:
  std::int64_t tile_;
  std::vector<seq::Nt> query_, subject_;
  std::vector<sw::Score> row_h_, row_f_, col_h_, col_e_;
};

void BM_BlockKernel(benchmark::State& state, sw::BlockKernelFn fn) {
  const std::int64_t tile = state.range(0);
  BlockHarness harness(tile);
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.run(fn, scheme));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(tile) * static_cast<double>(tile) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_LinearScan(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const seq::Sequence a("a", random_bases(n, 3));
  const seq::Sequence b("b", random_bases(n, 4));
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::linear_score(scheme, a, b));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(n) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LinearScan)->Arg(512)->Arg(2048);

void BM_BandedScan(benchmark::State& state) {
  const std::int64_t n = 4096;
  const std::int64_t radius = state.range(0);
  const seq::Sequence a("a", random_bases(n, 5));
  const seq::Sequence b("b", random_bases(n, 6));
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::banded_score(scheme, a, b, radius));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(2 * radius + 1) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BandedScan)->Arg(32)->Arg(256);

void BM_MyersMillerGlobal(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const seq::Sequence a("a", random_bases(n, 7));
  const seq::Sequence b("b", random_bases(n, 8));
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::global_align(scheme, a, b));
  }
}
BENCHMARK(BM_MyersMillerGlobal)->Arg(256)->Arg(1024);

void BM_ChunkSerialize(benchmark::State& state) {
  comm::BorderChunk chunk;
  chunk.h.assign(static_cast<std::size_t>(state.range(0)), 42);
  chunk.e.assign(static_cast<std::size_t>(state.range(0)), -7);
  for (auto _ : state) {
    const auto frame = comm::serialize_chunk(chunk);
    benchmark::DoNotOptimize(
        comm::deserialize_chunk(frame.data(), frame.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              comm::frame_bytes(state.range(0))));
}
BENCHMARK(BM_ChunkSerialize)->Arg(512)->Arg(8192);

void BM_RingChannelRoundTrip(benchmark::State& state) {
  auto channel = comm::make_ring_channel(16);
  comm::BorderChunk chunk;
  chunk.h.assign(512, 1);
  chunk.e.assign(512, 2);
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (true) {
      auto received = channel.source->recv();
      if (!received.has_value()) break;
    }
  });
  for (auto _ : state) {
    channel.sink->send(chunk);
  }
  channel.sink->close();
  consumer.join();
  stop = true;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingChannelRoundTrip);

// ---------------------------------------------------------------------------
// per-kernel GCUPS summary + JSON record

struct KernelRate {
  std::string name;
  double gcups = 0.0;
};

/// Best-of-reps cell rate on a summary block (timer noise shrinks the
/// measured rate, never inflates it, so "best of" is the stable choice).
double measure_gcups(sw::BlockKernelFn fn, std::int64_t tile, int reps) {
  BlockHarness harness(tile);
  const sw::ScoreScheme scheme;
  double best_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    base::WallTimer timer;
    benchmark::DoNotOptimize(harness.run(fn, scheme));
    best_seconds = std::min(best_seconds, timer.elapsed_seconds());
  }
  return base::gcups(tile * tile, best_seconds);
}

void write_kernels_json(const std::string& path, std::int64_t tile,
                        const std::vector<KernelRate>& rates,
                        double row_gcups) {
  base::JsonWriter w;
  w.begin_object();
  w.key("bench").value("micro_kernels");
  w.key("block").value(tile);
  w.key("simd_isa").value(sw::simd_isa_name(sw::detected_simd_isa()));
  w.key("simd_backend").value(sw::active_simd_backend());
  w.key("kernels").begin_array();
  for (const KernelRate& rate : rates) {
    w.begin_object(base::JsonWriter::kCompact);
    w.key("name").value(rate.name);
    w.key("gcups").value_fixed(rate.gcups, 4);
    w.key("speedup_vs_row")
        .value_fixed(row_gcups > 0.0 ? rate.gcups / row_gcups : 0.0, 3);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  if (!bench::write_json_file(path, w.str())) return;
  std::printf("(kernel rates written to %s)\n", path.c_str());
}

void run_kernel_summary(const std::string& json_path) {
  const std::int64_t tile = 1024;
  const int reps = 5;
  std::vector<KernelRate> rates;
  double row_gcups = 0.0;
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    const double gcups = measure_gcups(info.fn, tile, reps);
    rates.push_back({info.name, gcups});
    if (info.name == sw::kDefaultKernel) row_gcups = gcups;
  }

  std::printf("\nPer-kernel GCUPS, %lld x %lld block (simd dispatches to "
              "%s; detected ISA %s):\n",
              static_cast<long long>(tile), static_cast<long long>(tile),
              sw::active_simd_backend(),
              sw::simd_isa_name(sw::detected_simd_isa()));
  base::TextTable table({"kernel", "GCUPS", "vs row"});
  for (const KernelRate& rate : rates) {
    table.add_row({rate.name, base::format_double(rate.gcups, 3),
                   base::format_double(
                       row_gcups > 0.0 ? rate.gcups / row_gcups : 0.0, 2) +
                       "x"});
  }
  std::fputs(table.str().c_str(), stdout);

  if (!json_path.empty()) {
    write_kernels_json(json_path, tile, rates, row_gcups);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Pull out our own flag before google-benchmark sees the arguments.
  std::string json_path = "BENCH_kernels.json";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kernels_json=", 15) == 0) {
      json_path = argv[i] + 15;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  // One benchmark per registered kernel — the set follows the registry.
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    benchmark::RegisterBenchmark(("BM_BlockKernel/" + info.name).c_str(),
                                 BM_BlockKernel, info.fn)
        ->Arg(64)
        ->Arg(256)
        ->Arg(1024);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  run_kernel_summary(json_path);
  return 0;
}
