// R-B2: microbenchmarks of the computational kernels (google-benchmark).
//
// Measures the raw cell-update rate of every registered block kernel
// (sw::kernel_registry — the benchmark set grows automatically with the
// registry) across tile sizes, plus the serial scan, banded scan, chunk
// serialization and channel round-trips. These host rates are what the
// `toy_device` profiles and the real-mode GCUPS numbers trace back to.
//
// After the google-benchmark run, a summary pass times each kernel on a
// 1024x1024 block, prints a per-kernel GCUPS table with the speedup over
// the scalar `row` reference, and records the run in a JSON file
// (--kernels_json=PATH, default BENCH_kernels.json; empty disables).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "base/format.hpp"
#include "base/json.hpp"
#include "base/rng.hpp"
#include "base/time.hpp"
#include "bench/bench_util.hpp"
#include "comm/channel.hpp"
#include "comm/serialize.hpp"
#include "sw/banded.hpp"
#include "sw/batch_simd.hpp"
#include "sw/block.hpp"
#include "sw/block_simd.hpp"
#include "sw/kernel.hpp"
#include "sw/linear.hpp"
#include "sw/myers_miller.hpp"

namespace {

using namespace mgpusw;

std::vector<seq::Nt> random_bases(std::int64_t length, std::uint64_t seed) {
  base::Rng rng(seed);
  std::vector<seq::Nt> out(static_cast<std::size_t>(length));
  for (auto& nt : out) nt = static_cast<seq::Nt>(rng.next_below(4));
  return out;
}

/// Reusable square-block harness; borders are reset per run because the
/// kernel overwrites them in place.
class BlockHarness {
 public:
  explicit BlockHarness(std::int64_t tile)
      : tile_(tile),
        query_(random_bases(tile, 1)),
        subject_(random_bases(tile, 2)),
        row_h_(static_cast<std::size_t>(tile)),
        row_f_(static_cast<std::size_t>(tile)),
        col_h_(static_cast<std::size_t>(tile)),
        col_e_(static_cast<std::size_t>(tile)) {}

  sw::BlockResult run(sw::BlockKernelFn fn, const sw::ScoreScheme& scheme) {
    std::fill(row_h_.begin(), row_h_.end(), 0);
    std::fill(row_f_.begin(), row_f_.end(), sw::kNegInf);
    std::fill(col_h_.begin(), col_h_.end(), 0);
    std::fill(col_e_.begin(), col_e_.end(), sw::kNegInf);
    sw::BlockArgs args;
    args.query = query_.data();
    args.subject = subject_.data();
    args.rows = tile_;
    args.cols = tile_;
    args.top_h = row_h_.data();
    args.top_f = row_f_.data();
    args.left_h = col_h_.data();
    args.left_e = col_e_.data();
    args.bottom_h = row_h_.data();
    args.bottom_f = row_f_.data();
    args.right_h = col_h_.data();
    args.right_e = col_e_.data();
    return fn(scheme, args);
  }

 private:
  std::int64_t tile_;
  std::vector<seq::Nt> query_, subject_;
  std::vector<sw::Score> row_h_, row_f_, col_h_, col_e_;
};

void BM_BlockKernel(benchmark::State& state, sw::BlockKernelFn fn) {
  const std::int64_t tile = state.range(0);
  BlockHarness harness(tile);
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness.run(fn, scheme));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(tile) * static_cast<double>(tile) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_LinearScan(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const seq::Sequence a("a", random_bases(n, 3));
  const seq::Sequence b("b", random_bases(n, 4));
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::linear_score(scheme, a, b));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(n) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LinearScan)->Arg(512)->Arg(2048);

void BM_BandedScan(benchmark::State& state) {
  const std::int64_t n = 4096;
  const std::int64_t radius = state.range(0);
  const seq::Sequence a("a", random_bases(n, 5));
  const seq::Sequence b("b", random_bases(n, 6));
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::banded_score(scheme, a, b, radius));
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(2 * radius + 1) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BandedScan)->Arg(32)->Arg(256);

void BM_MyersMillerGlobal(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const seq::Sequence a("a", random_bases(n, 7));
  const seq::Sequence b("b", random_bases(n, 8));
  const sw::ScoreScheme scheme;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw::global_align(scheme, a, b));
  }
}
BENCHMARK(BM_MyersMillerGlobal)->Arg(256)->Arg(1024);

void BM_ChunkSerialize(benchmark::State& state) {
  comm::BorderChunk chunk;
  chunk.h.assign(static_cast<std::size_t>(state.range(0)), 42);
  chunk.e.assign(static_cast<std::size_t>(state.range(0)), -7);
  for (auto _ : state) {
    const auto frame = comm::serialize_chunk(chunk);
    benchmark::DoNotOptimize(
        comm::deserialize_chunk(frame.data(), frame.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              comm::frame_bytes(state.range(0))));
}
BENCHMARK(BM_ChunkSerialize)->Arg(512)->Arg(8192);

void BM_RingChannelRoundTrip(benchmark::State& state) {
  auto channel = comm::make_ring_channel(16);
  comm::BorderChunk chunk;
  chunk.h.assign(512, 1);
  chunk.e.assign(512, 2);
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    while (true) {
      auto received = channel.source->recv();
      if (!received.has_value()) break;
    }
  });
  for (auto _ : state) {
    channel.sink->send(chunk);
  }
  channel.sink->close();
  consumer.join();
  stop = true;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingChannelRoundTrip);

// ---------------------------------------------------------------------------
// per-kernel GCUPS summary + JSON record

struct KernelRate {
  std::string name;
  double gcups = 0.0;
};

/// Min-of-N seconds per run with warmup and inner batching.
///
/// `warmup` untimed runs heat caches, fault in pages and settle the CPU
/// frequency — without them the kernels measured first paid the whole
/// cold-start bill, which is how sse42 used to "beat" avx2 in this
/// table (the avx2 backends simply ran first). Each timed repetition
/// then batches enough runs to cover `min_rep_seconds`, so clock
/// granularity cannot dominate short kernels, and the minimum over
/// `reps` repetitions is reported (noise only ever slows a run down).
template <class Fn>
double min_seconds_per_run(Fn&& run, int warmup, int reps,
                           double min_rep_seconds) {
  for (int i = 0; i < warmup; ++i) run();
  std::int64_t batch = 1;
  for (;;) {  // calibrate the batch size once
    base::WallTimer timer;
    for (std::int64_t k = 0; k < batch; ++k) run();
    if (timer.elapsed_seconds() >= min_rep_seconds ||
        batch >= (std::int64_t{1} << 24)) {
      break;
    }
    batch *= 4;
  }
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    base::WallTimer timer;
    for (std::int64_t k = 0; k < batch; ++k) run();
    best = std::min(best,
                    timer.elapsed_seconds() / static_cast<double>(batch));
  }
  return best;
}

double measure_gcups(sw::BlockKernelFn fn, std::int64_t tile, int reps) {
  BlockHarness harness(tile);
  const sw::ScoreScheme scheme;
  const double seconds = min_seconds_per_run(
      [&] { benchmark::DoNotOptimize(harness.run(fn, scheme)); },
      /*warmup=*/2, reps, /*min_rep_seconds=*/0.02);
  return base::gcups(tile * tile, seconds);
}

/// Megabase-shaped workload: one block-row strip swept left to right in
/// engine-sized tiles with rolling borders — the shape the paper's
/// megabase runs spend all their time in (long runs of homology push H
/// high, unlike a single random square block).
class StripHarness {
 public:
  StripHarness(std::int64_t rows, std::int64_t cols, std::int64_t tile_cols)
      : rows_(rows),
        cols_(cols),
        tile_cols_(tile_cols),
        query_(random_bases(rows, 21)),
        subject_(random_bases(cols, 22)),
        row_h_(static_cast<std::size_t>(cols)),
        row_f_(static_cast<std::size_t>(cols)),
        col_h_(static_cast<std::size_t>(rows)),
        col_e_(static_cast<std::size_t>(rows)) {}

  sw::BlockResult run(sw::BlockKernelFn fn, const sw::ScoreScheme& scheme) {
    std::fill(row_h_.begin(), row_h_.end(), 0);
    std::fill(row_f_.begin(), row_f_.end(), sw::kNegInf);
    std::fill(col_h_.begin(), col_h_.end(), 0);
    std::fill(col_e_.begin(), col_e_.end(), sw::kNegInf);
    sw::BlockResult strip;
    sw::Score corner = 0;
    for (std::int64_t c0 = 0; c0 < cols_; c0 += tile_cols_) {
      const std::int64_t tile = std::min(tile_cols_, cols_ - c0);
      sw::BlockArgs args;
      args.query = query_.data();
      args.subject = subject_.data() + c0;
      args.rows = rows_;
      args.cols = tile;
      args.global_col = c0;
      args.corner_h = corner;
      args.top_h = row_h_.data() + c0;
      args.top_f = row_f_.data() + c0;
      args.bottom_h = row_h_.data() + c0;
      args.bottom_f = row_f_.data() + c0;
      // Left/right alias: each tile's right border rolls into the next
      // tile's left border, exactly as the engine's slice loop does.
      corner = row_h_[static_cast<std::size_t>(c0 + tile - 1)];
      args.left_h = col_h_.data();
      args.left_e = col_e_.data();
      args.right_h = col_h_.data();
      args.right_e = col_e_.data();
      const sw::BlockResult tile_result = fn(scheme, args);
      if (sw::improves(tile_result.best, strip.best)) {
        strip.best = tile_result.best;
      }
      strip.border_max = std::max(strip.border_max, tile_result.border_max);
      strip.overflow_reruns += tile_result.overflow_reruns;
    }
    return strip;
  }

  [[nodiscard]] std::int64_t cells() const { return rows_ * cols_; }

 private:
  std::int64_t rows_, cols_, tile_cols_;
  std::vector<seq::Nt> query_, subject_;
  std::vector<sw::Score> row_h_, row_f_, col_h_, col_e_;
};

double measure_strip_gcups(sw::BlockKernelFn fn, StripHarness& harness,
                           int reps) {
  const sw::ScoreScheme scheme;
  const double seconds = min_seconds_per_run(
      [&] { benchmark::DoNotOptimize(harness.run(fn, scheme)); },
      /*warmup=*/1, reps, /*min_rep_seconds=*/0.0);
  return base::gcups(harness.cells(), seconds);
}

/// Short-pair batch workload for the inter-sequence kernels.
struct BatchHarness {
  std::vector<std::vector<seq::Nt>> codes;
  std::vector<sw::PairView> views;
  std::int64_t total_cells = 0;

  BatchHarness(std::int64_t pairs, std::int64_t pair_len) {
    codes.reserve(static_cast<std::size_t>(2 * pairs));
    for (std::int64_t p = 0; p < pairs; ++p) {
      codes.push_back(random_bases(pair_len, 100 + 2 * p));
      codes.push_back(random_bases(pair_len, 101 + 2 * p));
      total_cells += pair_len * pair_len;
    }
    views.resize(static_cast<std::size_t>(pairs));
    for (std::size_t k = 0; k < views.size(); ++k) {
      views[k].query = codes[2 * k].data();
      views[k].query_len = static_cast<std::int64_t>(codes[2 * k].size());
      views[k].subject = codes[2 * k + 1].data();
      views[k].subject_len =
          static_cast<std::int64_t>(codes[2 * k + 1].size());
    }
  }
};

double measure_batch_gcups(const std::string& kernel,
                           const BatchHarness& harness, int reps) {
  const sw::ScoreScheme scheme;
  const double seconds = min_seconds_per_run(
      [&] {
        benchmark::DoNotOptimize(
            sw::batch_align_scores(scheme, harness.views, kernel));
      },
      /*warmup=*/1, reps, /*min_rep_seconds=*/0.0);
  return base::gcups(harness.total_cells, seconds);
}

double rate_of(const std::vector<KernelRate>& rates,
               const std::string& name) {
  for (const KernelRate& rate : rates) {
    if (rate.name == name) return rate.gcups;
  }
  return 0.0;
}

void print_rate_table(const std::string& title,
                      const std::vector<KernelRate>& rates,
                      const std::string& baseline_name) {
  const double baseline = rate_of(rates, baseline_name);
  std::printf("\n%s:\n", title.c_str());
  base::TextTable table({"kernel", "GCUPS", "vs " + baseline_name});
  for (const KernelRate& rate : rates) {
    table.add_row({rate.name, base::format_double(rate.gcups, 3),
                   base::format_double(
                       baseline > 0.0 ? rate.gcups / baseline : 0.0, 2) +
                       "x"});
  }
  std::fputs(table.str().c_str(), stdout);
}

void append_rate_section(base::JsonWriter& w,
                         const std::vector<KernelRate>& rates,
                         const std::string& baseline_name) {
  const double baseline = rate_of(rates, baseline_name);
  w.key("kernels").begin_array();
  for (const KernelRate& rate : rates) {
    w.begin_object(base::JsonWriter::kCompact);
    w.key("name").value(rate.name);
    w.key("gcups").value_fixed(rate.gcups, 4);
    w.key("speedup_vs_" + baseline_name)
        .value_fixed(baseline > 0.0 ? rate.gcups / baseline : 0.0, 3);
    w.end_object();
  }
  w.end_array();
}

struct SummaryShape {
  /// Wide enough that the kLanes^2 scalar fill/drain triangles at each
  /// strip end amortize away (a 1024-wide tile charges the 32-lane int8
  /// kernel ~3% of its cells at scalar rate, inverting the avx2/sse42
  /// order); engine tiles are this wide or wider.
  std::int64_t block_tile = 8192;
  std::int64_t mega_rows = 512;
  std::int64_t mega_cols = std::int64_t{1} << 20;
  /// Wide tiles are the engine-realistic megabase shape: per-tile border
  /// conversion and per-strip fill/drain are fixed costs, so narrow
  /// tiles understate the narrow kernels' steady-state rate.
  std::int64_t mega_tile_cols = 65536;
  std::int64_t batch_pairs = 2048;
  std::int64_t batch_pair_len = 512;
  /// Block-table repetitions; the half-gigacell megabase and batch
  /// sections cap at 3. Min-of-N needs generous N on shared machines.
  int reps = 9;
};

void run_kernel_summary(const std::string& json_path,
                        const SummaryShape& shape) {
  // Section 1: every registered kernel on one square block.
  std::vector<KernelRate> block_rates;
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    block_rates.push_back(
        {info.name, measure_gcups(info.fn, shape.block_tile, shape.reps)});
  }
  print_rate_table(
      "Per-kernel GCUPS, " + std::to_string(shape.block_tile) + "x" +
          std::to_string(shape.block_tile) + " block (simd dispatches to " +
          sw::active_simd_backend() + "; detected ISA " +
          sw::simd_isa_name(sw::detected_simd_isa()) + ")",
      block_rates, std::string(sw::kDefaultKernel));

  // Section 2: megabase strip sweep — the dispatched kernels only (the
  // pinned backend variants add nothing at this scale and each pass
  // covers half a gigacell).
  StripHarness strip(shape.mega_rows, shape.mega_cols,
                     shape.mega_tile_cols);
  std::vector<KernelRate> mega_rates;
  for (const std::string name :
       {"row", "simd", "simd16", "simd8", "auto"}) {
    mega_rates.push_back(
        {name, measure_strip_gcups(sw::find_kernel(name), strip,
                                   std::min(shape.reps, 3))});
  }
  print_rate_table("Megabase strip GCUPS, " +
                       std::to_string(shape.mega_rows) + " rows x " +
                       base::with_thousands(shape.mega_cols) +
                       " cols in " + std::to_string(shape.mega_tile_cols) +
                       "-col tiles",
                   mega_rates, "simd");

  // Section 3: short-pair batch via the inter-sequence kernels. The
  // "scalar" entry is the per-pair intra-block SIMD kernel, i.e. what
  // the same batch costs without inter-sequence packing.
  BatchHarness batch(shape.batch_pairs, shape.batch_pair_len);
  std::vector<KernelRate> batch_rates;
  for (const std::string& name : sw::batch_kernel_names()) {
    batch_rates.push_back(
        {name, measure_batch_gcups(name, batch, std::min(shape.reps, 3))});
  }
  print_rate_table("Short-pair batch GCUPS, " +
                       std::to_string(shape.batch_pairs) + " pairs of " +
                       std::to_string(shape.batch_pair_len) + " bases",
                   batch_rates, "scalar");

  if (json_path.empty()) return;
  base::JsonWriter w;
  w.begin_object();
  w.key("bench").value("micro_kernels");
  w.key("simd_isa").value(sw::simd_isa_name(sw::detected_simd_isa()));
  w.key("simd_backend").value(sw::active_simd_backend());
  w.key("block").begin_object();
  w.key("tile").value(shape.block_tile);
  append_rate_section(w, block_rates, "row");
  w.end_object();
  w.key("megabase").begin_object();
  w.key("rows").value(shape.mega_rows);
  w.key("cols").value(shape.mega_cols);
  w.key("tile_cols").value(shape.mega_tile_cols);
  append_rate_section(w, mega_rates, "simd");
  w.end_object();
  w.key("batch").begin_object();
  w.key("pairs").value(shape.batch_pairs);
  w.key("pair_len").value(shape.batch_pair_len);
  append_rate_section(w, batch_rates, "scalar");
  w.end_object();
  w.end_object();
  if (!bench::write_json_file(json_path, w.str())) return;
  std::printf("(kernel rates written to %s)\n", json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Pull out our own flags before google-benchmark sees the arguments.
  std::string json_path = "BENCH_kernels.json";
  SummaryShape shape;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kernels_json=", 15) == 0) {
      json_path = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--block_tile=", 13) == 0) {
      shape.block_tile = std::atoll(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--mega_cols=", 12) == 0) {
      shape.mega_cols = std::atoll(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--mega_tile_cols=", 17) == 0) {
      shape.mega_tile_cols = std::atoll(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--batch_pairs=", 14) == 0) {
      shape.batch_pairs = std::atoll(argv[i] + 14);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  // One benchmark per registered kernel — the set follows the registry.
  for (const sw::KernelInfo& info : sw::kernel_registry()) {
    benchmark::RegisterBenchmark(("BM_BlockKernel/" + info.name).c_str(),
                                 BM_BlockKernel, info.fn)
        ->Arg(64)
        ->Arg(256)
        ->Arg(1024);
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  run_kernel_summary(json_path, shape);
  return 0;
}
