// R-A2 (ablation): fine-grain row-major pipeline vs CUDAlign-style
// external-diagonal barriers.
//
// The row-major schedule ships border chunk i the moment block row i is
// done, so a downstream device lags by one block row; the diagonal
// schedule only completes chunk i with diagonal i + nbc - 1, delaying the
// pipeline. Real execution measures the stall difference directly.
#include <cstdio>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-A2: block schedule ablation (real execution)");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-A2  Schedule ablation: fine-grain rows vs diagonal barriers",
      "fine-grain pipelining is what makes the multi-GPU wavefront "
      "efficient: downstream devices start almost immediately");

  const seq::ChromosomePair pair = seq::paper_chromosome_pairs()[2];

  base::TextTable table({"schedule", "devices", "score ok", "time",
                         "total recv stall", "total send stall"});
  for (const core::Schedule schedule :
       {core::Schedule::kRowMajor, core::Schedule::kDiagonal}) {
    for (const int devices : {2, 3}) {
      core::EngineConfig config;
      config.kernel = flags.get_string("kernel");
      config.block_rows = 32;
      config.block_cols = 32;
      config.buffer_capacity = 8;
      config.schedule = schedule;
      const bench::RealRun run =
          bench::run_real(pair, flags.get_int("scale"), devices, config);
      std::int64_t recv = 0;
      std::int64_t send = 0;
      for (const auto& stats : run.engine.devices) {
        recv += stats.recv_stall_ns;
        send += stats.send_stall_ns;
      }
      table.add_row({
          schedule == core::Schedule::kRowMajor ? "row-major (fine)"
                                                : "diagonal (barrier)",
          std::to_string(devices),
          run.matches() ? "yes" : "NO",
          base::human_duration(run.engine.wall_seconds),
          base::human_duration(static_cast<double>(recv) * 1e-9),
          base::human_duration(static_cast<double>(send) * 1e-9),
      });
    }
  }
  std::fputs(table.str().c_str(), stdout);

  // Model mode at paper scale: the same two schedules on the full chr21
  // matrix with the env-1 GPUs — this is where the fine-grain design's
  // advantage becomes visible in GCUPS, not just in stall counters.
  std::printf("\nModel mode (chr21 at paper scale, env-1 GPUs):\n");
  base::TextTable model({"schedule", "GCUPS", "makespan",
                         "max recv wait"});
  for (const sim::SimSchedule schedule :
       {sim::SimSchedule::kRowMajor, sim::SimSchedule::kDiagonalBarrier}) {
    sim::SimConfig config;
    config.rows = pair.human_length;
    config.cols = pair.chimp_length;
    config.block_rows = flags.get_int("block_rows");
    config.block_cols = flags.get_int("block_cols");
    config.buffer_capacity = flags.get_int("buffer");
    config.devices = vgpu::environment1();
    config.schedule = schedule;
    const sim::SimResult result = sim::simulate_pipeline(config);
    base::SimTime recv = 0;
    for (const auto& device : result.devices) {
      recv = std::max(recv, device.recv_wait_ns);
    }
    model.add_row({schedule == sim::SimSchedule::kRowMajor
                       ? "row-major (fine)"
                       : "diagonal (barrier)",
                   bench::gcups_str(result.gcups()),
                   base::human_duration(result.seconds()),
                   base::human_duration(static_cast<double>(recv) * 1e-9)});
  }
  std::fputs(model.str().c_str(), stdout);

  bench::print_shape_check({
      "both schedules produce the exact serial score",
      "the diagonal schedule accumulates more receive stall (chunks ship "
      "a whole anti-diagonal later)",
      "on real multi-core hardware the diagonal schedule would buy "
      "intra-device parallelism in exchange; on one core it cannot",
  });
  return 0;
}
