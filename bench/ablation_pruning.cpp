// R-A1 (extension ablation): block pruning.
//
// CUDAlign 2.1's block pruning skips blocks whose best possible score
// cannot beat the current maximum. It pays off when the maximum is found
// early — the extreme case being self-comparison (the optimum grows along
// the main diagonal). Real execution, exact scores.
#include <cstdio>

#include "base/time.hpp"
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace mgpusw;
  base::FlagSet flags = bench::standard_flags(
      "R-A1: block pruning ablation (real execution)");
  if (!flags.parse(argc, argv)) return 0;

  bench::print_header(
      "R-A1  Block pruning ablation (self-comparison vs homolog pair)",
      "pruning skips a large fraction of blocks on similar sequences "
      "while keeping the score exact");

  const seq::ChromosomePair pair = seq::paper_chromosome_pairs()[2];
  const seq::HomologPair homologs = seq::make_homolog_pair(
      seq::scaled_pair(pair, flags.get_int("scale")), 1);

  struct Workload {
    std::string name;
    const seq::Sequence* query;
    const seq::Sequence* subject;
  };
  const Workload workloads[] = {
      {"self (chr21 vs chr21)", &homologs.query, &homologs.query},
      {"homologs (chr21 human vs chimp)", &homologs.query,
       &homologs.subject},
  };

  base::TextTable table({"workload", "pruning", "time", "blocks pruned",
                         "cells computed", "score"});
  for (const Workload& workload : workloads) {
    for (const bool pruning : {false, true}) {
      vgpu::Device device(vgpu::toy_device(10.0));
      core::EngineConfig config;
      config.kernel = flags.get_string("kernel");
      config.block_rows = 64;
      config.block_cols = 64;
      config.enable_pruning = pruning;
      core::MultiDeviceEngine engine(config, {&device});
      base::WallTimer timer;
      const core::EngineResult result =
          engine.run(*workload.query, *workload.subject);
      std::int64_t pruned = 0;
      std::int64_t blocks = 0;
      for (const auto& stats : result.devices) {
        pruned += stats.pruned_blocks;
        blocks += stats.blocks;
      }
      table.add_row({
          workload.name,
          pruning ? "on" : "off",
          base::human_duration(timer.elapsed_seconds()),
          base::format_double(
              blocks > 0 ? 100.0 * static_cast<double>(pruned) /
                               static_cast<double>(blocks)
                         : 0.0,
              1) + "%",
          base::with_thousands(result.computed_cells),
          std::to_string(result.best.score),
      });
    }
  }
  std::fputs(table.str().c_str(), stdout);

  bench::print_shape_check({
      "scores are identical with pruning on and off",
      "both workloads prune a large fraction of blocks: similar "
      "sequences reach the optimum early, so off-diagonal blocks can "
      "never catch up",
      "the pruned fraction depends on matrix aspect and where the "
      "optimum lies, not just on self- vs cross-comparison",
  });
  return 0;
}
