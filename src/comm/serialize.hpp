// Wire formats (little-endian) shared by the TCP transports.
//
// Border chunk frames — the engine's inter-device border traffic:
//   u64 magic            'MGSWBRD1'
//   i64 sequence_number
//   i64 first_row
//   i64 corner_h
//   i64 rows
//   i32 h[rows]
//   i32 e[rows]
//
// Message frames — the service protocol envelope (src/serve). Unlike
// border chunks, these cross a trust boundary (any process can connect
// to the daemon), so the envelope carries a CRC and every malformation
// maps to ProtocolError, which the server turns into an ERROR reply
// instead of dying:
//   u32 magic            'MGSV'
//   u8  type             frame type tag (opaque to this layer)
//   u8  reserved[3]      must be zero
//   u32 crc32(body)
//   u8  body[...]        payload (typically JSON; opaque to this layer)
#pragma once

#include <cstdint>
#include <vector>

#include "comm/border.hpp"

namespace mgpusw::comm {

constexpr std::uint64_t kBorderFrameMagic = 0x3144524257534D47ULL;  // "GMSWRBD1"

/// Serializes a chunk into a byte frame.
[[nodiscard]] std::vector<std::uint8_t> serialize_chunk(
    const BorderChunk& chunk);

/// Parses a frame produced by serialize_chunk. Throws IoError on
/// malformed input (bad magic, truncated payload, negative row count).
[[nodiscard]] BorderChunk deserialize_chunk(const std::uint8_t* data,
                                            std::size_t size);

/// Frame size for a chunk with `rows` border cells.
[[nodiscard]] constexpr std::size_t frame_bytes(std::int64_t rows) {
  return 5 * sizeof(std::int64_t) +
         2 * static_cast<std::size_t>(rows) * sizeof(sw::Score);
}

constexpr std::uint32_t kMessageFrameMagic = 0x5653474DU;  // "MGSV"

/// Envelope overhead of a message frame (magic + type + reserved + crc).
constexpr std::size_t kMessageHeaderBytes = 12;

/// Largest message body the deserializer accepts. Matches the stream
/// layer's frame cap minus the envelope so a maximal body still fits in
/// one TCP frame.
constexpr std::size_t kMaxMessageBytes = (64u << 20) - kMessageHeaderBytes;

/// One service-protocol message: a type tag plus an opaque body. The
/// meaning of `type` and the body encoding belong to serve/protocol;
/// this layer only owns the envelope (magic, CRC, size limits).
struct MessageFrame {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> body;
};

/// Wraps a message in the CRC-protected envelope.
[[nodiscard]] std::vector<std::uint8_t> serialize_message(
    const MessageFrame& message);

/// Parses a frame produced by serialize_message. Throws ProtocolError on
/// any malformation: truncated envelope, bad magic, nonzero reserved
/// bytes, body CRC mismatch, or a body larger than kMaxMessageBytes.
[[nodiscard]] MessageFrame deserialize_message(const std::uint8_t* data,
                                               std::size_t size);

}  // namespace mgpusw::comm
