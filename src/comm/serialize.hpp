// Wire format for border chunks (little-endian framing shared by the TCP
// transport and any future file/MPI transports).
//
// Frame layout:
//   u64 magic            'MGSWBRD1'
//   i64 sequence_number
//   i64 first_row
//   i64 corner_h
//   i64 rows
//   i32 h[rows]
//   i32 e[rows]
#pragma once

#include <cstdint>
#include <vector>

#include "comm/border.hpp"

namespace mgpusw::comm {

constexpr std::uint64_t kBorderFrameMagic = 0x3144524257534D47ULL;  // "GMSWRBD1"

/// Serializes a chunk into a byte frame.
[[nodiscard]] std::vector<std::uint8_t> serialize_chunk(
    const BorderChunk& chunk);

/// Parses a frame produced by serialize_chunk. Throws IoError on
/// malformed input (bad magic, truncated payload, negative row count).
[[nodiscard]] BorderChunk deserialize_chunk(const std::uint8_t* data,
                                            std::size_t size);

/// Frame size for a chunk with `rows` border cells.
[[nodiscard]] constexpr std::size_t frame_bytes(std::int64_t rows) {
  return 5 * sizeof(std::int64_t) +
         2 * static_cast<std::size_t>(rows) * sizeof(sw::Score);
}

}  // namespace mgpusw::comm
