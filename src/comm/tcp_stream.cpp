#include "comm/tcp_stream.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "base/error.hpp"
#include "base/log.hpp"

namespace mgpusw::comm {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw IoError(std::string(what) + ": " + std::strerror(errno));
}

/// connect() bounded by `timeout_ms` (0 = block): non-blocking connect,
/// poll for writability, then check SO_ERROR — the portable idiom.
void connect_with_timeout(int fd, const sockaddr_in& addr,
                          std::int64_t timeout_ms) {
  if (timeout_ms <= 0) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      throw_errno("connect");
    }
    return;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc < 0) {
    if (errno != EINPROGRESS) throw_errno("connect");
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready == 0) {
      throw TransientError("tcp connect timed out after " +
                           std::to_string(timeout_ms) + " ms");
    }
    if (ready < 0) throw_errno("poll");
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      errno = err;
      throw_errno("connect");
    }
  }
  ::fcntl(fd, F_SETFL, flags);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

void write_fd_all(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that shut down mid-stream must surface as
    // EPIPE, not a process-killing SIGPIPE.
    const ssize_t written = ::send(fd, cursor, size, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer stopped draining.
        throw TransientError(
            "tcp write timed out (peer not draining; --comm-timeout-ms)");
      }
      throw_errno("tcp write");
    }
    cursor += written;
    size -= static_cast<std::size_t>(written);
  }
}

void read_fd_all(int fd, void* data, std::size_t size) {
  char* cursor = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t got = ::read(fd, cursor, size);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: a silent peer must surface as an error
        // the recovery layer can classify, not a hung wavefront.
        throw TransientError(
            "tcp read timed out (silent peer; --comm-timeout-ms)");
      }
      throw_errno("tcp read");
    }
    if (got == 0) throw IoError("tcp peer closed unexpectedly");
    cursor += got;
    size -= static_cast<std::size_t>(got);
  }
}

void set_socket_timeouts(int fd, std::int64_t timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// ---------------------------------------------------------------------------
// TcpStream

TcpStream::~TcpStream() { close(); }

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port,
                             std::int64_t timeout_ms) {
  sockaddr_in addr = loopback_addr(port);
  if (host != "localhost" && !host.empty() && host != "127.0.0.1") {
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw InvalidArgument("tcp connect: bad IPv4 address \"" + host +
                            "\"");
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  try {
    connect_with_timeout(fd, addr, timeout_ms);
  } catch (...) {
    ::close(fd);
    throw;
  }
  set_nodelay(fd);
  set_socket_timeouts(fd, timeout_ms);
  return TcpStream(fd);
}

void TcpStream::send_frame(const std::vector<std::uint8_t>& payload) {
  MGPUSW_CHECK(valid());
  const auto length = static_cast<std::uint32_t>(payload.size());
  write_fd_all(fd_, &length, sizeof(length));
  if (!payload.empty()) write_fd_all(fd_, payload.data(), payload.size());
}

std::optional<std::vector<std::uint8_t>> TcpStream::recv_frame(
    std::size_t max_bytes) {
  MGPUSW_CHECK(valid());
  std::uint32_t length = 0;
  // A clean EOF on the first byte of the prefix is a normal disconnect;
  // EOF mid-prefix is a torn frame.
  char* cursor = reinterpret_cast<char*>(&length);
  std::size_t need = sizeof(length);
  const std::size_t first = read_some(cursor, need);
  if (first == 0) return std::nullopt;
  read_fd_all(fd_, cursor + first, need - first);
  if (length > max_bytes) {
    throw ProtocolError("frame length " + std::to_string(length) +
                        " exceeds the " + std::to_string(max_bytes) +
                        "-byte cap (corrupt or hostile stream)");
  }
  std::vector<std::uint8_t> payload(length);
  if (length > 0) read_fd_all(fd_, payload.data(), payload.size());
  return payload;
}

void TcpStream::write_all(const void* data, std::size_t size) {
  MGPUSW_CHECK(valid());
  write_fd_all(fd_, data, size);
}

void TcpStream::read_all(void* data, std::size_t size) {
  MGPUSW_CHECK(valid());
  read_fd_all(fd_, data, size);
}

std::size_t TcpStream::read_some(void* data, std::size_t size) {
  MGPUSW_CHECK(valid());
  for (;;) {
    const ssize_t got = ::read(fd_, data, size);
    if (got >= 0) return static_cast<std::size_t>(got);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw TransientError("tcp read timed out (silent peer)");
    }
    throw_errno("tcp read");
  }
}

void TcpStream::shutdown() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// TcpListener

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  // SO_REUSEADDR: a daemon restarted after a crash must rebind its port
  // immediately instead of waiting out TIME_WAIT.
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) <
      0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, backlog) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw_errno("listen");
  }
}

TcpListener::~TcpListener() {
  close();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpStream> TcpListener::accept() {
  std::int64_t backoff_ms = 10;
  for (;;) {
    if (closed_.load(std::memory_order_acquire)) return std::nullopt;
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      set_nodelay(conn);
      return TcpStream(conn);
    }
    if (closed_.load(std::memory_order_acquire)) return std::nullopt;
    // Transient conditions a daemon-lifetime accept loop must survive:
    // a signal (EINTR), a connection that died between SYN and accept
    // (ECONNABORTED), and descriptor exhaustion (EMFILE/ENFILE), where
    // retrying immediately would spin — back off until an fd frees up.
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EMFILE || errno == ENFILE) {
      MGPUSW_LOG(kWarn) << "accept: out of file descriptors; retrying in "
                        << backoff_ms << " ms";
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min<std::int64_t>(backoff_ms * 2, 1000);
      continue;
    }
    throw_errno("accept");
  }
}

void TcpListener::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  // shutdown() wakes a blocked accept() (it fails with EINVAL on
  // Linux); the descriptor itself is closed in the destructor so a
  // racing accept() never sees a recycled fd number.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace mgpusw::comm
