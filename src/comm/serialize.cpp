#include "comm/serialize.hpp"

#include <cstring>

#include "base/error.hpp"

namespace mgpusw::comm {

namespace {

template <typename T>
void append(std::vector<std::uint8_t>& out, T value) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T read(const std::uint8_t*& cursor, const std::uint8_t* end) {
  if (cursor + sizeof(T) > end) {
    throw IoError("border frame truncated");
  }
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

}  // namespace

std::vector<std::uint8_t> serialize_chunk(const BorderChunk& chunk) {
  MGPUSW_CHECK(chunk.h.size() == chunk.e.size());
  std::vector<std::uint8_t> out;
  out.reserve(frame_bytes(chunk.rows()));
  append<std::uint64_t>(out, kBorderFrameMagic);
  append<std::int64_t>(out, chunk.sequence_number);
  append<std::int64_t>(out, chunk.first_row);
  append<std::int64_t>(out, chunk.corner_h);
  append<std::int64_t>(out, chunk.rows());
  const std::size_t offset = out.size();
  const std::size_t payload = chunk.h.size() * sizeof(sw::Score);
  out.resize(offset + 2 * payload);
  if (payload > 0) {
    std::memcpy(out.data() + offset, chunk.h.data(), payload);
    std::memcpy(out.data() + offset + payload, chunk.e.data(), payload);
  }
  return out;
}

BorderChunk deserialize_chunk(const std::uint8_t* data, std::size_t size) {
  const std::uint8_t* cursor = data;
  const std::uint8_t* end = data + size;
  const auto magic = read<std::uint64_t>(cursor, end);
  if (magic != kBorderFrameMagic) {
    throw IoError("border frame has bad magic");
  }
  BorderChunk chunk;
  chunk.sequence_number = read<std::int64_t>(cursor, end);
  chunk.first_row = read<std::int64_t>(cursor, end);
  chunk.corner_h = read<std::int64_t>(cursor, end);
  const auto rows = read<std::int64_t>(cursor, end);
  if (rows < 0 || rows > (1LL << 32)) {
    throw IoError("border frame has invalid row count");
  }
  const std::size_t payload = static_cast<std::size_t>(rows) * sizeof(sw::Score);
  if (cursor + 2 * payload != end) {
    throw IoError("border frame payload size mismatch");
  }
  chunk.h.resize(static_cast<std::size_t>(rows));
  chunk.e.resize(static_cast<std::size_t>(rows));
  if (payload > 0) {
    std::memcpy(chunk.h.data(), cursor, payload);
    std::memcpy(chunk.e.data(), cursor + payload, payload);
  }
  return chunk;
}

}  // namespace mgpusw::comm
