#include "comm/serialize.hpp"

#include <cstring>
#include <string>

#include "base/crc32.hpp"
#include "base/error.hpp"

namespace mgpusw::comm {

namespace {

template <typename T>
void append(std::vector<std::uint8_t>& out, T value) {
  const std::size_t offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

template <typename T>
T read(const std::uint8_t*& cursor, const std::uint8_t* end) {
  if (cursor + sizeof(T) > end) {
    throw IoError("border frame truncated");
  }
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

}  // namespace

std::vector<std::uint8_t> serialize_chunk(const BorderChunk& chunk) {
  MGPUSW_CHECK(chunk.h.size() == chunk.e.size());
  std::vector<std::uint8_t> out;
  out.reserve(frame_bytes(chunk.rows()));
  append<std::uint64_t>(out, kBorderFrameMagic);
  append<std::int64_t>(out, chunk.sequence_number);
  append<std::int64_t>(out, chunk.first_row);
  append<std::int64_t>(out, chunk.corner_h);
  append<std::int64_t>(out, chunk.rows());
  const std::size_t offset = out.size();
  const std::size_t payload = chunk.h.size() * sizeof(sw::Score);
  out.resize(offset + 2 * payload);
  if (payload > 0) {
    std::memcpy(out.data() + offset, chunk.h.data(), payload);
    std::memcpy(out.data() + offset + payload, chunk.e.data(), payload);
  }
  return out;
}

BorderChunk deserialize_chunk(const std::uint8_t* data, std::size_t size) {
  const std::uint8_t* cursor = data;
  const std::uint8_t* end = data + size;
  const auto magic = read<std::uint64_t>(cursor, end);
  if (magic != kBorderFrameMagic) {
    throw IoError("border frame has bad magic");
  }
  BorderChunk chunk;
  chunk.sequence_number = read<std::int64_t>(cursor, end);
  chunk.first_row = read<std::int64_t>(cursor, end);
  chunk.corner_h = read<std::int64_t>(cursor, end);
  const auto rows = read<std::int64_t>(cursor, end);
  if (rows < 0 || rows > (1LL << 32)) {
    throw IoError("border frame has invalid row count");
  }
  const std::size_t payload = static_cast<std::size_t>(rows) * sizeof(sw::Score);
  if (cursor + 2 * payload != end) {
    throw IoError("border frame payload size mismatch");
  }
  chunk.h.resize(static_cast<std::size_t>(rows));
  chunk.e.resize(static_cast<std::size_t>(rows));
  if (payload > 0) {
    std::memcpy(chunk.h.data(), cursor, payload);
    std::memcpy(chunk.e.data(), cursor + payload, payload);
  }
  return chunk;
}

std::vector<std::uint8_t> serialize_message(const MessageFrame& message) {
  MGPUSW_REQUIRE(message.body.size() <= kMaxMessageBytes,
                 "message body exceeds the frame cap");
  std::vector<std::uint8_t> out;
  out.reserve(kMessageHeaderBytes + message.body.size());
  append<std::uint32_t>(out, kMessageFrameMagic);
  out.push_back(message.type);
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  append<std::uint32_t>(out,
                        base::crc32(message.body.data(), message.body.size()));
  out.insert(out.end(), message.body.begin(), message.body.end());
  return out;
}

MessageFrame deserialize_message(const std::uint8_t* data, std::size_t size) {
  if (size < kMessageHeaderBytes) {
    throw ProtocolError("message frame truncated: " + std::to_string(size) +
                        " bytes is smaller than the " +
                        std::to_string(kMessageHeaderBytes) +
                        "-byte envelope");
  }
  if (size - kMessageHeaderBytes > kMaxMessageBytes) {
    throw ProtocolError("message body of " +
                        std::to_string(size - kMessageHeaderBytes) +
                        " bytes exceeds the frame cap");
  }
  std::uint32_t magic = 0;
  std::memcpy(&magic, data, sizeof(magic));
  if (magic != kMessageFrameMagic) {
    throw ProtocolError("message frame has bad magic (not an mgpusw-serve "
                        "protocol stream)");
  }
  MessageFrame message;
  message.type = data[4];
  if (data[5] != 0 || data[6] != 0 || data[7] != 0) {
    throw ProtocolError("message frame has nonzero reserved bytes "
                        "(version mismatch or corruption)");
  }
  std::uint32_t expected_crc = 0;
  std::memcpy(&expected_crc, data + 8, sizeof(expected_crc));
  const std::uint8_t* body = data + kMessageHeaderBytes;
  const std::size_t body_size = size - kMessageHeaderBytes;
  if (base::crc32(body, body_size) != expected_crc) {
    throw ProtocolError("message body failed its CRC check");
  }
  message.body.assign(body, body + body_size);
  return message;
}

}  // namespace mgpusw::comm
