// Loopback TCP transport.
//
// The paper's engine runs one process per GPU connected by sockets; this
// transport reproduces that path. Chunks are framed (u32 length +
// serialized payload) and the circular-buffer capacity is enforced as an
// acknowledgement window: the sender blocks once `capacity` chunks are
// unacknowledged, which gives the same back-pressure semantics as the
// in-process ring buffer. The raw socket plumbing (read/write loops,
// connect timeout, per-socket timeouts) lives in comm/tcp_stream and is
// shared with the service daemon's listener.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>

#include "base/error.hpp"
#include "base/time.hpp"
#include "comm/channel.hpp"
#include "comm/serialize.hpp"
#include "comm/tcp_stream.hpp"
#include "obs/metrics.hpp"

namespace mgpusw::comm {

namespace {

constexpr std::uint32_t kCloseSentinel = 0xFFFFFFFFu;

[[noreturn]] void throw_errno(const char* what) {
  throw IoError(std::string(what) + ": " + std::strerror(errno));
}

struct TcpState {
  int producer_fd = -1;
  int consumer_fd = -1;
  std::size_t capacity = 0;
  std::atomic<std::int64_t> chunks_sent{0};
  std::atomic<std::int64_t> bytes_sent{0};
  std::atomic<std::int64_t> producer_stall_ns{0};
  std::atomic<std::int64_t> consumer_stall_ns{0};
  std::atomic<std::int64_t> acks_seen{0};
  obs::Histogram* ack_wait_ms = nullptr;  // null when obs is disabled

  ~TcpState() {
    if (producer_fd >= 0) ::close(producer_fd);
    if (consumer_fd >= 0) ::close(consumer_fd);
  }

  [[nodiscard]] ChannelStats stats() const {
    return ChannelStats{
        chunks_sent.load(std::memory_order_relaxed),
        bytes_sent.load(std::memory_order_relaxed),
        producer_stall_ns.load(std::memory_order_relaxed),
        consumer_stall_ns.load(std::memory_order_relaxed),
    };
  }
};

class TcpSink final : public BorderSink {
 public:
  explicit TcpSink(std::shared_ptr<TcpState> state)
      : state_(std::move(state)) {}

  void send(BorderChunk chunk) override {
    MGPUSW_CHECK(!closed_);
    // Acknowledgement window: wait until fewer than `capacity` chunks are
    // in flight. Each ack is one byte on the same duplex connection.
    if (in_flight_ >= state_->capacity) {
      base::WallTimer stall;
      while (in_flight_ >= state_->capacity) {
        std::uint8_t ack = 0;
        read_fd_all(state_->producer_fd, &ack, 1);
        --in_flight_;
        state_->acks_seen.fetch_add(1, std::memory_order_relaxed);
      }
      state_->producer_stall_ns.fetch_add(stall.elapsed_ns(),
                                          std::memory_order_relaxed);
      if (state_->ack_wait_ms != nullptr) {
        state_->ack_wait_ms->observe(stall.elapsed_seconds() * 1e3);
      }
    }
    const std::vector<std::uint8_t> frame = serialize_chunk(chunk);
    const auto length = static_cast<std::uint32_t>(frame.size());
    write_fd_all(state_->producer_fd, &length, sizeof(length));
    write_fd_all(state_->producer_fd, frame.data(), frame.size());
    ++in_flight_;
    state_->chunks_sent.fetch_add(1, std::memory_order_relaxed);
    state_->bytes_sent.fetch_add(static_cast<std::int64_t>(frame.size()),
                                 std::memory_order_relaxed);
  }

  void close() override {
    if (closed_) return;
    closed_ = true;
    write_fd_all(state_->producer_fd, &kCloseSentinel,
                 sizeof(kCloseSentinel));
    ::shutdown(state_->producer_fd, SHUT_WR);
  }

  [[nodiscard]] ChannelStats stats() const override {
    return state_->stats();
  }

 private:
  std::shared_ptr<TcpState> state_;
  std::size_t in_flight_ = 0;
  bool closed_ = false;
};

class TcpSource final : public BorderSource {
 public:
  explicit TcpSource(std::shared_ptr<TcpState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] std::optional<BorderChunk> recv() override {
    if (done_) return std::nullopt;
    base::WallTimer stall;
    std::uint32_t length = 0;
    read_fd_all(state_->consumer_fd, &length, sizeof(length));
    state_->consumer_stall_ns.fetch_add(stall.elapsed_ns(),
                                        std::memory_order_relaxed);
    if (length == kCloseSentinel) {
      done_ = true;
      return std::nullopt;
    }
    buffer_.resize(length);
    read_fd_all(state_->consumer_fd, buffer_.data(), buffer_.size());
    BorderChunk chunk = deserialize_chunk(buffer_.data(), buffer_.size());
    // Acknowledge so the producer's window opens one slot.
    const std::uint8_t ack = 1;
    write_fd_all(state_->consumer_fd, &ack, 1);
    return chunk;
  }

  void close() override {
    if (done_) return;
    done_ = true;
    // Both directions: no more acks will be sent (the producer's blocked
    // ack read sees EOF and throws instead of hanging), and any frame
    // still in flight is discarded. The producer's next write gets EPIPE.
    ::shutdown(state_->consumer_fd, SHUT_RDWR);
  }

  [[nodiscard]] ChannelStats stats() const override {
    return state_->stats();
  }

 private:
  std::shared_ptr<TcpState> state_;
  std::vector<std::uint8_t> buffer_;
  bool done_ = false;
};

}  // namespace

ChannelPair make_tcp_channel(std::size_t capacity_chunks,
                             std::int64_t timeout_ms,
                             const obs::Scope& obs) {
  MGPUSW_REQUIRE(capacity_chunks > 0, "channel capacity must be positive");
  MGPUSW_REQUIRE(timeout_ms >= 0, "comm timeout must be non-negative");

  // One-shot rendezvous: an ephemeral listener pairs the two loopback
  // sockets, then goes away. TcpListener brings SO_REUSEADDR and the
  // hardened accept with it.
  TcpListener listener(0, /*backlog=*/1);

  const int producer = ::socket(AF_INET, SOCK_STREAM, 0);
  if (producer < 0) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(listener.port());
  try {
    if (::connect(producer, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      throw_errno("connect");
    }
  } catch (...) {
    ::close(producer);
    throw;
  }
  std::optional<TcpStream> accepted = listener.accept();
  if (!accepted.has_value()) {
    ::close(producer);
    throw IoError("tcp channel rendezvous: listener closed");
  }

  // Border chunks are latency-sensitive (they gate the downstream
  // device's wavefront); disable Nagle. The accepted side already has
  // TCP_NODELAY from the listener.
  const int one = 1;
  ::setsockopt(producer, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  set_socket_timeouts(producer, timeout_ms);

  auto state = std::make_shared<TcpState>();
  state->producer_fd = producer;
  // TcpState owns both descriptors from here.
  state->consumer_fd = accepted->release();
  set_socket_timeouts(state->consumer_fd, timeout_ms);
  state->capacity = capacity_chunks;
  if (obs.metrics != nullptr) {
    state->ack_wait_ms = &obs.metrics->histogram("comm.tcp.ack_wait_ms");
  }

  ChannelPair pair;
  pair.sink = std::make_unique<TcpSink>(state);
  pair.source = std::make_unique<TcpSource>(state);
  return pair;
}

}  // namespace mgpusw::comm
