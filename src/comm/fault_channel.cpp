// Fault-injecting channel decorator.
//
// Wraps a BorderSink so a deterministic fault plan (vgpu/fault.hpp) can
// drop, corrupt or delay individual border chunks without either channel
// implementation knowing about fault injection. A dropped chunk makes
// the receiver's sequencing check fire (ProtocolError — transient); a
// corrupted chunk is scrambled at the framing level (sequence number) so
// detection is deterministic rather than dependent on payload checksums.

#include <chrono>
#include <thread>
#include <utility>

#include "base/error.hpp"
#include "comm/channel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mgpusw::comm {

namespace {

class FaultySink final : public BorderSink {
 public:
  FaultySink(std::unique_ptr<BorderSink> inner, ChunkFaultFn fault,
             const obs::Scope& obs)
      : inner_(std::move(inner)), fault_(std::move(fault)), obs_(obs) {
    MGPUSW_REQUIRE(inner_ != nullptr, "faulty sink wants an inner sink");
    MGPUSW_REQUIRE(fault_ != nullptr, "faulty sink wants a fault hook");
  }

  void send(BorderChunk chunk) override {
    const ChunkFault fate = fault_(chunk.sequence_number);
    record(fate, chunk.sequence_number);
    if (fate.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fate.delay_ms));
    }
    if (fate.drop) return;  // vanished on the wire
    if (fate.corrupt) {
      // Framing damage: the receiver's expected-sequence check reports
      // it as a ProtocolError instead of consuming garbage borders.
      chunk.sequence_number ^= 0x40000000;
    }
    inner_->send(std::move(chunk));
  }

  void close() override { inner_->close(); }

  [[nodiscard]] ChannelStats stats() const override {
    return inner_->stats();
  }

 private:
  void record(const ChunkFault& fate, std::int64_t sequence) {
    if (!fate.drop && !fate.corrupt && fate.delay_ms <= 0) return;
    if (obs_.metrics != nullptr) {
      if (fate.drop) obs_.metrics->counter("fault.chunks_dropped").increment();
      if (fate.corrupt) {
        obs_.metrics->counter("fault.chunks_corrupted").increment();
      }
      if (fate.delay_ms > 0) {
        obs_.metrics->counter("fault.chunks_delayed").increment();
      }
    }
    if (obs_.tracer != nullptr) {
      obs_.tracer->instant(
          "fault", "chunk_fault",
          {obs::TraceArg::number("seq", sequence),
           obs::TraceArg::text("fate", fate.drop      ? "drop"
                                       : fate.corrupt ? "corrupt"
                                                      : "delay")});
    }
  }

  std::unique_ptr<BorderSink> inner_;
  ChunkFaultFn fault_;
  obs::Scope obs_;
};

}  // namespace

std::unique_ptr<BorderSink> make_faulty_sink(
    std::unique_ptr<BorderSink> inner, ChunkFaultFn fault,
    const obs::Scope& obs) {
  return std::make_unique<FaultySink>(std::move(inner), std::move(fault),
                                      obs);
}

}  // namespace mgpusw::comm
