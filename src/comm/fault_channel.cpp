// Fault-injecting channel decorator.
//
// Wraps a BorderSink so a deterministic fault plan (vgpu/fault.hpp) can
// drop, corrupt or delay individual border chunks without either channel
// implementation knowing about fault injection. A dropped chunk makes
// the receiver's sequencing check fire (ProtocolError — transient); a
// corrupted chunk is scrambled at the framing level (sequence number) so
// detection is deterministic rather than dependent on payload checksums.

#include <chrono>
#include <thread>
#include <utility>

#include "base/error.hpp"
#include "comm/channel.hpp"

namespace mgpusw::comm {

namespace {

class FaultySink final : public BorderSink {
 public:
  FaultySink(std::unique_ptr<BorderSink> inner, ChunkFaultFn fault)
      : inner_(std::move(inner)), fault_(std::move(fault)) {
    MGPUSW_REQUIRE(inner_ != nullptr, "faulty sink wants an inner sink");
    MGPUSW_REQUIRE(fault_ != nullptr, "faulty sink wants a fault hook");
  }

  void send(BorderChunk chunk) override {
    const ChunkFault fate = fault_(chunk.sequence_number);
    if (fate.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fate.delay_ms));
    }
    if (fate.drop) return;  // vanished on the wire
    if (fate.corrupt) {
      // Framing damage: the receiver's expected-sequence check reports
      // it as a ProtocolError instead of consuming garbage borders.
      chunk.sequence_number ^= 0x40000000;
    }
    inner_->send(std::move(chunk));
  }

  void close() override { inner_->close(); }

  [[nodiscard]] ChannelStats stats() const override {
    return inner_->stats();
  }

 private:
  std::unique_ptr<BorderSink> inner_;
  ChunkFaultFn fault_;
};

}  // namespace

std::unique_ptr<BorderSink> make_faulty_sink(
    std::unique_ptr<BorderSink> inner, ChunkFaultFn fault) {
  return std::make_unique<FaultySink>(std::move(inner), std::move(fault));
}

}  // namespace mgpusw::comm
