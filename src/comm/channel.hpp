// Channel abstraction: how border chunks travel between devices.
//
// Implementations:
//   * RingChannel  — in-process circular buffer (the common case: all
//     virtual devices live in one process, as the paper's GPUs live in
//     one host). Capacity gives the paper's circular-buffer back-pressure.
//   * TcpChannel   — loopback TCP with the same framing, exercising real
//     serialization (the paper's multi-host socket variant).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "comm/border.hpp"
#include "obs/obs.hpp"

namespace mgpusw::comm {

/// Aggregated channel statistics, for the overlap experiments.
struct ChannelStats {
  std::int64_t chunks_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t producer_stall_ns = 0;  // blocked because the buffer was full
  std::int64_t consumer_stall_ns = 0;  // blocked because the buffer was empty
};

/// Producer endpoint. send() blocks while the circular buffer is full —
/// that is the paper's flow-control mechanism, not an error condition.
class BorderSink {
 public:
  virtual ~BorderSink() = default;
  virtual void send(BorderChunk chunk) = 0;
  /// Signals that no further chunks will be sent.
  virtual void close() = 0;
  [[nodiscard]] virtual ChannelStats stats() const = 0;
};

/// Consumer endpoint. recv() blocks while the buffer is empty and returns
/// nullopt after the producer closed and all chunks were drained.
class BorderSource {
 public:
  virtual ~BorderSource() = default;
  [[nodiscard]] virtual std::optional<BorderChunk> recv() = 0;
  /// Signals that this consumer will receive no further chunks (it
  /// failed or finished early). A producer blocked on a full buffer —
  /// in-process queue or TCP acknowledgement window — gets an error
  /// instead of waiting forever. Safe to call from the consumer's
  /// thread while the producer's thread is mid-send.
  virtual void close() = 0;
  [[nodiscard]] virtual ChannelStats stats() const = 0;
};

/// A connected producer/consumer pair.
struct ChannelPair {
  std::unique_ptr<BorderSink> sink;
  std::unique_ptr<BorderSource> source;
};

/// Creates an in-process circular-buffer channel holding at most
/// `capacity_chunks` chunks. A metrics registry in `obs` gets the
/// comm.queue_depth gauge sampled on every send/recv (last-written
/// depth across channels).
[[nodiscard]] ChannelPair make_ring_channel(std::size_t capacity_chunks,
                                            const obs::Scope& obs = {});

/// Creates a loopback-TCP channel (socket pair over 127.0.0.1) whose
/// sender still enforces `capacity_chunks` of application-level buffering
/// (acknowledgement window), so the circular-buffer semantics match the
/// in-process channel.
///
/// `timeout_ms` > 0 bounds connection setup and every blocking read and
/// write on the sockets: a silent peer surfaces as TransientError after
/// that long instead of blocking the wavefront forever (the
/// --comm-timeout-ms knob). 0 keeps the historical block-forever
/// behaviour.
/// A metrics registry in `obs` gets the comm.tcp.ack_wait_ms histogram
/// (time spent blocked on the acknowledgement window).
[[nodiscard]] ChannelPair make_tcp_channel(std::size_t capacity_chunks,
                                           std::int64_t timeout_ms = 0,
                                           const obs::Scope& obs = {});

/// What a fault layer may do to one outgoing border chunk. Corruption
/// scrambles the chunk's sequence number — framing-level damage the
/// receiver's protocol checks detect deterministically.
struct ChunkFault {
  bool drop = false;
  bool corrupt = false;
  std::int64_t delay_ms = 0;
};

/// Decides the fate of the chunk with the given sequence number.
using ChunkFaultFn = std::function<ChunkFault(std::int64_t sequence)>;

/// Decorates `inner` with a fault layer consulted before every send —
/// the hook through which a vgpu::FaultInjector reaches the border
/// traffic. close() and stats() pass through untouched. With `obs`
/// attached, fired faults bump the fault.chunks_dropped / _corrupted /
/// _delayed counters and emit an instant trace event.
[[nodiscard]] std::unique_ptr<BorderSink> make_faulty_sink(
    std::unique_ptr<BorderSink> inner, ChunkFaultFn fault,
    const obs::Scope& obs = {});

}  // namespace mgpusw::comm
