// Border chunk: the unit of inter-device communication.
//
// Device d computes its slice's last column; the (H, E) values of that
// column, grouped in chunks of `rows` consecutive matrix rows (one block
// row per chunk by default), travel to device d+1 through a circular
// buffer. This mirrors the paper's design: the column border carries H
// and E because the horizontal-gap state E is what crosses a vertical
// partition boundary, together with H for the open-gap and diagonal
// terms.
#pragma once

#include <cstdint>
#include <vector>

#include "sw/scoring.hpp"

namespace mgpusw::comm {

struct BorderChunk {
  std::int64_t sequence_number = 0;  // consecutive from 0 per channel
  std::int64_t first_row = 0;        // global matrix row of h[0]
  std::int64_t corner_h = 0;         // H(first_row-1, boundary col)
  std::vector<sw::Score> h;          // H(first_row + k, boundary col)
  std::vector<sw::Score> e;          // E(first_row + k, boundary col)

  [[nodiscard]] std::int64_t rows() const {
    return static_cast<std::int64_t>(h.size());
  }

  /// Payload size on the wire (excluding framing).
  [[nodiscard]] std::int64_t payload_bytes() const {
    return static_cast<std::int64_t>(3 * sizeof(std::int64_t) +
                                     sizeof(std::int64_t) +
                                     h.size() * sizeof(sw::Score) +
                                     e.size() * sizeof(sw::Score));
  }

  bool operator==(const BorderChunk&) const = default;
};

/// Bytes one border cell occupies on the wire (H + E).
constexpr std::int64_t kBorderCellBytes = 2 * sizeof(sw::Score);

}  // namespace mgpusw::comm
