#include <atomic>
#include <memory>

#include "base/queue.hpp"
#include "comm/channel.hpp"
#include "obs/metrics.hpp"

namespace mgpusw::comm {

namespace {

/// Shared state of an in-process channel.
struct RingState {
  RingState(std::size_t capacity, const obs::Scope& obs) : queue(capacity) {
    if (obs.metrics != nullptr) {
      depth = &obs.metrics->gauge("comm.queue_depth");
    }
  }
  base::BoundedQueue<BorderChunk> queue;
  std::atomic<std::int64_t> chunks_sent{0};
  std::atomic<std::int64_t> bytes_sent{0};
  obs::Gauge* depth = nullptr;  // sampled after every push/pop

  void sample_depth() {
    if (depth != nullptr) {
      depth->set(static_cast<std::int64_t>(queue.size()));
    }
  }
};

class RingSink final : public BorderSink {
 public:
  explicit RingSink(std::shared_ptr<RingState> state)
      : state_(std::move(state)) {}

  void send(BorderChunk chunk) override {
    const std::int64_t bytes = chunk.payload_bytes();
    state_->queue.push(std::move(chunk));
    state_->chunks_sent.fetch_add(1, std::memory_order_relaxed);
    state_->bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    state_->sample_depth();
  }

  void close() override { state_->queue.close(); }

  [[nodiscard]] ChannelStats stats() const override {
    return ChannelStats{
        state_->chunks_sent.load(std::memory_order_relaxed),
        state_->bytes_sent.load(std::memory_order_relaxed),
        state_->queue.producer_stall_ns(),
        state_->queue.consumer_stall_ns(),
    };
  }

 private:
  std::shared_ptr<RingState> state_;
};

class RingSource final : public BorderSource {
 public:
  explicit RingSource(std::shared_ptr<RingState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] std::optional<BorderChunk> recv() override {
    std::optional<BorderChunk> chunk = state_->queue.pop();
    state_->sample_depth();
    return chunk;
  }

  void close() override { state_->queue.close(); }

  [[nodiscard]] ChannelStats stats() const override {
    return ChannelStats{
        state_->chunks_sent.load(std::memory_order_relaxed),
        state_->bytes_sent.load(std::memory_order_relaxed),
        state_->queue.producer_stall_ns(),
        state_->queue.consumer_stall_ns(),
    };
  }

 private:
  std::shared_ptr<RingState> state_;
};

}  // namespace

ChannelPair make_ring_channel(std::size_t capacity_chunks,
                              const obs::Scope& obs) {
  auto state = std::make_shared<RingState>(capacity_chunks, obs);
  ChannelPair pair;
  pair.sink = std::make_unique<RingSink>(state);
  pair.source = std::make_unique<RingSource>(state);
  return pair;
}

}  // namespace mgpusw::comm
