// TCP socket layer: the low-level plumbing under both the border-chunk
// loopback transport (comm/tcp_channel) and the alignment service
// daemon (src/serve).
//
// Three pieces:
//   * free helpers (read_fd_all / write_fd_all / connect timeout /
//     socket timeouts) — the portable blocking-socket idioms, shared so
//     the transports cannot drift apart in their EINTR/EPIPE handling;
//   * TcpStream      — a connected socket with length-prefixed frame
//     send/recv (u32 length + payload) and a hard frame-size cap;
//   * TcpListener    — a daemon-lifetime accept loop: SO_REUSEADDR so a
//     restart-after-crash rebinds immediately, accept() retried on
//     EINTR/ECONNABORTED, EMFILE/ENFILE survived with backoff instead
//     of throwing out of the loop, thread-safe close() to wake a
//     blocked accept.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mgpusw::comm {

/// Writes all `size` bytes to `fd` (a socket), retrying EINTR. EPIPE
/// (dead peer) surfaces as IoError; a send timeout (SO_SNDTIMEO) as
/// TransientError. Uses send() with MSG_NOSIGNAL so a dead peer cannot
/// kill the process with SIGPIPE.
void write_fd_all(int fd, const void* data, std::size_t size);

/// Reads exactly `size` bytes, retrying EINTR. EOF mid-read is IoError;
/// a receive timeout (SO_RCVTIMEO) is TransientError.
void read_fd_all(int fd, void* data, std::size_t size);

/// Applies `timeout_ms` to every blocking read/write on `fd` (0 = none).
void set_socket_timeouts(int fd, std::int64_t timeout_ms);

/// Largest frame recv_frame() accepts by default. A length prefix past
/// this is treated as protocol corruption (the stream position is
/// unrecoverable after it), not as a huge allocation request.
constexpr std::size_t kMaxFrameBytes = 64u << 20;  // 64 MiB

/// A connected TCP socket with length-prefixed framing. Move-only;
/// closes its descriptor on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  /// Adopts a connected descriptor (from TcpListener::accept or a
  /// socketpair in tests).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;
  TcpStream(TcpStream&& other) noexcept { *this = std::move(other); }
  TcpStream& operator=(TcpStream&& other) noexcept;

  /// Connects to host:port (dotted-quad or "localhost"), bounded by
  /// `timeout_ms` (0 = block). TCP_NODELAY is set; `timeout_ms` also
  /// becomes the socket's read/write timeout. Throws IoError /
  /// TransientError (timeout).
  [[nodiscard]] static TcpStream connect(const std::string& host,
                                         std::uint16_t port,
                                         std::int64_t timeout_ms = 0);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Sends one frame: u32 length prefix + payload bytes.
  void send_frame(const std::vector<std::uint8_t>& payload);

  /// Receives one frame. Returns nullopt on clean EOF at a frame
  /// boundary (peer closed). Throws ProtocolError when the length
  /// prefix exceeds `max_bytes` — the stream is unusable after that —
  /// and IoError/TransientError on the usual socket failures.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> recv_frame(
      std::size_t max_bytes = kMaxFrameBytes);

  /// Raw escape hatches for protocol sniffing (the server's GET
  /// detection) and tests.
  void write_all(const void* data, std::size_t size);
  void read_all(void* data, std::size_t size);
  /// One read() of at most `size` bytes; 0 = EOF.
  [[nodiscard]] std::size_t read_some(void* data, std::size_t size);

  /// Half-close both directions (wakes a peer blocked on this socket).
  void shutdown();
  void close();

  /// Relinquishes ownership of the descriptor (caller must close it).
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// A listening socket for daemon use. Thread-safe close(): another
/// thread closing the listener wakes a blocked accept(), which then
/// returns nullopt instead of throwing.
class TcpListener {
 public:
  /// Binds 127.0.0.1:port (0 = ephemeral; see port()) with SO_REUSEADDR
  /// and starts listening. Throws IoError on bind/listen failure.
  explicit TcpListener(std::uint16_t port, int backlog = 64);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks for the next connection. Transient accept failures never
  /// escape: EINTR and ECONNABORTED retry immediately, EMFILE/ENFILE
  /// (fd exhaustion) log and back off (10 ms doubling to 1 s) until a
  /// descriptor frees up. Returns nullopt once close() was called.
  /// Accepted sockets have TCP_NODELAY set.
  [[nodiscard]] std::optional<TcpStream> accept();

  /// Stops the listener and wakes any blocked accept(). Idempotent.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace mgpusw::comm
