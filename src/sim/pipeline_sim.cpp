#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <utility>

#include "base/error.hpp"
#include "comm/serialize.hpp"

namespace mgpusw::sim {

namespace {

/// Per-device simulation state: a linear timeline of block rows, matching
/// the engine's fine-grain (row-major) schedule. The device computes its
/// slice one block row at a time; finishing row i makes border chunk i
/// available to the right-hand neighbour.
struct DeviceTimeline {
  vgpu::DeviceSpec spec;
  core::ColumnRange slice;
  std::int64_t nbr = 0;  // block rows
  std::int64_t nbc = 0;  // block columns in the slice
  int dispatch = 1;

  std::int64_t next_row = 0;
  std::vector<base::SimTime> row_start;
  std::vector<base::SimTime> row_finish;
  std::vector<base::SimTime> send_complete;  // per chunk (block row)

  bool finished = false;
  SimDeviceStats stats;
};

/// Virtual duration of one block row of the slice. A slice narrower than
/// the device's dispatch width cannot saturate its SMs, stretching the
/// row (wavefront ramp never completes for narrow slices).
base::SimTime row_duration(const DeviceTimeline& device,
                           std::int64_t cells) {
  const base::SimTime busy = base::cells_to_ns(cells, device.spec.sw_gcups);
  if (device.nbc >= device.dispatch) return busy;
  return busy * device.dispatch / std::max<std::int64_t>(1, device.nbc);
}

/// Host-mediated chunk transfer: D2H on the producer + H2D on the
/// consumer, overlapped with compute by the host threads.
base::SimTime transfer_ns(const vgpu::DeviceSpec& up,
                          const vgpu::DeviceSpec& down,
                          std::int64_t chunk_rows) {
  const auto bytes =
      static_cast<std::int64_t>(comm::frame_bytes(chunk_rows));
  const auto lat_up =
      static_cast<base::SimTime>(up.pcie_latency_us * 1000.0);
  const auto lat_down =
      static_cast<base::SimTime>(down.pcie_latency_us * 1000.0);
  return lat_up + base::bytes_to_ns(bytes, up.pcie_gbytes_per_s) +
         lat_down + base::bytes_to_ns(bytes, down.pcie_gbytes_per_s);
}

/// Diagonal-barrier variant: the device timeline advances one external
/// block diagonal at a time; chunk i completes with diagonal i + nbc - 1.
struct DiagTimeline {
  vgpu::DeviceSpec spec;
  core::ColumnRange slice;
  std::int64_t nbr = 0;
  std::int64_t nbc = 0;
  std::int64_t diags = 0;
  int dispatch = 1;

  std::int64_t next_diag = 0;
  std::vector<base::SimTime> diag_start;
  std::vector<base::SimTime> diag_finish;
  std::vector<base::SimTime> send_complete;  // per chunk

  bool finished = false;
  SimDeviceStats stats;
};

std::pair<std::int64_t, std::int64_t> diag_cells_and_blocks(
    const DiagTimeline& device, std::int64_t k,
    const core::AlignmentPlan& plan) {
  const std::int64_t i_lo = std::max<std::int64_t>(0, k - (device.nbc - 1));
  const std::int64_t i_hi = std::min<std::int64_t>(device.nbr - 1, k);
  std::int64_t cells = 0;
  for (std::int64_t i = i_lo; i <= i_hi; ++i) {
    const std::int64_t j = k - i;
    const std::int64_t bh =
        std::min(plan.block_rows, plan.rows - i * plan.block_rows);
    const std::int64_t bw =
        std::min(plan.block_cols, device.slice.cols - j * plan.block_cols);
    cells += bh * bw;
  }
  return {cells, i_hi - i_lo + 1};
}

SimResult simulate_diagonal(const SimConfig& config,
                            const core::AlignmentPlan& plan) {
  const auto device_count = config.devices.size();
  const std::int64_t nbr = plan.block_row_count;
  std::vector<DiagTimeline> devices(device_count);
  for (std::size_t d = 0; d < device_count; ++d) {
    DiagTimeline& device = devices[d];
    device.spec = config.devices[d];
    device.slice = plan.devices[d].slice;
    device.nbr = nbr;
    device.nbc = plan.devices[d].block_columns;
    device.diags = device.nbr + device.nbc - 1;
    device.dispatch = config.dispatch_width > 0 ? config.dispatch_width
                                                : device.spec.sm_count;
    device.diag_start.assign(static_cast<std::size_t>(device.diags), 0);
    device.diag_finish.assign(static_cast<std::size_t>(device.diags), 0);
    device.send_complete.assign(static_cast<std::size_t>(nbr),
                                base::kSimTimeNever);
    device.stats.device_name = device.spec.name;
    device.stats.slice = device.slice;
  }

  bool progress = true;
  std::size_t done = 0;
  while (done < device_count) {
    MGPUSW_CHECK_MSG(progress, "diagonal simulation deadlocked");
    progress = false;
    for (std::size_t d = 0; d < device_count; ++d) {
      DiagTimeline& device = devices[d];
      while (device.next_diag < device.diags) {
        const std::int64_t k = device.next_diag;

        base::SimTime arrival = 0;
        if (d > 0 && k < nbr) {
          const DiagTimeline& up = devices[d - 1];
          const base::SimTime sent =
              up.send_complete[static_cast<std::size_t>(k)];
          if (sent == base::kSimTimeNever) break;
          const std::int64_t bh = std::min(
              plan.block_rows, plan.rows - k * plan.block_rows);
          arrival = sent + transfer_ns(up.spec, device.spec, bh);
        }

        base::SimTime send_release = 0;
        const std::int64_t pending_chunk = k - device.nbc;
        if (d + 1 < device_count && pending_chunk >= 0 &&
            pending_chunk < nbr) {
          const DiagTimeline& downstream = devices[d + 1];
          base::SimTime slot_free = 0;
          const std::int64_t slot_chunk =
              pending_chunk - plan.buffer_capacity;
          if (slot_chunk >= 0) {
            if (downstream.next_diag <= slot_chunk) break;
            slot_free =
                downstream.diag_start[static_cast<std::size_t>(slot_chunk)];
          }
          const base::SimTime sent = std::max(
              device.diag_finish[static_cast<std::size_t>(pending_chunk +
                                                          device.nbc - 1)],
              slot_free);
          device.send_complete[static_cast<std::size_t>(pending_chunk)] =
              sent;
          send_release = sent;
        }

        const base::SimTime prev_finish =
            k > 0 ? device.diag_finish[static_cast<std::size_t>(k - 1)] : 0;
        const base::SimTime after_send =
            std::max(prev_finish, send_release);
        device.stats.send_wait_ns += after_send - prev_finish;
        const base::SimTime start = std::max(after_send, arrival);
        device.stats.recv_wait_ns += start - after_send;

        const auto [cells, blocks] = diag_cells_and_blocks(device, k, plan);
        base::SimTime duration =
            base::cells_to_ns(cells, device.spec.sw_gcups);
        if (blocks < device.dispatch) {
          duration = duration * device.dispatch /
                     std::max<std::int64_t>(1, blocks);
        }
        device.diag_start[static_cast<std::size_t>(k)] = start;
        device.diag_finish[static_cast<std::size_t>(k)] = start + duration;
        device.stats.busy_ns += duration;
        device.stats.cells += cells;
        ++device.next_diag;
        progress = true;
      }
      if (device.next_diag == device.diags && !device.finished) {
        const base::SimTime tail =
            device.diag_finish[static_cast<std::size_t>(device.diags - 1)];
        if (d + 1 < device_count) {
          for (std::int64_t i = 0; i < nbr; ++i) {
            auto& sent = device.send_complete[static_cast<std::size_t>(i)];
            if (sent == base::kSimTimeNever) sent = tail;
          }
        }
        device.stats.start_ns = device.diag_start[0];
        device.stats.finish_ns = tail;
        device.finished = true;
        ++done;
        progress = true;
      }
    }
  }

  SimResult result;
  for (DiagTimeline& device : devices) {
    result.makespan_ns =
        std::max(result.makespan_ns, device.stats.finish_ns);
    result.total_cells += device.stats.cells;
    result.devices.push_back(device.stats);
  }
  return result;
}

/// Maps the simulator's schedule knob onto the planner's.
core::Schedule plan_schedule(SimSchedule schedule) {
  return schedule == SimSchedule::kDiagonalBarrier
             ? core::Schedule::kDiagonal
             : core::Schedule::kRowMajor;
}

}  // namespace

std::int64_t find_crossover_length(SimConfig config, double margin,
                                   std::int64_t max_length) {
  MGPUSW_REQUIRE(margin > 0.0, "margin must be positive");
  MGPUSW_REQUIRE(!config.devices.empty(), "need at least one device");

  SimConfig solo = config;
  solo.devices = {config.devices.front()};
  for (const vgpu::DeviceSpec& spec : config.devices) {
    if (spec.sw_gcups > solo.devices[0].sw_gcups) solo.devices[0] = spec;
  }
  solo.weights.clear();

  auto beats = [&](std::int64_t length) {
    config.rows = config.cols = length;
    solo.rows = solo.cols = length;
    // The matrix must be wide enough to give every device a block column.
    const std::int64_t min_cols =
        config.block_cols * static_cast<std::int64_t>(config.devices.size());
    if (length < min_cols) return false;
    const double multi = simulate_pipeline(config).gcups();
    const double single = simulate_pipeline(solo).gcups();
    return multi >= single * margin;
  };

  std::int64_t hi = config.block_cols *
                    static_cast<std::int64_t>(config.devices.size());
  while (hi <= max_length && !beats(hi)) hi *= 2;
  if (hi > max_length) return -1;
  std::int64_t lo = hi / 2;
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (beats(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double aggregate_gcups(const std::vector<vgpu::DeviceSpec>& devices) {
  double total = 0.0;
  for (const vgpu::DeviceSpec& spec : devices) total += spec.sw_gcups;
  return total;
}

SimResult simulate_pipeline(const SimConfig& config,
                            const core::AlignmentPlan& plan) {
  MGPUSW_REQUIRE(!config.devices.empty(), "need at least one device");
  MGPUSW_REQUIRE(plan.device_count() == config.devices.size(),
                 "plan has " << plan.device_count() << " slices for "
                             << config.devices.size() << " devices");
  for (const vgpu::DeviceSpec& spec : config.devices) {
    MGPUSW_REQUIRE(spec.sw_gcups > 0, spec.name << " has non-positive rate");
  }

  if (plan.schedule == core::Schedule::kDiagonal) {
    SimResult result = simulate_diagonal(config, plan);
    MGPUSW_CHECK(result.total_cells == plan.rows * plan.cols);
    return result;
  }

  const auto device_count = config.devices.size();
  const std::int64_t nbr = plan.block_row_count;

  std::vector<DeviceTimeline> devices(device_count);
  for (std::size_t d = 0; d < device_count; ++d) {
    DeviceTimeline& device = devices[d];
    device.spec = config.devices[d];
    device.slice = plan.devices[d].slice;
    device.nbr = nbr;
    device.nbc = plan.devices[d].block_columns;
    device.dispatch = config.dispatch_width > 0 ? config.dispatch_width
                                                : device.spec.sm_count;
    device.row_start.assign(static_cast<std::size_t>(nbr), 0);
    device.row_finish.assign(static_cast<std::size_t>(nbr), 0);
    device.send_complete.assign(static_cast<std::size_t>(nbr),
                                base::kSimTimeNever);
    device.stats.device_name = device.spec.name;
    device.stats.slice = device.slice;
  }

  // Round-robin relaxation: advance each device while its dependencies
  // are resolved. Dependencies: own previous row; upstream chunk i
  // (available at upstream's send_complete[i] + transfer); and the
  // circular buffer slot for the previous row's send (free when the
  // consumer pops chunk i - capacity, i.e. starts its row i - capacity).
  // With capacity >= 1 this graph is acyclic, so progress is guaranteed.
  bool progress = true;
  std::size_t done = 0;
  while (done < device_count) {
    MGPUSW_CHECK_MSG(progress, "pipeline simulation deadlocked");
    progress = false;
    for (std::size_t d = 0; d < device_count; ++d) {
      DeviceTimeline& device = devices[d];
      while (device.next_row < nbr) {
        const std::int64_t i = device.next_row;
        const std::int64_t bh =
            std::min(plan.block_rows, plan.rows - i * plan.block_rows);

        // Incoming chunk i from the left-hand neighbour.
        base::SimTime arrival = 0;
        if (d > 0) {
          const DeviceTimeline& up = devices[d - 1];
          const base::SimTime sent =
              up.send_complete[static_cast<std::size_t>(i)];
          if (sent == base::kSimTimeNever) break;  // upstream not there yet
          arrival = sent + transfer_ns(up.spec, device.spec, bh);
        }

        // The send of chunk i-1 must complete (possibly waiting for a
        // buffer slot) before the device proceeds to row i.
        base::SimTime send_release = 0;
        if (d + 1 < device_count && i > 0) {
          const std::int64_t chunk = i - 1;
          const DeviceTimeline& downstream = devices[d + 1];
          base::SimTime slot_free = 0;
          const std::int64_t slot_chunk = chunk - plan.buffer_capacity;
          if (slot_chunk >= 0) {
            if (downstream.next_row <= slot_chunk) break;  // not yet known
            slot_free =
                downstream.row_start[static_cast<std::size_t>(slot_chunk)];
          }
          const base::SimTime sent = std::max(
              device.row_finish[static_cast<std::size_t>(chunk)], slot_free);
          device.send_complete[static_cast<std::size_t>(chunk)] = sent;
          send_release = sent;
        }

        const base::SimTime prev_finish =
            i > 0 ? device.row_finish[static_cast<std::size_t>(i - 1)] : 0;
        const base::SimTime after_send =
            std::max(prev_finish, send_release);
        device.stats.send_wait_ns += after_send - prev_finish;
        const base::SimTime start = std::max(after_send, arrival);
        device.stats.recv_wait_ns += start - after_send;

        const std::int64_t cells = bh * device.slice.cols;
        const base::SimTime duration = row_duration(device, cells);
        device.row_start[static_cast<std::size_t>(i)] = start;
        device.row_finish[static_cast<std::size_t>(i)] = start + duration;
        device.stats.busy_ns += duration;
        device.stats.cells += cells;
        ++device.next_row;
        progress = true;
      }
      if (device.next_row == nbr && !device.finished) {
        // The final chunk ships right after the last row (the buffer has
        // room: the consumer drains strictly in order behind us).
        const base::SimTime tail =
            device.row_finish[static_cast<std::size_t>(nbr - 1)];
        if (d + 1 < device_count) {
          device.send_complete[static_cast<std::size_t>(nbr - 1)] =
              std::max(device.send_complete[static_cast<std::size_t>(nbr - 1)] ==
                               base::kSimTimeNever
                           ? 0
                           : device.send_complete[static_cast<std::size_t>(
                                 nbr - 1)],
                       tail);
        }
        device.stats.start_ns = device.row_start[0];
        device.stats.finish_ns = tail;
        device.finished = true;
        ++done;
        progress = true;
      }
    }
  }

  SimResult result;
  for (DeviceTimeline& device : devices) {
    result.makespan_ns =
        std::max(result.makespan_ns, device.stats.finish_ns);
    result.total_cells += device.stats.cells;
    result.devices.push_back(device.stats);
  }
  MGPUSW_CHECK(result.total_cells == plan.rows * plan.cols);
  return result;
}

SimResult simulate_pipeline(const SimConfig& config) {
  MGPUSW_REQUIRE(!config.devices.empty(), "need at least one device");
  core::PlanRequest request;
  request.rows = config.rows;
  request.cols = config.cols;
  request.block_rows = config.block_rows;
  request.block_cols = config.block_cols;
  request.buffer_capacity = config.buffer_capacity;
  request.schedule = plan_schedule(config.schedule);
  request.weights = config.weights.empty()
                        ? core::profile_weights(config.devices)
                        : config.weights;
  MGPUSW_REQUIRE(request.weights.size() == config.devices.size(),
                 "one weight per device required");
  return simulate_pipeline(config, core::make_plan(request));
}

RebalanceSimResult simulate_rebalance(const SimConfig& config) {
  MGPUSW_REQUIRE(!config.devices.empty(), "need at least one device");
  MGPUSW_REQUIRE(config.schedule == SimSchedule::kRowMajor,
                 "simulate_rebalance models the row-major pipeline");
  MGPUSW_REQUIRE(config.checkpoint_interval > 0,
                 "checkpoint_interval must be positive");

  // What the simulated controller observes: in the model, the measured
  // rate of a device is exactly its true profile speed.
  std::vector<double> true_rates;
  true_rates.reserve(config.devices.size());
  for (const vgpu::DeviceSpec& spec : config.devices) {
    MGPUSW_REQUIRE(spec.sw_gcups > 0, spec.name << " has non-positive rate");
    true_rates.push_back(spec.sw_gcups);
  }

  RebalanceSimResult out;
  std::vector<double> weights = config.weights.empty()
                                    ? core::profile_weights(config.devices)
                                    : config.weights;
  MGPUSW_REQUIRE(weights.size() == config.devices.size(),
                 "one weight per device required");

  std::vector<SimDeviceStats> merged(config.devices.size());
  std::int64_t rows_left = config.rows;
  std::int64_t abs_block_row = 0;
  const std::int64_t check_rows =
      std::max<std::int64_t>(1, config.rebalance.check_every_rows);

  while (true) {
    SimConfig segment = config;
    segment.rows = rows_left;
    segment.weights = weights;

    core::PlanRequest request;
    request.rows = segment.rows;
    request.cols = segment.cols;
    request.block_rows = segment.block_rows;
    request.block_cols = segment.block_cols;
    request.buffer_capacity = segment.buffer_capacity;
    request.schedule = core::Schedule::kRowMajor;
    request.weights = weights;
    const core::AlignmentPlan plan = core::make_plan(request);

    // The shares the controller judges are the block columns the plan
    // actually allocated (mirrors run_with_recovery).
    std::vector<double> shares;
    shares.reserve(plan.devices.size());
    for (const core::SlicePlan& slice : plan.devices) {
      shares.push_back(static_cast<double>(slice.block_columns));
    }
    const double imbalance =
        config.devices.size() < 2
            ? 0.0
            : core::split_imbalance(core::normalize_weights(shares),
                                    core::normalize_weights(true_rates));

    const bool resplit = config.rebalance.enabled &&
                         out.resplits < config.rebalance.max_resplits &&
                         imbalance > config.rebalance.min_imbalance &&
                         check_rows < plan.block_row_count;
    out.steps.push_back(RebalanceSimStep{abs_block_row, imbalance, weights});

    if (!resplit) {
      // Run the rest of the matrix on the current split.
      const SimResult tail = simulate_pipeline(segment, plan);
      out.result.makespan_ns += tail.makespan_ns;
      for (std::size_t d = 0; d < merged.size(); ++d) {
        merged[d].device_name = tail.devices[d].device_name;
        merged[d].slice = tail.devices[d].slice;
        merged[d].cells += tail.devices[d].cells;
        merged[d].busy_ns += tail.devices[d].busy_ns;
        merged[d].recv_wait_ns += tail.devices[d].recv_wait_ns;
        merged[d].send_wait_ns += tail.devices[d].send_wait_ns;
        merged[d].finish_ns = out.result.makespan_ns;
      }
      break;
    }

    // The controller fires once every device has finished check_rows
    // block rows of the segment: simulate exactly those rows on the
    // mis-split plan and charge their full pipeline makespan.
    SimConfig head = segment;
    head.rows = check_rows * segment.block_rows;
    const SimResult cost = simulate_pipeline(head);
    out.result.makespan_ns += cost.makespan_ns;
    for (std::size_t d = 0; d < merged.size(); ++d) {
      merged[d].cells += cost.devices[d].cells;
      merged[d].busy_ns += cost.devices[d].busy_ns;
      merged[d].recv_wait_ns += cost.devices[d].recv_wait_ns;
      merged[d].send_wait_ns += cost.devices[d].send_wait_ns;
    }

    // The restart resumes from the newest checkpoint at or below the
    // stop row; the rows in between were computed in vain and run again
    // under the new split (they stay inside rows_left).
    const std::int64_t checkpoint_rows =
        (check_rows / config.checkpoint_interval) *
        config.checkpoint_interval;
    out.wasted_cells +=
        (check_rows - checkpoint_rows) * segment.block_rows * config.cols;
    abs_block_row += checkpoint_rows;
    rows_left -= checkpoint_rows * segment.block_rows;
    weights = core::normalize_weights(true_rates);
    // checkpoint_rows can be 0 (no checkpoint before the decision row):
    // the restart then redoes the whole segment, and the loop still
    // terminates because resplits is capped by the policy.
    ++out.resplits;
  }

  out.result.total_cells = config.rows * config.cols;
  out.result.devices = std::move(merged);
  return out;
}

}  // namespace mgpusw::sim
