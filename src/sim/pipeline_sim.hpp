// Discrete-event performance model of the multi-device pipeline.
//
// Why this exists: the host running this reproduction has no GPUs (and a
// single CPU core), so wall-clock runs cannot exhibit the paper's multi-
// GPU scaling. This simulator executes the *same schedule* as the real
// engine's default fine-grain (row-major) mode — block rows in sequence
// per device, border chunks pushed through a capacity-bounded circular
// buffer, blocking sends on a full buffer, blocking receives on an empty
// one — but advances virtual time from device rate profiles instead of
// running kernels. The real engine (src/core) validates that the schedule
// computes correct scores; this model regenerates the paper-scale GCUPS
// numbers and their shapes (scaling curves, buffer-size sensitivity,
// split-balance sensitivity).
//
// Timing model per device d:
//   * one block row of the slice (cells = block_rows x slice width)
//     takes cells / rate_d, stretched by max(1, dispatch_d / nbc) when
//     the slice is too narrow to saturate the device's SMs;
//   * finishing row i makes border chunk i available; the device blocks
//     before row i+1 until the consumer has popped chunk
//     i - buffer_capacity (circular-buffer back-pressure);
//   * chunk transfer takes lat_up + bytes/bw_up + lat_down + bytes/bw_down
//     of virtual time and overlaps device compute (the paper's host
//     threads do the copies);
//   * row i of device d > 0 cannot start before chunk i arrived.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/time.hpp"
#include "core/plan.hpp"
#include "core/rebalance.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw::sim {

/// Which engine schedule the model mimics (see core::Schedule).
enum class SimSchedule {
  /// Fine-grain row-major pipeline: chunk i ships when block row i is
  /// done; the cross-device lag is one block row.
  kRowMajor,
  /// External-diagonal barriers: chunk i only completes with diagonal
  /// i + nbc - 1, so a device's final rows serialize behind its
  /// upstream neighbour's entire slice. Modeled to quantify, at paper
  /// scale, why the paper's fine-grain design matters (experiment R-A2).
  kDiagonalBarrier,
};

struct SimConfig {
  std::int64_t rows = 0;  // query length (cells)
  std::int64_t cols = 0;  // subject length (cells)
  std::int64_t block_rows = 512;
  std::int64_t block_cols = 512;
  std::int64_t buffer_capacity = 16;  // circular buffer size, chunks
  std::vector<vgpu::DeviceSpec> devices;
  /// Slice weights; empty = core::profile_weights (proportional to
  /// DeviceSpec::sw_gcups). The actual partition comes from
  /// core::make_plan — the same code path the real engine plans with.
  std::vector<double> weights;
  /// Blocks needed to saturate a device; 0 = its sm_count.
  int dispatch_width = 0;
  SimSchedule schedule = SimSchedule::kRowMajor;

  /// Dynamic rebalancing model (simulate_rebalance): the simulated
  /// controller measures the true rates (DeviceSpec::sw_gcups) against
  /// the planned shares and re-splits per this policy. Mis-calibration
  /// is expressed by `weights` diverging from the sw_gcups proportions.
  core::RebalancePolicy rebalance;
  /// Block rows between restartable checkpoints (recovery's
  /// checkpoint_interval): a simulated re-split resumes from the newest
  /// checkpoint at or below the decision row, recomputing the rows in
  /// between.
  std::int64_t checkpoint_interval = 4;
};

struct SimDeviceStats {
  std::string device_name;
  core::ColumnRange slice;
  std::int64_t cells = 0;
  base::SimTime busy_ns = 0;
  base::SimTime recv_wait_ns = 0;  // waiting for upstream chunks
  base::SimTime send_wait_ns = 0;  // blocked on a full circular buffer
  base::SimTime start_ns = 0;      // when this device began computing
  base::SimTime finish_ns = 0;     // when this device completed its slice
};

struct SimResult {
  base::SimTime makespan_ns = 0;
  std::int64_t total_cells = 0;
  std::vector<SimDeviceStats> devices;

  [[nodiscard]] double gcups() const {
    // Equivalent to base::gcups(total_cells, seconds()) but computed in
    // nanoseconds directly, keeping simulated figures bit-deterministic.
    if (makespan_ns <= 0) return 0.0;
    return static_cast<double>(total_cells) /
           static_cast<double>(makespan_ns);
  }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(makespan_ns) * 1e-9;
  }
};

/// Runs the model. Deterministic; O(total block diagonals) time.
/// Geometry and slices are derived through core::make_plan, so the
/// simulated schedule is exactly the one the real engine would execute.
[[nodiscard]] SimResult simulate_pipeline(const SimConfig& config);

/// One executed segment of a rebalanced simulation: the split it ran
/// with and the imbalance the simulated controller judged it at.
struct RebalanceSimStep {
  std::int64_t start_block_row = 0;  // absolute block row of the segment
  double imbalance = 0.0;            // split_imbalance at segment start
  std::vector<double> weights;       // weights the segment was planned with
};

/// Outcome of simulate_rebalance. `result.makespan_ns` sums the
/// segments; `result.total_cells` is the matrix size (recomputed
/// checkpoint-to-stop rows are overhead inside the makespan, tracked in
/// `wasted_cells`), so gcups() is directly comparable to a static run's.
struct RebalanceSimResult {
  SimResult result;
  int resplits = 0;
  std::vector<RebalanceSimStep> steps;  // one per executed segment
  std::int64_t wasted_cells = 0;  // recomputed after re-split restarts

  [[nodiscard]] double gcups() const { return result.gcups(); }
};

/// Models the feedback-driven rebalancer (core/rebalance.hpp +
/// run_with_recovery) on top of the pipeline model: run check_every_rows
/// block rows on the planned split, observe the true rates, and when the
/// imbalance beats the policy threshold, restart from the newest
/// checkpoint with rate-proportional weights — exactly the decision
/// sequence the real controller drives, with virtual time. Row-major
/// schedule only (the fine-grain pipeline is what rebalancing targets).
[[nodiscard]] RebalanceSimResult simulate_rebalance(
    const SimConfig& config);

/// Runs the model against a caller-supplied plan (e.g. the exact plan a
/// MultiDeviceEngine reports via plan()). The plan's geometry overrides
/// the config's; config still supplies the device rate profiles. The
/// plan must have one slice per config device.
[[nodiscard]] SimResult simulate_pipeline(const SimConfig& config,
                                          const core::AlignmentPlan& plan);

/// Aggregate profile speed of an environment (sum of sw_gcups) — the
/// upper bound the pipeline approaches for large matrices.
[[nodiscard]] double aggregate_gcups(
    const std::vector<vgpu::DeviceSpec>& devices);

/// Smallest (square) sequence length at which the multi-device
/// environment beats the single fastest device of that environment by
/// `margin` (e.g. 1.0 = break-even, 1.5 = 50% faster), found by doubling
/// then bisection over `config.rows == config.cols`. Returns -1 when the
/// environment never reaches the margin below `max_length`. The paper's
/// motivation in one number: short sequences cannot amortise the
/// pipeline fill and slice narrowing of a deep device chain.
[[nodiscard]] std::int64_t find_crossover_length(SimConfig config,
                                                 double margin = 1.0,
                                                 std::int64_t max_length =
                                                     1LL << 28);

}  // namespace mgpusw::sim
