// Umbrella header: the public API of mgpu-sw.
//
// Typical usage (see examples/quickstart.cpp):
//
//   #include "mgpusw.hpp"
//   using namespace mgpusw;
//
//   auto pair = seq::make_homolog_pair(seq::scaled_pair(
//       seq::paper_chromosome_pairs()[2], 256), /*seed=*/1);
//
//   vgpu::Device fast(vgpu::gtx_580());
//   vgpu::Device slow(vgpu::gtx_560_ti(), {.slowdown = 1.5});
//
//   core::EngineConfig config;
//   core::MultiDeviceEngine engine(config, {&fast, &slow});
//   core::EngineResult result = engine.run(pair.query, pair.subject);
//   // result.best.score, result.gcups(), result.devices[i]...
#pragma once

#include "base/error.hpp"     // IWYU pragma: export
#include "base/flags.hpp"     // IWYU pragma: export
#include "base/format.hpp"    // IWYU pragma: export
#include "base/log.hpp"       // IWYU pragma: export
#include "base/rng.hpp"       // IWYU pragma: export
#include "base/json.hpp"      // IWYU pragma: export
#include "base/time.hpp"      // IWYU pragma: export
#include "comm/channel.hpp"   // IWYU pragma: export
#include "core/balance.hpp"   // IWYU pragma: export
#include "core/batch.hpp"     // IWYU pragma: export
#include "core/engine.hpp"    // IWYU pragma: export
#include "core/fleet.hpp"     // IWYU pragma: export
#include "core/partition.hpp" // IWYU pragma: export
#include "core/pipeline.hpp"  // IWYU pragma: export
#include "core/plan.hpp"      // IWYU pragma: export
#include "core/recovery.hpp"  // IWYU pragma: export
#include "core/report.hpp"    // IWYU pragma: export
#include "core/slice_runner.hpp"  // IWYU pragma: export
#include "core/special_rows.hpp"  // IWYU pragma: export
#include "obs/metrics.hpp"    // IWYU pragma: export
#include "obs/obs.hpp"        // IWYU pragma: export
#include "obs/phase_profiler.hpp" // IWYU pragma: export
#include "obs/trace.hpp"      // IWYU pragma: export
#include "obs/trace_export.hpp"   // IWYU pragma: export
#include "seq/dotplot.hpp"    // IWYU pragma: export
#include "seq/fasta.hpp"      // IWYU pragma: export
#include "seq/sequence.hpp"   // IWYU pragma: export
#include "seq/stats.hpp"      // IWYU pragma: export
#include "seq/synth.hpp"      // IWYU pragma: export
#include "sim/pipeline_sim.hpp"   // IWYU pragma: export
#include "sw/alignment.hpp"   // IWYU pragma: export
#include "sw/banded.hpp"      // IWYU pragma: export
#include "sw/block_simd.hpp"  // IWYU pragma: export
#include "sw/kernel.hpp"      // IWYU pragma: export
#include "sw/linear.hpp"      // IWYU pragma: export
#include "sw/modes.hpp"       // IWYU pragma: export
#include "sw/myers_miller.hpp"    // IWYU pragma: export
#include "sw/reference.hpp"   // IWYU pragma: export
#include "vgpu/device.hpp"    // IWYU pragma: export
#include "vgpu/fault.hpp"     // IWYU pragma: export
#include "vgpu/spec.hpp"      // IWYU pragma: export
