// Low-precision saturating SIMD block kernels with overflow rerun.
//
// The 8x32-bit `simd` kernel wastes most of each vector register:
// megabase Smith-Waterman H values almost never need 32 bits *inside a
// block*. These kernels run the same skewed-wavefront traversal on
// narrower lanes — 16x int16 or 32x int8 per AVX2 register — with
// *saturating* arithmetic, and escalate to the next wider precision when
// a block's values might not have been exact (the standard trick of fast
// SW libraries: compute narrow, detect, rerun wide).
//
// The precision ladder (per block):
//
//   simd8  : int8 (32 lanes) -> int16 (16 lanes) -> int32 (8 lanes)
//   simd16 : int16 (16 lanes) -> int32 (8 lanes)
//   auto   : alias of the full ladder — "narrowest safe precision",
//            usable as a per-device DeviceSpec::kernel choice.
//
// Exactness argument (all results stay bit-identical to compute_block):
//  * Up-saturation can only happen to H (gains come only from `match`
//    on a diagonal step). Any saturated H equals the narrow type's max,
//    which is >= the watermark (max - match); conversely if every
//    observed H stays *below* the watermark, no addition ever
//    saturated, so every H/E/F value in the block is exact. The kernel
//    checks the per-strip running maxima against the watermark and
//    reports overflow — the wrapper then re-runs the untouched block at
//    the next precision (inputs are only converted, never overwritten,
//    until the narrow pass is known exact).
//  * Down-saturation only happens to neg-inf gap sentinels (border E/F
//    values below the narrow range are clamped on conversion). A clamped
//    chain can never win a max: the competing H-derived branch is
//    >= -gap_first (H >= 0 everywhere), while clamped values stay below
//    -(gap_first + gap_extend) by the scheme pre-check. Winners and
//    their values are therefore identical to the int32 computation.
//  * Blocks whose border H values or scoring parameters cannot be
//    represented narrowly fail a cheap O(rows+cols) pre-check and
//    escalate before any work is done.
//
// Best-cell tie-breaking is preserved exactly: strict '>' keeps the
// smallest column per lane (column offsets are tracked per segment so a
// narrow lane type can index megabase-wide blocks), segments and strips
// merge in traversal order, and the cross-row reduction walks lanes
// ascending — the same order compute_block resolves ties in.
#pragma once

#include "sw/block.hpp"
#include "sw/block_simd.hpp"

namespace mgpusw::sw {

/// int16 kernel: 16 lanes, escalates to the 8x32 simd kernel on
/// overflow. Drop-in alternative to compute_block (registry: "simd16").
BlockResult compute_block_i16(const ScoreScheme& scheme,
                              const BlockArgs& args);

/// int8 kernel: 32 lanes, escalates int8 -> int16 -> int32 (registry:
/// "simd8").
BlockResult compute_block_i8(const ScoreScheme& scheme,
                             const BlockArgs& args);

/// Narrowest-safe-precision ladder (registry: "auto"): identical to
/// compute_block_i8 today, named separately so device specs and
/// calibration can ask for "the narrowest precision that is safe for
/// this block" without naming a width.
BlockResult compute_block_auto(const ScoreScheme& scheme,
                               const BlockArgs& args);

// Pinned per-backend raw entry points (no cross-backend dispatch). Each
// computes the block at its width or sets *overflow and leaves every
// output array untouched. Used by the ladder wrappers and the pinned
// registry entries; callable only when the backend runs on this CPU.
namespace simd_avx2 {
BlockResult compute_block_i16_impl(const ScoreScheme&, const BlockArgs&,
                                   bool* overflow);
BlockResult compute_block_i8_impl(const ScoreScheme&, const BlockArgs&,
                                  bool* overflow);
}  // namespace simd_avx2
namespace simd_sse42 {
BlockResult compute_block_i16_impl(const ScoreScheme&, const BlockArgs&,
                                   bool* overflow);
BlockResult compute_block_i8_impl(const ScoreScheme&, const BlockArgs&,
                                  bool* overflow);
}  // namespace simd_sse42
namespace simd_scalar {
BlockResult compute_block_i16_impl(const ScoreScheme&, const BlockArgs&,
                                   bool* overflow);
BlockResult compute_block_i8_impl(const ScoreScheme&, const BlockArgs&,
                                  bool* overflow);
}  // namespace simd_scalar

// Pinned ladder entries for the kernel registry ("simd16-avx2", ...):
// the narrow pass and every escalation stay on the named backend, so
// ablation runs compare ISAs and not dispatch policies.
namespace simd_avx2 {
BlockResult compute_block_i16_pinned(const ScoreScheme&, const BlockArgs&);
BlockResult compute_block_i8_pinned(const ScoreScheme&, const BlockArgs&);
}  // namespace simd_avx2
namespace simd_sse42 {
BlockResult compute_block_i16_pinned(const ScoreScheme&, const BlockArgs&);
BlockResult compute_block_i8_pinned(const ScoreScheme&, const BlockArgs&);
}  // namespace simd_sse42
namespace simd_scalar {
BlockResult compute_block_i16_pinned(const ScoreScheme&, const BlockArgs&);
BlockResult compute_block_i8_pinned(const ScoreScheme&, const BlockArgs&);
}  // namespace simd_scalar

}  // namespace mgpusw::sw
