// Myers–Miller linear-space optimal alignment (extension: CUDAlign's
// later stages retrieve the full alignment after stage 1 finds the score;
// this module provides that retrieval at laptop scale).
//
// global_align computes an optimal *global* alignment (Needleman–Wunsch
// with affine gaps) in O(m+n) memory using the Myers–Miller divide and
// conquer. local_align composes the full stage pipeline:
//   stage 1  linear_score          -> optimal score + end cell
//   stage 2  find_alignment_start  -> start cell (reverse anchored scan)
//   stage 3  global_align          -> ops between start and end
#pragma once

#include "seq/sequence.hpp"
#include "sw/alignment.hpp"
#include "sw/scoring.hpp"

namespace mgpusw::sw {

/// Optimal global alignment of the full sequences in linear space.
[[nodiscard]] Alignment global_align(const ScoreScheme& scheme,
                                     const seq::Sequence& query,
                                     const seq::Sequence& subject);

/// Optimal local alignment retrieved through the three-stage pipeline.
/// Linear memory in the sequence lengths (quadratic time in the aligned
/// region, as in the paper's stage hierarchy).
[[nodiscard]] Alignment local_align(const ScoreScheme& scheme,
                                    const seq::Sequence& query,
                                    const seq::Sequence& subject);

}  // namespace mgpusw::sw
