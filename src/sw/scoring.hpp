// Scoring parameters and result types for Smith-Waterman with affine gaps
// (Gotoh recurrences).
//
// Conventions (identical across every implementation in this repo, which
// is what makes the block/multi-device decompositions testable):
//
//   s(a,b)   = match        if a == b, else mismatch (mismatch < 0)
//   E[i][j]  = max(E[i][j-1] - gap_extend, H[i][j-1] - gap_first)
//   F[i][j]  = max(F[i-1][j] - gap_extend, H[i-1][j] - gap_first)
//   H[i][j]  = max(0, H[i-1][j-1] + s(a_i,b_j), E[i][j], F[i][j])
//
// where gap_first = gap_open + gap_extend is the cost of the first gap
// character (CUDAlign's convention: first gap -5, each extension -2 with
// the defaults below). The reported result is the maximum H over the
// whole matrix together with its coordinates; ties resolve to the
// smallest row, then the smallest column, so that every implementation
// (serial, blocked, multi-device, pruned) reports the identical cell.
#pragma once

#include <cstdint>
#include <limits>

#include "base/error.hpp"
#include "seq/alphabet.hpp"

namespace mgpusw::sw {

using Score = std::int32_t;

/// Sentinel for "no gap can be open here". Half of INT32_MIN so that one
/// subtraction of a gap penalty cannot wrap around.
constexpr Score kNegInf = std::numeric_limits<Score>::min() / 2;

struct ScoreScheme {
  Score match = 1;
  Score mismatch = -3;
  Score gap_open = 3;    // extra cost of opening (positive magnitude)
  Score gap_extend = 2;  // cost per gap character (positive magnitude)

  /// Cost of the first character of a gap.
  [[nodiscard]] constexpr Score gap_first() const {
    return gap_open + gap_extend;
  }

  [[nodiscard]] constexpr Score substitution(seq::Nt a, seq::Nt b) const {
    return a == b ? match : mismatch;
  }

  /// Throws InvalidArgument unless the scheme satisfies the assumptions
  /// the DP recurrences rely on (positive match, non-positive mismatch,
  /// positive gap penalties).
  void validate() const {
    MGPUSW_REQUIRE(match > 0, "match score must be positive");
    MGPUSW_REQUIRE(mismatch <= 0, "mismatch score must be non-positive");
    MGPUSW_REQUIRE(gap_open >= 0, "gap_open must be non-negative");
    MGPUSW_REQUIRE(gap_extend > 0, "gap_extend must be positive");
  }
};

/// Matrix coordinates of a DP cell, 0-based over the sequences: row r and
/// column c mean the cell where query[r] is aligned against subject[c].
struct CellPos {
  std::int64_t row = -1;
  std::int64_t col = -1;

  bool operator==(const CellPos&) const = default;
};

/// Stage-1 output: the optimal local alignment score and where it ends.
struct ScoreResult {
  Score score = 0;
  CellPos end;  // (-1,-1) when score == 0 (empty alignment)

  bool operator==(const ScoreResult&) const = default;
};

/// Tie-breaking reduction shared by all implementations: higher score
/// wins; on equal score the smaller row, then the smaller column wins.
[[nodiscard]] inline bool improves(const ScoreResult& candidate,
                                   const ScoreResult& best) {
  if (candidate.score != best.score) return candidate.score > best.score;
  if (candidate.score == 0) return false;
  if (candidate.end.row != best.end.row) {
    return candidate.end.row < best.end.row;
  }
  return candidate.end.col < best.end.col;
}

}  // namespace mgpusw::sw
