// Anti-diagonal block kernel.
//
// Functionally identical to sw::compute_block (same border contract, same
// result including tie-breaking), but sweeps the block along minor
// anti-diagonals — the traversal a CUDA kernel uses, where all cells of
// one anti-diagonal are data-independent and execute in lockstep across
// threads. On a CPU this order is usually slower than the row scan
// (strided access), which is itself an instructive measurement: it is the
// memory layout, not the dependency structure, that dictates the right
// traversal per architecture. The engine exposes both through
// EngineConfig::kernel; tests assert bit-identical results.
#pragma once

#include "sw/block.hpp"

namespace mgpusw::sw {

/// Drop-in alternative to compute_block with anti-diagonal traversal.
/// Uses thread-local scratch sized O(rows) — safe for concurrent calls
/// from different threads.
BlockResult compute_block_antidiag(const ScoreScheme& scheme,
                                   const BlockArgs& args);

}  // namespace mgpusw::sw
