// Banded Smith-Waterman score.
//
// Extension module: when the two sequences are known to be near-collinear
// homologs (the paper's use case), restricting the DP to a diagonal band
// of half-width `radius` around the main diagonal turns O(mn) work into
// O((m+n)·radius). The result is exact whenever the optimal alignment
// stays inside the band; callers widen the band until the score stops
// changing to certify optimality.
#pragma once

#include "seq/sequence.hpp"
#include "sw/scoring.hpp"

namespace mgpusw::sw {

/// Best local score restricted to cells with |row - col - offset| <=
/// radius. Cells outside the band are treated as unreachable.
[[nodiscard]] ScoreResult banded_score(const ScoreScheme& scheme,
                                       const seq::Sequence& query,
                                       const seq::Sequence& subject,
                                       std::int64_t radius,
                                       std::int64_t offset = 0);

/// Doubles the radius until the banded score is stable across one
/// doubling (a common certification heuristic) or the band covers the
/// whole matrix; returns the final result.
[[nodiscard]] ScoreResult adaptive_banded_score(const ScoreScheme& scheme,
                                                const seq::Sequence& query,
                                                const seq::Sequence& subject,
                                                std::int64_t initial_radius);

}  // namespace mgpusw::sw
