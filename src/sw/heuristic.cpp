#include "sw/heuristic.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/error.hpp"

namespace mgpusw::sw {

Extension ungapped_extend(const ScoreScheme& scheme,
                          const seq::Sequence& query,
                          const seq::Sequence& subject, std::int64_t qi,
                          std::int64_t sj, Score xdrop) {
  scheme.validate();
  MGPUSW_REQUIRE(qi >= 0 && qi < query.size(), "anchor row out of range");
  MGPUSW_REQUIRE(sj >= 0 && sj < subject.size(),
                 "anchor column out of range");
  MGPUSW_REQUIRE(xdrop > 0, "xdrop must be positive");

  // Right extension including the anchor pair itself.
  Score running = 0;
  Score best_right = 0;
  std::int64_t best_right_len = 0;  // pairs consumed right of the anchor
  for (std::int64_t k = 0;
       qi + k < query.size() && sj + k < subject.size(); ++k) {
    running += scheme.substitution(query.at(qi + k), subject.at(sj + k));
    if (running > best_right) {
      best_right = running;
      best_right_len = k + 1;
    }
    if (running <= best_right - xdrop) break;
  }

  // Left extension, excluding the anchor pair.
  running = 0;
  Score best_left = 0;
  std::int64_t best_left_len = 0;
  for (std::int64_t k = 1; qi - k >= 0 && sj - k >= 0; ++k) {
    running += scheme.substitution(query.at(qi - k), subject.at(sj - k));
    if (running > best_left) {
      best_left = running;
      best_left_len = k;
    }
    if (running <= best_left - xdrop) break;
  }

  Extension extension;
  extension.score = best_left + best_right;
  extension.query_begin = qi - best_left_len;
  extension.query_end = qi + best_right_len;
  extension.subject_begin = sj - best_left_len;
  extension.subject_end = sj + best_right_len;
  return extension;
}

Extension seed_and_extend(const ScoreScheme& scheme,
                          const seq::Sequence& query,
                          const seq::Sequence& subject,
                          const SeedExtendConfig& config) {
  scheme.validate();
  MGPUSW_REQUIRE(config.word >= 4 && config.word <= 31,
                 "word must be in [4, 31]");
  MGPUSW_REQUIRE(config.query_stride > 0, "query_stride must be positive");

  Extension best;
  if (query.size() < config.word || subject.size() < config.word) {
    return best;
  }
  const std::uint64_t mask = (1ULL << (2 * config.word)) - 1;

  // Index subject words.
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> index;
  std::uint64_t code = 0;
  for (std::int64_t j = 0; j < subject.size(); ++j) {
    code = ((code << 2) | static_cast<std::uint64_t>(subject.at(j))) & mask;
    if (j >= config.word - 1) {
      auto& positions = index[code];
      if (static_cast<std::int64_t>(positions.size()) <=
          config.max_word_hits) {
        positions.push_back(j - (config.word - 1));
      }
    }
  }

  // Probe query words; extend each fresh (diagonal-deduplicated) seed.
  std::unordered_set<std::int64_t> extended_diagonals;
  code = 0;
  for (std::int64_t i = 0; i < query.size(); ++i) {
    code = ((code << 2) | static_cast<std::uint64_t>(query.at(i))) & mask;
    if (i < config.word - 1) continue;
    const std::int64_t q_start = i - (config.word - 1);
    if (q_start % config.query_stride != 0) continue;
    const auto it = index.find(code);
    if (it == index.end()) continue;
    if (static_cast<std::int64_t>(it->second.size()) >
        config.max_word_hits) {
      continue;
    }
    for (const std::int64_t s_start : it->second) {
      const std::int64_t diagonal = q_start - s_start;
      if (!extended_diagonals.insert(diagonal).second) continue;
      const Extension extension = ungapped_extend(
          scheme, query, subject, q_start, s_start, config.xdrop);
      if (extension.score > best.score) best = extension;
    }
  }
  return best;
}

}  // namespace mgpusw::sw
