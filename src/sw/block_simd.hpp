// SIMD anti-diagonal block kernel with runtime ISA dispatch.
//
// compute_block_simd is bit-identical to sw::compute_block (same border
// contract, same best cell and tie-breaking, same border_max) but updates
// eight cells per step along the intra-block anti-diagonal using 8x32-bit
// integer lanes. The kernel source (block_simd_impl.hpp) is compiled
// three times against the sw/simd.hpp shim — AVX2, SSE4.2 and scalar
// translation units, each with its own -m flags — and a cpuid check picks
// the strongest backend the running CPU supports, so one portable binary
// never executes an instruction the host lacks.
//
// The MGPUSW_SIMD environment variable ("avx2", "sse4.2", "scalar")
// caps the dispatch below the detected level — useful for ablation runs
// and for exercising the fallback paths on capable hardware.
#pragma once

#include "sw/block.hpp"

namespace mgpusw::sw {

/// ISA levels the dispatcher distinguishes, weakest first.
enum class SimdIsa { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// Drop-in alternative to compute_block; dispatches on first use.
BlockResult compute_block_simd(const ScoreScheme& scheme,
                               const BlockArgs& args);

/// Highest ISA level the running CPU supports (cpuid-based; honours the
/// MGPUSW_SIMD cap). kScalar on non-x86 hosts.
[[nodiscard]] SimdIsa detected_simd_isa();

/// "avx2", "sse4.2" or "scalar".
[[nodiscard]] const char* simd_isa_name(SimdIsa isa);

/// Backend compute_block_simd actually dispatches to — the detected ISA
/// level further capped by what the backend TU was compiled with (on a
/// non-x86 build every backend degrades to "scalar").
[[nodiscard]] const char* active_simd_backend();

// Pinned per-backend entry points (used by the kernel registry to expose
// individually benchmarkable/parity-testable variants). Each is safe to
// call only when the matching backend's compiled code runs on this CPU —
// compute_block_simd_backend_safe reports that.
namespace simd_avx2 {
BlockResult compute_block_simd_impl(const ScoreScheme&, const BlockArgs&);
const char* backend_name();
}  // namespace simd_avx2
namespace simd_sse42 {
BlockResult compute_block_simd_impl(const ScoreScheme&, const BlockArgs&);
const char* backend_name();
}  // namespace simd_sse42
namespace simd_scalar {
BlockResult compute_block_simd_impl(const ScoreScheme&, const BlockArgs&);
const char* backend_name();
}  // namespace simd_scalar

/// True when the named pinned backend ("avx2", "sse4.2", "scalar") can
/// execute on the running CPU.
[[nodiscard]] bool simd_backend_runnable(SimdIsa backend);

}  // namespace mgpusw::sw
