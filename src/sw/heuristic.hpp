// Seed-and-extend heuristic alignment (BLAST-style).
//
// The paper's motivation: heuristic aligners are fast but may miss or
// truncate the optimal alignment; exact Smith-Waterman over the full
// matrix is what the multi-GPU engine makes affordable at megabase
// scale. This module implements the heuristic side of that comparison —
// exact-match word seeds (shared k-mers) extended greedily until the
// running score drops `xdrop` below the best seen — so the benches can
// measure exactly how much score the heuristic leaves on the table.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/sequence.hpp"
#include "sw/scoring.hpp"

namespace mgpusw::sw {

/// An ungapped extension around an anchor pair.
struct Extension {
  Score score = 0;
  std::int64_t query_begin = 0;
  std::int64_t query_end = 0;    // half-open
  std::int64_t subject_begin = 0;
  std::int64_t subject_end = 0;

  [[nodiscard]] std::int64_t length() const {
    return query_end - query_begin;
  }
};

/// Greedy ungapped X-drop extension through the anchor (qi, sj): extends
/// left and right along the diagonal while the running score stays
/// within `xdrop` of the best. Exact for gap-free alignments through the
/// anchor. Preconditions: 0 <= qi < |query|, 0 <= sj < |subject|.
[[nodiscard]] Extension ungapped_extend(const ScoreScheme& scheme,
                                        const seq::Sequence& query,
                                        const seq::Sequence& subject,
                                        std::int64_t qi, std::int64_t sj,
                                        Score xdrop = 20);

struct SeedExtendConfig {
  int word = 12;                 // seed word size (exact match)
  Score xdrop = 20;              // extension drop-off
  std::int64_t max_word_hits = 16;  // skip over-frequent words
  std::int64_t query_stride = 1;    // probe every n-th query word
};

/// Full heuristic pipeline: shared-word seeds, deduplicated per
/// diagonal, each extended ungapped; returns the best-scoring extension
/// (score 0 if no seed was found). Time roughly linear in the input —
/// the speed/accuracy trade the paper's exact engine competes against.
[[nodiscard]] Extension seed_and_extend(const ScoreScheme& scheme,
                                        const seq::Sequence& query,
                                        const seq::Sequence& subject,
                                        const SeedExtendConfig& config = {});

}  // namespace mgpusw::sw
