// SIMD block kernel — the implementation, instantiated once per backend.
//
// Included exactly once by each backend translation unit
// (block_simd_{avx2,sse42,scalar}.cpp) after defining MGPUSW_SIMD_NS; the
// TU's compile flags decide which sw/simd.hpp backend the code runs on.
//
// Traversal: horizontal strips of kSimdLanes (8) query rows, skewed so
// that at step t lane r holds cell (i0 + r, t - r) — all eight cells sit
// on one intra-block anti-diagonal, the only dependence-free direction of
// the Gotoh recurrences. Lane r's inputs are then:
//
//   left  (H, E)  = lane r   at step t-1  (same lane, previous step)
//   up    (H, F)  = lane r-1 at step t-1  (one-lane shift-in)
//   diag  (H)     = lane r-1 at step t-2  (one-lane shift-in)
//
// with lane 0 fed from the strip-above rolling row (row_h/row_f) and the
// j == 0 column fed from the block's left border. The strip's triangular
// fill (t < 8) and drain (t >= cols-1) run scalar on the same lane-state
// arrays; the rectangular steady state runs eight cells per iteration on
// the Vec8 shim. The subject character for lane r is subject[t - r] —
// a reversed window maintained with the same shift-in rotation — so the
// per-cell `match or mismatch` branch becomes cmpeq + blend against the
// per-strip query vector (the 2-bit query profile reduces to this exact
// lane-select for a 4-letter alphabet, no gather needed).
//
// Best-cell tracking and border_max fold into the loops: per-lane running
// row maxima use strict '>' (keeping the smallest column), the cross-row
// reduction walks lanes in ascending row order (keeping the smallest
// row), and the bottom-row maximum of the last strip is the last lane's
// row maximum — bit-identical to sw::compute_block, including ties.
//
// Geometry guard: blocks narrower/shorter than the lane count (plus row
// remainders < 8) delegate to compute_block, which is the parity oracle,
// so every geometry stays exact.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/error.hpp"
#include "sw/block.hpp"
#include "sw/simd.hpp"

namespace mgpusw::sw::MGPUSW_SIMD_NS {

namespace {

constexpr int kL = kSimdLanes;

/// One full 8-row strip: scalar fill, vector steady state, scalar drain.
/// rev_subject[k] == subject[cols-1-k], so the steady state's reversed
/// subject window (lane r wants subject[t-r]) is a plain vector load.
void process_strip(const ScoreScheme& scheme, const BlockArgs& args,
                   const Score* rev_subject, std::int64_t i0, Score* row_h,
                   Score* row_f, Score strip_diag0, bool last_strip,
                   ScoreResult& best, Score& border_max) {
  const std::int64_t cols = args.cols;
  const Score gap_first = scheme.gap_first();
  const Score gap_ext = scheme.gap_extend;
  const Score match = scheme.match;
  const Score mismatch = scheme.mismatch;

  // Left border and query codes captured before the drain overwrites the
  // (possibly aliased) left/right arrays.
  alignas(32) Score left_h_b[kL];
  alignas(32) Score left_e_b[kL];
  alignas(32) Score qcode[kL];
  for (int r = 0; r < kL; ++r) {
    left_h_b[r] = args.left_h[i0 + r];
    left_e_b[r] = args.left_e[i0 + r];
    qcode[r] = static_cast<Score>(args.query[i0 + r]);
  }

  // Rolling lane state: lane r holds its values from the previous step
  // (h/e/f_prev) and the step before (h_prev2). Zero-initialised so the
  // not-yet-active lanes never read indeterminate values.
  alignas(32) Score h_prev[kL] = {};
  alignas(32) Score h_prev2[kL] = {};
  alignas(32) Score e_prev[kL] = {};
  alignas(32) Score f_prev[kL] = {};
  alignas(32) Score best_h[kL];
  alignas(32) Score best_j[kL];
  for (int r = 0; r < kL; ++r) {
    best_h[r] = -1;  // strictly below any reachable H (H >= 0)
    best_j[r] = -1;
  }

  // One skewed step for lanes [r_lo, r_hi], scalar. Descending r keeps
  // the in-place lane rotation safe: lane r reads lane r-1's previous-
  // step values before lane r-1 overwrites them.
  const auto scalar_step = [&](std::int64_t t, int r_lo, int r_hi) {
    for (int r = r_hi; r >= r_lo; --r) {
      const std::int64_t j = t - r;
      const Score lh = j == 0 ? left_h_b[r] : h_prev[r];
      const Score le = j == 0 ? left_e_b[r] : e_prev[r];
      const Score uh = r == 0 ? row_h[j] : h_prev[r - 1];
      const Score uf = r == 0 ? row_f[j] : f_prev[r - 1];
      Score dg;
      if (r == 0) {
        dg = j == 0 ? strip_diag0 : row_h[j - 1];
      } else {
        dg = j == 0 ? left_h_b[r - 1] : h_prev2[r - 1];
      }

      const Score e = std::max<Score>(le - gap_ext, lh - gap_first);
      const Score f = std::max<Score>(uf - gap_ext, uh - gap_first);
      Score h = dg + (qcode[r] == static_cast<Score>(args.subject[j])
                          ? match
                          : mismatch);
      if (h < e) h = e;
      if (h < f) h = f;
      if (h < 0) h = 0;

      h_prev2[r] = h_prev[r];
      h_prev[r] = h;
      e_prev[r] = e;
      f_prev[r] = f;

      if (r == kL - 1) {  // strip bottom row -> rolling row arrays
        row_h[j] = h;
        row_f[j] = f;
      }
      if (j == cols - 1) {  // block right border
        args.right_h[i0 + r] = h;
        args.right_e[i0 + r] = e;
        border_max = std::max(border_max, h);
      }
      if (h > best_h[r]) {
        best_h[r] = h;
        best_j[r] = static_cast<Score>(j);
      }
    }
  };

  // --- fill: steps 0 .. kL-1, lane r activates at t == r -------------
  for (std::int64_t t = 0; t < kL; ++t) {
    scalar_step(t, 0, static_cast<int>(t));
  }

  // --- steady state: steps kL .. cols-2, all lanes interior ----------
  Vec8 vh_prev = v_load(h_prev);
  Vec8 vh_prev2 = v_load(h_prev2);
  Vec8 ve_prev = v_load(e_prev);
  Vec8 vf_prev = v_load(f_prev);
  Vec8 vbest_h = v_load(best_h);
  Vec8 vbest_j = v_load(best_j);
  const Vec8 vq = v_load(qcode);
  alignas(32) Score scratch[kL];
  for (int r = 0; r < kL; ++r) scratch[r] = kL - 1 - r;  // j at step kL-1
  Vec8 vj = v_load(scratch);
  // diag(t) equals up_h(t-1) — vh_prev(t-1) is vh_prev2(t) — so the
  // diagonal shift-in is carried from the previous iteration instead of
  // recomputed; only the seed needs an explicit shift.
  Vec8 vdiag_carry = v_shift_in(vh_prev2, row_h[kL - 1]);

  const Vec8 v_gap_ext = v_broadcast(gap_ext);
  const Vec8 v_gap_first = v_broadcast(gap_first);
  const Vec8 v_match = v_broadcast(match);
  const Vec8 v_mismatch = v_broadcast(mismatch);
  const Vec8 v_zero = v_broadcast(0);
  const Vec8 v_one = v_broadcast(1);

  for (std::int64_t t = kL; t <= cols - 2; ++t) {
    // Strip-above row values at column t / t-1; the lane-7 writes below
    // trail the lane-0 reads by kL-1 columns, so these are still the
    // previous strip's values.
    const Vec8 vup_h = v_shift_in(vh_prev, row_h[t]);
    const Vec8 vup_f = v_shift_in(vf_prev, row_f[t]);
    const Vec8 vdiag = vdiag_carry;
    const Vec8 ve =
        v_max(v_sub(ve_prev, v_gap_ext), v_sub(vh_prev, v_gap_first));
    const Vec8 vf =
        v_max(v_sub(vup_f, v_gap_ext), v_sub(vup_h, v_gap_first));
    const Vec8 vs = v_load(rev_subject + (cols - 1 - t));
    const Vec8 vsub = v_blend(v_mismatch, v_match, v_cmpeq(vq, vs));
    Vec8 vh = v_add(vdiag, vsub);
    vh = v_max(vh, ve);
    vh = v_max(vh, vf);
    vh = v_max(vh, v_zero);

    row_h[t - (kL - 1)] = v_extract_last(vh);
    row_f[t - (kL - 1)] = v_extract_last(vf);

    vj = v_add(vj, v_one);
    // Best tracking, narrow-kernel style: the compare reads the
    // pre-update running max, then the max itself is a plain max — one
    // uop against a blend's two on the shuffle-starved front end. Only
    // the column offset needs the mask blend.
    const Vec8 vgt = v_cmpgt(vh, vbest_h);
    vbest_h = v_max(vbest_h, vh);
    vbest_j = v_blend(vbest_j, vj, vgt);

    vh_prev2 = vh_prev;
    vh_prev = vh;
    ve_prev = ve;
    vf_prev = vf;
    vdiag_carry = vup_h;
  }

  v_store(h_prev, vh_prev);
  v_store(h_prev2, vh_prev2);
  v_store(e_prev, ve_prev);
  v_store(f_prev, vf_prev);
  v_store(best_h, vbest_h);
  v_store(best_j, vbest_j);

  // --- drain: steps cols-1 .. cols+kL-2, lane r retires at t-r==cols -
  for (std::int64_t t = cols - 1; t <= cols + kL - 2; ++t) {
    scalar_step(t, static_cast<int>(std::max<std::int64_t>(0, t - (cols - 1))),
                kL - 1);
  }

  // Cross-row reduction in ascending row order: strictly larger row
  // maxima only, so earlier rows win ties exactly as in compute_block.
  for (int r = 0; r < kL; ++r) {
    if (best_h[r] > best.score) {
      best.score = best_h[r];
      best.end = CellPos{args.global_row + i0 + r,
                         args.global_col + best_j[r]};
    }
  }
  if (last_strip) {
    // The block's bottom row is this strip's last lane; its running row
    // maximum is the bottom-row border maximum (H >= 0).
    border_max = std::max(border_max, best_h[kL - 1]);
  }
}

}  // namespace

BlockResult compute_block_simd_impl(const ScoreScheme& scheme,
                                    const BlockArgs& args) {
  MGPUSW_CHECK(args.rows > 0 && args.cols > 0);
  MGPUSW_CHECK(args.query != nullptr && args.subject != nullptr);
  MGPUSW_CHECK(args.top_h != nullptr && args.top_f != nullptr);
  MGPUSW_CHECK(args.left_h != nullptr && args.left_e != nullptr);
  MGPUSW_CHECK(args.bottom_h != nullptr && args.bottom_f != nullptr);
  MGPUSW_CHECK(args.right_h != nullptr && args.right_e != nullptr);

  // Blocks without a vectorisable steady state (and the pathological
  // > 2^30 case where a column index would not fit the int32 lane type)
  // delegate to the scalar row kernel — the parity oracle.
  if (args.rows < kL || args.cols < 2 * kL ||
      args.cols > (std::int64_t{1} << 30) ||
      args.rows > (std::int64_t{1} << 30)) {
    return compute_block(scheme, args);
  }

  // Seed the rolling row state from the top border (alias-safe: the
  // outputs may be the same arrays).
  if (args.bottom_h != args.top_h) {
    std::copy(args.top_h, args.top_h + args.cols, args.bottom_h);
  }
  if (args.bottom_f != args.top_f) {
    std::copy(args.top_f, args.top_f + args.cols, args.bottom_f);
  }
  Score* const row_h = args.bottom_h;
  Score* const row_f = args.bottom_f;

  // Subject codes reversed once per block (shared by every strip): turns
  // the steady state's per-step window rotation into one vector load.
  thread_local std::vector<Score> rev_subject;
  rev_subject.resize(static_cast<std::size_t>(args.cols));
  for (std::int64_t j = 0; j < args.cols; ++j) {
    rev_subject[static_cast<std::size_t>(args.cols - 1 - j)] =
        static_cast<Score>(args.subject[j]);
  }

  ScoreResult best;
  Score border_max = 0;

  // H(strip_first_row - 1, block left border): the corner for the first
  // strip, the saved original left-border value afterwards (captured
  // before the strip's drain overwrites the aliased left/right arrays).
  Score strip_diag0 = args.corner_h;

  std::int64_t i0 = 0;
  for (; i0 + kL <= args.rows; i0 += kL) {
    const Score next_strip_diag0 = args.left_h[i0 + kL - 1];
    process_strip(scheme, args, rev_subject.data(), i0, row_h, row_f,
                  strip_diag0, /*last_strip=*/i0 + kL == args.rows, best,
                  border_max);
    strip_diag0 = next_strip_diag0;
  }

  // Remainder rows (< kL): delegate the final short strip to the scalar
  // kernel on a sub-block whose top border is the current rolling row.
  if (i0 < args.rows) {
    BlockArgs sub = args;
    sub.query = args.query + i0;
    sub.rows = args.rows - i0;
    sub.global_row = args.global_row + i0;
    sub.top_h = row_h;
    sub.top_f = row_f;
    sub.bottom_h = row_h;
    sub.bottom_f = row_f;
    sub.left_h = args.left_h + i0;
    sub.left_e = args.left_e + i0;
    sub.right_h = args.right_h + i0;
    sub.right_e = args.right_e + i0;
    sub.corner_h = strip_diag0;
    const BlockResult tail = compute_block(scheme, sub);
    // Later rows never displace an equal earlier best (row-major ties).
    if (improves(tail.best, best)) best = tail.best;
    // tail.border_max covers the block's bottom row plus the remainder
    // rows' right-column values.
    border_max = std::max(border_max, tail.border_max);
  }

  BlockResult result;
  result.best = best;
  result.border_max = border_max;
  return result;
}

}  // namespace mgpusw::sw::MGPUSW_SIMD_NS
