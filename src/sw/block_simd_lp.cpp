// Runtime dispatcher + precision ladder for the low-precision kernels.
//
// Mirrors block_simd.cpp: pick the strongest backend whose compiled code
// the CPU can run (honouring the MGPUSW_SIMD cap via detected_simd_isa),
// then walk the precision ladder — run narrow, and when the narrow pass
// reports a possible saturation re-run the untouched block at the next
// wider precision, counting each escalation in
// BlockResult::overflow_reruns.
#include "sw/block_simd_lp.hpp"

#include "sw/block.hpp"

namespace mgpusw::sw {

namespace {

using LpFn = BlockResult (*)(const ScoreScheme&, const BlockArgs&, bool*);

struct LpDispatch {
  LpFn i16;
  LpFn i8;
};

LpDispatch resolve() {
  const SimdIsa isa = detected_simd_isa();
  if (isa >= SimdIsa::kAvx2 && simd_backend_runnable(SimdIsa::kAvx2)) {
    return {&simd_avx2::compute_block_i16_impl,
            &simd_avx2::compute_block_i8_impl};
  }
  if (isa >= SimdIsa::kSse42 && simd_backend_runnable(SimdIsa::kSse42)) {
    return {&simd_sse42::compute_block_i16_impl,
            &simd_sse42::compute_block_i8_impl};
  }
  return {&simd_scalar::compute_block_i16_impl,
          &simd_scalar::compute_block_i8_impl};
}

const LpDispatch& lp_dispatch() {
  static const LpDispatch d = resolve();
  return d;
}

}  // namespace

BlockResult compute_block_i16(const ScoreScheme& scheme,
                              const BlockArgs& args) {
  bool overflow = false;
  BlockResult result = lp_dispatch().i16(scheme, args, &overflow);
  if (!overflow) return result;
  result = compute_block_simd(scheme, args);
  result.overflow_reruns = 1;
  return result;
}

BlockResult compute_block_i8(const ScoreScheme& scheme,
                             const BlockArgs& args) {
  bool overflow = false;
  BlockResult result = lp_dispatch().i8(scheme, args, &overflow);
  if (!overflow) return result;
  overflow = false;
  result = lp_dispatch().i16(scheme, args, &overflow);
  if (!overflow) {
    result.overflow_reruns = 1;
    return result;
  }
  result = compute_block_simd(scheme, args);
  result.overflow_reruns = 2;
  return result;
}

BlockResult compute_block_auto(const ScoreScheme& scheme,
                               const BlockArgs& args) {
  return compute_block_i8(scheme, args);
}

}  // namespace mgpusw::sw
