// Alignment representation and scoring utilities.
//
// Ops string alphabet:
//   '='  aligned pair, bases equal          (consumes query + subject)
//   'X'  aligned pair, bases differ         (consumes query + subject)
//   'I'  gap in query  — insertion          (consumes subject only)
//   'D'  gap in subject — deletion          (consumes query only)
#pragma once

#include <cstdint>
#include <string>

#include "seq/sequence.hpp"
#include "sw/scoring.hpp"

namespace mgpusw::sw {

struct Alignment {
  // Half-open coordinate ranges over the two sequences.
  std::int64_t query_begin = 0;
  std::int64_t query_end = 0;
  std::int64_t subject_begin = 0;
  std::int64_t subject_end = 0;
  std::string ops;
  Score score = 0;

  [[nodiscard]] std::int64_t query_span() const {
    return query_end - query_begin;
  }
  [[nodiscard]] std::int64_t subject_span() const {
    return subject_end - subject_begin;
  }

  /// Fraction of aligned pairs that are matches ('=') among all ops.
  [[nodiscard]] double identity() const;
};

/// Recomputes the affine-gap score of an ops string. Adjacent runs of 'I'
/// and of 'D' each pay one gap-open; an 'I' run abutting a 'D' run opens
/// separately.
[[nodiscard]] Score score_of_ops(const ScoreScheme& scheme,
                                 const std::string& ops);

/// Verifies structural consistency: coordinate spans match the ops
/// consumption, '='/'X' agree with the actual bases, the stored score
/// equals score_of_ops. Throws InternalError with a description on the
/// first violation; returns normally when consistent.
void validate_alignment(const ScoreScheme& scheme,
                        const seq::Sequence& query,
                        const seq::Sequence& subject,
                        const Alignment& alignment);

/// Renders a three-line pretty view (query / bars / subject) for reports;
/// wraps at `width` columns.
[[nodiscard]] std::string render_alignment(const seq::Sequence& query,
                                           const seq::Sequence& subject,
                                           const Alignment& alignment,
                                           int width = 60);

}  // namespace mgpusw::sw
