// Alignment modes beyond local Smith-Waterman (extension).
//
// The paper's stage 1 computes local alignments; production aligners in
// the same family also need:
//   * global        — both sequences end to end (Needleman-Wunsch);
//   * semi-global   — the query end to end, anywhere in the subject
//                     ("glocal": read-vs-chromosome placement);
//   * overlap       — free leading and trailing gaps on both sides
//                     (dovetail detection between fragments).
// All three share the Gotoh recurrences without the zero-clamp; they
// differ only in boundary initialisation and where the result is read.
// Linear memory, score only.
#pragma once

#include "seq/sequence.hpp"
#include "sw/scoring.hpp"

namespace mgpusw::sw {

/// Global (NW) score over the full sequences; equals
/// reference_global_score but without the quadratic-memory size guard.
[[nodiscard]] Score global_score(const ScoreScheme& scheme,
                                 const seq::Sequence& query,
                                 const seq::Sequence& subject);

/// Semi-global: the whole query aligned against any subject substring.
/// Returns the best score and its end cell (end.row is always
/// query.size()-1). Empty query -> score 0 at (-1,-1).
[[nodiscard]] ScoreResult semi_global_score(const ScoreScheme& scheme,
                                            const seq::Sequence& query,
                                            const seq::Sequence& subject);

/// Overlap (dovetail): free gaps at the beginning and end of both
/// sequences; the alignment must still cross the matrix (a suffix of one
/// sequence against a prefix of the other, or containment). Returns the
/// best score over the last row and last column.
[[nodiscard]] ScoreResult overlap_score(const ScoreScheme& scheme,
                                        const seq::Sequence& query,
                                        const seq::Sequence& subject);

}  // namespace mgpusw::sw
