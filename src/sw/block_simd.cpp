// Runtime dispatcher for the SIMD block kernel.
//
// The three backend TUs each compiled block_simd_impl.hpp with different
// -m flags; this TU (compiled with the portable baseline flags only)
// checks the CPU once and routes compute_block_simd to the strongest
// backend that is both (a) supported by the running CPU per cpuid and
// (b) actually compiled with vector instructions — a backend TU built on
// a non-x86 host reports "scalar" and is treated as such.
#include "sw/block_simd.hpp"

#include <cstdlib>
#include <cstring>

namespace mgpusw::sw {

namespace {

/// cpuid-based feature detection. GCC/Clang resolve the builtin on x86;
/// every other architecture reports scalar.
SimdIsa cpu_isa() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  if (__builtin_cpu_supports("avx2")) return SimdIsa::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdIsa::kSse42;
#endif
  return SimdIsa::kScalar;
}

/// Optional cap from the MGPUSW_SIMD environment variable.
SimdIsa apply_env_cap(SimdIsa isa) {
  const char* cap = std::getenv("MGPUSW_SIMD");
  if (cap == nullptr) return isa;
  if (std::strcmp(cap, "scalar") == 0) return SimdIsa::kScalar;
  if (std::strcmp(cap, "sse4.2") == 0 || std::strcmp(cap, "sse42") == 0) {
    return isa < SimdIsa::kSse42 ? isa : SimdIsa::kSse42;
  }
  return isa;  // "avx2" or unrecognised: no cap below detection
}

/// What the backend TU for `level` was actually compiled with.
SimdIsa compiled_isa(SimdIsa level) {
  const char* name = level == SimdIsa::kAvx2    ? simd_avx2::backend_name()
                     : level == SimdIsa::kSse42 ? simd_sse42::backend_name()
                                                : simd_scalar::backend_name();
  if (std::strcmp(name, "avx2") == 0) return SimdIsa::kAvx2;
  if (std::strcmp(name, "sse4.2") == 0) return SimdIsa::kSse42;
  return SimdIsa::kScalar;
}

struct Dispatch {
  BlockResult (*fn)(const ScoreScheme&, const BlockArgs&);
  const char* backend;
};

Dispatch resolve() {
  const SimdIsa isa = detected_simd_isa();
  // Strongest backend whose compiled code the CPU can run. A backend TU
  // that degraded at compile time (non-x86 host, unsupported -m flag)
  // reports the weaker level and is still safe to call.
  if (isa >= SimdIsa::kAvx2 && compiled_isa(SimdIsa::kAvx2) <= isa) {
    return {&simd_avx2::compute_block_simd_impl,
            simd_avx2::backend_name()};
  }
  if (isa >= SimdIsa::kSse42 && compiled_isa(SimdIsa::kSse42) <= isa) {
    return {&simd_sse42::compute_block_simd_impl,
            simd_sse42::backend_name()};
  }
  return {&simd_scalar::compute_block_simd_impl,
          simd_scalar::backend_name()};
}

const Dispatch& dispatch() {
  static const Dispatch d = resolve();
  return d;
}

}  // namespace

SimdIsa detected_simd_isa() {
  static const SimdIsa isa = apply_env_cap(cpu_isa());
  return isa;
}

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAvx2: return "avx2";
    case SimdIsa::kSse42: return "sse4.2";
    case SimdIsa::kScalar: return "scalar";
  }
  return "scalar";
}

const char* active_simd_backend() { return dispatch().backend; }

bool simd_backend_runnable(SimdIsa backend) {
  return compiled_isa(backend) <= detected_simd_isa();
}

BlockResult compute_block_simd(const ScoreScheme& scheme,
                               const BlockArgs& args) {
  return dispatch().fn(scheme, args);
}

}  // namespace mgpusw::sw
