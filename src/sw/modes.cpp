#include "sw/modes.hpp"

#include <algorithm>
#include <vector>

#include "base/error.hpp"

namespace mgpusw::sw {

namespace {

struct ModeSpec {
  bool free_top;        // H(0, j) = 0 instead of gap costs
  bool free_left;       // H(i, 0) = 0 instead of gap costs
  bool best_last_row;   // take the max over the last row
  bool best_last_col;   // take the max over the last column
};

/// One boundary-parameterised Gotoh sweep (no zero-clamp). Returns the
/// best end cell according to the mode; for pure-global modes that is
/// the bottom-right corner.
ScoreResult gotoh_sweep(const ScoreScheme& scheme,
                        const seq::Sequence& query,
                        const seq::Sequence& subject,
                        const ModeSpec& mode) {
  scheme.validate();
  const std::int64_t rows = query.size();
  const std::int64_t cols = subject.size();
  const Score gap_first = scheme.gap_first();
  const Score gap_ext = scheme.gap_extend;

  auto boundary_cost = [&](std::int64_t k) -> Score {
    return -(scheme.gap_open + static_cast<Score>(k) * gap_ext);
  };

  // Degenerate shapes: an empty side leaves only boundary cells.
  if (rows == 0 || cols == 0) {
    ScoreResult result;
    if (rows == 0 && cols == 0) return result;
    if (rows == 0) {
      result.score = mode.free_top ? 0 : boundary_cost(cols);
    } else {
      result.score = mode.free_left ? 0 : boundary_cost(rows);
    }
    return result;
  }

  const auto width = static_cast<std::size_t>(cols);
  std::vector<Score> row_h(width);
  std::vector<Score> row_f(width, kNegInf);
  for (std::int64_t j = 0; j < cols; ++j) {
    row_h[static_cast<std::size_t>(j)] =
        mode.free_top ? 0 : boundary_cost(j + 1);
  }

  ScoreResult best{kNegInf, {-1, -1}};
  Score diag_boundary = 0;  // H(i-1, 0 boundary) carried across rows

  for (std::int64_t i = 0; i < rows; ++i) {
    const seq::Nt qa = query.at(i);
    const Score left_boundary_h =
        mode.free_left ? 0 : boundary_cost(i + 1);
    Score h_left = left_boundary_h;
    Score e_left = kNegInf;
    Score h_diag = diag_boundary;
    diag_boundary = left_boundary_h;

    for (std::int64_t j = 0; j < cols; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      const Score e =
          std::max<Score>(e_left - gap_ext, h_left - gap_first);
      const Score f =
          std::max<Score>(row_f[sj] - gap_ext, row_h[sj] - gap_first);
      Score h = h_diag + scheme.substitution(qa, subject.at(j));
      if (h < e) h = e;
      if (h < f) h = f;

      h_diag = row_h[sj];
      row_h[sj] = h;
      row_f[sj] = f;
      h_left = h;
      e_left = e;

      const bool candidate =
          (mode.best_last_row && i == rows - 1) ||
          (mode.best_last_col && j == cols - 1) ||
          (!mode.best_last_row && !mode.best_last_col &&
           i == rows - 1 && j == cols - 1);
      if (candidate) {
        const ScoreResult cell{h, CellPos{i, j}};
        if (cell.score > best.score ||
            (cell.score == best.score &&
             (cell.end.row < best.end.row ||
              (cell.end.row == best.end.row &&
               cell.end.col < best.end.col)))) {
          best = cell;
        }
      }
    }
  }
  return best;
}

}  // namespace

Score global_score(const ScoreScheme& scheme, const seq::Sequence& query,
                   const seq::Sequence& subject) {
  return gotoh_sweep(scheme, query, subject,
                     ModeSpec{false, false, false, false})
      .score;
}

ScoreResult semi_global_score(const ScoreScheme& scheme,
                              const seq::Sequence& query,
                              const seq::Sequence& subject) {
  if (query.empty()) return ScoreResult{};
  return gotoh_sweep(scheme, query, subject,
                     ModeSpec{true, false, true, false});
}

ScoreResult overlap_score(const ScoreScheme& scheme,
                          const seq::Sequence& query,
                          const seq::Sequence& subject) {
  if (query.empty() || subject.empty()) return ScoreResult{};
  return gotoh_sweep(scheme, query, subject,
                     ModeSpec{true, true, true, true});
}

}  // namespace mgpusw::sw
