#include "sw/alignment.hpp"

#include <algorithm>
#include <sstream>

#include "base/error.hpp"

namespace mgpusw::sw {

double Alignment::identity() const {
  if (ops.empty()) return 0.0;
  std::int64_t matches = 0;
  for (const char op : ops) {
    if (op == '=') ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(ops.size());
}

Score score_of_ops(const ScoreScheme& scheme, const std::string& ops) {
  Score score = 0;
  char previous = '\0';
  for (const char op : ops) {
    switch (op) {
      case '=':
        score += scheme.match;
        break;
      case 'X':
        score += scheme.mismatch;
        break;
      case 'I':
      case 'D':
        score -= scheme.gap_extend;
        if (op != previous) score -= scheme.gap_open;
        break;
      default:
        throw InvalidArgument(std::string("unknown alignment op '") + op +
                              "'");
    }
    previous = op;
  }
  return score;
}

void validate_alignment(const ScoreScheme& scheme,
                        const seq::Sequence& query,
                        const seq::Sequence& subject,
                        const Alignment& alignment) {
  std::int64_t qi = alignment.query_begin;
  std::int64_t sj = alignment.subject_begin;
  for (std::size_t k = 0; k < alignment.ops.size(); ++k) {
    const char op = alignment.ops[k];
    switch (op) {
      case '=':
      case 'X': {
        MGPUSW_CHECK_MSG(qi < query.size() && sj < subject.size(),
                         "alignment runs past sequence end at op " << k);
        const bool equal = query.at(qi) == subject.at(sj);
        MGPUSW_CHECK_MSG(equal == (op == '='),
                         "op " << k << " claims '" << op << "' but bases "
                               << (equal ? "match" : "differ") << " at ("
                               << qi << "," << sj << ")");
        ++qi;
        ++sj;
        break;
      }
      case 'I':
        MGPUSW_CHECK_MSG(sj < subject.size(),
                         "insert past subject end at op " << k);
        ++sj;
        break;
      case 'D':
        MGPUSW_CHECK_MSG(qi < query.size(),
                         "delete past query end at op " << k);
        ++qi;
        break;
      default:
        throw InvalidArgument(std::string("unknown alignment op '") + op +
                              "'");
    }
  }
  MGPUSW_CHECK_MSG(qi == alignment.query_end,
                   "ops consume query up to " << qi << " but query_end is "
                                              << alignment.query_end);
  MGPUSW_CHECK_MSG(sj == alignment.subject_end,
                   "ops consume subject up to "
                       << sj << " but subject_end is "
                       << alignment.subject_end);
  const Score recomputed = score_of_ops(scheme, alignment.ops);
  MGPUSW_CHECK_MSG(recomputed == alignment.score,
                   "ops score " << recomputed << " != stored score "
                                << alignment.score);
}

std::string render_alignment(const seq::Sequence& query,
                             const seq::Sequence& subject,
                             const Alignment& alignment, int width) {
  MGPUSW_REQUIRE(width > 0, "width must be positive");
  std::string q_line;
  std::string m_line;
  std::string s_line;
  std::int64_t qi = alignment.query_begin;
  std::int64_t sj = alignment.subject_begin;
  for (const char op : alignment.ops) {
    switch (op) {
      case '=':
      case 'X':
        q_line.push_back(seq::to_char(query.at(qi++)));
        m_line.push_back(op == '=' ? '|' : ' ');
        s_line.push_back(seq::to_char(subject.at(sj++)));
        break;
      case 'I':
        q_line.push_back('-');
        m_line.push_back(' ');
        s_line.push_back(seq::to_char(subject.at(sj++)));
        break;
      case 'D':
        q_line.push_back(seq::to_char(query.at(qi++)));
        m_line.push_back(' ');
        s_line.push_back('-');
        break;
      default:
        break;
    }
  }

  std::ostringstream os;
  const auto total = static_cast<std::int64_t>(q_line.size());
  for (std::int64_t offset = 0; offset < total; offset += width) {
    const auto count =
        static_cast<std::size_t>(std::min<std::int64_t>(width, total - offset));
    const auto start = static_cast<std::size_t>(offset);
    os << "Q " << q_line.substr(start, count) << '\n';
    os << "  " << m_line.substr(start, count) << '\n';
    os << "S " << s_line.substr(start, count) << '\n';
    if (offset + width < total) os << '\n';
  }
  return os.str();
}

}  // namespace mgpusw::sw
