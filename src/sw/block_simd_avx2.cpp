// AVX2 instantiation of the SIMD block kernel. CMake compiles this TU
// with -mavx2 on x86 hosts; elsewhere the shim silently degrades to the
// strongest backend the compiler offers (ultimately scalar), which keeps
// the symbol defined and correct on every platform. The runtime
// dispatcher consults backend_name() so it never advertises a vector ISA
// this TU was not actually compiled for.
#define MGPUSW_SIMD_NS simd_avx2

#include "sw/batch_simd_impl.hpp"
#include "sw/block_simd_impl.hpp"
#include "sw/block_simd_lp_impl.hpp"

namespace mgpusw::sw::simd_avx2 {

const char* backend_name() { return kSimdBackendName; }

}  // namespace mgpusw::sw::simd_avx2
