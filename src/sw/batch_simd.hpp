// Inter-sequence SIMD batch kernel: one short alignment per vector lane.
//
// The intra-block kernels parallelise *inside* one huge DP matrix; for
// batches of short pairs (reads, gene-scale slices) that is the wrong
// axis — the matrices are too small to fill a wavefront, but there are
// thousands of them. This kernel packs one independent pair per lane
// (16 pairs at int16, 32 at int8 per AVX2 register) and sweeps all of
// them row-by-row simultaneously: no cross-lane dependences, no skew, a
// dense multiply of the vector width by the batch size.
//
// Lanes are padded to the group's maximum query/subject length with
// sentinel codes that can never match (queries pad with code 4, subjects
// with code 5), so padded cells only ever apply mismatch/gap penalties;
// since every zero-cost DP step is a diagonal (gap steps cost at least
// gap_extend > 0), a padded cell can never strictly beat a lane's real
// maximum, and the strict '>' best tracking ignores them. Pairs are
// sorted by length before grouping to keep padding waste low; results
// are scattered back in input order.
//
// Precision follows the same saturating ladder as the narrow block
// kernels (sw/block_simd_lp.hpp): each lane's maximum H is checked
// against the saturation watermark (kMax - match) and overflowing pairs
// are re-run at the next wider precision — int8 -> int16 -> exact
// full-precision fallback — so every reported ScoreResult is
// bit-identical to sw::linear_score / sw::reference_score, including
// the smallest-row-then-column tie-breaking of the end cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/alphabet.hpp"
#include "sw/scoring.hpp"

namespace mgpusw::sw {

/// One alignment job: unpacked nucleotide views (not owned). Empty
/// sequences are legal and score 0.
struct PairView {
  const seq::Nt* query = nullptr;
  std::int64_t query_len = 0;
  const seq::Nt* subject = nullptr;
  std::int64_t subject_len = 0;
};

/// Counters batch_align_scores reports back to callers (core/batch wires
/// them into the `kernel.overflow_reruns` metric).
struct BatchStats {
  std::int64_t groups = 0;           // vector groups executed
  std::int64_t overflow_reruns = 0;  // pair re-runs at a wider precision
};

/// Batch kernel names accepted by batch_align_scores:
///   "interseq"    full ladder, int8 first — the default;
///   "interseq8"   alias of "interseq";
///   "interseq16"  int16 first (skips the int8 attempt);
///   "scalar"      exact per-pair fallback for every pair (the oracle).
[[nodiscard]] const std::vector<std::string>& batch_kernel_names();

/// Aligns every pair and returns one ScoreResult per pair, in input
/// order, bit-identical to linear_score on the same pair. Coordinates
/// are per-pair (row = query index, col = subject index). Throws
/// InvalidArgument for an unknown kernel name.
[[nodiscard]] std::vector<ScoreResult> batch_align_scores(
    const ScoreScheme& scheme, const std::vector<PairView>& pairs,
    const std::string& kernel = "interseq", BatchStats* stats = nullptr);

// Per-backend group entry points (instantiated by the backend TUs from
// batch_simd_impl.hpp). Each computes `n` (<= that backend's lane count,
// from batch_i16_lanes/batch_i8_lanes — AVX2 runs 16/32 lanes, SSE4.2
// its native 8/16) pairs in one vector sweep; out[k] receives pair k's
// result, overflow[k] is set when the lane hit the saturation watermark
// and out[k] must be recomputed wider. Callers must pre-check the scheme
// against the width (see batch_scheme_fits in batch_simd.cpp).
namespace simd_avx2 {
void batch_group_i16(const ScoreScheme&, const PairView* pairs, int n,
                     ScoreResult* out, bool* overflow);
void batch_group_i8(const ScoreScheme&, const PairView* pairs, int n,
                    ScoreResult* out, bool* overflow);
int batch_i16_lanes();
int batch_i8_lanes();
}  // namespace simd_avx2
namespace simd_sse42 {
void batch_group_i16(const ScoreScheme&, const PairView* pairs, int n,
                     ScoreResult* out, bool* overflow);
void batch_group_i8(const ScoreScheme&, const PairView* pairs, int n,
                    ScoreResult* out, bool* overflow);
int batch_i16_lanes();
int batch_i8_lanes();
}  // namespace simd_sse42
namespace simd_scalar {
void batch_group_i16(const ScoreScheme&, const PairView* pairs, int n,
                     ScoreResult* out, bool* overflow);
void batch_group_i8(const ScoreScheme&, const PairView* pairs, int n,
                    ScoreResult* out, bool* overflow);
int batch_i16_lanes();
int batch_i8_lanes();
}  // namespace simd_scalar

}  // namespace mgpusw::sw
