// Strip-mined block kernel.
//
// Processes the block in horizontal strips of four query rows, sweeping
// columns within a strip: the rolling row arrays (H, F per column) are
// touched once per strip instead of once per row — a 4x cut in the
// kernel's array traffic — at the price of a serialized four-deep F
// dependency chain per column. Bit-identical to sw::compute_block (same
// borders, same best cell, same tie-breaking); the "strip4" registry entry
// selects it in the engine.
//
// Measured on the reproduction host (bench/micro_kernels): the plain row
// sweep wins (~0.56 vs ~0.45 G cells/s at 1024^2) — its single
// dependency chain pipelines better than the strip's cross-lane F chain,
// and the row arrays already sit in L1. The kernel is kept as a
// documented traversal ablation: on machines where the row arrays fall
// out of cache (much wider blocks) the traffic reduction is the winning
// term, and the engine lets you choose per configuration.
#pragma once

#include "sw/block.hpp"

namespace mgpusw::sw {

/// Drop-in alternative to compute_block with 4-row strip mining.
BlockResult compute_block_strip(const ScoreScheme& scheme,
                                const BlockArgs& args);

}  // namespace mgpusw::sw
