#include "sw/banded.hpp"

#include <algorithm>
#include <vector>

#include "base/error.hpp"

namespace mgpusw::sw {

ScoreResult banded_score(const ScoreScheme& scheme,
                         const seq::Sequence& query,
                         const seq::Sequence& subject, std::int64_t radius,
                         std::int64_t offset) {
  scheme.validate();
  MGPUSW_REQUIRE(radius >= 0, "band radius must be non-negative");
  const std::int64_t rows = query.size();
  const std::int64_t cols = subject.size();
  if (rows == 0 || cols == 0) return ScoreResult{};

  const Score gap_first = scheme.gap_first();
  const Score gap_ext = scheme.gap_extend;

  // Full-width rolling row, but only the in-band window is touched per
  // row. Cells outside the band keep kNegInf (unreachable).
  const auto width = static_cast<std::size_t>(cols);
  std::vector<Score> row_h(width, kNegInf);
  std::vector<Score> row_f(width, kNegInf);

  ScoreResult best;
  for (std::int64_t i = 0; i < rows; ++i) {
    // Band for row i: columns with |i - j - offset| <= radius.
    const std::int64_t lo = std::max<std::int64_t>(0, i - offset - radius);
    const std::int64_t hi =
        std::min<std::int64_t>(cols - 1, i - offset + radius);
    if (lo > hi) continue;

    const seq::Nt qa = query.at(i);
    Score h_left = 0;       // H(i, lo-1): boundary or out-of-band -> 0-clip
    Score e_left = kNegInf;
    // Out-of-band left neighbours are unreachable, except the true matrix
    // boundary where local alignments may start fresh (H = 0).
    if (lo > 0) h_left = kNegInf;
    // Diagonal H(i-1, lo-1): matrix boundary gives 0; out-of-band cells
    // from the previous row still hold their value in row_h if lo-1 was in
    // the previous band, otherwise unreachable.
    Score h_diag;
    if (i == 0 || lo == 0) {
      h_diag = 0;
    } else {
      const std::int64_t prev_lo =
          std::max<std::int64_t>(0, (i - 1) - offset - radius);
      const std::int64_t prev_hi =
          std::min<std::int64_t>(cols - 1, (i - 1) - offset + radius);
      h_diag = (lo - 1 >= prev_lo && lo - 1 <= prev_hi)
                   ? row_h[static_cast<std::size_t>(lo - 1)]
                   : kNegInf;
    }

    // Clear cells that were in the previous row's band but are left of
    // this row's band (the band slides right), so stale values are never
    // read by the next row's F computation.
    if (i > 0) {
      const std::int64_t prev_lo =
          std::max<std::int64_t>(0, (i - 1) - offset - radius);
      for (std::int64_t j = prev_lo; j < lo; ++j) {
        row_h[static_cast<std::size_t>(j)] = kNegInf;
        row_f[static_cast<std::size_t>(j)] = kNegInf;
      }
    }

    for (std::int64_t j = lo; j <= hi; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      const Score e = std::max<Score>(e_left - gap_ext, h_left - gap_first);
      // Vertical inputs: row i-1. On the matrix's top row those are the
      // local-alignment boundary (H=0, F=-inf); in-band values otherwise.
      const Score up_h = i == 0 ? 0 : row_h[sj];
      const Score up_f = i == 0 ? kNegInf : row_f[sj];
      const Score f = std::max<Score>(up_f - gap_ext, up_h - gap_first);
      Score h = h_diag + scheme.substitution(qa, subject.at(j));
      if (h < e) h = e;
      if (h < f) h = f;
      if (h < 0) h = 0;

      h_diag = i == 0 ? 0 : row_h[sj];
      if (i == 0) h_diag = 0;
      row_h[sj] = h;
      row_f[sj] = f;
      h_left = h;
      e_left = e;

      const ScoreResult candidate{h, CellPos{i, j}};
      if (improves(candidate, best)) best = candidate;
    }
    // Cell to the right of the band is unreachable for row i+1's diagonal.
    if (hi + 1 < cols) {
      row_h[static_cast<std::size_t>(hi + 1)] = kNegInf;
      row_f[static_cast<std::size_t>(hi + 1)] = kNegInf;
    }
  }
  return best;
}

ScoreResult adaptive_banded_score(const ScoreScheme& scheme,
                                  const seq::Sequence& query,
                                  const seq::Sequence& subject,
                                  std::int64_t initial_radius) {
  MGPUSW_REQUIRE(initial_radius >= 1, "initial radius must be >= 1");
  const std::int64_t full =
      std::max(query.size(), subject.size());
  std::int64_t radius = std::min(initial_radius, full);
  ScoreResult previous = banded_score(scheme, query, subject, radius);
  while (radius < full) {
    radius = std::min(radius * 2, full);
    const ScoreResult next = banded_score(scheme, query, subject, radius);
    if (next == previous) return next;
    previous = next;
  }
  return previous;
}

}  // namespace mgpusw::sw
