// Low-precision SIMD block kernel — templated over a width trait from
// sw/simd_lp.hpp (LpI16: 16x int16, LpI8: 32x int8) and instantiated
// once per backend TU, exactly like block_simd_impl.hpp (which must be
// included first: the escalation entry points call the backend's int32
// kernel).
//
// Traversal is the same skewed anti-diagonal strip walk as the 8x32
// kernel; see block_simd_impl.hpp for the lane geometry. What differs:
//
//  * All arithmetic saturates. H can only saturate upwards (gains come
//    only from `match`), so "max observed H < watermark" proves every
//    value exact; the check runs per strip and aborts the narrow pass
//    before anything is committed (int32 outputs are written only after
//    every strip passed).
//  * Borders are converted to narrow private copies on entry (H must be
//    representable — pre-checked; E/F below the narrow range clamp to
//    the narrow neg-inf, which can never win a max). Outputs convert
//    back on success.
//  * Best-cell columns are tracked as per-segment offsets (kSegSteps
//    steps per segment) and folded into full-width per-lane accumulators
//    in traversal order, so the narrow lane type can index blocks far
//    wider than its own range without changing tie-breaking.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/error.hpp"
#include "sw/block.hpp"
#include "sw/block_simd_lp.hpp"
#include "sw/simd_lp.hpp"

namespace mgpusw::sw::MGPUSW_SIMD_NS {

namespace lp {

/// Per-thread conversion buffers, one set per width.
template <class W>
struct Scratch {
  std::vector<typename W::Elem> row_h, row_f;          // rolling rows (cols)
  std::vector<typename W::Elem> left_h, left_e;        // strip rows
  std::vector<typename W::Elem> right_h, right_e;      // strip rows
  std::vector<typename W::Elem> rev_subject;           // cols, reversed
};

template <class W>
Scratch<W>& scratch() {
  thread_local Scratch<W> s;
  return s;
}

/// The scheme must leave headroom for one gap chain below the neg-inf
/// sentinel and one match above the watermark; kMax/4 per parameter
/// guarantees both with room to spare.
template <class W>
bool scheme_fits(const ScoreScheme& scheme) {
  const int cap = W::kMax / 4;
  return scheme.match <= cap && -scheme.mismatch <= cap &&
         scheme.gap_first() <= cap && scheme.gap_extend <= cap;
}

/// One full strip of W::kLanes rows. Returns false when the strip's
/// maximum H reached the saturation watermark (results may be inexact —
/// escalate). All writes go to the narrow scratch arrays only.
template <class W>
bool process_strip(const ScoreScheme& scheme, const BlockArgs& args,
                   Scratch<W>& s, std::int64_t i0,
                   typename W::Elem strip_diag0, bool last_strip,
                   ScoreResult& best, Score& border_max) {
  using Elem = typename W::Elem;
  using Vec = typename W::Vec;
  constexpr int kL = W::kLanes;

  const std::int64_t cols = args.cols;
  const int gap_first = scheme.gap_first();
  const int gap_ext = scheme.gap_extend;
  const int match = scheme.match;
  const int mismatch = scheme.mismatch;
  const int watermark = W::kMax - match;

  Elem* const row_h = s.row_h.data();
  Elem* const row_f = s.row_f.data();
  // Raw pointer: calling .data() inside the loop forces a reload every
  // iteration (the row stores above could alias the vector's internals).
  const Elem* const rev_subject = s.rev_subject.data();

  const auto sat = [](int x) -> Elem {
    if (x > W::kMax) return W::kMax;
    if (x < W::kMin) return W::kMin;
    return static_cast<Elem>(x);
  };

  alignas(32) Elem left_h_b[kL];
  alignas(32) Elem left_e_b[kL];
  alignas(32) Elem qcode[kL];
  for (int r = 0; r < kL; ++r) {
    left_h_b[r] = s.left_h[static_cast<std::size_t>(i0) + r];
    left_e_b[r] = s.left_e[static_cast<std::size_t>(i0) + r];
    qcode[r] = static_cast<Elem>(args.query[i0 + r]);
  }

  alignas(32) Elem h_prev[kL] = {};
  alignas(32) Elem h_prev2[kL] = {};
  alignas(32) Elem e_prev[kL] = {};
  alignas(32) Elem f_prev[kL] = {};
  // Full-width per-lane best accumulators; segments fold into these in
  // traversal order, so strict '>' keeps the smallest column per lane.
  int best_h[kL];
  std::int64_t best_j[kL];
  for (int r = 0; r < kL; ++r) {
    best_h[r] = -1;  // strictly below any reachable H (H >= 0)
    best_j[r] = -1;
  }

  // One skewed step for lanes [r_lo, r_hi], scalar, with every operation
  // saturating exactly as the vector steady state does.
  const auto scalar_step = [&](std::int64_t t, int r_lo, int r_hi) {
    for (int r = r_hi; r >= r_lo; --r) {
      const std::int64_t j = t - r;
      const int lh = j == 0 ? left_h_b[r] : h_prev[r];
      const int le = j == 0 ? left_e_b[r] : e_prev[r];
      const int uh = r == 0 ? row_h[j] : h_prev[r - 1];
      const int uf = r == 0 ? row_f[j] : f_prev[r - 1];
      int dg;
      if (r == 0) {
        dg = j == 0 ? strip_diag0 : row_h[j - 1];
      } else {
        dg = j == 0 ? left_h_b[r - 1] : h_prev2[r - 1];
      }

      const Elem e = std::max(sat(le - gap_ext), sat(lh - gap_first));
      const Elem f = std::max(sat(uf - gap_ext), sat(uh - gap_first));
      Elem h = sat(dg + (qcode[r] == static_cast<Elem>(args.subject[j])
                             ? match
                             : mismatch));
      if (h < e) h = e;
      if (h < f) h = f;
      if (h < 0) h = 0;

      h_prev2[r] = h_prev[r];
      h_prev[r] = h;
      e_prev[r] = e;
      f_prev[r] = f;

      if (r == kL - 1) {  // strip bottom row -> rolling row arrays
        row_h[j] = h;
        row_f[j] = f;
      }
      if (j == cols - 1) {  // block right border
        s.right_h[static_cast<std::size_t>(i0) + r] = h;
        s.right_e[static_cast<std::size_t>(i0) + r] = e;
        border_max = std::max(border_max, static_cast<Score>(h));
      }
      if (static_cast<int>(h) > best_h[r]) {
        best_h[r] = h;
        best_j[r] = j;
      }
    }
  };

  // --- fill: steps 0 .. kL-1, lane r activates at t == r -------------
  for (std::int64_t t = 0; t < kL; ++t) {
    scalar_step(t, 0, static_cast<int>(t));
  }

  // --- steady state: steps kL .. cols-2, all lanes interior ----------
  Vec vh_prev = W::load(h_prev);
  Vec vh_prev2 = W::load(h_prev2);
  Vec ve_prev = W::load(e_prev);
  Vec vf_prev = W::load(f_prev);
  const Vec vq = W::load(qcode);
  Vec vdiag_carry = W::shift_in(vh_prev2, row_h + kL - 1);

  const Vec v_gap_ext = W::broadcast(static_cast<Elem>(gap_ext));
  const Vec v_gap_first = W::broadcast(static_cast<Elem>(gap_first));
  const Vec v_match = W::broadcast(static_cast<Elem>(match));
  const Vec v_mismatch = W::broadcast(static_cast<Elem>(mismatch));
  const Vec v_zero = W::broadcast(0);
  const Vec v_one = W::broadcast(1);

  // Segmented best tracking: toff = t - seg_base fits the lane type.
  Vec vseg_h = W::broadcast(static_cast<Elem>(-1));
  Vec vseg_t = W::broadcast(0);
  Vec vtoff = W::broadcast(0);
  std::int64_t seg_base = kL;

  const auto fold_segment = [&](std::int64_t next_base) {
    alignas(32) Elem seg_h[kL];
    alignas(32) Elem seg_t[kL];
    W::store(seg_h, vseg_h);
    W::store(seg_t, vseg_t);
    for (int r = 0; r < kL; ++r) {
      if (static_cast<int>(seg_h[r]) > best_h[r]) {
        best_h[r] = seg_h[r];
        best_j[r] = seg_base + seg_t[r] - r;
      }
    }
    vseg_h = W::broadcast(static_cast<Elem>(-1));
    vseg_t = W::broadcast(0);
    vtoff = W::broadcast(0);
    seg_base = next_base;
  };

  // Two-level loop: the segment fold fires every kSegSteps steps at
  // most, so the boundary check lives outside the hot loop instead of
  // costing a compare per step.
  std::int64_t t = kL;
  while (t <= cols - 2) {
    const std::int64_t t_stop =
        std::min<std::int64_t>(cols - 1, seg_base + W::kSegSteps);
    for (; t < t_stop; ++t) {
      const Vec vup_h = W::shift_in(vh_prev, row_h + t);
      const Vec vup_f = W::shift_in(vf_prev, row_f + t);
      const Vec vdiag = vdiag_carry;
      const Vec ve = W::max(W::subs(ve_prev, v_gap_ext),
                            W::subs(vh_prev, v_gap_first));
      const Vec vf =
          W::max(W::subs(vup_f, v_gap_ext), W::subs(vup_h, v_gap_first));
      const Vec vs = W::load(rev_subject + (cols - 1 - t));
      const Vec vsub = W::blend(v_mismatch, v_match, W::cmpeq(vq, vs));
      // Balanced max tree: the vf/zero max folds into the slack before
      // vf arrives off shift_in, keeping the H critical path one max
      // shorter than a linear chain.
      Vec vh = W::max(W::adds(vdiag, vsub), ve);
      vh = W::max(vh, W::max(vf, v_zero));

      row_h[t - (kL - 1)] = W::extract_last(vh);
      row_f[t - (kL - 1)] = W::extract_last(vf);

      // The compare must read the pre-update vseg_h, so it runs first;
      // the running max itself is a plain max — one uop against a
      // blend's two, and no mask operand for the compiler to
      // renormalize.
      const Vec vgt = W::cmpgt(vh, vseg_h);
      vseg_h = W::max(vseg_h, vh);
      vseg_t = W::blend(vseg_t, vtoff, vgt);
      vtoff = W::adds(vtoff, v_one);

      vh_prev2 = vh_prev;
      vh_prev = vh;
      ve_prev = ve;
      vf_prev = vf;
      vdiag_carry = vup_h;
    }
    if (t <= cols - 2) fold_segment(t);
  }
  fold_segment(0);

  W::store(h_prev, vh_prev);
  W::store(h_prev2, vh_prev2);
  W::store(e_prev, ve_prev);
  W::store(f_prev, vf_prev);

  // --- drain: steps cols-1 .. cols+kL-2, lane r retires at t-r==cols -
  for (t = cols - 1; t <= cols + kL - 2; ++t) {
    scalar_step(t,
                static_cast<int>(std::max<std::int64_t>(0, t - (cols - 1))),
                kL - 1);
  }

  // Saturation watermark: per-lane bests cover every H computed in the
  // strip, so staying below the watermark proves no addition saturated.
  int strip_max = -1;
  for (int r = 0; r < kL; ++r) strip_max = std::max(strip_max, best_h[r]);
  if (strip_max >= watermark) return false;

  // Cross-row reduction in ascending row order: strictly larger row
  // maxima only, so earlier rows win ties exactly as in compute_block.
  for (int r = 0; r < kL; ++r) {
    if (best_h[r] > best.score) {
      best.score = best_h[r];
      best.end = CellPos{args.global_row + i0 + r,
                         args.global_col + best_j[r]};
    }
  }
  if (last_strip) {
    border_max =
        std::max(border_max, static_cast<Score>(best_h[kL - 1]));
  }
  return true;
}

template <class W>
BlockResult compute_block_lp(const ScoreScheme& scheme,
                             const BlockArgs& args, bool* overflow) {
  using Elem = typename W::Elem;
  constexpr int kL = W::kLanes;
  *overflow = false;

  MGPUSW_CHECK(args.rows > 0 && args.cols > 0);
  MGPUSW_CHECK(args.query != nullptr && args.subject != nullptr);
  MGPUSW_CHECK(args.top_h != nullptr && args.top_f != nullptr);
  MGPUSW_CHECK(args.left_h != nullptr && args.left_e != nullptr);
  MGPUSW_CHECK(args.bottom_h != nullptr && args.bottom_f != nullptr);
  MGPUSW_CHECK(args.right_h != nullptr && args.right_e != nullptr);

  // Blocks without a vectorisable steady state delegate to the scalar
  // row kernel — exact at full precision, so no overflow either way.
  if (args.rows < kL || args.cols < 2 * kL ||
      args.cols > (std::int64_t{1} << 30) ||
      args.rows > (std::int64_t{1} << 30)) {
    return compute_block(scheme, args);
  }

  if (!scheme_fits<W>(scheme)) {
    *overflow = true;
    return {};
  }

  const std::int64_t strip_rows = args.rows - args.rows % kL;
  Scratch<W>& s = scratch<W>();
  // +4 elements: shift_in may load a full 32 bits at the incoming
  // element's address (see the trait contract in simd_lp.hpp), so the
  // last in-range read needs a little runway past the row.
  s.row_h.resize(static_cast<std::size_t>(args.cols) + 4);
  s.row_f.resize(static_cast<std::size_t>(args.cols) + 4);
  s.rev_subject.resize(static_cast<std::size_t>(args.cols));
  s.left_h.resize(static_cast<std::size_t>(strip_rows));
  s.left_e.resize(static_cast<std::size_t>(strip_rows));
  s.right_h.resize(static_cast<std::size_t>(strip_rows));
  s.right_e.resize(static_cast<std::size_t>(strip_rows));

  // Convert + pre-check the borders. H values must be representable
  // (H >= 0 by the border contract); E/F below the narrow range clamp
  // to the narrow neg-inf sentinel, which can never win a max. The
  // range check is a separate branch-free min/max pass so both it and
  // the conversion autovectorize — with an early-exit in the loop the
  // compiler emits a scalar element-by-element walk, which at wide
  // tiles costs the narrow kernels a few percent that the int32 kernel
  // (no conversion) never pays.
  if (args.corner_h < 0 || args.corner_h > W::kMax) {
    *overflow = true;
    return {};
  }
  Score h_min = 0;
  Score h_max = 0;
  Score f_max = W::kNegInf;
  for (std::int64_t j = 0; j < args.cols; ++j) {
    h_min = std::min(h_min, args.top_h[j]);
    h_max = std::max(h_max, args.top_h[j]);
    f_max = std::max(f_max, args.top_f[j]);
  }
  if (h_min < 0 || h_max > W::kMax || f_max > W::kMax) {
    *overflow = true;
    return {};
  }
  for (std::int64_t j = 0; j < args.cols; ++j) {
    s.row_h[static_cast<std::size_t>(j)] =
        static_cast<Elem>(args.top_h[j]);
    const Score f = args.top_f[j];
    s.row_f[static_cast<std::size_t>(j)] =
        f < W::kNegInf ? W::kNegInf : static_cast<Elem>(f);
  }
  for (std::int64_t j = 0; j < args.cols; ++j) {
    s.rev_subject[static_cast<std::size_t>(args.cols - 1 - j)] =
        static_cast<Elem>(args.subject[j]);
  }
  for (std::int64_t i = 0; i < strip_rows; ++i) {
    const Score h = args.left_h[i];
    const Score e = args.left_e[i];
    if (h < 0 || h > W::kMax || e > W::kMax) {
      *overflow = true;
      return {};
    }
    s.left_h[static_cast<std::size_t>(i)] = static_cast<Elem>(h);
    s.left_e[static_cast<std::size_t>(i)] =
        e < W::kNegInf ? W::kNegInf : static_cast<Elem>(e);
  }

  ScoreResult best;
  Score border_max = 0;
  Elem strip_diag0 = static_cast<Elem>(args.corner_h);

  std::int64_t i0 = 0;
  for (; i0 + kL <= args.rows; i0 += kL) {
    const Elem next_strip_diag0 =
        s.left_h[static_cast<std::size_t>(i0) + kL - 1];
    if (!process_strip<W>(scheme, args, s, i0, strip_diag0,
                          /*last_strip=*/i0 + kL == args.rows, best,
                          border_max)) {
      *overflow = true;  // int32 outputs untouched: caller re-runs wide
      return {};
    }
    strip_diag0 = next_strip_diag0;
  }

  // Every strip was exact — commit the narrow state to the int32
  // borders (only now may the aliased output arrays be overwritten).
  // The remainder sub-block's corner is left_h[i0-1], which right_h may
  // alias (the border contract allows outputs to alias inputs), so it
  // must be read before the commit clobbers it.
  const Score tail_corner =
      i0 < args.rows ? args.left_h[strip_rows - 1] : 0;
  for (std::int64_t j = 0; j < args.cols; ++j) {
    args.bottom_h[j] = s.row_h[static_cast<std::size_t>(j)];
    args.bottom_f[j] = s.row_f[static_cast<std::size_t>(j)];
  }
  for (std::int64_t i = 0; i < strip_rows; ++i) {
    args.right_h[i] = s.right_h[static_cast<std::size_t>(i)];
    args.right_e[i] = s.right_e[static_cast<std::size_t>(i)];
  }

  // Remainder rows (< kL): delegate to the full-precision scalar kernel
  // on a sub-block whose top border is the committed rolling row.
  if (i0 < args.rows) {
    BlockArgs sub = args;
    sub.query = args.query + i0;
    sub.rows = args.rows - i0;
    sub.global_row = args.global_row + i0;
    sub.top_h = args.bottom_h;
    sub.top_f = args.bottom_f;
    sub.bottom_h = args.bottom_h;
    sub.bottom_f = args.bottom_f;
    sub.left_h = args.left_h + i0;
    sub.left_e = args.left_e + i0;
    sub.right_h = args.right_h + i0;
    sub.right_e = args.right_e + i0;
    sub.corner_h = tail_corner;
    const BlockResult tail = compute_block(scheme, sub);
    if (improves(tail.best, best)) best = tail.best;
    border_max = std::max(border_max, tail.border_max);
  }

  BlockResult result;
  result.best = best;
  result.border_max = border_max;
  return result;
}

}  // namespace lp

BlockResult compute_block_i16_impl(const ScoreScheme& scheme,
                                   const BlockArgs& args, bool* overflow) {
  return lp::compute_block_lp<LpI16>(scheme, args, overflow);
}

BlockResult compute_block_i8_impl(const ScoreScheme& scheme,
                                  const BlockArgs& args, bool* overflow) {
  return lp::compute_block_lp<LpI8>(scheme, args, overflow);
}

// Pinned ladders: every escalation stays on this TU's backend, so the
// pinned registry entries ablate ISAs without mixing in dispatch policy.
BlockResult compute_block_i16_pinned(const ScoreScheme& scheme,
                                     const BlockArgs& args) {
  bool overflow = false;
  BlockResult result = compute_block_i16_impl(scheme, args, &overflow);
  if (!overflow) return result;
  result = compute_block_simd_impl(scheme, args);
  result.overflow_reruns = 1;
  return result;
}

BlockResult compute_block_i8_pinned(const ScoreScheme& scheme,
                                    const BlockArgs& args) {
  bool overflow = false;
  BlockResult result = compute_block_i8_impl(scheme, args, &overflow);
  if (!overflow) return result;
  overflow = false;
  result = compute_block_i16_impl(scheme, args, &overflow);
  if (!overflow) {
    result.overflow_reruns = 1;
    return result;
  }
  result = compute_block_simd_impl(scheme, args);
  result.overflow_reruns = 2;
  return result;
}

}  // namespace mgpusw::sw::MGPUSW_SIMD_NS
