// Portable 8-lane x 32-bit integer vector shim for the SIMD block kernel.
//
// One vector type, three backends, selected at *compile time of the
// including translation unit* from the compiler's feature macros:
//
//   * AVX2    (__AVX2__)    — one __m256i, native 8-wide ops;
//   * SSE4.2  (__SSE4_2__)  — two __m128i halves (SSE4.1 provides the
//                             epi32 min/max/blend forms used here);
//   * scalar  (fallback)    — a plain int32 array the autovectorizer may
//                             still chew on; always correct, always
//                             available, exercised on non-x86 hosts.
//
// Because the backend is fixed per TU, every TU that includes this header
// must first define MGPUSW_SIMD_NS to a unique namespace token (e.g.
// simd_avx2). The kernel implementation (block_simd_impl.hpp) is then
// instantiated once per backend in its own namespace — three ODR-distinct
// copies of the same source, each compiled with different -m flags — and
// a cpuid-based dispatcher (block_simd.cpp) picks one at runtime. A TU
// may define MGPUSW_SIMD_FORCE_SCALAR to pin the scalar backend even when
// the compiler would allow a vector one (the dispatcher's guaranteed
// fallback TU does this).
//
// The operation set is the minimum the Gotoh anti-diagonal kernel needs:
// load/store/broadcast, add/sub/max, compares producing all-ones lane
// masks, mask blends, a one-lane shift-in (the wavefront rotation), and a
// last-lane extract (the strip's bottom-row output).
#pragma once

#include <cstdint>
#include <cstring>

#ifndef MGPUSW_SIMD_NS
#error "define MGPUSW_SIMD_NS to a unique namespace before including sw/simd.hpp"
#endif

#if defined(__AVX2__) && !defined(MGPUSW_SIMD_FORCE_SCALAR)
#define MGPUSW_SIMD_BACKEND_AVX2 1
#include <immintrin.h>
#elif defined(__SSE4_2__) && !defined(MGPUSW_SIMD_FORCE_SCALAR)
#define MGPUSW_SIMD_BACKEND_SSE42 1
#include <nmmintrin.h>
#include <smmintrin.h>
#endif

namespace mgpusw::sw::MGPUSW_SIMD_NS {

inline constexpr int kSimdLanes = 8;

#if defined(MGPUSW_SIMD_BACKEND_AVX2)

inline constexpr const char* kSimdBackendName = "avx2";

struct Vec8 {
  __m256i v;
};

inline Vec8 v_load(const std::int32_t* p) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
}
inline void v_store(std::int32_t* p, Vec8 a) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.v);
}
inline Vec8 v_broadcast(std::int32_t x) { return {_mm256_set1_epi32(x)}; }
inline Vec8 v_add(Vec8 a, Vec8 b) { return {_mm256_add_epi32(a.v, b.v)}; }
inline Vec8 v_sub(Vec8 a, Vec8 b) { return {_mm256_sub_epi32(a.v, b.v)}; }
inline Vec8 v_max(Vec8 a, Vec8 b) { return {_mm256_max_epi32(a.v, b.v)}; }
inline Vec8 v_cmpgt(Vec8 a, Vec8 b) {
  return {_mm256_cmpgt_epi32(a.v, b.v)};
}
inline Vec8 v_cmpeq(Vec8 a, Vec8 b) {
  return {_mm256_cmpeq_epi32(a.v, b.v)};
}
/// Per lane: mask ? b : a (mask lanes are all-ones or all-zero).
inline Vec8 v_blend(Vec8 a, Vec8 b, Vec8 mask) {
  return {_mm256_blendv_epi8(a.v, b.v, mask.v)};
}
/// Lane 0 <- x, lane r <- a[r-1]: the anti-diagonal wavefront rotation.
/// This is on the kernel's loop-carried chain, so merge the incoming
/// lane with one OR: the 0x08 permute selector zeroes the low half, so
/// alignr leaves lane 0 zero, and vmovd puts x in lane 0 of an
/// otherwise-zero vector off the carried chain. An insert would split
/// and rejoin the 128-bit halves for 2-3 extra on-chain cycles.
inline Vec8 v_shift_in(Vec8 a, std::int32_t x) {
  const __m256i low_to_high = _mm256_permute2x128_si256(a.v, a.v, 0x08);
  const __m256i shifted = _mm256_alignr_epi8(a.v, low_to_high, 12);
  const __m256i incoming = _mm256_castsi128_si256(_mm_cvtsi32_si128(x));
  return {_mm256_or_si256(shifted, incoming)};
}
inline std::int32_t v_extract_last(Vec8 a) {
  return _mm256_extract_epi32(a.v, 7);
}

#elif defined(MGPUSW_SIMD_BACKEND_SSE42)

inline constexpr const char* kSimdBackendName = "sse4.2";

struct Vec8 {
  __m128i lo, hi;
};

inline Vec8 v_load(const std::int32_t* p) {
  return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 4))};
}
inline void v_store(std::int32_t* p, Vec8 a) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a.lo);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p + 4), a.hi);
}
inline Vec8 v_broadcast(std::int32_t x) {
  const __m128i v = _mm_set1_epi32(x);
  return {v, v};
}
inline Vec8 v_add(Vec8 a, Vec8 b) {
  return {_mm_add_epi32(a.lo, b.lo), _mm_add_epi32(a.hi, b.hi)};
}
inline Vec8 v_sub(Vec8 a, Vec8 b) {
  return {_mm_sub_epi32(a.lo, b.lo), _mm_sub_epi32(a.hi, b.hi)};
}
inline Vec8 v_max(Vec8 a, Vec8 b) {
  return {_mm_max_epi32(a.lo, b.lo), _mm_max_epi32(a.hi, b.hi)};
}
inline Vec8 v_cmpgt(Vec8 a, Vec8 b) {
  return {_mm_cmpgt_epi32(a.lo, b.lo), _mm_cmpgt_epi32(a.hi, b.hi)};
}
inline Vec8 v_cmpeq(Vec8 a, Vec8 b) {
  return {_mm_cmpeq_epi32(a.lo, b.lo), _mm_cmpeq_epi32(a.hi, b.hi)};
}
inline Vec8 v_blend(Vec8 a, Vec8 b, Vec8 mask) {
  return {_mm_blendv_epi8(a.lo, b.lo, mask.lo),
          _mm_blendv_epi8(a.hi, b.hi, mask.hi)};
}
inline Vec8 v_shift_in(Vec8 a, std::int32_t x) {
  const __m128i hi = _mm_alignr_epi8(a.hi, a.lo, 12);  // [lo3, hi0..hi2]
  const __m128i lo = _mm_insert_epi32(_mm_slli_si128(a.lo, 4), x, 0);
  return {lo, hi};
}
inline std::int32_t v_extract_last(Vec8 a) {
  return _mm_extract_epi32(a.hi, 3);
}

#else  // scalar fallback

inline constexpr const char* kSimdBackendName = "scalar";

struct Vec8 {
  std::int32_t lane[kSimdLanes];
};

inline Vec8 v_load(const std::int32_t* p) {
  Vec8 r;
  std::memcpy(r.lane, p, sizeof(r.lane));
  return r;
}
inline void v_store(std::int32_t* p, Vec8 a) {
  std::memcpy(p, a.lane, sizeof(a.lane));
}
inline Vec8 v_broadcast(std::int32_t x) {
  Vec8 r;
  for (int i = 0; i < kSimdLanes; ++i) r.lane[i] = x;
  return r;
}
inline Vec8 v_add(Vec8 a, Vec8 b) {
  Vec8 r;
  for (int i = 0; i < kSimdLanes; ++i) r.lane[i] = a.lane[i] + b.lane[i];
  return r;
}
inline Vec8 v_sub(Vec8 a, Vec8 b) {
  Vec8 r;
  for (int i = 0; i < kSimdLanes; ++i) r.lane[i] = a.lane[i] - b.lane[i];
  return r;
}
inline Vec8 v_max(Vec8 a, Vec8 b) {
  Vec8 r;
  for (int i = 0; i < kSimdLanes; ++i) {
    r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
  }
  return r;
}
inline Vec8 v_cmpgt(Vec8 a, Vec8 b) {
  Vec8 r;
  for (int i = 0; i < kSimdLanes; ++i) {
    r.lane[i] = a.lane[i] > b.lane[i] ? -1 : 0;
  }
  return r;
}
inline Vec8 v_cmpeq(Vec8 a, Vec8 b) {
  Vec8 r;
  for (int i = 0; i < kSimdLanes; ++i) {
    r.lane[i] = a.lane[i] == b.lane[i] ? -1 : 0;
  }
  return r;
}
inline Vec8 v_blend(Vec8 a, Vec8 b, Vec8 mask) {
  Vec8 r;
  for (int i = 0; i < kSimdLanes; ++i) {
    r.lane[i] = mask.lane[i] != 0 ? b.lane[i] : a.lane[i];
  }
  return r;
}
inline Vec8 v_shift_in(Vec8 a, std::int32_t x) {
  Vec8 r;
  r.lane[0] = x;
  for (int i = 1; i < kSimdLanes; ++i) r.lane[i] = a.lane[i - 1];
  return r;
}
inline std::int32_t v_extract_last(Vec8 a) {
  return a.lane[kSimdLanes - 1];
}

#endif

}  // namespace mgpusw::sw::MGPUSW_SIMD_NS
