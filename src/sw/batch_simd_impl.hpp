// Inter-sequence batch kernel — implementation, instantiated per backend
// TU (after block_simd_lp_impl.hpp, whose width traits it reuses).
//
// One pair per lane, swept row-by-row: the lanes are independent DPs, so
// every step is a full-width vector operation with no skew and no
// shift-in. Sequence codes are stored transposed (code[i * kLanes + l]
// is lane l's i-th base) so each step's query/subject characters are one
// contiguous vector load. Lanes shorter than the group maximum are
// padded with non-matching sentinel codes — see sw/batch_simd.hpp for
// why padded cells can never win the strict '>' best reduction.
//
// Saturation follows the block-kernel watermark argument: H only
// saturates upwards, any saturated lane's maximum lands at/above
// kMax - match, and per-lane maxima are tracked anyway for the result —
// so overflow detection is one compare per lane at the end.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sw/batch_simd.hpp"
#include "sw/simd_lp.hpp"

namespace mgpusw::sw::MGPUSW_SIMD_NS {

namespace lp {

/// Query lanes pad with 4, subject lanes with 5: distinct from every
/// real 2-bit code and from each other, so padded cells never match.
constexpr int kQueryPad = 4;
constexpr int kSubjectPad = 5;

template <class W>
struct BatchScratch {
  std::vector<typename W::Elem> qcodes, scodes, h_row, f_row;
};

template <class W>
BatchScratch<W>& batch_scratch() {
  thread_local BatchScratch<W> s;
  return s;
}

template <class W>
void batch_group_lp(const ScoreScheme& scheme, const PairView* pairs,
                    int n, ScoreResult* out, bool* overflow) {
  using Elem = typename W::Elem;
  using Vec = typename W::Vec;
  constexpr int kL = W::kLanes;

  std::int64_t max_q = 0;
  std::int64_t max_s = 0;
  for (int k = 0; k < n; ++k) {
    out[k] = ScoreResult{};
    overflow[k] = false;
    max_q = std::max(max_q, pairs[k].query_len);
    max_s = std::max(max_s, pairs[k].subject_len);
  }
  if (max_q == 0 || max_s == 0) return;  // every alignment is empty

  BatchScratch<W>& s = batch_scratch<W>();
  s.qcodes.resize(static_cast<std::size_t>(max_q) * kL);
  s.scodes.resize(static_cast<std::size_t>(max_s) * kL);
  s.h_row.resize(static_cast<std::size_t>(max_s) * kL);
  s.f_row.resize(static_cast<std::size_t>(max_s) * kL);

  for (std::int64_t i = 0; i < max_q; ++i) {
    for (int l = 0; l < kL; ++l) {
      s.qcodes[static_cast<std::size_t>(i) * kL + l] =
          l < n && i < pairs[l].query_len
              ? static_cast<Elem>(pairs[l].query[i])
              : static_cast<Elem>(kQueryPad);
    }
  }
  for (std::int64_t j = 0; j < max_s; ++j) {
    for (int l = 0; l < kL; ++l) {
      s.scodes[static_cast<std::size_t>(j) * kL + l] =
          l < n && j < pairs[l].subject_len
              ? static_cast<Elem>(pairs[l].subject[j])
              : static_cast<Elem>(kSubjectPad);
    }
    // Matrix-top borders: H(-1, j) = 0, F(-1, j) = no-gap sentinel.
    for (int l = 0; l < kL; ++l) {
      s.h_row[static_cast<std::size_t>(j) * kL + l] = 0;
      s.f_row[static_cast<std::size_t>(j) * kL + l] = W::kNegInf;
    }
  }

  const Vec v_gap_ext = W::broadcast(static_cast<Elem>(scheme.gap_extend));
  const Vec v_gap_first =
      W::broadcast(static_cast<Elem>(scheme.gap_first()));
  const Vec v_match = W::broadcast(static_cast<Elem>(scheme.match));
  const Vec v_mismatch = W::broadcast(static_cast<Elem>(scheme.mismatch));
  const Vec v_zero = W::broadcast(0);
  const Vec v_one = W::broadcast(1);
  const Vec v_neg_inf = W::broadcast(W::kNegInf);

  // Raw pointers: .data() calls inside the sweep would be reloaded every
  // iteration (the h_row/f_row stores could alias the vector internals).
  const Elem* const qcodes = s.qcodes.data();
  const Elem* const scodes = s.scodes.data();
  Elem* const h_row = s.h_row.data();
  Elem* const f_row = s.f_row.data();

  // Per-lane best, full width; row-major traversal + strict '>' keeps
  // the smallest-row-then-column end cell, like compute_block.
  int best_h[kL] = {};
  std::int64_t best_i[kL];
  std::int64_t best_j[kL];
  for (int l = 0; l < kL; ++l) best_i[l] = best_j[l] = -1;

  for (std::int64_t i = 0; i < max_q; ++i) {
    const Vec vq = W::load(qcodes + i * kL);
    Vec vh_left = v_zero;   // H(i, j-1)
    Vec ve_left = v_neg_inf;  // E(i, j-1); E(i,-1) can't extend a gap
    Vec vdiag = v_zero;     // H(i-1, j-1)

    // Column offsets within the current segment fit the lane type;
    // segments fold into the full-width per-lane best in column order.
    Vec vseg_h = v_zero;
    Vec vseg_j = v_zero;
    Vec vjoff = v_zero;
    std::int64_t seg_base = 0;

    const auto fold_segment = [&](std::int64_t next_base) {
      alignas(32) Elem seg_h[kL];
      alignas(32) Elem seg_j[kL];
      W::store(seg_h, vseg_h);
      W::store(seg_j, vseg_j);
      for (int l = 0; l < kL; ++l) {
        if (static_cast<int>(seg_h[l]) > best_h[l]) {
          best_h[l] = seg_h[l];
          best_i[l] = i;
          best_j[l] = seg_base + seg_j[l];
        }
      }
      vseg_h = v_zero;
      vseg_j = v_zero;
      vjoff = v_zero;
      seg_base = next_base;
    };

    for (std::int64_t j = 0; j < max_s; ++j) {
      if (j - seg_base == W::kSegSteps) fold_segment(j);
      const Vec vup_h = W::load(h_row + j * kL);
      const Vec vup_f = W::load(f_row + j * kL);
      const Vec ve = W::max(W::subs(ve_left, v_gap_ext),
                            W::subs(vh_left, v_gap_first));
      const Vec vf =
          W::max(W::subs(vup_f, v_gap_ext), W::subs(vup_h, v_gap_first));
      const Vec vs = W::load(scodes + j * kL);
      const Vec vsub = W::blend(v_mismatch, v_match, W::cmpeq(vq, vs));
      Vec vh = W::adds(vdiag, vsub);
      vh = W::max(vh, ve);
      vh = W::max(vh, vf);
      vh = W::max(vh, v_zero);

      vdiag = vup_h;  // H(i-1, j) is next column's diagonal
      W::store(h_row + j * kL, vh);
      W::store(f_row + j * kL, vf);

      const Vec vgt = W::cmpgt(vh, vseg_h);
      vseg_h = W::blend(vseg_h, vh, vgt);
      vseg_j = W::blend(vseg_j, vjoff, vgt);
      vjoff = W::adds(vjoff, v_one);

      vh_left = vh;
      ve_left = ve;
    }
    fold_segment(0);
  }

  const int watermark = W::kMax - scheme.match;
  for (int k = 0; k < n; ++k) {
    if (best_h[k] >= watermark) {
      overflow[k] = true;  // possibly saturated: recompute wider
      continue;
    }
    out[k].score = best_h[k];
    if (best_h[k] > 0) out[k].end = CellPos{best_i[k], best_j[k]};
  }
}

}  // namespace lp

void batch_group_i16(const ScoreScheme& scheme, const PairView* pairs,
                     int n, ScoreResult* out, bool* overflow) {
  lp::batch_group_lp<LpI16>(scheme, pairs, n, out, overflow);
}

void batch_group_i8(const ScoreScheme& scheme, const PairView* pairs,
                    int n, ScoreResult* out, bool* overflow) {
  lp::batch_group_lp<LpI8>(scheme, pairs, n, out, overflow);
}

int batch_i16_lanes() { return LpI16::kLanes; }
int batch_i8_lanes() { return LpI8::kLanes; }

}  // namespace mgpusw::sw::MGPUSW_SIMD_NS
