#include "sw/kernel.hpp"

#include <string>

#include "base/error.hpp"
#include "sw/block_antidiag.hpp"
#include "sw/block_simd.hpp"
#include "sw/block_simd_lp.hpp"
#include "sw/block_strip.hpp"

namespace mgpusw::sw {

const std::vector<KernelInfo>& kernel_registry() {
  static const std::vector<KernelInfo> registry = [] {
    std::vector<KernelInfo> table;
    table.push_back({std::string(kDefaultKernel), &compute_block,
                     "scalar row sweep (reference)"});
    table.push_back({"antidiag", &compute_block_antidiag,
                     "scalar anti-diagonal sweep (GPU traversal)"});
    table.push_back({"strip4", &compute_block_strip,
                     "4-row strip-mined scalar sweep"});
    table.push_back(
        {"simd", &compute_block_simd,
         std::string("8-lane SIMD anti-diagonal (dispatched: ") +
             active_simd_backend() + ")"});
    table.push_back({"simd16", &compute_block_i16,
                     "16-lane saturating int16 SIMD; escalates to int32 "
                     "on overflow"});
    table.push_back({"simd8", &compute_block_i8,
                     "32-lane saturating int8 SIMD; escalates "
                     "int8->int16->int32 on overflow"});
    table.push_back({"auto", &compute_block_auto,
                     "narrowest safe precision (full int8->int32 ladder)"});
    // Pinned backends, strongest first; only the ones this CPU can run.
    if (simd_backend_runnable(SimdIsa::kAvx2) &&
        detected_simd_isa() >= SimdIsa::kAvx2) {
      table.push_back({"simd-avx2", &simd_avx2::compute_block_simd_impl,
                       "SIMD kernel pinned to the AVX2 backend"});
      table.push_back({"simd16-avx2", &simd_avx2::compute_block_i16_pinned,
                       "int16 ladder pinned to the AVX2 backend"});
      table.push_back({"simd8-avx2", &simd_avx2::compute_block_i8_pinned,
                       "int8 ladder pinned to the AVX2 backend"});
    }
    if (simd_backend_runnable(SimdIsa::kSse42) &&
        detected_simd_isa() >= SimdIsa::kSse42) {
      table.push_back({"simd-sse42", &simd_sse42::compute_block_simd_impl,
                       "SIMD kernel pinned to the SSE4.2 backend"});
      table.push_back({"simd16-sse42", &simd_sse42::compute_block_i16_pinned,
                       "int16 ladder pinned to the SSE4.2 backend"});
      table.push_back({"simd8-sse42", &simd_sse42::compute_block_i8_pinned,
                       "int8 ladder pinned to the SSE4.2 backend"});
    }
    table.push_back({"simd-scalar", &simd_scalar::compute_block_simd_impl,
                     "SIMD kernel pinned to the scalar fallback backend"});
    table.push_back({"simd16-scalar", &simd_scalar::compute_block_i16_pinned,
                     "int16 ladder pinned to the scalar backend"});
    table.push_back({"simd8-scalar", &simd_scalar::compute_block_i8_pinned,
                     "int8 ladder pinned to the scalar backend"});
    return table;
  }();
  return registry;
}

BlockKernelFn find_kernel(std::string_view name) {
  for (const KernelInfo& info : kernel_registry()) {
    if (info.name == name) return info.fn;
  }
  throw InvalidArgument("unknown block kernel '" + std::string(name) +
                        "' (registered: " + kernel_names() + ")");
}

std::string kernel_names() {
  std::string names;
  for (const KernelInfo& info : kernel_registry()) {
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  return names;
}

}  // namespace mgpusw::sw
