// Block-kernel registry: every way this repo can compute a block, by name.
//
// The engine, the vgpu executors, device calibration, the benches and the
// CLI --kernel flags all select block kernels through this table instead
// of hard-coding calls, so adding a kernel (a new traversal, a new ISA
// backend, a future per-device heterogeneous choice) is one registration
// here plus nothing anywhere else.
//
// Registered names:
//   row          scalar row sweep (the reference; fastest scalar on most
//                hosts)
//   antidiag     scalar anti-diagonal sweep (the GPU traversal)
//   strip4       4-row strip-mined scalar sweep
//   simd         8-lane SIMD anti-diagonal, runtime-dispatched to the
//                strongest ISA backend the CPU supports
//   simd16       16-lane saturating int16 SIMD with overflow detection;
//                escalates to the int32 simd kernel when a block might
//                have saturated (bit-identical either way)
//   simd8        32-lane saturating int8 SIMD; escalates int8 -> int16
//                -> int32
//   auto         narrowest safe precision — the full int8 ladder, named
//                for DeviceSpec::kernel / calibration to select
//   simd-scalar  the SIMD kernel pinned to its scalar backend (always
//                present — the guaranteed fallback)
//   simd-sse42 / simd-avx2
//                pinned vector backends, registered only when the running
//                CPU can execute them (ablation + parity testing)
//   simd16-* / simd8-*
//                the narrow ladders pinned per backend, same registration
//                rule as the pinned simd-* entries
//
// All entries satisfy the same contract and are bit-identical to `row`
// (tests/sw_kernel_parity_test.cpp sweeps the whole table).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sw/block.hpp"

namespace mgpusw::sw {

/// Every block kernel is a pure function of (scheme, args).
using BlockKernelFn = BlockResult (*)(const ScoreScheme& scheme,
                                      const BlockArgs& args);

struct KernelInfo {
  std::string name;
  BlockKernelFn fn = nullptr;
  std::string description;
};

/// Name of the default kernel (the scalar row sweep).
inline constexpr std::string_view kDefaultKernel = "row";

/// All kernels runnable on this host, default first. Built once; stable
/// for the process lifetime.
[[nodiscard]] const std::vector<KernelInfo>& kernel_registry();

/// Looks a kernel up by name; throws InvalidArgument listing the valid
/// names for unknown ones.
[[nodiscard]] BlockKernelFn find_kernel(std::string_view name);

/// Comma-separated registered names, for --help strings and errors.
[[nodiscard]] std::string kernel_names();

}  // namespace mgpusw::sw
