#include "sw/block_antidiag.hpp"

#include <algorithm>
#include <vector>

#include "base/error.hpp"

namespace mgpusw::sw {

namespace {

/// Per-thread scratch: one slot per block row for the rolling
/// anti-diagonal state.
struct Scratch {
  std::vector<Score> h_prev2, h_prev, h_cur;
  std::vector<Score> e_prev, e_cur;
  std::vector<Score> f_prev, f_cur;

  void resize(std::int64_t rows) {
    const auto n = static_cast<std::size_t>(rows);
    h_prev2.resize(n);
    h_prev.resize(n);
    h_cur.resize(n);
    e_prev.resize(n);
    e_cur.resize(n);
    f_prev.resize(n);
    f_cur.resize(n);
  }
};

thread_local Scratch t_scratch;

}  // namespace

BlockResult compute_block_antidiag(const ScoreScheme& scheme,
                                   const BlockArgs& args) {
  // Degenerate shapes would break the alias-safety argument below (the
  // in-place borders are read and written on the same anti-diagonal in
  // the wrong order when a dimension is < 3); the row-scan kernel handles
  // them with identical semantics.
  if (args.rows < 3 || args.cols < 3) {
    return compute_block(scheme, args);
  }

  const Score gap_first = scheme.gap_first();
  const Score gap_ext = scheme.gap_extend;

  Scratch& scratch = t_scratch;
  scratch.resize(args.rows);

  ScoreResult best;
  Score border_max = 0;
  const std::int64_t diagonals = args.rows + args.cols - 1;
  for (std::int64_t d = 0; d < diagonals; ++d) {
    const std::int64_t i_lo =
        std::max<std::int64_t>(0, d - (args.cols - 1));
    const std::int64_t i_hi = std::min<std::int64_t>(args.rows - 1, d);
    // Ascending i: for the minimal supported shapes (rows, cols >= 3)
    // every aliased border cell is read (by a lower i) before it is
    // written (by i == rows-1 / j == cols-1 on the same diagonal).
    for (std::int64_t i = i_lo; i <= i_hi; ++i) {
      const std::int64_t j = d - i;
      const auto si = static_cast<std::size_t>(i);

      const Score left_h =
          j > 0 ? scratch.h_prev[si] : args.left_h[i];
      const Score left_e =
          j > 0 ? scratch.e_prev[si] : args.left_e[i];
      const Score up_h =
          i > 0 ? scratch.h_prev[si - 1] : args.top_h[j];
      const Score up_f =
          i > 0 ? scratch.f_prev[si - 1] : args.top_f[j];
      Score diag;
      if (i == 0) {
        diag = j == 0 ? args.corner_h : args.top_h[j - 1];
      } else if (j == 0) {
        diag = args.left_h[i - 1];
      } else {
        diag = scratch.h_prev2[si - 1];
      }

      const Score e = std::max<Score>(left_e - gap_ext,
                                      left_h - gap_first);
      const Score f = std::max<Score>(up_f - gap_ext, up_h - gap_first);
      Score h = diag + (args.query[i] == args.subject[j]
                            ? scheme.match
                            : scheme.mismatch);
      if (h < e) h = e;
      if (h < f) h = f;
      if (h < 0) h = 0;

      scratch.h_cur[si] = h;
      scratch.e_cur[si] = e;
      scratch.f_cur[si] = f;

      if (i == args.rows - 1) {
        args.bottom_h[j] = h;
        args.bottom_f[j] = f;
        border_max = std::max(border_max, h);
      }
      if (j == args.cols - 1) {
        args.right_h[i] = h;
        args.right_e[i] = e;
        border_max = std::max(border_max, h);
      }

      const ScoreResult candidate{
          h, CellPos{args.global_row + i, args.global_col + j}};
      if (improves(candidate, best)) best = candidate;
    }
    scratch.h_prev2.swap(scratch.h_prev);
    scratch.h_prev.swap(scratch.h_cur);
    scratch.e_prev.swap(scratch.e_cur);
    scratch.f_prev.swap(scratch.f_cur);
  }

  BlockResult result;
  result.best = best;
  result.border_max = border_max;
  return result;
}

}  // namespace mgpusw::sw
