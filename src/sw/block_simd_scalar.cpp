// Scalar instantiation of the SIMD block kernel: the guaranteed fallback
// the dispatcher can always run, on any CPU. MGPUSW_SIMD_FORCE_SCALAR
// pins the scalar shim even if this TU's compile flags would allow a
// vector backend, so the fallback path is genuinely exercised (and
// parity-tested) on vector-capable build hosts too.
#define MGPUSW_SIMD_FORCE_SCALAR 1
#define MGPUSW_SIMD_NS simd_scalar

#include "sw/batch_simd_impl.hpp"
#include "sw/block_simd_impl.hpp"
#include "sw/block_simd_lp_impl.hpp"

namespace mgpusw::sw::simd_scalar {

const char* backend_name() { return kSimdBackendName; }

}  // namespace mgpusw::sw::simd_scalar
