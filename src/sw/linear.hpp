// Serial linear-memory Smith-Waterman score scan.
//
// This is the CPU baseline of the evaluation (experiment R-B1) and the
// ground-truth oracle for every parallel decomposition on inputs too
// large for the full-matrix reference. Memory: O(n) for the rolling row
// plus the unpacked sequences.
#pragma once

#include <vector>

#include "seq/sequence.hpp"
#include "sw/scoring.hpp"

namespace mgpusw::sw {

/// Computes the optimal local alignment score (and end cell) of query vs
/// subject using one full-width block sweep.
[[nodiscard]] ScoreResult linear_score(const ScoreScheme& scheme,
                                       const seq::Sequence& query,
                                       const seq::Sequence& subject);

/// As linear_score but over pre-unpacked nucleotide arrays; used by
/// callers that already hold unpacked caches.
[[nodiscard]] ScoreResult linear_score_unpacked(
    const ScoreScheme& scheme, const std::vector<seq::Nt>& query,
    const std::vector<seq::Nt>& subject);

/// Finds the start cell of an optimal local alignment that ends at `end`:
/// runs the same scan on the reversed prefixes and mirrors the result
/// (CUDAlign stage-2 technique). Returns the (row, col) of the first
/// aligned pair. Requires end to be a real cell of a non-empty alignment.
[[nodiscard]] CellPos find_alignment_start(const ScoreScheme& scheme,
                                           const seq::Sequence& query,
                                           const seq::Sequence& subject,
                                           const ScoreResult& stage1);

}  // namespace mgpusw::sw
