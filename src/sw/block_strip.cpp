#include "sw/block_strip.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace mgpusw::sw {

namespace {

constexpr std::int64_t kStrip = 4;

/// One strip of LANES rows. LANES is a template parameter so the lane
/// loops fully unroll and the per-lane state stays in registers — that
/// is the whole point of strip mining.
template <int kLanes>
void process_strip(const ScoreScheme& scheme, const BlockArgs& args,
                   std::int64_t i0, Score* row_h, Score* row_f,
                   Score strip_diag0, ScoreResult& best,
                   Score& border_max) {
  const Score gap_first = scheme.gap_first();
  const Score gap_ext = scheme.gap_extend;
  const Score match = scheme.match;
  const Score mismatch = scheme.mismatch;

  Score h_left[kLanes];
  Score e_left[kLanes];
  seq::Nt q[kLanes];
  Score best_h[kLanes];
  std::int64_t best_col[kLanes];
  for (int r = 0; r < kLanes; ++r) {
    h_left[r] = args.left_h[i0 + r];
    e_left[r] = args.left_e[i0 + r];
    q[r] = args.query[i0 + r];
    best_h[r] = -1;  // strictly below any reachable H
    best_col[r] = -1;
  }

  Score diag0 = strip_diag0;
  for (std::int64_t j = 0; j < args.cols; ++j) {
    const seq::Nt sj = args.subject[j];
    const Score up_h = row_h[j];  // H(i0-1, j) from the strip above
    const Score up_f = row_f[j];

    Score lane_diag = diag0;
    Score above_h = up_h;
    Score above_f = up_f;
    for (int r = 0; r < kLanes; ++r) {
      const Score e =
          std::max<Score>(e_left[r] - gap_ext, h_left[r] - gap_first);
      const Score f =
          std::max<Score>(above_f - gap_ext, above_h - gap_first);
      Score h = lane_diag + (q[r] == sj ? match : mismatch);
      if (h < e) h = e;
      if (h < f) h = f;
      if (h < 0) h = 0;

      lane_diag = h_left[r];  // old H(i0+r, j-1): diag for lane r+1
      h_left[r] = h;
      e_left[r] = e;
      above_h = h;
      above_f = f;
      if (h > best_h[r]) {
        best_h[r] = h;
        best_col[r] = j;
      }
    }
    row_h[j] = above_h;  // H/F(last strip row, j) for the next strip
    row_f[j] = above_f;
    diag0 = up_h;
  }

  // Border maxima fold into the epilogue: the right-column value of row
  // i0+r is h_left[r], and when this strip carries the block's last row
  // its bottom-row maximum is the last lane's running row maximum
  // (H >= 0, so best_h covers it exactly).
  for (int r = 0; r < kLanes; ++r) {
    args.right_h[i0 + r] = h_left[r];
    args.right_e[i0 + r] = e_left[r];
    border_max = std::max(border_max, h_left[r]);
    if (i0 + r == args.rows - 1) {
      border_max = std::max(border_max, best_h[r]);
    }
    // Row-major tie-breaking: earlier rows win ties, so only strictly
    // larger row maxima update the block best.
    if (best_h[r] > best.score) {
      best.score = best_h[r];
      best.end =
          CellPos{args.global_row + i0 + r, args.global_col + best_col[r]};
    }
  }
}

}  // namespace

BlockResult compute_block_strip(const ScoreScheme& scheme,
                                const BlockArgs& args) {
  MGPUSW_CHECK(args.rows > 0 && args.cols > 0);

  if (args.bottom_h != args.top_h) {
    std::copy(args.top_h, args.top_h + args.cols, args.bottom_h);
  }
  if (args.bottom_f != args.top_f) {
    std::copy(args.top_f, args.top_f + args.cols, args.bottom_f);
  }
  Score* const row_h = args.bottom_h;
  Score* const row_f = args.bottom_f;

  ScoreResult best;
  Score border_max = 0;

  // H(strip_first_row - 1, block left border): the corner for the first
  // strip, the saved original left-border value afterwards.
  Score strip_diag0 = args.corner_h;

  for (std::int64_t i0 = 0; i0 < args.rows; i0 += kStrip) {
    const std::int64_t lanes =
        std::min<std::int64_t>(kStrip, args.rows - i0);
    // Original H(last strip row, left border) before the sweep clobbers
    // the (possibly aliased) left/right arrays: next strip's diag0.
    const Score next_strip_diag0 = args.left_h[i0 + lanes - 1];

    switch (lanes) {
      case 4:
        process_strip<4>(scheme, args, i0, row_h, row_f, strip_diag0, best,
                         border_max);
        break;
      case 3:
        process_strip<3>(scheme, args, i0, row_h, row_f, strip_diag0, best,
                         border_max);
        break;
      case 2:
        process_strip<2>(scheme, args, i0, row_h, row_f, strip_diag0, best,
                         border_max);
        break;
      default:
        process_strip<1>(scheme, args, i0, row_h, row_f, strip_diag0, best,
                         border_max);
        break;
    }
    strip_diag0 = next_strip_diag0;
  }

  BlockResult result;
  result.best = best;
  result.border_max = border_max;
  return result;
}

}  // namespace mgpusw::sw
