// SSE4.2 instantiation of the SIMD block kernel. CMake compiles this TU
// with -msse4.2 on x86 hosts; elsewhere it degrades to scalar. See
// block_simd_avx2.cpp for the dispatch contract.
#define MGPUSW_SIMD_NS simd_sse42

#include "sw/batch_simd_impl.hpp"
#include "sw/block_simd_impl.hpp"
#include "sw/block_simd_lp_impl.hpp"

namespace mgpusw::sw::simd_sse42 {

const char* backend_name() { return kSimdBackendName; }

}  // namespace mgpusw::sw::simd_sse42
