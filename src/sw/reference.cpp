#include "sw/reference.hpp"

#include <algorithm>
#include <vector>

#include "base/error.hpp"

namespace mgpusw::sw {

namespace {

struct FullMatrices {
  std::int64_t rows = 0;  // query length
  std::int64_t cols = 0;  // subject length
  // (rows+1) x (cols+1), row-major; index 0 is the boundary.
  std::vector<Score> h, e, f;

  [[nodiscard]] std::size_t idx(std::int64_t i, std::int64_t j) const {
    return static_cast<std::size_t>(i * (cols + 1) + j);
  }
};

FullMatrices fill_local(const ScoreScheme& scheme,
                        const seq::Sequence& query,
                        const seq::Sequence& subject) {
  FullMatrices m;
  m.rows = query.size();
  m.cols = subject.size();
  const std::size_t total =
      static_cast<std::size_t>((m.rows + 1) * (m.cols + 1));
  m.h.assign(total, 0);
  m.e.assign(total, kNegInf);
  m.f.assign(total, kNegInf);

  const Score gap_first = scheme.gap_first();
  const Score gap_ext = scheme.gap_extend;

  for (std::int64_t i = 1; i <= m.rows; ++i) {
    const seq::Nt qa = query.at(i - 1);
    for (std::int64_t j = 1; j <= m.cols; ++j) {
      const std::size_t cur = m.idx(i, j);
      const Score e = std::max<Score>(m.e[m.idx(i, j - 1)] - gap_ext,
                                      m.h[m.idx(i, j - 1)] - gap_first);
      const Score f = std::max<Score>(m.f[m.idx(i - 1, j)] - gap_ext,
                                      m.h[m.idx(i - 1, j)] - gap_first);
      Score h = m.h[m.idx(i - 1, j - 1)] +
                scheme.substitution(qa, subject.at(j - 1));
      if (h < e) h = e;
      if (h < f) h = f;
      if (h < 0) h = 0;
      m.e[cur] = e;
      m.f[cur] = f;
      m.h[cur] = h;
    }
  }
  return m;
}

void check_size(const seq::Sequence& query, const seq::Sequence& subject,
                std::int64_t max_cells) {
  const std::int64_t cells = query.size() * subject.size();
  MGPUSW_REQUIRE(cells <= max_cells,
                 "reference implementation limited to "
                     << max_cells << " cells, got " << cells
                     << "; use linear_score / the engine instead");
}

ScoreResult best_cell(const FullMatrices& m) {
  ScoreResult best;
  for (std::int64_t i = 1; i <= m.rows; ++i) {
    for (std::int64_t j = 1; j <= m.cols; ++j) {
      const Score h = m.h[m.idx(i, j)];
      if (h > best.score) {
        best.score = h;
        best.end = CellPos{i - 1, j - 1};
      }
    }
  }
  return best;
}

}  // namespace

ScoreResult reference_score(const ScoreScheme& scheme,
                            const seq::Sequence& query,
                            const seq::Sequence& subject,
                            std::int64_t max_cells) {
  scheme.validate();
  check_size(query, subject, max_cells);
  if (query.empty() || subject.empty()) return ScoreResult{};
  return best_cell(fill_local(scheme, query, subject));
}

Alignment reference_local_alignment(const ScoreScheme& scheme,
                                    const seq::Sequence& query,
                                    const seq::Sequence& subject,
                                    std::int64_t max_cells) {
  scheme.validate();
  check_size(query, subject, max_cells);
  Alignment alignment;
  if (query.empty() || subject.empty()) return alignment;

  const FullMatrices m = fill_local(scheme, query, subject);
  const ScoreResult best = best_cell(m);
  alignment.score = best.score;
  if (best.score == 0) return alignment;

  const Score gap_first = scheme.gap_first();
  const Score gap_ext = scheme.gap_extend;

  // Traceback from the best H cell. state: 0 = H, 1 = E, 2 = F.
  std::string reversed_ops;
  std::int64_t i = best.end.row + 1;
  std::int64_t j = best.end.col + 1;
  int state = 0;
  while (true) {
    if (state == 0) {
      const Score h = m.h[m.idx(i, j)];
      if (h == 0) break;
      const Score diag = m.h[m.idx(i - 1, j - 1)] +
                         scheme.substitution(query.at(i - 1),
                                             subject.at(j - 1));
      if (h == diag) {
        reversed_ops.push_back(
            query.at(i - 1) == subject.at(j - 1) ? '=' : 'X');
        --i;
        --j;
      } else if (h == m.e[m.idx(i, j)]) {
        state = 1;
      } else {
        MGPUSW_CHECK(h == m.f[m.idx(i, j)]);
        state = 2;
      }
    } else if (state == 1) {
      reversed_ops.push_back('I');
      const Score e = m.e[m.idx(i, j)];
      const bool extend = e == m.e[m.idx(i, j - 1)] - gap_ext;
      --j;
      if (!extend) {
        MGPUSW_CHECK(e == m.h[m.idx(i, j)] - gap_first);
        state = 0;
      }
    } else {
      reversed_ops.push_back('D');
      const Score f = m.f[m.idx(i, j)];
      const bool extend = f == m.f[m.idx(i - 1, j)] - gap_ext;
      --i;
      if (!extend) {
        MGPUSW_CHECK(f == m.h[m.idx(i, j)] - gap_first);
        state = 0;
      }
    }
  }

  alignment.query_begin = i;
  alignment.subject_begin = j;
  alignment.query_end = best.end.row + 1;
  alignment.subject_end = best.end.col + 1;
  alignment.ops.assign(reversed_ops.rbegin(), reversed_ops.rend());
  return alignment;
}

Score reference_global_score(const ScoreScheme& scheme,
                             const seq::Sequence& query,
                             const seq::Sequence& subject,
                             std::int64_t max_cells) {
  scheme.validate();
  check_size(query, subject, max_cells);
  const std::int64_t rows = query.size();
  const std::int64_t cols = subject.size();
  if (rows == 0 && cols == 0) return 0;

  const Score gap_first = scheme.gap_first();
  const Score gap_ext = scheme.gap_extend;

  const auto width = static_cast<std::size_t>(cols + 1);
  std::vector<Score> h(width), e(width), f(width);
  // Row 0: global boundary — inserts along the top.
  h[0] = 0;
  e[0] = kNegInf;
  f[0] = kNegInf;
  for (std::int64_t j = 1; j <= cols; ++j) {
    h[static_cast<std::size_t>(j)] =
        -(scheme.gap_open + static_cast<Score>(j) * gap_ext);
    e[static_cast<std::size_t>(j)] = h[static_cast<std::size_t>(j)];
    f[static_cast<std::size_t>(j)] = kNegInf;
  }

  for (std::int64_t i = 1; i <= rows; ++i) {
    Score diag = h[0];
    h[0] = -(scheme.gap_open + static_cast<Score>(i) * gap_ext);
    Score f_left = h[0];  // F state along the left boundary
    Score e_cur = kNegInf;
    const seq::Nt qa = query.at(i - 1);
    // f vector currently holds row i-1's F; overwrite in place.
    f[0] = f_left;
    Score h_left = h[0];
    for (std::int64_t j = 1; j <= cols; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      e_cur = std::max<Score>(e_cur - gap_ext, h_left - gap_first);
      const Score f_cur =
          std::max<Score>(f[sj] - gap_ext, h[sj] - gap_first);
      Score best = diag + scheme.substitution(qa, subject.at(j - 1));
      if (best < e_cur) best = e_cur;
      if (best < f_cur) best = f_cur;
      diag = h[sj];
      h[sj] = best;
      f[sj] = f_cur;
      h_left = best;
    }
  }
  return h[static_cast<std::size_t>(cols)];
}

}  // namespace mgpusw::sw
