#include "sw/linear.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "sw/block.hpp"

namespace mgpusw::sw {

namespace {

std::vector<seq::Nt> unpack(const seq::Sequence& s) {
  std::vector<seq::Nt> out(static_cast<std::size_t>(s.size()));
  s.extract(0, s.size(), out.data());
  return out;
}

}  // namespace

ScoreResult linear_score_unpacked(const ScoreScheme& scheme,
                                  const std::vector<seq::Nt>& query,
                                  const std::vector<seq::Nt>& subject) {
  scheme.validate();
  if (query.empty() || subject.empty()) return ScoreResult{};

  const auto rows = static_cast<std::int64_t>(query.size());
  const auto cols = static_cast<std::int64_t>(subject.size());

  std::vector<Score> row_h(static_cast<std::size_t>(cols), 0);
  std::vector<Score> row_f(static_cast<std::size_t>(cols), kNegInf);
  std::vector<Score> col_h(static_cast<std::size_t>(rows), 0);
  std::vector<Score> col_e(static_cast<std::size_t>(rows), kNegInf);

  BlockArgs args;
  args.query = query.data();
  args.subject = subject.data();
  args.rows = rows;
  args.cols = cols;
  args.top_h = row_h.data();
  args.top_f = row_f.data();
  args.left_h = col_h.data();
  args.left_e = col_e.data();
  args.corner_h = 0;
  args.bottom_h = row_h.data();
  args.bottom_f = row_f.data();
  args.right_h = col_h.data();
  args.right_e = col_e.data();

  return compute_block(scheme, args).best;
}

ScoreResult linear_score(const ScoreScheme& scheme,
                         const seq::Sequence& query,
                         const seq::Sequence& subject) {
  return linear_score_unpacked(scheme, unpack(query), unpack(subject));
}

CellPos find_alignment_start(const ScoreScheme& scheme,
                             const seq::Sequence& query,
                             const seq::Sequence& subject,
                             const ScoreResult& stage1) {
  scheme.validate();
  MGPUSW_REQUIRE(stage1.score > 0, "stage-1 result has no alignment");
  MGPUSW_REQUIRE(stage1.end.row >= 0 && stage1.end.row < query.size(),
                 "stage-1 end row out of range");
  MGPUSW_REQUIRE(stage1.end.col >= 0 && stage1.end.col < subject.size(),
                 "stage-1 end column out of range");

  // Anchored-extension DP on the reversed prefixes: the alignment is
  // forced to start at reversed cell (0,0) — i.e. to end at `stage1.end`
  // in the forward matrix — and we look for the farthest cell where the
  // accumulated score reaches stage1.score. No zero-clamp here: this is
  // an extension, not a free local alignment.
  const std::int64_t rows = stage1.end.row + 1;
  const std::int64_t cols = stage1.end.col + 1;

  std::vector<seq::Nt> rev_q(static_cast<std::size_t>(rows));
  std::vector<seq::Nt> rev_s(static_cast<std::size_t>(cols));
  for (std::int64_t i = 0; i < rows; ++i) {
    rev_q[static_cast<std::size_t>(i)] = query.at(stage1.end.row - i);
  }
  for (std::int64_t j = 0; j < cols; ++j) {
    rev_s[static_cast<std::size_t>(j)] = subject.at(stage1.end.col - j);
  }

  const Score gap_first = scheme.gap_first();
  const Score gap_ext = scheme.gap_extend;

  std::vector<Score> row_h(static_cast<std::size_t>(cols), kNegInf);
  std::vector<Score> row_f(static_cast<std::size_t>(cols), kNegInf);

  Score best = kNegInf;
  CellPos best_rev{-1, -1};

  Score diag_carry = 0;  // H(-1,-1) of the anchored problem
  for (std::int64_t i = 0; i < rows; ++i) {
    Score h_left = kNegInf;
    Score e_left = kNegInf;
    Score h_diag = diag_carry;
    const seq::Nt qa = rev_q[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < cols; ++j) {
      const Score e = std::max<Score>(e_left - gap_ext, h_left - gap_first);
      const Score f =
          std::max<Score>(row_f[static_cast<std::size_t>(j)] - gap_ext,
                          row_h[static_cast<std::size_t>(j)] - gap_first);
      Score h = h_diag + scheme.substitution(
                             qa, rev_s[static_cast<std::size_t>(j)]);
      if (h < e) h = e;
      if (h < f) h = f;

      h_diag = row_h[static_cast<std::size_t>(j)];
      row_h[static_cast<std::size_t>(j)] = h;
      row_f[static_cast<std::size_t>(j)] = f;
      h_left = h;
      e_left = e;

      // Prefer the farthest-reaching start (largest reversed row, then
      // column) among cells achieving the best score: that matches the
      // longest optimal alignment ending at stage1.end. Strictly-greater
      // keeps the first such cell scanning forward; we instead prefer
      // later cells on ties deliberately (>=) to maximise extension.
      if (h >= best) {
        best = h;
        best_rev = CellPos{i, j};
      }
    }
    diag_carry = kNegInf;  // H(i, -1) is unreachable for i >= 0
  }

  MGPUSW_CHECK_MSG(best == stage1.score,
                   "anchored reverse scan found " << best
                       << ", stage 1 reported " << stage1.score);
  return CellPos{stage1.end.row - best_rev.row,
                 stage1.end.col - best_rev.col};
}

}  // namespace mgpusw::sw
