#include "sw/block.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace mgpusw::sw {

BlockResult compute_block(const ScoreScheme& scheme, const BlockArgs& args) {
  MGPUSW_CHECK(args.rows > 0 && args.cols > 0);
  MGPUSW_CHECK(args.query != nullptr && args.subject != nullptr);
  MGPUSW_CHECK(args.top_h != nullptr && args.top_f != nullptr);
  MGPUSW_CHECK(args.left_h != nullptr && args.left_e != nullptr);
  MGPUSW_CHECK(args.bottom_h != nullptr && args.bottom_f != nullptr);
  MGPUSW_CHECK(args.right_h != nullptr && args.right_e != nullptr);

  const Score gap_first = scheme.gap_first();
  const Score gap_ext = scheme.gap_extend;
  const Score match = scheme.match;
  const Score mismatch = scheme.mismatch;

  // Seed the rolling row state from the top border. The outputs may alias
  // the inputs, in which case this is a no-op.
  if (args.bottom_h != args.top_h) {
    std::copy(args.top_h, args.top_h + args.cols, args.bottom_h);
  }
  if (args.bottom_f != args.top_f) {
    std::copy(args.top_f, args.top_f + args.cols, args.bottom_f);
  }

  Score* const row_h = args.bottom_h;
  Score* const row_f = args.bottom_f;

  ScoreResult best;  // score 0, empty alignment
  Score border_max = 0;
  Score diag_carry = args.corner_h;

  for (std::int64_t i = 0; i < args.rows; ++i) {
    const seq::Nt qa = args.query[i];
    Score h_left = args.left_h[i];
    Score e_left = args.left_e[i];
    // Original H(r, col-1): becomes the diagonal for the next row even if
    // right_h aliases left_h and overwrites it below.
    const Score next_diag = h_left;
    Score h_diag = diag_carry;

    Score best_h_row = -1;        // strictly below any reachable H (H >= 0)
    std::int64_t best_j_row = -1;

    for (std::int64_t j = 0; j < args.cols; ++j) {
      const Score e = std::max<Score>(e_left - gap_ext, h_left - gap_first);
      const Score f =
          std::max<Score>(row_f[j] - gap_ext, row_h[j] - gap_first);
      Score h = h_diag + (qa == args.subject[j] ? match : mismatch);
      if (h < e) h = e;
      if (h < f) h = f;
      if (h < 0) h = 0;

      h_diag = row_h[j];
      row_h[j] = h;
      row_f[j] = f;
      h_left = h;
      e_left = e;

      // Strict '>' keeps the first (smallest column) maximum in this row.
      if (h > best_h_row) {
        best_h_row = h;
        best_j_row = j;
      }
    }

    args.right_h[i] = h_left;
    args.right_e[i] = e_left;
    diag_carry = next_diag;

    // Border maxima without a second border pass: the right-column value
    // is this row's final H, and the bottom row's maximum is the last
    // row's running maximum (H >= 0, so best_h_row covers it exactly).
    border_max = std::max(border_max, h_left);
    if (i == args.rows - 1) border_max = std::max(border_max, best_h_row);

    // Row-major tie-breaking: an earlier row always wins ties, so only a
    // strictly larger row maximum updates the block best.
    if (best_h_row > best.score) {
      best.score = best_h_row;
      best.end = CellPos{args.global_row + i, args.global_col + best_j_row};
    }
  }

  BlockResult result;
  result.best = best;
  result.border_max = border_max;
  return result;
}

}  // namespace mgpusw::sw
