// Batch alignment driver: grouping, precision ladder, backend dispatch.
//
// Pairs are sorted by dominant length (descending) so each vector group
// packs similarly-sized alignments and pads little, then swept through
// the narrow inter-sequence kernels. Lanes that hit the saturation
// watermark are collected and re-run at the next wider precision —
// int8 -> int16 -> exact full-precision per-pair fallback — and results
// are scattered back to input order at the end.
#include "sw/batch_simd.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>

#include "base/error.hpp"
#include "sw/block.hpp"
#include "sw/block_simd.hpp"

namespace mgpusw::sw {

namespace {

/// Largest lane count any backend runs (AVX2 int8); sizes group scratch.
constexpr int kMaxLanes = 32;
constexpr int kI16Max = 32767;
constexpr int kI8Max = 127;

/// Same headroom pre-check as the narrow block kernels: every scoring
/// parameter at most a quarter of the lane maximum.
bool scheme_fits(const ScoreScheme& scheme, int lane_max) {
  const int cap = lane_max / 4;
  return scheme.match <= cap && -scheme.mismatch <= cap &&
         scheme.gap_first() <= cap && scheme.gap_extend <= cap;
}

using GroupFn = void (*)(const ScoreScheme&, const PairView*, int,
                         ScoreResult*, bool*);

struct BatchDispatch {
  GroupFn i16;
  GroupFn i8;
  int i16_lanes;  // group size per tier: backends differ in lane count
  int i8_lanes;
};

BatchDispatch resolve() {
  const SimdIsa isa = detected_simd_isa();
  if (isa >= SimdIsa::kAvx2 && simd_backend_runnable(SimdIsa::kAvx2)) {
    return {&simd_avx2::batch_group_i16, &simd_avx2::batch_group_i8,
            simd_avx2::batch_i16_lanes(), simd_avx2::batch_i8_lanes()};
  }
  if (isa >= SimdIsa::kSse42 && simd_backend_runnable(SimdIsa::kSse42)) {
    return {&simd_sse42::batch_group_i16, &simd_sse42::batch_group_i8,
            simd_sse42::batch_i16_lanes(), simd_sse42::batch_i8_lanes()};
  }
  return {&simd_scalar::batch_group_i16, &simd_scalar::batch_group_i8,
          simd_scalar::batch_i16_lanes(), simd_scalar::batch_i8_lanes()};
}

const BatchDispatch& batch_dispatch() {
  static const BatchDispatch d = resolve();
  return d;
}

/// Exact per-pair score: one full-width block with matrix-edge borders —
/// the same computation linear_score performs.
ScoreResult exact_pair_score(const ScoreScheme& scheme, const PairView& p) {
  if (p.query_len == 0 || p.subject_len == 0) return {};
  std::vector<Score> row_h(static_cast<std::size_t>(p.subject_len), 0);
  std::vector<Score> row_f(static_cast<std::size_t>(p.subject_len), kNegInf);
  std::vector<Score> col_h(static_cast<std::size_t>(p.query_len), 0);
  std::vector<Score> col_e(static_cast<std::size_t>(p.query_len), kNegInf);
  BlockArgs args;
  args.query = p.query;
  args.subject = p.subject;
  args.rows = p.query_len;
  args.cols = p.subject_len;
  args.top_h = row_h.data();
  args.top_f = row_f.data();
  args.left_h = col_h.data();
  args.left_e = col_e.data();
  args.bottom_h = row_h.data();
  args.bottom_f = row_f.data();
  args.right_h = col_h.data();
  args.right_e = col_e.data();
  return compute_block_simd(scheme, args).best;
}

/// Runs one precision tier over the pending pair indices; overflowing
/// indices (in the same relative order) become the next tier's input.
void run_tier(GroupFn fn, int lanes, const ScoreScheme& scheme,
              const std::vector<PairView>& pairs,
              const std::vector<std::size_t>& pending,
              std::vector<ScoreResult>& results,
              std::vector<std::size_t>& next, BatchStats& stats) {
  PairView group[kMaxLanes];
  ScoreResult out[kMaxLanes];
  bool overflow[kMaxLanes];
  for (std::size_t g = 0; g < pending.size();
       g += static_cast<std::size_t>(lanes)) {
    const int n = static_cast<int>(
        std::min<std::size_t>(lanes, pending.size() - g));
    for (int k = 0; k < n; ++k) group[k] = pairs[pending[g + k]];
    fn(scheme, group, n, out, overflow);
    ++stats.groups;
    for (int k = 0; k < n; ++k) {
      if (overflow[k]) {
        next.push_back(pending[g + k]);
      } else {
        results[pending[g + k]] = out[k];
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& batch_kernel_names() {
  static const std::vector<std::string> names = {"interseq", "interseq8",
                                                 "interseq16", "scalar"};
  return names;
}

std::vector<ScoreResult> batch_align_scores(const ScoreScheme& scheme,
                                            const std::vector<PairView>& pairs,
                                            const std::string& kernel,
                                            BatchStats* stats) {
  scheme.validate();
  bool try_i8 = false;
  bool try_i16 = false;
  if (kernel == "interseq" || kernel == "interseq8") {
    try_i8 = true;
    try_i16 = true;
  } else if (kernel == "interseq16") {
    try_i16 = true;
  } else if (kernel != "scalar") {
    throw InvalidArgument("unknown batch kernel '" + kernel +
                          "' (registered: interseq, interseq8, interseq16, "
                          "scalar)");
  }

  BatchStats local;
  BatchStats& st = stats != nullptr ? *stats : local;
  st = BatchStats{};
  std::vector<ScoreResult> results(pairs.size());

  if (!try_i8 && !try_i16) {  // "scalar": the per-pair oracle
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      results[i] = exact_pair_score(scheme, pairs[i]);
    }
    return results;
  }

  // Group similarly-sized pairs together: sort by dominant length
  // (descending, input order breaking ties) so lane padding stays small.
  std::vector<std::size_t> pending(pairs.size());
  std::iota(pending.begin(), pending.end(), std::size_t{0});
  std::sort(pending.begin(), pending.end(),
            [&pairs](std::size_t a, std::size_t b) {
              const std::int64_t la =
                  std::max(pairs[a].query_len, pairs[a].subject_len);
              const std::int64_t lb =
                  std::max(pairs[b].query_len, pairs[b].subject_len);
              if (la != lb) return la > lb;
              return a < b;
            });

  const BatchDispatch& d = batch_dispatch();
  std::vector<std::size_t> next;
  bool narrower_attempted = false;

  if (try_i8 && scheme_fits(scheme, kI8Max)) {
    run_tier(d.i8, d.i8_lanes, scheme, pairs, pending, results, next, st);
    narrower_attempted = true;
    pending.swap(next);
    next.clear();
  }
  if (!pending.empty() && try_i16 && scheme_fits(scheme, kI16Max)) {
    if (narrower_attempted) {
      st.overflow_reruns += static_cast<std::int64_t>(pending.size());
    }
    run_tier(d.i16, d.i16_lanes, scheme, pairs, pending, results, next,
             st);
    narrower_attempted = true;
    pending.swap(next);
    next.clear();
  }
  if (!pending.empty()) {
    if (narrower_attempted) {
      st.overflow_reruns += static_cast<std::int64_t>(pending.size());
    }
    for (const std::size_t i : pending) {
      results[i] = exact_pair_score(scheme, pairs[i]);
    }
  }
  return results;
}

}  // namespace mgpusw::sw
