// The block kernel: computes one rectangular tile of the Smith-Waterman
// matrix from its borders.
//
// This single kernel definition is consumed by every execution strategy
// in the repo — the serial linear-memory scan (one block as wide as the
// matrix), the single-device block-wavefront schedule, the multi-device
// engine (where the left border of a device's first block column arrives
// from the neighbouring device through the circular buffer), and block
// pruning (which needs the border maxima the kernel reports).
//
// Border layout (matching the paper's communication pattern):
//   * a horizontal border row carries (H, F) per column — F is the
//     vertical-gap state that crosses row boundaries;
//   * a vertical border column carries (H, E) per row — E is the
//     horizontal-gap state that crosses column boundaries; this is the
//     (H, E) pair the paper's GPUs exchange;
//   * one scalar corner H value closes the diagonal dependency.
#pragma once

#include <cstdint>

#include "seq/alphabet.hpp"
#include "sw/scoring.hpp"

namespace mgpusw::sw {

/// Inputs/outputs of one block computation. Output pointers may alias the
/// corresponding input pointers (bottom over top, right over left); the
/// kernel is written to be alias-safe, which lets callers keep one border
/// array per block row/column for the whole sweep.
struct BlockArgs {
  // Geometry: the block covers `rows` query bases and `cols` subject
  // bases; global_row/global_col locate the block's first cell in the
  // full matrix (used only to report the best-cell position).
  const seq::Nt* query = nullptr;    // rows entries
  const seq::Nt* subject = nullptr;  // cols entries
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t global_row = 0;
  std::int64_t global_col = 0;

  // Borders (see file comment). All four input arrays must be non-null;
  // for matrix-edge blocks pass zero_h / neg-inf gap values.
  const Score* top_h = nullptr;    // cols entries: H(row-1, c)
  const Score* top_f = nullptr;    // cols entries: F(row-1, c)
  const Score* left_h = nullptr;   // rows entries: H(r, col-1)
  const Score* left_e = nullptr;   // rows entries: E(r, col-1)
  Score corner_h = 0;              // H(row-1, col-1)

  // Outputs; may alias the inputs as described above.
  Score* bottom_h = nullptr;  // cols entries: H(last row, c)
  Score* bottom_f = nullptr;  // cols entries: F(last row, c)
  Score* right_h = nullptr;   // rows entries: H(r, last col)
  Score* right_e = nullptr;   // rows entries: E(r, last col)
};

/// Per-block results fed to the best-score reduction and to pruning.
struct BlockResult {
  ScoreResult best;        // best cell inside the block (global coords)
  Score border_max = 0;    // max H over the block's bottom row + right col
  /// How many times a low-precision kernel hit its saturation watermark
  /// and re-ran this block at the next wider precision (0 for the full-
  /// precision kernels). Aggregated into the `kernel.overflow_reruns`
  /// metric by the engine.
  int overflow_reruns = 0;
};

/// Computes one block. args.bottom/right receive the outgoing borders.
/// The kernel performs rows*cols cell updates with the Gotoh recurrences
/// and no allocation.
BlockResult compute_block(const ScoreScheme& scheme, const BlockArgs& args);

/// Number of cell updates compute_block performs for this geometry.
[[nodiscard]] constexpr std::int64_t block_cells(std::int64_t rows,
                                                 std::int64_t cols) {
  return rows * cols;
}

}  // namespace mgpusw::sw
