// Low-precision (int16 / int8) saturating vector shims for the narrow
// block kernels and the inter-sequence batch kernel.
//
// Same per-TU backend scheme as sw/simd.hpp (which must be included
// first to pick the backend): each backend translation unit defines
// MGPUSW_SIMD_NS and gets an ODR-distinct instantiation compiled with its
// own -m flags. This header adds two width traits on top of the 8x32
// shim:
//
//   LpI16 — 16 lanes of int16 per 256-bit AVX2 vector (8 per native
//           128-bit SSE4.2 vector; the scalar fallback emulates 16);
//   LpI8  — 32 lanes of int8 (16 on SSE4.2).
//
// All arithmetic is *saturating* (adds/subs clamp at the type limits
// instead of wrapping), which is what makes overflow detection possible:
// a Smith-Waterman H value can only leave the representable range
// upwards, saturating at kMax, and any saturated cell is >= the
// saturation watermark (kMax - match), so a post-hoc check of the
// maximum observed H proves whether every computed value was exact.
// Down-saturation only happens on the neg-inf gap sentinels, which can
// never win a max against a reachable value (H >= 0 keeps the H-derived
// branch above every clamped chain), so it never changes a result.
//
// The operation set mirrors sw/simd.hpp: load/store/broadcast,
// saturating add/sub, max, compares producing all-ones lane masks, mask
// blends, a one-lane shift-in and a last-lane extract. shift_in's
// incoming-element pointer must have 4 readable bytes: the vector
// backends fetch the element with a single 32-bit load (cheaper than a
// sub-32-bit broadcast or insert on the shuffle port) and mask off the
// stray bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>

#include "sw/simd.hpp"

namespace mgpusw::sw::MGPUSW_SIMD_NS {

#if defined(MGPUSW_SIMD_BACKEND_AVX2)

struct LpI16 {
  static constexpr int kLanes = 16;
  using Elem = std::int16_t;
  static constexpr Elem kMax = 32767;
  static constexpr Elem kMin = -32768;
  /// Narrow neg-inf sentinel; one gap subtraction cannot cross zero.
  static constexpr Elem kNegInf = kMin / 2;
  /// Steps per best-cell tracking segment (column offsets must fit Elem).
  static constexpr int kSegSteps = 16384;

  struct Vec {
    __m256i v;
  };

  static Vec load(const Elem* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void store(Elem* p, Vec a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.v);
  }
  static Vec broadcast(Elem x) { return {_mm256_set1_epi16(x)}; }
  static Vec adds(Vec a, Vec b) { return {_mm256_adds_epi16(a.v, b.v)}; }
  static Vec subs(Vec a, Vec b) { return {_mm256_subs_epi16(a.v, b.v)}; }
  static Vec max(Vec a, Vec b) { return {_mm256_max_epi16(a.v, b.v)}; }
  static Vec cmpgt(Vec a, Vec b) { return {_mm256_cmpgt_epi16(a.v, b.v)}; }
  static Vec cmpeq(Vec a, Vec b) { return {_mm256_cmpeq_epi16(a.v, b.v)}; }
  /// Per lane: mask ? b : a (mask lanes are all-ones or all-zero).
  static Vec blend(Vec a, Vec b, Vec mask) {
    return {_mm256_blendv_epi8(a.v, b.v, mask.v)};
  }
  /// Lane 0 <- *p, lane r <- a[r-1]: the wavefront rotation. MAY READ 4
  /// BYTES AT p — callers give the source array that much tail runway.
  ///
  /// The kernel is bound by this operation twice over, so both of its
  /// costs are minimized. Latency: the 0x08 permute selector zeroes the
  /// low half, which makes alignr leave lane 0 zero, so the incoming
  /// lane can be OR'd in for one on-chain cycle (an insert or blend
  /// would pay 2-3 to split and rejoin the 128-bit halves). Shuffle-port
  /// pressure: two shift_ins per column plus the two row extracts keep
  /// Intel's lone shuffle port the kernel's throughput limit, so the
  /// incoming element arrives via a plain 32-bit load masked to lane 0
  /// — a pure load-port op — not a 16-bit broadcast, whose memory form
  /// still issues a shuffle.
  static Vec shift_in(Vec a, const Elem* p) {
    const __m256i low_to_high = _mm256_permute2x128_si256(a.v, a.v, 0x08);
    const __m256i shifted = _mm256_alignr_epi8(a.v, low_to_high, 14);
    const __m256i lane0 =
        _mm256_setr_epi16(-1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0);
    const __m256i incoming = _mm256_and_si256(
        _mm256_castsi128_si256(_mm_loadu_si32(p)), lane0);
    return {_mm256_or_si256(shifted, incoming)};
  }
  static Elem extract_last(Vec a) {
    return static_cast<Elem>(_mm256_extract_epi16(a.v, 15));
  }
};

struct LpI8 {
  static constexpr int kLanes = 32;
  using Elem = std::int8_t;
  static constexpr Elem kMax = 127;
  static constexpr Elem kMin = -128;
  static constexpr Elem kNegInf = kMin / 2;
  static constexpr int kSegSteps = 96;

  struct Vec {
    __m256i v;
  };

  static Vec load(const Elem* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static void store(Elem* p, Vec a) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.v);
  }
  static Vec broadcast(Elem x) { return {_mm256_set1_epi8(x)}; }
  static Vec adds(Vec a, Vec b) { return {_mm256_adds_epi8(a.v, b.v)}; }
  static Vec subs(Vec a, Vec b) { return {_mm256_subs_epi8(a.v, b.v)}; }
  static Vec max(Vec a, Vec b) { return {_mm256_max_epi8(a.v, b.v)}; }
  static Vec cmpgt(Vec a, Vec b) { return {_mm256_cmpgt_epi8(a.v, b.v)}; }
  static Vec cmpeq(Vec a, Vec b) { return {_mm256_cmpeq_epi8(a.v, b.v)}; }
  static Vec blend(Vec a, Vec b, Vec mask) {
    return {_mm256_blendv_epi8(a.v, b.v, mask.v)};
  }
  /// Same zeroed-lane-0 OR merge and shuffle-free 32-bit incoming load
  /// as LpI16::shift_in. MAY READ 4 BYTES AT p.
  static Vec shift_in(Vec a, const Elem* p) {
    const __m256i low_to_high = _mm256_permute2x128_si256(a.v, a.v, 0x08);
    const __m256i shifted = _mm256_alignr_epi8(a.v, low_to_high, 15);
    const __m256i lane0 = _mm256_setr_epi8(
        -1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  //
        0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0);
    const __m256i incoming = _mm256_and_si256(
        _mm256_castsi128_si256(_mm_loadu_si32(p)), lane0);
    return {_mm256_or_si256(shifted, incoming)};
  }
  static Elem extract_last(Vec a) {
    return static_cast<Elem>(_mm256_extract_epi8(a.v, 31));
  }
};

#elif defined(MGPUSW_SIMD_BACKEND_SSE42)

// The SSE4.2 backends use the ISA's native 128-bit width — 8×int16 and
// 16×int8 lanes — rather than double-pumping two registers to match
// AVX2's lane count. The narrow kernels keep ~14 logical vectors live in
// the steady loop; at two xmm each that is twice the architectural
// register file and the compiler spills every iteration, while one xmm
// each fits. This also keeps the per-backend benchmark comparison
// meaningful: each ISA runs at its own register width.

struct LpI16 {
  static constexpr int kLanes = 8;
  using Elem = std::int16_t;
  static constexpr Elem kMax = 32767;
  static constexpr Elem kMin = -32768;
  static constexpr Elem kNegInf = kMin / 2;
  static constexpr int kSegSteps = 16384;

  struct Vec {
    __m128i v;
  };

  static Vec load(const Elem* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static void store(Elem* p, Vec a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a.v);
  }
  static Vec broadcast(Elem x) { return {_mm_set1_epi16(x)}; }
  static Vec adds(Vec a, Vec b) { return {_mm_adds_epi16(a.v, b.v)}; }
  static Vec subs(Vec a, Vec b) { return {_mm_subs_epi16(a.v, b.v)}; }
  static Vec max(Vec a, Vec b) { return {_mm_max_epi16(a.v, b.v)}; }
  static Vec cmpgt(Vec a, Vec b) { return {_mm_cmpgt_epi16(a.v, b.v)}; }
  static Vec cmpeq(Vec a, Vec b) { return {_mm_cmpeq_epi16(a.v, b.v)}; }
  static Vec blend(Vec a, Vec b, Vec mask) {
    return {_mm_blendv_epi8(a.v, b.v, mask.v)};
  }
  /// Lane 0 <- *p, lane r <- a[r-1]. MAY READ 4 BYTES AT p: like the
  /// AVX2 backend, the incoming element arrives as a masked 32-bit load
  /// and an OR — load-port ops — so the byte shift is the rotation's
  /// only shuffle-port uop (pinsrw would be a second).
  static Vec shift_in(Vec a, const Elem* p) {
    const __m128i lane0 = _mm_setr_epi16(-1, 0, 0, 0, 0, 0, 0, 0);
    const __m128i incoming = _mm_and_si128(_mm_loadu_si32(p), lane0);
    return {_mm_or_si128(_mm_slli_si128(a.v, 2), incoming)};
  }
  static Elem extract_last(Vec a) {
    return static_cast<Elem>(_mm_extract_epi16(a.v, 7));
  }
};

struct LpI8 {
  static constexpr int kLanes = 16;
  using Elem = std::int8_t;
  static constexpr Elem kMax = 127;
  static constexpr Elem kMin = -128;
  static constexpr Elem kNegInf = kMin / 2;
  static constexpr int kSegSteps = 96;

  struct Vec {
    __m128i v;
  };

  static Vec load(const Elem* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static void store(Elem* p, Vec a) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a.v);
  }
  static Vec broadcast(Elem x) { return {_mm_set1_epi8(x)}; }
  static Vec adds(Vec a, Vec b) { return {_mm_adds_epi8(a.v, b.v)}; }
  static Vec subs(Vec a, Vec b) { return {_mm_subs_epi8(a.v, b.v)}; }
  static Vec max(Vec a, Vec b) { return {_mm_max_epi8(a.v, b.v)}; }
  static Vec cmpgt(Vec a, Vec b) { return {_mm_cmpgt_epi8(a.v, b.v)}; }
  static Vec cmpeq(Vec a, Vec b) { return {_mm_cmpeq_epi8(a.v, b.v)}; }
  static Vec blend(Vec a, Vec b, Vec mask) {
    return {_mm_blendv_epi8(a.v, b.v, mask.v)};
  }
  /// Same masked 32-bit incoming load as LpI16. MAY READ 4 BYTES AT p.
  static Vec shift_in(Vec a, const Elem* p) {
    const __m128i lane0 = _mm_setr_epi8(-1, 0, 0, 0, 0, 0, 0, 0,  //
                                        0, 0, 0, 0, 0, 0, 0, 0);
    const __m128i incoming = _mm_and_si128(_mm_loadu_si32(p), lane0);
    return {_mm_or_si128(_mm_slli_si128(a.v, 1), incoming)};
  }
  static Elem extract_last(Vec a) {
    return static_cast<Elem>(_mm_extract_epi8(a.v, 15));
  }
};

#else  // scalar fallback

namespace lp_detail {

/// Shared scalar implementation of the saturating lane ops; the
/// autovectorizer may still turn these loops into vector code.
template <typename E, int N, int Seg>
struct ScalarLp {
  static constexpr int kLanes = N;
  using Elem = E;
  static constexpr Elem kMax = std::numeric_limits<E>::max();
  static constexpr Elem kMin = std::numeric_limits<E>::min();
  static constexpr Elem kNegInf = static_cast<E>(kMin / 2);
  static constexpr int kSegSteps = Seg;

  struct Vec {
    Elem lane[N];
  };

  static Elem sat(int x) {
    if (x > kMax) return kMax;
    if (x < kMin) return kMin;
    return static_cast<Elem>(x);
  }
  static Vec load(const Elem* p) {
    Vec r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  static void store(Elem* p, Vec a) { std::memcpy(p, a.lane, sizeof(a.lane)); }
  static Vec broadcast(Elem x) {
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = x;
    return r;
  }
  static Vec adds(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = sat(a.lane[i] + b.lane[i]);
    return r;
  }
  static Vec subs(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < N; ++i) r.lane[i] = sat(a.lane[i] - b.lane[i]);
    return r;
  }
  static Vec max(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < N; ++i) {
      r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
    }
    return r;
  }
  static Vec cmpgt(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < N; ++i) {
      r.lane[i] = a.lane[i] > b.lane[i] ? static_cast<Elem>(-1) : 0;
    }
    return r;
  }
  static Vec cmpeq(Vec a, Vec b) {
    Vec r;
    for (int i = 0; i < N; ++i) {
      r.lane[i] = a.lane[i] == b.lane[i] ? static_cast<Elem>(-1) : 0;
    }
    return r;
  }
  static Vec blend(Vec a, Vec b, Vec mask) {
    Vec r;
    for (int i = 0; i < N; ++i) {
      r.lane[i] = mask.lane[i] != 0 ? b.lane[i] : a.lane[i];
    }
    return r;
  }
  static Vec shift_in(Vec a, const Elem* p) {
    Vec r;
    r.lane[0] = *p;
    for (int i = 1; i < N; ++i) r.lane[i] = a.lane[i - 1];
    return r;
  }
  static Elem extract_last(Vec a) { return a.lane[N - 1]; }
};

}  // namespace lp_detail

using LpI16 = lp_detail::ScalarLp<std::int16_t, 16, 16384>;
using LpI8 = lp_detail::ScalarLp<std::int8_t, 32, 96>;

#endif

}  // namespace mgpusw::sw::MGPUSW_SIMD_NS
