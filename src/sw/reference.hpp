// Full-matrix reference implementation (ground truth).
//
// Keeps the complete H/E/F matrices in memory and supports traceback.
// Quadratic memory restricts it to small inputs — it exists to validate
// every other implementation, never to run the paper's workloads.
#pragma once

#include <cstdint>

#include "seq/sequence.hpp"
#include "sw/alignment.hpp"
#include "sw/scoring.hpp"

namespace mgpusw::sw {

/// Default cap on matrix cells for the reference (64 MiB * 3 matrices at
/// 4 bytes per cell ≈ 0.75 GiB would be too much; 8M cells ≈ 96 MiB).
constexpr std::int64_t kDefaultReferenceCellLimit = 8'000'000;

/// Best local score + end cell via the full matrix. Throws
/// InvalidArgument when rows*cols exceeds max_cells.
[[nodiscard]] ScoreResult reference_score(
    const ScoreScheme& scheme, const seq::Sequence& query,
    const seq::Sequence& subject,
    std::int64_t max_cells = kDefaultReferenceCellLimit);

/// Optimal local alignment with traceback. The returned alignment ends at
/// the same cell reference_score reports and its stored score equals the
/// optimal score (any co-optimal path may be returned; callers validate
/// with validate_alignment).
[[nodiscard]] Alignment reference_local_alignment(
    const ScoreScheme& scheme, const seq::Sequence& query,
    const seq::Sequence& subject,
    std::int64_t max_cells = kDefaultReferenceCellLimit);

/// Optimal *global* (Needleman–Wunsch, affine gaps) alignment score of the
/// full sequences, full-matrix; oracle for the Myers–Miller module.
[[nodiscard]] Score reference_global_score(
    const ScoreScheme& scheme, const seq::Sequence& query,
    const seq::Sequence& subject,
    std::int64_t max_cells = kDefaultReferenceCellLimit);

}  // namespace mgpusw::sw
