#include "sw/myers_miller.hpp"

#include <algorithm>
#include <vector>

#include "base/error.hpp"
#include "sw/linear.hpp"

namespace mgpusw::sw {

namespace {

/// Gap run cost: gap(0) = 0, gap(k) = open + k*extend (positive cost).
Score gap_cost(const ScoreScheme& s, std::int64_t k) {
  if (k <= 0) return 0;
  return s.gap_open + static_cast<Score>(k) * s.gap_extend;
}

/// Recursive Myers–Miller worker operating on unpacked base arrays.
///
/// Aligns a[0..m) against b[0..n) globally. tb / te are the gap-open
/// costs charged to a deletion run touching the top / bottom boundary
/// (0 when the run continues into the neighbouring region, gap_open
/// otherwise); insertions always open at full cost because the divide
/// cuts horizontally and can never split an insertion run.
class MmWorker {
 public:
  MmWorker(const ScoreScheme& scheme, std::string& ops)
      : s_(scheme), ops_(ops) {}

  void diff(const seq::Nt* a, std::int64_t m, const seq::Nt* b,
            std::int64_t n, Score tb, Score te) {
    if (n == 0) {
      emit('D', m);
      return;
    }
    if (m == 0) {
      emit('I', n);
      return;
    }
    if (m == 1) {
      single_row(a[0], b, n, tb, te);
      return;
    }

    const std::int64_t mid = m / 2;
    forward(a, mid, b, n, tb);
    reverse(a + mid, m - mid, b, n, te);

    // Choose the split column (and whether the cut passes through a
    // deletion run) maximising the joined score.
    Score best = kNegInf;
    std::int64_t best_j = 0;
    bool best_in_gap = false;
    for (std::int64_t j = 0; j <= n; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      const auto rj = static_cast<std::size_t>(n - j);
      const Score joined = cc_[sj] + rr_[rj];
      if (joined > best) {
        best = joined;
        best_j = j;
        best_in_gap = false;
      }
      // A deletion run crossing the cut: both halves charged an open, so
      // add one back.
      const Score joined_gap = dd_[sj] + ss_[rj] + s_.gap_open;
      if (joined_gap > best) {
        best = joined_gap;
        best_j = j;
        best_in_gap = true;
      }
    }

    if (!best_in_gap) {
      diff(a, mid, b, best_j, tb, s_.gap_open);
      diff(a + mid, m - mid, b + best_j, n - best_j, s_.gap_open, te);
    } else {
      // Rows mid-1 and mid belong to one deletion run spanning the cut.
      diff(a, mid - 1, b, best_j, tb, 0);
      emit('D', 2);
      diff(a + mid + 1, m - mid - 1, b + best_j, n - best_j, 0, te);
    }
  }

 private:
  void emit(char op, std::int64_t count) {
    ops_.append(static_cast<std::size_t>(count), op);
  }

  /// Exact handling of a single query character (base case).
  void single_row(seq::Nt a, const seq::Nt* b, std::int64_t n, Score tb,
                  Score te) {
    // Option A: delete `a` first (open tb), then insert all of b.
    Score best = -(tb + s_.gap_extend) - gap_cost(s_, n);
    int best_kind = 0;
    std::int64_t best_j = -1;
    // Option B: insert all of b, then delete `a` (open te).
    const Score option_b = -gap_cost(s_, n) - (te + s_.gap_extend);
    if (option_b > best) {
      best = option_b;
      best_kind = 1;
    }
    // Option C: align `a` against b[j], inserting around it.
    for (std::int64_t j = 0; j < n; ++j) {
      const Score score = -gap_cost(s_, j) +
                          s_.substitution(a, b[j]) -
                          gap_cost(s_, n - j - 1);
      if (score > best) {
        best = score;
        best_kind = 2;
        best_j = j;
      }
    }

    switch (best_kind) {
      case 0:
        emit('D', 1);
        emit('I', n);
        break;
      case 1:
        emit('I', n);
        emit('D', 1);
        break;
      default:
        emit('I', best_j);
        emit(a == b[best_j] ? '=' : 'X', 1);
        emit('I', n - best_j - 1);
        break;
    }
  }

  /// Forward pass: cc_[j] = best score aligning a[0..m) vs b[0..j);
  /// dd_[j] = same but constrained to end in a deletion (consuming a's
  /// last row), with the top-boundary deletion open cost tb.
  void forward(const seq::Nt* a, std::int64_t m, const seq::Nt* b,
               std::int64_t n, Score tb) {
    resize(n);
    cc_[0] = 0;
    Score t = -s_.gap_open;
    for (std::int64_t j = 1; j <= n; ++j) {
      t -= s_.gap_extend;
      cc_[static_cast<std::size_t>(j)] = t;
      dd_[static_cast<std::size_t>(j)] = t - s_.gap_open;
    }
    t = -tb;
    for (std::int64_t i = 1; i <= m; ++i) {
      Score diag = cc_[0];
      t -= s_.gap_extend;
      Score c = t;
      cc_[0] = c;
      dd_[0] = c;  // column 0 ends in the boundary deletion run
      Score e = t - s_.gap_open;
      for (std::int64_t j = 1; j <= n; ++j) {
        const auto sj = static_cast<std::size_t>(j);
        e = std::max<Score>(e, c - s_.gap_open) - s_.gap_extend;
        dd_[sj] = std::max<Score>(dd_[sj], cc_[sj] - s_.gap_open) -
                  s_.gap_extend;
        c = std::max({dd_[sj], e, diag + s_.substitution(a[i - 1], b[j - 1])});
        diag = cc_[sj];
        cc_[sj] = c;
      }
    }
  }

  /// Reverse pass over the mirrored problem: rr_[k] = best score aligning
  /// a[m-?..) suffixes — rr_[k] corresponds to aligning all of `a` vs the
  /// last k characters of b; ss_ is the deletion-constrained variant with
  /// bottom open cost te.
  void reverse(const seq::Nt* a, std::int64_t m, const seq::Nt* b,
               std::int64_t n, Score te) {
    resize_rev(n);
    rr_[0] = 0;
    Score t = -s_.gap_open;
    for (std::int64_t j = 1; j <= n; ++j) {
      t -= s_.gap_extend;
      rr_[static_cast<std::size_t>(j)] = t;
      ss_[static_cast<std::size_t>(j)] = t - s_.gap_open;
    }
    t = -te;
    for (std::int64_t i = 1; i <= m; ++i) {
      Score diag = rr_[0];
      t -= s_.gap_extend;
      Score c = t;
      rr_[0] = c;
      ss_[0] = c;
      Score e = t - s_.gap_open;
      for (std::int64_t j = 1; j <= n; ++j) {
        const auto sj = static_cast<std::size_t>(j);
        e = std::max<Score>(e, c - s_.gap_open) - s_.gap_extend;
        ss_[sj] = std::max<Score>(ss_[sj], rr_[sj] - s_.gap_open) -
                  s_.gap_extend;
        c = std::max({ss_[sj], e,
                      diag + s_.substitution(a[m - i], b[n - j])});
        diag = rr_[sj];
        rr_[sj] = c;
      }
    }
  }

  void resize(std::int64_t n) {
    cc_.resize(static_cast<std::size_t>(n + 1));
    dd_.resize(static_cast<std::size_t>(n + 1));
  }
  void resize_rev(std::int64_t n) {
    rr_.resize(static_cast<std::size_t>(n + 1));
    ss_.resize(static_cast<std::size_t>(n + 1));
  }

  const ScoreScheme& s_;
  std::string& ops_;
  std::vector<Score> cc_, dd_, rr_, ss_;
};

std::vector<seq::Nt> unpack(const seq::Sequence& s) {
  std::vector<seq::Nt> out(static_cast<std::size_t>(s.size()));
  if (s.size() > 0) s.extract(0, s.size(), out.data());
  return out;
}

}  // namespace

Alignment global_align(const ScoreScheme& scheme,
                       const seq::Sequence& query,
                       const seq::Sequence& subject) {
  scheme.validate();
  const std::vector<seq::Nt> a = unpack(query);
  const std::vector<seq::Nt> b = unpack(subject);

  Alignment alignment;
  alignment.query_end = query.size();
  alignment.subject_end = subject.size();

  MmWorker worker(scheme, alignment.ops);
  worker.diff(a.data(), query.size(), b.data(), subject.size(),
              scheme.gap_open, scheme.gap_open);
  alignment.score = score_of_ops(scheme, alignment.ops);
  return alignment;
}

Alignment local_align(const ScoreScheme& scheme, const seq::Sequence& query,
                      const seq::Sequence& subject) {
  scheme.validate();
  const ScoreResult stage1 = linear_score(scheme, query, subject);
  if (stage1.score == 0) return Alignment{};

  const CellPos start = find_alignment_start(scheme, query, subject, stage1);

  const std::int64_t q_len = stage1.end.row - start.row + 1;
  const std::int64_t s_len = stage1.end.col - start.col + 1;
  const seq::Sequence q_slice = query.subsequence(start.row, q_len);
  const seq::Sequence s_slice = subject.subsequence(start.col, s_len);

  Alignment inner = global_align(scheme, q_slice, s_slice);

  Alignment alignment;
  alignment.query_begin = start.row;
  alignment.query_end = stage1.end.row + 1;
  alignment.subject_begin = start.col;
  alignment.subject_end = stage1.end.col + 1;
  alignment.ops = std::move(inner.ops);
  alignment.score = inner.score;

  MGPUSW_CHECK_MSG(alignment.score == stage1.score,
                   "stage-3 alignment score " << alignment.score
                       << " != stage-1 score " << stage1.score);
  return alignment;
}

}  // namespace mgpusw::sw
