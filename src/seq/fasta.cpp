#include "seq/fasta.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "base/error.hpp"

namespace mgpusw::seq {

namespace {

bool is_iupac_or_base(char c) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'A': case 'C': case 'G': case 'T':
    case 'N': case 'R': case 'Y': case 'S': case 'W':
    case 'K': case 'M': case 'B': case 'D': case 'H': case 'V':
    case 'U':  // RNA uracil, treated as T's ambiguity-free sibling
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<Sequence> read_fasta(std::istream& in) {
  std::vector<Sequence> records;
  std::string name;
  std::string bases;
  bool have_record = false;
  std::int64_t line_number = 0;

  auto flush = [&] {
    if (have_record) {
      records.emplace_back(name, bases);
      bases.clear();
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      have_record = true;
      // The record name is the first token; the rest is description.
      const std::size_t name_end = line.find_first_of(" \t", 1);
      name = line.substr(1, name_end == std::string::npos
                                ? std::string::npos
                                : name_end - 1);
      continue;
    }
    if (line[0] == ';') continue;  // classic FASTA comment line
    if (!have_record) {
      throw IoError("FASTA: sequence data before first '>' header at line " +
                    std::to_string(line_number));
    }
    for (const char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (!is_iupac_or_base(c)) {
        throw IoError(std::string("FASTA: illegal character '") + c +
                      "' at line " + std::to_string(line_number));
      }
      // 'U' behaves like 'T'; everything else non-strict is ambiguous and
      // resolved by Sequence's constructor.
      bases.push_back(std::toupper(static_cast<unsigned char>(c)) == 'U'
                          ? 'T'
                          : c);
    }
  }
  flush();
  return records;
}

std::vector<Sequence> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open FASTA file: " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& records,
                 int line_width) {
  MGPUSW_REQUIRE(line_width > 0, "line width must be positive");
  for (const Sequence& record : records) {
    out << '>' << record.name() << '\n';
    const std::int64_t n = record.size();
    std::string line;
    line.reserve(static_cast<std::size_t>(line_width));
    for (std::int64_t i = 0; i < n; i += line_width) {
      line.clear();
      const std::int64_t count = std::min<std::int64_t>(line_width, n - i);
      for (std::int64_t j = 0; j < count; ++j) {
        line.push_back(to_char(record.at(i + j)));
      }
      out << line << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& records, int line_width) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open file for writing: " + path);
  write_fasta(out, records, line_width);
  if (!out) throw IoError("error while writing FASTA file: " + path);
}

}  // namespace mgpusw::seq
