#include "seq/dotplot.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <unordered_map>

#include "base/error.hpp"

namespace mgpusw::seq {

std::int64_t Dotplot::max_count() const {
  std::int64_t best = 0;
  for (const std::int64_t count : counts) best = std::max(best, count);
  return best;
}

double Dotplot::diagonal_fraction(std::int64_t band) const {
  std::int64_t total = 0;
  std::int64_t near = 0;
  for (std::int64_t row = 0; row < height; ++row) {
    // Identity line: bucket row r covers query base p ~ r*q_span/H; a
    // hit at subject base p lands in column p*W/s_span.
    const std::int64_t diag_col =
        row * query_span * width / (height * std::max<std::int64_t>(
                                                 1, subject_span));
    for (std::int64_t col = 0; col < width; ++col) {
      const std::int64_t count = at(row, col);
      total += count;
      if (std::llabs(col - diag_col) <= band) near += count;
    }
  }
  if (total == 0) return 0.0;
  return static_cast<double>(near) / static_cast<double>(total);
}

Dotplot make_dotplot(const Sequence& query, const Sequence& subject,
                     const DotplotConfig& config) {
  MGPUSW_REQUIRE(config.k >= 4 && config.k <= 31, "k must be in [4, 31]");
  MGPUSW_REQUIRE(config.width > 0 && config.height > 0,
                 "raster dimensions must be positive");
  MGPUSW_REQUIRE(config.query_stride > 0, "query_stride must be positive");

  Dotplot plot;
  plot.width = config.width;
  plot.height = config.height;
  plot.query_span = std::max<std::int64_t>(1, query.size() - config.k + 1);
  plot.subject_span =
      std::max<std::int64_t>(1, subject.size() - config.k + 1);
  plot.counts.assign(
      static_cast<std::size_t>(config.width * config.height), 0);
  if (query.size() < config.k || subject.size() < config.k) return plot;

  const std::uint64_t mask =
      config.k == 32 ? ~0ULL : ((1ULL << (2 * config.k)) - 1);

  // Index the subject's k-mer start positions.
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> index;
  index.reserve(static_cast<std::size_t>(subject.size()));
  std::uint64_t code = 0;
  for (std::int64_t j = 0; j < subject.size(); ++j) {
    code = ((code << 2) | static_cast<std::uint64_t>(subject.at(j))) & mask;
    if (j >= config.k - 1) {
      auto& positions = index[code];
      // Cap per-word lists: ultra-frequent words (low-complexity repeats)
      // would blur the plot and blow up memory.
      if (static_cast<std::int64_t>(positions.size()) <=
          config.max_word_hits) {
        positions.push_back(j - (config.k - 1));
      }
    }
  }

  // Probe the query.
  const std::int64_t q_span = std::max<std::int64_t>(
      1, query.size() - config.k + 1);
  const std::int64_t s_span = std::max<std::int64_t>(
      1, subject.size() - config.k + 1);
  code = 0;
  for (std::int64_t i = 0; i < query.size(); ++i) {
    code = ((code << 2) | static_cast<std::uint64_t>(query.at(i))) & mask;
    if (i < config.k - 1) continue;
    const std::int64_t start = i - (config.k - 1);
    if (start % config.query_stride != 0) continue;
    const auto it = index.find(code);
    if (it == index.end()) continue;
    if (static_cast<std::int64_t>(it->second.size()) >
        config.max_word_hits) {
      continue;  // repeat word, skipped entirely
    }
    const std::int64_t row =
        std::min(config.height - 1, start * config.height / q_span);
    for (const std::int64_t position : it->second) {
      const std::int64_t col =
          std::min(config.width - 1, position * config.width / s_span);
      ++plot.counts[static_cast<std::size_t>(row * config.width + col)];
    }
  }
  return plot;
}

void write_pgm(const Dotplot& plot, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open " + path + " for writing");
  out << "P5\n" << plot.width << ' ' << plot.height << "\n255\n";
  const double max_count = static_cast<double>(
      std::max<std::int64_t>(1, plot.max_count()));
  std::vector<unsigned char> row(static_cast<std::size_t>(plot.width));
  for (std::int64_t r = 0; r < plot.height; ++r) {
    for (std::int64_t c = 0; c < plot.width; ++c) {
      // Gamma compression keeps single hits visible next to the dense
      // diagonal; 255 = empty (white), 0 = densest (black).
      const double density =
          std::pow(static_cast<double>(plot.at(r, c)) / max_count, 0.35);
      row[static_cast<std::size_t>(c)] =
          static_cast<unsigned char>(255.0 - density * 255.0);
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  if (!out) throw IoError("error writing " + path);
}

}  // namespace mgpusw::seq
