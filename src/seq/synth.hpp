// Synthetic genome substrate.
//
// The paper compares homologous human–chimpanzee chromosomes downloaded
// from NCBI. Those files are unavailable offline, so this module builds
// the closest synthetic equivalent: a random "ancestral" chromosome with a
// controllable GC content, and a derived homolog produced by an
// evolutionary mutation model (point substitutions, short indels, and
// larger segmental events) tuned to the ~1.2% divergence observed between
// human and chimpanzee. Stage 1 of the engine touches every matrix cell
// regardless of content, so the sequences' lengths drive the computational
// shape; the mutation model additionally makes alignment scores behave
// like real homolog comparisons (long near-diagonal matches).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "seq/sequence.hpp"

namespace mgpusw::seq {

/// Evolutionary divergence model applied to derive a homolog.
struct MutationModel {
  double snp_rate = 0.012;        // per-base substitution probability
  double indel_rate = 0.0008;     // per-base probability an indel starts
  std::int64_t max_indel = 30;    // indel lengths uniform in [1, max_indel]
  double segment_rate = 2e-7;     // per-base probability of a large event
  std::int64_t max_segment = 20000;  // segmental insertion/deletion length
};

/// Statistics describing the differences introduced by mutate_homolog.
struct MutationStats {
  std::int64_t substitutions = 0;
  std::int64_t insertions = 0;      // events
  std::int64_t inserted_bases = 0;
  std::int64_t deletions = 0;       // events
  std::int64_t deleted_bases = 0;
  std::int64_t segment_events = 0;

  /// Fraction of ancestral bases substituted.
  [[nodiscard]] double divergence(std::int64_t ancestral_length) const;
};

/// Generates a random chromosome of the given length. gc_content is the
/// probability of a G or C base (human chromosomes range ~0.38–0.48).
[[nodiscard]] Sequence generate_chromosome(const std::string& name,
                                           std::int64_t length,
                                           std::uint64_t seed,
                                           double gc_content = 0.41);

/// Derives a homolog of `ancestor` under `model`. Deterministic in seed.
[[nodiscard]] Sequence mutate_homolog(const Sequence& ancestor,
                                      const MutationModel& model,
                                      std::uint64_t seed,
                                      const std::string& name,
                                      MutationStats* stats = nullptr);

/// One of the paper's chromosome pairs: human vs chimpanzee homologs.
struct ChromosomePair {
  std::string id;              // "chr19" ... "chr22"
  std::int64_t human_length;   // base pairs (approximate assembly sizes)
  std::int64_t chimp_length;
  /// DP matrix size for this pair, in cells.
  [[nodiscard]] std::int64_t matrix_cells() const {
    return human_length * chimp_length;
  }
};

/// The four human–chimpanzee homologous chromosome pairs the paper
/// evaluates (chr19–chr22), with approximate hg19/panTro assembly sizes.
/// Used verbatim by the model-mode benchmarks; real-mode benchmarks scale
/// them down with scaled_pair().
[[nodiscard]] const std::vector<ChromosomePair>& paper_chromosome_pairs();

/// Returns `pair` with both lengths divided by `factor` (min length 1024),
/// keeping the human/chimp length ratio so load-balancing behaviour is
/// preserved at reduced scale.
[[nodiscard]] ChromosomePair scaled_pair(const ChromosomePair& pair,
                                         std::int64_t factor);

/// Generates the two synthetic homologs for a chromosome pair: the shorter
/// one is derived from a prefix of the longer ancestral sequence plus
/// divergence, mirroring how homologous chromosomes share most content.
struct HomologPair {
  Sequence query;    // "human" side (matrix rows)
  Sequence subject;  // "chimp" side (matrix columns)
  MutationStats stats;
};

[[nodiscard]] HomologPair make_homolog_pair(const ChromosomePair& pair,
                                            std::uint64_t seed,
                                            const MutationModel& model = {});

}  // namespace mgpusw::seq
