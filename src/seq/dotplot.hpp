// Dotplot: a sampled similarity raster between two sequences.
//
// The classical way to *look at* a chromosome comparison before running
// the DP: split the matrix into a W x H grid of buckets, count shared
// k-mer hits per bucket, and render the density. Homologous sequences
// show a dark main diagonal with visible indel steps and segmental
// events — a quick visual check that the synthetic homolog generator
// produces the structure the paper's inputs have.
//
// Hits are found by indexing the subject's k-mers in a hash map and
// probing the query's k-mers with a stride (sampling keeps this linear
// and cheap even at megabase scale).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.hpp"

namespace mgpusw::seq {

struct DotplotConfig {
  int k = 16;                   // word size (exact matches of k bases)
  std::int64_t width = 256;     // raster width (subject axis)
  std::int64_t height = 256;    // raster height (query axis)
  std::int64_t query_stride = 1;   // probe every n-th query k-mer
  std::int64_t max_word_hits = 32; // skip words more frequent than this
};

struct Dotplot {
  std::int64_t width = 0;
  std::int64_t height = 0;
  std::int64_t query_span = 1;    // sequence bases per plot (denominators
  std::int64_t subject_span = 1;  // for mapping buckets back to bases)
  std::vector<std::int64_t> counts;  // row-major, height x width

  [[nodiscard]] std::int64_t at(std::int64_t row, std::int64_t col) const {
    return counts[static_cast<std::size_t>(row * width + col)];
  }

  [[nodiscard]] std::int64_t max_count() const;

  /// Fraction of all hits that fall within `band` buckets of the
  /// *identity line* (query position == subject position) — near 1.0 for
  /// homologs that share coordinates (the paper's chromosome pairs),
  /// small for unrelated sequences.
  [[nodiscard]] double diagonal_fraction(std::int64_t band = 2) const;
};

/// Builds the dotplot of query (rows) vs subject (columns).
[[nodiscard]] Dotplot make_dotplot(const Sequence& query,
                                   const Sequence& subject,
                                   const DotplotConfig& config = {});

/// Renders the plot as a binary PGM image (white = empty, black =
/// densest bucket; gamma-compressed so sparse hits stay visible).
void write_pgm(const Dotplot& plot, const std::string& path);

}  // namespace mgpusw::seq
