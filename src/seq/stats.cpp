#include "seq/stats.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace mgpusw::seq {

double gc_content(const Sequence& sequence) {
  if (sequence.empty()) return 0.0;
  const auto counts = sequence.composition();
  return static_cast<double>(counts[1] + counts[2]) /
         static_cast<double>(sequence.size());
}

std::vector<double> gc_windows(const Sequence& sequence,
                               std::int64_t window) {
  MGPUSW_REQUIRE(window > 0, "window must be positive");
  std::vector<double> out;
  const std::int64_t n = sequence.size();
  out.reserve(static_cast<std::size_t>((n + window - 1) / window));
  for (std::int64_t start = 0; start < n; start += window) {
    const std::int64_t count = std::min(window, n - start);
    std::int64_t gc = 0;
    for (std::int64_t i = 0; i < count; ++i) {
      const Nt base = sequence.at(start + i);
      if (base == Nt::C || base == Nt::G) ++gc;
    }
    out.push_back(static_cast<double>(gc) / static_cast<double>(count));
  }
  return out;
}

std::vector<std::int64_t> kmer_spectrum(const Sequence& sequence, int k) {
  MGPUSW_REQUIRE(k >= 1 && k <= 12, "k must be in [1, 12]");
  const std::size_t buckets = std::size_t{1} << (2 * k);
  std::vector<std::int64_t> counts(buckets, 0);
  const std::int64_t n = sequence.size();
  if (n < k) return counts;

  const std::uint64_t mask = buckets - 1;
  std::uint64_t code = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    code = ((code << 2) |
            static_cast<std::uint64_t>(sequence.at(i))) & mask;
    if (i >= k - 1) ++counts[static_cast<std::size_t>(code)];
  }
  return counts;
}

double kmer_entropy(const Sequence& sequence, int k) {
  const auto counts = kmer_spectrum(sequence, k);
  std::int64_t total = 0;
  for (const std::int64_t count : counts) total += count;
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (const std::int64_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) /
                     static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double sampled_identity(const Sequence& a, const Sequence& b,
                        std::int64_t stride) {
  MGPUSW_REQUIRE(stride > 0, "stride must be positive");
  const std::int64_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  std::int64_t same = 0;
  std::int64_t probes = 0;
  for (std::int64_t i = 0; i < n; i += stride) {
    if (a.at(i) == b.at(i)) ++same;
    ++probes;
  }
  return static_cast<double>(same) / static_cast<double>(probes);
}

std::int64_t longest_homopolymer(const Sequence& sequence) {
  const std::int64_t n = sequence.size();
  if (n == 0) return 0;
  std::int64_t best = 1;
  std::int64_t run = 1;
  for (std::int64_t i = 1; i < n; ++i) {
    if (sequence.at(i) == sequence.at(i - 1)) {
      best = std::max(best, ++run);
    } else {
      run = 1;
    }
  }
  return best;
}

}  // namespace mgpusw::seq
