#include "seq/sequence.hpp"

#include <algorithm>

namespace mgpusw::seq {

Sequence::Sequence(std::string name, std::string_view bases)
    : name_(std::move(name)) {
  reserve_bases(static_cast<std::int64_t>(bases.size()));
  std::uint64_t position = 0;
  for (const char c : bases) {
    if (is_strict_base(c)) {
      append(from_char(c));
    } else {
      append(resolve_ambiguous(position));
      ++ambiguous_;
    }
    ++position;
  }
}

Sequence::Sequence(std::string name, const std::vector<Nt>& bases)
    : name_(std::move(name)) {
  reserve_bases(static_cast<std::int64_t>(bases.size()));
  for (const Nt base : bases) append(base);
}

void Sequence::reserve_bases(std::int64_t count) {
  words_.reserve(static_cast<std::size_t>((count + 31) / 32));
}

void Sequence::append(Nt base) {
  const std::int64_t i = size_++;
  const std::size_t word_index = static_cast<std::size_t>(i >> 5);
  if (word_index == words_.size()) words_.push_back(0);
  words_[word_index] |= static_cast<std::uint64_t>(base) << ((i & 31) * 2);
}

void Sequence::extract(std::int64_t first, std::int64_t count,
                       Nt* out) const {
  MGPUSW_REQUIRE(first >= 0 && count >= 0 && first + count <= size_,
                 "extract range [" << first << ", " << first + count
                                   << ") out of bounds, size " << size_);
  for (std::int64_t i = 0; i < count; ++i) {
    out[i] = at(first + i);
  }
}

std::string Sequence::to_string() const {
  std::string out;
  out.reserve(static_cast<std::size_t>(size_));
  for (std::int64_t i = 0; i < size_; ++i) {
    out.push_back(to_char(at(i)));
  }
  return out;
}

Sequence Sequence::subsequence(std::int64_t first, std::int64_t count) const {
  MGPUSW_REQUIRE(first >= 0 && count >= 0 && first + count <= size_,
                 "subsequence range out of bounds");
  std::vector<Nt> bases(static_cast<std::size_t>(count));
  extract(first, count, bases.data());
  return Sequence(name_ + "[" + std::to_string(first) + ":" +
                      std::to_string(first + count) + "]",
                  bases);
}

Sequence Sequence::reverse_complement() const {
  std::vector<Nt> bases(static_cast<std::size_t>(size_));
  for (std::int64_t i = 0; i < size_; ++i) {
    bases[static_cast<std::size_t>(size_ - 1 - i)] = complement(at(i));
  }
  return Sequence(name_ + "(revcomp)", bases);
}

std::array<std::int64_t, 4> Sequence::composition() const {
  std::array<std::int64_t, 4> counts{};
  for (std::int64_t i = 0; i < size_; ++i) {
    ++counts[static_cast<std::size_t>(at(i))];
  }
  return counts;
}

bool Sequence::operator==(const Sequence& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

}  // namespace mgpusw::seq
