// Sequence statistics: composition, GC windows, k-mer spectra, entropy
// and a sampled identity estimate between homologs.
//
// Used by the examples to characterise inputs the way the paper's
// evaluation section characterises its chromosomes, and by tests to
// validate the synthetic-genome substrate (divergence, GC content,
// non-repetitiveness).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "seq/sequence.hpp"

namespace mgpusw::seq {

/// Fraction of G/C bases.
[[nodiscard]] double gc_content(const Sequence& sequence);

/// GC fraction per fixed-size window (last window may be shorter).
[[nodiscard]] std::vector<double> gc_windows(const Sequence& sequence,
                                             std::int64_t window);

/// Counts of all 4^k k-mers (k <= 12), indexed by the packed 2-bit code
/// of the k-mer (first base in the most significant position).
[[nodiscard]] std::vector<std::int64_t> kmer_spectrum(
    const Sequence& sequence, int k);

/// Shannon entropy of the k-mer distribution, in bits (max 2k for
/// uniform random DNA). Low values indicate repetitive sequence.
[[nodiscard]] double kmer_entropy(const Sequence& sequence, int k);

/// Fraction of positions where the two sequences carry the same base,
/// over the leading min(size) positions, sampled every `stride` bases.
/// A cheap proxy for homology (random DNA pairs measure ~0.25).
[[nodiscard]] double sampled_identity(const Sequence& a, const Sequence& b,
                                      std::int64_t stride = 1);

/// Longest run of a single repeated base.
[[nodiscard]] std::int64_t longest_homopolymer(const Sequence& sequence);

}  // namespace mgpusw::seq
