// Packed DNA sequence container.
//
// Megabase comparisons keep two chromosomes resident; 2-bit packing keeps
// a 64 Mbp chromosome in 16 MiB. Random access decodes one base with a
// shift+mask; the inner DP kernels read bases through unpacked row/column
// caches (see sw::BlockKernel), so packed access is never on the critical
// path of a block.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/error.hpp"
#include "seq/alphabet.hpp"

namespace mgpusw::seq {

class Sequence {
 public:
  Sequence() = default;

  /// Builds a named sequence from characters; non-ACGT characters are
  /// resolved deterministically per position (see resolve_ambiguous) and
  /// counted in ambiguous_count().
  Sequence(std::string name, std::string_view bases);

  /// Builds from already-encoded nucleotides.
  Sequence(std::string name, const std::vector<Nt>& bases);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Replaces the record name (contents unchanged).
  void rename(std::string name) { name_ = std::move(name); }
  [[nodiscard]] std::int64_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::int64_t ambiguous_count() const { return ambiguous_; }

  /// Base at position i (0-based).
  [[nodiscard]] Nt at(std::int64_t i) const {
    const std::uint64_t word = words_[static_cast<std::size_t>(i >> 5)];
    return static_cast<Nt>((word >> ((i & 31) * 2)) & 3);
  }

  /// Decodes [first, first+count) into out (must hold count entries).
  void extract(std::int64_t first, std::int64_t count, Nt* out) const;

  /// Decodes the whole sequence to an ACGT string (small sequences only).
  [[nodiscard]] std::string to_string() const;

  /// Copy of the subrange [first, first+count) as a new unnamed sequence.
  [[nodiscard]] Sequence subsequence(std::int64_t first,
                                     std::int64_t count) const;

  /// Reverse complement (used by reverse-scan stages).
  [[nodiscard]] Sequence reverse_complement() const;

  /// Count of each base, indexed by Nt code.
  [[nodiscard]] std::array<std::int64_t, 4> composition() const;

  /// Memory footprint of the packed payload in bytes.
  [[nodiscard]] std::int64_t packed_bytes() const {
    return static_cast<std::int64_t>(words_.size() * sizeof(std::uint64_t));
  }

  bool operator==(const Sequence& other) const;

 private:
  void append(Nt base);
  void reserve_bases(std::int64_t count);

  std::string name_;
  std::vector<std::uint64_t> words_;  // 32 bases per word, LSB-first
  std::int64_t size_ = 0;
  std::int64_t ambiguous_ = 0;
};

}  // namespace mgpusw::seq
