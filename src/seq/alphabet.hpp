// DNA alphabet: 2-bit nucleotide codes and conversions.
//
// The engine compares DNA only (as in the paper); the four bases are
// packed 2 bits each. IUPAC ambiguity codes and 'N' runs that appear in
// real chromosome files are resolved deterministically (seeded by
// position) so a FASTA file always loads to the same packed sequence.
#pragma once

#include <cstdint>

namespace mgpusw::seq {

/// 2-bit nucleotide code.
enum class Nt : std::uint8_t { A = 0, C = 1, G = 2, T = 3 };

constexpr int kAlphabetSize = 4;

/// Code -> character ('A','C','G','T').
[[nodiscard]] constexpr char to_char(Nt base) {
  constexpr char table[] = {'A', 'C', 'G', 'T'};
  return table[static_cast<std::uint8_t>(base)];
}

/// Whether c is one of acgtACGT.
[[nodiscard]] constexpr bool is_strict_base(char c) {
  switch (c) {
    case 'A': case 'C': case 'G': case 'T':
    case 'a': case 'c': case 'g': case 't':
      return true;
    default:
      return false;
  }
}

/// Strict character -> code; precondition: is_strict_base(c).
[[nodiscard]] constexpr Nt from_char(char c) {
  switch (c) {
    case 'A': case 'a': return Nt::A;
    case 'C': case 'c': return Nt::C;
    case 'G': case 'g': return Nt::G;
    case 'T': case 't': return Nt::T;
    default: return Nt::A;  // precondition violated; callers validate
  }
}

/// Watson–Crick complement.
[[nodiscard]] constexpr Nt complement(Nt base) {
  return static_cast<Nt>(3 - static_cast<std::uint8_t>(base));
}

/// Deterministic stand-in base for an ambiguity code at a given sequence
/// position. Mixing the position through a 64-bit finalizer keeps long 'N'
/// runs from collapsing to a single letter (which would create artificial
/// perfect alignments between two masked regions).
[[nodiscard]] constexpr Nt resolve_ambiguous(std::uint64_t position) {
  std::uint64_t z = position + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<Nt>(z & 3);
}

}  // namespace mgpusw::seq
