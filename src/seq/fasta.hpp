// FASTA reading and writing.
//
// Supports multi-record files, arbitrary line wrapping, '>'-prefixed
// headers with description text, and IUPAC ambiguity codes (resolved
// deterministically per position — see seq/alphabet.hpp). Whitespace
// inside sequence lines is ignored; any other character is an error.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "seq/sequence.hpp"

namespace mgpusw::seq {

/// Reads every record from a FASTA stream. Throws IoError on malformed
/// input (content before the first header, illegal characters).
[[nodiscard]] std::vector<Sequence> read_fasta(std::istream& in);

/// Reads a FASTA file from disk.
[[nodiscard]] std::vector<Sequence> read_fasta_file(const std::string& path);

/// Writes records to a stream, wrapping sequence lines at line_width.
void write_fasta(std::ostream& out, const std::vector<Sequence>& records,
                 int line_width = 70);

/// Writes records to a file on disk.
void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& records,
                      int line_width = 70);

}  // namespace mgpusw::seq
