#include "seq/synth.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace mgpusw::seq {

double MutationStats::divergence(std::int64_t ancestral_length) const {
  if (ancestral_length == 0) return 0.0;
  return static_cast<double>(substitutions) /
         static_cast<double>(ancestral_length);
}

Sequence generate_chromosome(const std::string& name, std::int64_t length,
                             std::uint64_t seed, double gc_content) {
  MGPUSW_REQUIRE(length >= 0, "length must be non-negative");
  MGPUSW_REQUIRE(gc_content > 0.0 && gc_content < 1.0,
                 "gc_content must lie in (0, 1)");
  base::Rng rng(seed);
  std::vector<Nt> bases;
  bases.reserve(static_cast<std::size_t>(length));
  for (std::int64_t i = 0; i < length; ++i) {
    const bool gc = rng.next_bool(gc_content);
    const bool second = rng.next_bool(0.5);
    // gc: C or G; at: A or T.
    const Nt base = gc ? (second ? Nt::G : Nt::C) : (second ? Nt::T : Nt::A);
    bases.push_back(base);
  }
  return Sequence(name, bases);
}

namespace {

/// A substitution that is guaranteed to change the base.
Nt substitute(Nt original, base::Rng& rng) {
  const auto offset = 1 + rng.next_below(3);  // 1..3
  return static_cast<Nt>((static_cast<std::uint64_t>(original) + offset) & 3);
}

}  // namespace

Sequence mutate_homolog(const Sequence& ancestor, const MutationModel& model,
                        std::uint64_t seed, const std::string& name,
                        MutationStats* stats) {
  MGPUSW_REQUIRE(model.snp_rate >= 0 && model.snp_rate <= 1,
                 "snp_rate must lie in [0, 1]");
  MGPUSW_REQUIRE(model.indel_rate >= 0 && model.indel_rate <= 1,
                 "indel_rate must lie in [0, 1]");
  MGPUSW_REQUIRE(model.max_indel >= 1, "max_indel must be >= 1");
  base::Rng rng(seed);
  MutationStats local;

  std::vector<Nt> out;
  out.reserve(static_cast<std::size_t>(ancestor.size()));
  std::int64_t i = 0;
  const std::int64_t n = ancestor.size();
  while (i < n) {
    // Large segmental event: insertion of novel sequence or deletion of a
    // block, emulating the segmental differences between homologous
    // chromosomes.
    if (model.segment_rate > 0 && rng.next_bool(model.segment_rate)) {
      ++local.segment_events;
      const std::int64_t len = rng.next_range(
          model.max_segment / 2, std::max<std::int64_t>(1, model.max_segment));
      if (rng.next_bool(0.5)) {
        for (std::int64_t k = 0; k < len; ++k) {
          out.push_back(static_cast<Nt>(rng.next_below(4)));
        }
        ++local.insertions;
        local.inserted_bases += len;
      } else {
        const std::int64_t removable = std::min(len, n - i);
        i += removable;
        ++local.deletions;
        local.deleted_bases += removable;
      }
      continue;
    }
    if (model.indel_rate > 0 && rng.next_bool(model.indel_rate)) {
      const std::int64_t len = rng.next_range(1, model.max_indel);
      if (rng.next_bool(0.5)) {
        for (std::int64_t k = 0; k < len; ++k) {
          out.push_back(static_cast<Nt>(rng.next_below(4)));
        }
        ++local.insertions;
        local.inserted_bases += len;
      } else {
        const std::int64_t removable = std::min(len, n - i);
        i += removable;
        ++local.deletions;
        local.deleted_bases += removable;
      }
      continue;
    }
    const Nt base = ancestor.at(i++);
    if (model.snp_rate > 0 && rng.next_bool(model.snp_rate)) {
      out.push_back(substitute(base, rng));
      ++local.substitutions;
    } else {
      out.push_back(base);
    }
  }

  if (stats != nullptr) *stats = local;
  return Sequence(name, out);
}

const std::vector<ChromosomePair>& paper_chromosome_pairs() {
  // Approximate assembly lengths for the homologous chromosome pairs the
  // paper compares (human GRCh37 vs chimpanzee panTro, chr19–chr22).
  // chr21/chr22 sizes are the well-documented pairs used across the
  // CUDAlign papers; chr19/chr20 use the assembly sizes of the era.
  static const std::vector<ChromosomePair> pairs = {
      {"chr19", 59'128'983, 63'644'993},
      {"chr20", 63'025'520, 62'293'572},
      {"chr21", 46'944'323, 32'799'110},
      {"chr22", 49'691'432, 49'737'984},
  };
  return pairs;
}

ChromosomePair scaled_pair(const ChromosomePair& pair, std::int64_t factor) {
  MGPUSW_REQUIRE(factor >= 1, "scale factor must be >= 1");
  ChromosomePair scaled = pair;
  scaled.id = pair.id + "/" + std::to_string(factor);
  scaled.human_length = std::max<std::int64_t>(1024, pair.human_length / factor);
  scaled.chimp_length = std::max<std::int64_t>(1024, pair.chimp_length / factor);
  return scaled;
}

HomologPair make_homolog_pair(const ChromosomePair& pair, std::uint64_t seed,
                              const MutationModel& model) {
  // Derive both sides from one ancestral sequence of the longer length:
  // the "human" side is the ancestor itself trimmed to human_length, the
  // "chimp" side is a mutated homolog trimmed/padded to chimp_length.
  const std::int64_t ancestral_len =
      std::max(pair.human_length, pair.chimp_length);
  Sequence ancestor = generate_chromosome(pair.id + "-ancestor",
                                          ancestral_len, seed);

  HomologPair result;
  result.query = ancestor.subsequence(0, pair.human_length);

  Sequence homolog = mutate_homolog(ancestor, model, seed ^ 0xC0FFEEULL,
                                    pair.id + "-chimp", &result.stats);
  if (homolog.size() >= pair.chimp_length) {
    result.subject = homolog.subsequence(0, pair.chimp_length);
  } else {
    // Mutation shrank below target (heavy deletion settings): pad with
    // novel random sequence so the requested matrix shape is preserved.
    std::vector<Nt> padded;
    padded.reserve(static_cast<std::size_t>(pair.chimp_length));
    for (std::int64_t k = 0; k < homolog.size(); ++k) {
      padded.push_back(homolog.at(k));
    }
    base::Rng rng(seed ^ 0xFEEDULL);
    while (static_cast<std::int64_t>(padded.size()) < pair.chimp_length) {
      padded.push_back(static_cast<Nt>(rng.next_below(4)));
    }
    result.subject = Sequence(pair.id + "-chimp", padded);
  }
  // Keep names stable regardless of trimming.
  result.query.rename(pair.id + "-human");
  result.subject.rename(pair.id + "-chimp");
  return result;
}

}  // namespace mgpusw::seq
