#include "obs/trace.hpp"

#include <atomic>

namespace mgpusw::obs {
namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer() : id_(next_tracer_id()) {}

Tracer::~Tracer() = default;

Tracer::Slot* Tracer::local_slot() {
  // Cache (tracer id → slot) per thread. Keyed by the process-unique id
  // rather than `this` so a new tracer allocated at a dead tracer's
  // address can never alias a stale cache entry. The cache itself holds
  // raw Slot pointers, but a slot outlives its tracer's destructor only
  // as long as the tracer does — callers own that lifetime contract
  // (the tracer must outlive every component emitting into it).
  struct CacheEntry {
    std::uint64_t tracer_id;
    Slot* slot;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.tracer_id == id_) return entry.slot;
  }
  Slot* slot = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    slots_.push_back(std::make_unique<Slot>());
    slot = slots_.back().get();
    slot->track = static_cast<int>(slots_.size()) - 1;
    if (names_.size() < slots_.size()) names_.resize(slots_.size());
  }
  cache.push_back(CacheEntry{id_, slot});
  return slot;
}

void Tracer::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& slot : slots_) {
    const std::lock_guard<std::mutex> slot_lock(slot->mu);
    slot->events.clear();
  }
  for (auto& name : names_) name.clear();
  epoch_.reset();
}

void Tracer::emit(TraceEvent event) {
  Slot* slot = local_slot();
  if (event.track < 0) event.track = slot->track;
  const std::lock_guard<std::mutex> lock(slot->mu);
  slot->events.push_back(std::move(event));
}

void Tracer::instant(const char* category, std::string name,
                     std::vector<TraceArg> args) {
  TraceEvent event;
  event.type = TraceEvent::kInstant;
  event.category = category;
  event.name = std::move(name);
  event.start_ns = now_ns();
  event.args = std::move(args);
  emit(std::move(event));
}

void Tracer::counter(const char* category, std::string name,
                     std::int64_t value) {
  TraceEvent event;
  event.type = TraceEvent::kCounter;
  event.category = category;
  event.start_ns = now_ns();
  event.args.push_back(TraceArg::number(name, value));
  event.name = std::move(name);
  emit(std::move(event));
}

int Tracer::thread_track() { return local_slot()->track; }

void Tracer::name_this_thread(std::string name) {
  name_track(thread_track(), std::move(name));
}

void Tracer::name_track(int track, std::string name) {
  if (track < 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (names_.size() <= static_cast<std::size_t>(track)) {
    names_.resize(static_cast<std::size_t>(track) + 1);
  }
  names_[static_cast<std::size_t>(track)] = std::move(name);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& slot : slots_) {
    const std::lock_guard<std::mutex> slot_lock(slot->mu);
    out.insert(out.end(), slot->events.begin(), slot->events.end());
  }
  return out;
}

std::vector<std::string> Tracer::track_names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return names_;
}

std::size_t Tracer::event_count() const {
  std::size_t total = 0;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& slot : slots_) {
    const std::lock_guard<std::mutex> slot_lock(slot->mu);
    total += slot->events.size();
  }
  return total;
}

}  // namespace mgpusw::obs
