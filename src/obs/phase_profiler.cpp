#include "obs/phase_profiler.hpp"

namespace mgpusw::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kCompute: return "compute";
    case Phase::kBorderRecv: return "border_recv";
    case Phase::kBorderSend: return "border_send";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kIdle: return "idle";
  }
  return "?";
}

}  // namespace mgpusw::obs
