// Minimal recursive-descent JSON parser.
//
// Exists so the repo can validate its own JSON artifacts (Chrome
// traces, metrics snapshots, BENCH_*.json records) in tests, CI smoke
// runs and the examples/trace_view summarizer without an external
// dependency. It parses strict JSON plus nothing else; errors throw
// InvalidArgument with an offset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mgpusw::obs::json {

/// A parsed JSON value. Objects keep their members in document order
/// (duplicate keys are kept; find() returns the first).
struct Value {
  enum Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const { return type == kNull; }
  [[nodiscard]] bool is_object() const { return type == kObject; }
  [[nodiscard]] bool is_array() const { return type == kArray; }
  [[nodiscard]] bool is_string() const { return type == kString; }
  [[nodiscard]] bool is_number() const { return type == kNumber; }

  /// First member named `key`, or nullptr. Non-objects have no members.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// find(), but throws InvalidArgument when the member is missing.
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// The number as int64 (truncating); throws unless is_number().
  [[nodiscard]] std::int64_t as_int() const;
};

/// Parses one JSON document; trailing non-whitespace is an error.
/// Throws InvalidArgument on malformed input.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace mgpusw::obs::json
