// Chrome-trace / Perfetto JSON export for obs::Tracer.
//
// The output is the classic `{"traceEvents": [...]}` document that
// loads in chrome://tracing and https://ui.perfetto.dev — see
// README.md "Viewing a trace" for the Perfetto quickstart. Spans map
// to ph "X" (complete) events, instants to ph "i", counters to ph "C",
// and named tracks to ph "M" thread_name metadata; timestamps are
// microseconds since the tracer's epoch with nanosecond precision kept
// as decimals.
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace mgpusw::obs {

/// Renders everything the tracer has buffered so far.
[[nodiscard]] std::string chrome_trace_json(const Tracer& tracer);

/// Writes chrome_trace_json(tracer) to `path`. Throws IoError on
/// failure.
void write_chrome_trace(const std::string& path, const Tracer& tracer);

}  // namespace mgpusw::obs
