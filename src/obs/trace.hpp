// Structured tracing: RAII spans buffered per thread, exportable as
// Chrome chrome://tracing / Perfetto JSON (obs/trace_export.hpp).
//
// Design constraints, in order:
//   1. thread-safe emission from device driver threads, comm helpers
//     and the batch scheduler at once;
//   2. low overhead on the emitting thread — one mutex that is only
//     ever contended by a concurrent snapshot(), no allocation beyond
//     the buffered event itself;
//   3. a null Tracer* must be free: TraceSpan is inert when
//     constructed without a tracer, so call sites can write
//     `obs::TraceSpan span(scope.tracer, ...)` unconditionally.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/time.hpp"

namespace mgpusw::obs {

/// One key/value annotation attached to a trace event. `value` holds the
/// final JSON token text; `quoted` says whether the exporter must wrap
/// (and escape) it as a string.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = true;

  static TraceArg number(std::string key, std::int64_t v) {
    return TraceArg{std::move(key), std::to_string(v), false};
  }
  static TraceArg text(std::string key, std::string v) {
    return TraceArg{std::move(key), std::move(v), true};
  }
};

/// A buffered trace record. Timestamps are nanoseconds since the owning
/// tracer's epoch (its construction or last reset()).
struct TraceEvent {
  enum Type : std::uint8_t {
    kComplete,  // span: start_ns .. start_ns + duration_ns
    kInstant,   // point event at start_ns
    kCounter,   // sampled value (args carry the series) at start_ns
  };

  Type type = kComplete;
  const char* category = "";  // static string: "engine", "comm", ...
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;
  int track = -1;  // tracer-assigned lane; -1 = emitting thread's lane
  std::vector<TraceArg> args;
};

class TraceSpan;

/// Collects TraceEvents from many threads. Each emitting thread gets a
/// private slot (buffer + track id) the first time it touches a given
/// tracer, so steady-state emission locks a mutex nobody else is
/// waiting on. snapshot() is non-destructive and may run concurrently
/// with emission.
///
/// Tracks map to Perfetto "threads": every emitting thread is one lane,
/// named via name_this_thread(). Events may also be pinned to an
/// explicit lane (e.g. a per-device lane) with TraceEvent::track.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Nanoseconds since this tracer's epoch; the timebase of every event.
  [[nodiscard]] std::int64_t now_ns() const { return epoch_.elapsed_ns(); }

  /// Restarts the epoch and drops all buffered events and track names.
  /// Not safe concurrently with emission.
  void reset();

  /// Buffers one event. If event.track is -1 it is stamped with the
  /// calling thread's track. Thread-safe.
  void emit(TraceEvent event);

  /// Convenience: an instant event now on the calling thread's track.
  void instant(const char* category, std::string name,
               std::vector<TraceArg> args = {});

  /// Convenience: a counter sample (one series named like the counter).
  void counter(const char* category, std::string name, std::int64_t value);

  /// The calling thread's track id under this tracer (assigned on first
  /// use, dense from 0).
  int thread_track();

  /// Names the calling thread's track in the exported trace.
  void name_this_thread(std::string name);

  /// Names an arbitrary track (e.g. before handing work to a pool).
  void name_track(int track, std::string name);

  /// Copies out all buffered events, ordered by track then emission
  /// order. Thread-safe; emission continues unhindered on other slots.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Track names by track id (unnamed tracks are empty strings).
  [[nodiscard]] std::vector<std::string> track_names() const;

  [[nodiscard]] std::size_t event_count() const;

 private:
  struct Slot {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    int track = -1;
  };

  Slot* local_slot();

  const std::uint64_t id_;  // process-unique, keys the thread-local cache
  base::WallTimer epoch_;

  mutable std::mutex mu_;  // guards slots_ growth and names_
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::string> names_;
};

/// RAII span: starts timing at construction, emits a kComplete event on
/// finish() or destruction. Constructed with a null tracer it is inert
/// (every method is a no-op), which is how disabled observability costs
/// one branch. Move-only.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(Tracer* tracer, const char* category, std::string name,
            int track = -1)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    event_.category = category;
    event_.name = std::move(name);
    event_.track = track;
    event_.start_ns = tracer_->now_ns();
  }

  TraceSpan(TraceSpan&& other) noexcept
      : tracer_(std::exchange(other.tracer_, nullptr)),
        event_(std::move(other.event_)) {}
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      finish();
      tracer_ = std::exchange(other.tracer_, nullptr);
      event_ = std::move(other.event_);
    }
    return *this;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { finish(); }

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  TraceSpan& arg(std::string key, std::int64_t value) {
    if (tracer_ != nullptr) {
      event_.args.push_back(TraceArg::number(std::move(key), value));
    }
    return *this;
  }
  TraceSpan& arg(std::string key, std::string value) {
    if (tracer_ != nullptr) {
      event_.args.push_back(TraceArg::text(std::move(key), std::move(value)));
    }
    return *this;
  }

  /// Ends the span early (idempotent; the destructor then does nothing).
  void finish() {
    if (tracer_ == nullptr) return;
    event_.duration_ns = tracer_->now_ns() - event_.start_ns;
    tracer_->emit(std::move(event_));
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

}  // namespace mgpusw::obs
