#include "obs/trace_export.hpp"

#include <fstream>

#include "base/error.hpp"
#include "base/json.hpp"

namespace mgpusw::obs {
namespace {

constexpr int kPid = 1;  // single-process tree; Perfetto needs some pid

void write_common(base::JsonWriter& w, const TraceEvent& event) {
  w.key("pid").value(kPid);
  w.key("tid").value(event.track);
  // Chrome-trace timestamps are microseconds; keep nanosecond precision
  // in the decimals.
  w.key("ts").value_fixed(static_cast<double>(event.start_ns) / 1000.0, 3);
  w.key("cat").value(event.category);
  w.key("name").value(event.name);
}

void write_args(base::JsonWriter& w, const std::vector<TraceArg>& args) {
  if (args.empty()) return;
  w.key("args").begin_object(base::JsonWriter::kCompact);
  for (const TraceArg& arg : args) {
    w.key(arg.key);
    if (arg.quoted) {
      w.value(arg.value);
    } else {
      w.raw_value(arg.value);
    }
  }
  w.end_object();
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  const std::vector<TraceEvent> events = tracer.snapshot();
  const std::vector<std::string> names = tracer.track_names();

  base::JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();

  for (std::size_t track = 0; track < names.size(); ++track) {
    if (names[track].empty()) continue;
    w.begin_object(base::JsonWriter::kCompact);
    w.key("ph").value("M");
    w.key("pid").value(kPid);
    w.key("tid").value(static_cast<std::int64_t>(track));
    w.key("name").value("thread_name");
    w.key("args").begin_object();
    w.key("name").value(names[track]);
    w.end_object();
    w.end_object();
  }

  for (const TraceEvent& event : events) {
    w.begin_object(base::JsonWriter::kCompact);
    switch (event.type) {
      case TraceEvent::kComplete:
        w.key("ph").value("X");
        write_common(w, event);
        w.key("dur").value_fixed(
            static_cast<double>(event.duration_ns) / 1000.0, 3);
        write_args(w, event.args);
        break;
      case TraceEvent::kInstant:
        w.key("ph").value("i");
        write_common(w, event);
        w.key("s").value("t");  // thread-scoped instant
        write_args(w, event.args);
        break;
      case TraceEvent::kCounter:
        w.key("ph").value("C");
        write_common(w, event);
        write_args(w, event.args);
        break;
    }
    w.end_object();
  }

  w.end_array();
  w.end_object();
  return w.str();
}

void write_chrome_trace(const std::string& path, const Tracer& tracer) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open trace output file: " + path);
  out << chrome_trace_json(tracer) << '\n';
  if (!out) throw IoError("failed writing trace output file: " + path);
}

}  // namespace mgpusw::obs
