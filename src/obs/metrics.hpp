// Metrics: named counters, gauges and fixed-bucket histograms with a
// JSON snapshot (merged into core::report output and the
// --metrics-json artifacts).
//
// Instruments are created on first use and live as long as the
// registry; the returned references are stable, so hot paths look up a
// metric once and then touch only atomics. All instruments are
// thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mgpusw::obs {

/// Monotonically increasing integer (events, bytes, cells, restarts).
class Counter {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A settable level (queue depth, in-flight items, healthy devices).
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over doubles. Bucket i counts observations
/// `v <= bounds[i]` that missed every lower bucket (Prometheus-style
/// `le` semantics, non-cumulative counts); one overflow bucket catches
/// the rest. Bounds are fixed at creation, so merging and JSON export
/// need no locking beyond the atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Count for bucket i (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::int64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const {
    return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  }

 private:
  std::vector<double> bounds_;  // sorted ascending, validated in ctor
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;  // bounds+overflow
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Default latency bucket bounds in milliseconds, used by the
/// border-wait and lease-wait histograms.
[[nodiscard]] std::vector<double> default_ms_buckets();

/// Owns named instruments. Lookup takes a mutex; the returned
/// references stay valid for the registry's lifetime, so components
/// resolve their instruments once at setup.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Creates the histogram with `upper_bounds` on first use; later calls
  /// return the existing instrument regardless of the bounds argument.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = default_ms_buckets());

  /// Current value of a counter/gauge, 0 if absent (test/report helper).
  [[nodiscard]] std::int64_t counter_value(std::string_view name) const;
  [[nodiscard]] std::int64_t gauge_value(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// Snapshot as a JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, max, buckets: [{le, count}...]}}}
  /// Instruments are sorted by name for stable output.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace mgpusw::obs
