#include "obs/json_parse.hpp"

#include <cctype>
#include <cstdlib>

#include "base/error.hpp"

namespace mgpusw::obs::json {
namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json parse error at offset " +
                          std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        Value v;
        v.type = Value::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object(int depth) {
    expect('{');
    Value v;
    v.type = Value::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value v;
    v.type = Value::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate
      if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      } else {
        fail("unpaired surrogate");
      }
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    Value v;
    v.type = Value::kNumber;
    v.number = number;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* value = find(key);
  if (value == nullptr) {
    throw InvalidArgument("json: missing member \"" + std::string(key) +
                          "\"");
  }
  return *value;
}

std::int64_t Value::as_int() const {
  if (type != kNumber) throw InvalidArgument("json: value is not a number");
  return static_cast<std::int64_t>(number);
}

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace mgpusw::obs::json
