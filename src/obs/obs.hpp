// Observability subsystem — the shared handle.
//
// The engine, runner, fleet, batch scheduler, recovery driver and comm
// channels all accept an obs::Scope: a borrowed (tracer, metrics
// registry) pair plus a phase-profiling switch. A default Scope is
// fully disabled and costs each instrumentation point exactly one
// branch, so production hot paths pay nothing until a caller opts in.
//
// Three pillars (see DESIGN.md §11):
//   * tracing  (obs/trace.hpp)          — RAII spans, per-thread
//     buffers, Chrome/Perfetto JSON export (obs/trace_export.hpp);
//   * metrics  (obs/metrics.hpp)        — counters, gauges, fixed-
//     bucket histograms, JSON snapshots;
//   * phases   (obs/phase_profiler.hpp) — exact per-device wall-time
//     attribution (compute / border waits / checkpoint / idle).
#pragma once

namespace mgpusw::obs {

class Tracer;
class MetricsRegistry;

/// Borrowed observability handles threaded through a run. Copyable and
/// cheap; both pointers may be null independently. The pointed-to
/// objects must outlive every component holding the scope.
struct Scope {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Attach an obs::PhaseProfiler to every SliceRunner, filling the
  /// phase_*_ns fields of DeviceRunStats.
  bool profile_phases = false;

  [[nodiscard]] bool enabled() const {
    return tracer != nullptr || metrics != nullptr || profile_phases;
  }
};

}  // namespace mgpusw::obs
