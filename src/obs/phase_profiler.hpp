// Per-device phase attribution: where did each device's wall time go?
//
// Every SliceRunner's driver thread is, at any instant, in exactly one
// phase — computing blocks, waiting for the upstream border, pushing
// the downstream border, persisting special rows, or idle (setup,
// reductions, scheduling gaps). The profiler is an exclusive state
// machine: switch_to() charges the elapsed interval to the phase being
// left, so the per-phase totals partition wall time exactly. That
// exactness is what makes heterogeneous-split imbalance directly
// readable — a slow device shows compute-bound, its fast neighbour
// shows border-recv-bound — and is asserted in tests (phase sums ==
// wall time within tolerance).
//
// Driver-thread only: not thread-safe, by design. Under the diagonal
// schedule with multiple device workers, kernel time runs off-thread
// and the driver's "compute" phase covers launch + synchronize; the
// DeviceRunStats busy_ns field remains the kernel-side truth.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace mgpusw::obs {

enum class Phase : std::uint8_t {
  kCompute,     // block kernels (launch + inline execution)
  kBorderRecv,  // blocked on the upstream border source
  kBorderSend,  // blocked on the downstream border sink
  kCheckpoint,  // special-row persistence
  kIdle,        // everything else: setup, reductions, teardown
};

inline constexpr std::size_t kPhaseCount = 5;

[[nodiscard]] const char* phase_name(Phase phase);

/// Exclusive-phase stopwatch. Starts in kIdle at construction; stop()
/// closes the final interval. All methods must run on one thread.
class PhaseProfiler {
 public:
  PhaseProfiler() : mark_(clock::now()) {}

  /// Charges time since the last transition to the current phase, then
  /// enters `next`. Switching to the current phase is a cheap no-op
  /// boundary (the interval is still charged correctly).
  void switch_to(Phase next) {
    const clock::time_point now = clock::now();
    accumulate(now);
    current_ = next;
  }

  [[nodiscard]] Phase current() const { return current_; }

  /// Closes the open interval; the profiler keeps running (kIdle).
  void stop() { switch_to(Phase::kIdle); }

  [[nodiscard]] std::int64_t ns(Phase phase) const {
    return totals_[static_cast<std::size_t>(phase)];
  }

  /// Sum across phases == profiled wall time (closed intervals only).
  [[nodiscard]] std::int64_t total_ns() const {
    std::int64_t total = 0;
    for (const std::int64_t t : totals_) total += t;
    return total;
  }

 private:
  using clock = std::chrono::steady_clock;

  void accumulate(clock::time_point now) {
    totals_[static_cast<std::size_t>(current_)] +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - mark_)
            .count();
    mark_ = now;
  }

  Phase current_ = Phase::kIdle;
  clock::time_point mark_;
  std::array<std::int64_t, kPhaseCount> totals_{};
};

/// RAII phase override: enters `phase`, restores the previous phase on
/// destruction. A null profiler is inert. Used for nested excursions —
/// e.g. a checkpoint save inside the compute loop.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase) : profiler_(profiler) {
    if (profiler_ == nullptr) return;
    previous_ = profiler_->current();
    profiler_->switch_to(phase);
  }

  ~ScopedPhase() {
    if (profiler_ != nullptr) profiler_->switch_to(previous_);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseProfiler* profiler_ = nullptr;
  Phase previous_ = Phase::kIdle;
};

}  // namespace mgpusw::obs
