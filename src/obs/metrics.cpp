#include "obs/metrics.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "base/json.hpp"

namespace mgpusw::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  MGPUSW_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket");
  MGPUSW_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be sorted ascending");
  counts_ =
      std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // std::atomic<double>::fetch_add is C++20 but not implemented
  // everywhere; CAS loops keep this portable.
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + value,
                                     std::memory_order_relaxed)) {
  }
  double top = max_.load(std::memory_order_relaxed);
  while (value > top && !max_.compare_exchange_weak(
                            top, value, std::memory_order_relaxed)) {
  }
}

std::vector<double> default_ms_buckets() {
  return {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0};
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

std::int64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second->value() : 0;
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->value() : 0;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  base::JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, counter] : counters_) {
    w.key(name).value(counter->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, gauge] : gauges_) {
    w.key(name).value(gauge->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, histogram] : histograms_) {
    w.key(name).begin_object();
    w.key("count").value(histogram->count());
    w.key("sum").value(histogram->sum());
    w.key("max").value(histogram->max());
    w.key("buckets").begin_array();
    const auto& bounds = histogram->bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      w.begin_object(base::JsonWriter::kCompact);
      if (i < bounds.size()) {
        w.key("le").value(bounds[i]);
      } else {
        w.key("le").value("+Inf");
      }
      w.key("count").value(histogram->bucket_count(i));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace mgpusw::obs
