// Virtual GPU runtime.
//
// A Device stands in for one CUDA device: it owns a worker pool (its
// "SMs"), a tracked memory arena (cudaMalloc stand-in), FIFO streams and
// events, and an optional speed throttle. The multi-device engine treats
// a Device exactly as CUDAlign's host code treats a GPU — it launches
// block kernels and synchronizes — so every scheduling and communication
// concern of the paper's design is exercised for real.
//
// The throttle is how heterogeneity is realized in *real* execution mode
// on a homogeneous host: a device with slowdown s busy-waits (s-1)x the
// measured kernel time after each kernel, making its effective cell rate
// 1/s of the untrottled rate. Model-mode experiments instead use the
// spec's GCUPS figure directly (see src/sim).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "base/thread_pool.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw::vgpu {

class FaultInjector;

struct DeviceOptions {
  /// Host worker threads emulating the SMs. 0 = one per SM capped by the
  /// machine's hardware concurrency.
  int worker_threads = 1;
  /// Speed throttle >= 1.0; 1.0 = full host speed.
  double slowdown = 1.0;
};

/// RAII handle for a tracked device allocation.
class DeviceBuffer;

class Device {
 public:
  Device(DeviceSpec spec, DeviceOptions options = {});
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] int worker_count() const;
  [[nodiscard]] double slowdown() const {
    return slowdown_.load(std::memory_order_relaxed);
  }

  /// Changes the speed throttle mid-run (>= 1.0). Kernels already in
  /// flight finish at the old rate; later ones pay the new penalty. This
  /// is how tests and benches model a device degrading under load —
  /// thermal throttling, a noisy co-tenant — after the split was planned.
  void set_slowdown(double slowdown);

  /// Submits a task to the device's workers (kernel launch stand-in).
  void execute(std::function<void()> task);

  /// Blocks until all submitted tasks completed (cudaDeviceSynchronize).
  void synchronize();

  /// Busy-waits the throttle penalty for a kernel that took busy_ns of
  /// host time, and accounts the kernel into the device counters.
  void account_kernel(std::int64_t busy_ns, std::int64_t cells);

  /// Allocates tracked device memory; throws DeviceLostError when the
  /// spec's capacity would be exceeded (as cudaMalloc would fail — the
  /// recovery layer treats the device as unusable) or when an armed
  /// fault injector trips an allocation fault.
  [[nodiscard]] DeviceBuffer allocate(std::int64_t bytes);

  /// Arms deterministic fault injection for this device: allocate() and
  /// fault_point() consult `injector` (which identifies this device by
  /// `ordinal`) until clear_fault_injector(). The engine arms the
  /// devices of a faulted run and disarms them when the run ends; the
  /// injector must outlive the armed window.
  void set_fault_injector(FaultInjector* injector, int ordinal);
  void clear_fault_injector();

  /// Kernel-launch injection point: throws the armed fault, if any, for
  /// the launch computing block (block_i, block_j). No-op when no
  /// injector is armed.
  void fault_point(std::int64_t block_i, std::int64_t block_j);

  [[nodiscard]] std::int64_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t kernels_launched() const {
    return kernels_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t busy_ns() const {
    return busy_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t cells_computed() const {
    return cells_.load(std::memory_order_relaxed);
  }

 private:
  friend class DeviceBuffer;
  void release(std::int64_t bytes);

  const DeviceSpec spec_;
  const DeviceOptions options_;
  std::atomic<double> slowdown_{1.0};  // runtime throttle, mutable mid-run
  std::unique_ptr<base::ThreadPool> pool_;
  std::atomic<FaultInjector*> fault_{nullptr};
  std::atomic<int> fault_ordinal_{0};
  std::atomic<std::int64_t> memory_used_{0};
  std::atomic<std::int64_t> kernels_{0};
  std::atomic<std::int64_t> busy_ns_{0};
  std::atomic<std::int64_t> cells_{0};
};

class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(Device* device, std::int64_t bytes)
      : device_(device), bytes_(bytes) {}
  ~DeviceBuffer() { reset(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      device_ = other.device_;
      bytes_ = other.bytes_;
      other.device_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }

  [[nodiscard]] std::int64_t size() const { return bytes_; }
  [[nodiscard]] bool valid() const { return device_ != nullptr; }

  void reset() {
    if (device_ != nullptr) {
      device_->release(bytes_);
      device_ = nullptr;
      bytes_ = 0;
    }
  }

 private:
  Device* device_ = nullptr;
  std::int64_t bytes_ = 0;
};

/// Completion marker within a stream (cudaEvent_t stand-in): records a
/// point in a stream's FIFO order; wait() blocks until every task
/// enqueued before the record has executed.
class Event {
 public:
  Event();

  /// Blocks until the recorded point has been reached. Waiting on a
  /// never-recorded event returns immediately (CUDA semantics).
  void wait();

  /// True once the recorded point has passed (or nothing was recorded).
  [[nodiscard]] bool ready() const;

 private:
  friend class Stream;
  struct State;
  std::shared_ptr<State> state_;
};

/// FIFO stream over a device: tasks enqueued to one stream execute in
/// order; distinct streams may interleave (cudaStream_t stand-in).
class Stream {
 public:
  explicit Stream(Device& device);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  void enqueue(std::function<void()> task);

  /// Marks the current tail of the stream in `event` (re-recording moves
  /// the marker).
  void record(Event& event);

  void synchronize();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;  // shared with in-flight worker lambdas
};

}  // namespace mgpusw::vgpu
