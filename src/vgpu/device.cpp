#include "vgpu/device.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "base/error.hpp"
#include "base/time.hpp"
#include "vgpu/fault.hpp"

namespace mgpusw::vgpu {

namespace {

int resolve_workers(const DeviceSpec& spec, const DeviceOptions& options) {
  if (options.worker_threads > 0) return options.worker_threads;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<int>(
      std::min<unsigned>(static_cast<unsigned>(spec.sm_count), hw));
}

}  // namespace

Device::Device(DeviceSpec spec, DeviceOptions options)
    : spec_(std::move(spec)), options_(options) {
  MGPUSW_REQUIRE(options_.slowdown >= 1.0,
                 "slowdown must be >= 1.0, got " << options_.slowdown);
  slowdown_.store(options_.slowdown, std::memory_order_relaxed);
  pool_ = std::make_unique<base::ThreadPool>(
      static_cast<std::size_t>(resolve_workers(spec_, options_)));
}

void Device::set_slowdown(double slowdown) {
  MGPUSW_REQUIRE(slowdown >= 1.0,
                 "slowdown must be >= 1.0, got " << slowdown);
  slowdown_.store(slowdown, std::memory_order_relaxed);
}

Device::~Device() { pool_->shutdown(); }

int Device::worker_count() const { return static_cast<int>(pool_->size()); }

void Device::execute(std::function<void()> task) {
  pool_->submit(std::move(task));
}

void Device::synchronize() { pool_->wait_idle(); }

void Device::account_kernel(std::int64_t busy_ns, std::int64_t cells) {
  kernels_.fetch_add(1, std::memory_order_relaxed);
  cells_.fetch_add(cells, std::memory_order_relaxed);
  std::int64_t total_ns = busy_ns;
  const double slowdown = slowdown_.load(std::memory_order_relaxed);
  if (slowdown > 1.0) {
    const auto penalty = static_cast<std::int64_t>(
        (slowdown - 1.0) * static_cast<double>(busy_ns));
    // Busy-wait: sleeping would release the core to other virtual
    // devices, inflating aggregate throughput beyond what a slower
    // physical device would deliver.
    base::WallTimer timer;
    while (timer.elapsed_ns() < penalty) {
    }
    total_ns += penalty;
  }
  busy_ns_.fetch_add(total_ns, std::memory_order_relaxed);
}

DeviceBuffer Device::allocate(std::int64_t bytes) {
  MGPUSW_REQUIRE(bytes >= 0, "allocation size must be non-negative");
  const std::int64_t used =
      memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (FaultInjector* injector = fault_.load(std::memory_order_acquire)) {
    try {
      injector->on_alloc(fault_ordinal_.load(std::memory_order_relaxed),
                         used);
    } catch (...) {
      memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
      throw;
    }
  }
  if (used > spec_.memory_bytes) {
    memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
    throw DeviceLostError(
        spec_.name + ": device out of memory (requested " +
        std::to_string(bytes) + " bytes, " +
        std::to_string(spec_.memory_bytes - (used - bytes)) + " available)");
  }
  return DeviceBuffer(this, bytes);
}

void Device::set_fault_injector(FaultInjector* injector, int ordinal) {
  fault_ordinal_.store(ordinal, std::memory_order_relaxed);
  fault_.store(injector, std::memory_order_release);
}

void Device::clear_fault_injector() {
  fault_.store(nullptr, std::memory_order_release);
}

void Device::fault_point(std::int64_t block_i, std::int64_t block_j) {
  if (FaultInjector* injector = fault_.load(std::memory_order_acquire)) {
    injector->on_kernel_launch(
        fault_ordinal_.load(std::memory_order_relaxed), block_i, block_j);
  }
}

void Device::release(std::int64_t bytes) {
  memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Event

struct Event::State {
  std::mutex mu;
  std::condition_variable cv;
  bool recorded = false;
  bool done = false;
};

Event::Event() : state_(std::make_shared<State>()) {}

void Event::wait() {
  std::unique_lock lock(state_->mu);
  state_->cv.wait(lock,
                  [this] { return !state_->recorded || state_->done; });
}

bool Event::ready() const {
  std::lock_guard lock(state_->mu);
  return !state_->recorded || state_->done;
}

// ---------------------------------------------------------------------------
// Stream

struct Stream::Impl {
  explicit Impl(Device& device) : device(device) {}

  Device& device;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> pending;
  bool running = false;   // a task from this stream is on the device
  std::int64_t completed = 0;
  std::int64_t enqueued = 0;

  /// Launches the next pending task if none is in flight (FIFO order).
  /// The worker lambda holds a shared_ptr to the Impl so a Stream may be
  /// destroyed while its final completion bookkeeping is still running
  /// on a device thread.
  static void pump(const std::shared_ptr<Impl>& self) {
    std::function<void()> task;
    {
      std::lock_guard lock(self->mu);
      if (self->running || self->pending.empty()) return;
      task = std::move(self->pending.front());
      self->pending.pop_front();
      self->running = true;
    }
    self->device.execute([self, task = std::move(task)] {
      task();
      {
        std::lock_guard lock(self->mu);
        self->running = false;
        ++self->completed;
        self->cv.notify_all();
      }
      pump(self);
    });
  }
};

Stream::Stream(Device& device) : impl_(std::make_shared<Impl>(device)) {}

Stream::~Stream() {
  if (impl_ != nullptr) synchronize();
}

void Stream::record(Event& event) {
  auto state = event.state_;
  {
    std::lock_guard lock(state->mu);
    state->recorded = true;
    state->done = false;
  }
  enqueue([state] {
    {
      std::lock_guard lock(state->mu);
      state->done = true;
    }
    state->cv.notify_all();
  });
}

void Stream::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(impl_->mu);
    impl_->pending.push_back(std::move(task));
    ++impl_->enqueued;
  }
  Impl::pump(impl_);
}

void Stream::synchronize() {
  std::unique_lock lock(impl_->mu);
  impl_->cv.wait(lock, [this] {
    return impl_->completed == impl_->enqueued && !impl_->running &&
           impl_->pending.empty();
  });
}

}  // namespace mgpusw::vgpu
