#include "vgpu/spec.hpp"

#include "base/error.hpp"

namespace mgpusw::vgpu {

DeviceSpec gtx_560_ti() {
  return DeviceSpec{
      .name = "GTX 560 Ti",
      .sm_count = 8,
      .clock_mhz = 822,
      .memory_bytes = 1LL << 30,  // 1 GiB
      .sw_gcups = 33.0,
      .pcie_gbytes_per_s = 3.0,
      .pcie_latency_us = 8.0,
  };
}

DeviceSpec gtx_580() {
  return DeviceSpec{
      .name = "GTX 580",
      .sm_count = 16,
      .clock_mhz = 772,
      .memory_bytes = 1536LL << 20,  // 1.5 GiB
      .sw_gcups = 50.0,
      .pcie_gbytes_per_s = 3.2,
      .pcie_latency_us = 8.0,
  };
}

DeviceSpec gtx_680() {
  return DeviceSpec{
      .name = "GTX 680",
      .sm_count = 8,
      .clock_mhz = 1006,
      .memory_bytes = 2LL << 30,  // 2 GiB
      .sw_gcups = 57.5,
      .pcie_gbytes_per_s = 5.5,
      .pcie_latency_us = 6.0,
  };
}

DeviceSpec tesla_m2090() {
  return DeviceSpec{
      .name = "Tesla M2090",
      .sm_count = 16,
      .clock_mhz = 650,
      .memory_bytes = 6LL << 30,  // 6 GiB
      .sw_gcups = 46.0,
      .pcie_gbytes_per_s = 3.0,
      .pcie_latency_us = 10.0,
  };
}

DeviceSpec toy_device(double gcups) {
  return DeviceSpec{
      .name = "toy-" + std::to_string(gcups),
      .sm_count = 2,
      .clock_mhz = 100,
      .memory_bytes = 256LL << 20,
      .sw_gcups = gcups,
      .pcie_gbytes_per_s = 1.0,
      .pcie_latency_us = 5.0,
  };
}

std::vector<DeviceSpec> environment1() {
  return {gtx_560_ti(), gtx_580(), gtx_680()};
}

std::vector<DeviceSpec> environment2() {
  return {tesla_m2090(), tesla_m2090(), tesla_m2090()};
}

DeviceSpec spec_by_name(const std::string& name) {
  if (name == "gtx560ti") return gtx_560_ti();
  if (name == "gtx580") return gtx_580();
  if (name == "gtx680") return gtx_680();
  if (name == "m2090") return tesla_m2090();
  throw InvalidArgument("unknown device name: " + name +
                        " (expected gtx560ti, gtx580, gtx680 or m2090)");
}

}  // namespace mgpusw::vgpu
