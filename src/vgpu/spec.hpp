// Virtual GPU device specifications.
//
// Each spec captures the properties of one of the paper's GPUs that
// matter to the engine: sustained Smith-Waterman throughput (GCUPS, used
// for static load balancing and by the performance model), PCIe transfer
// characteristics (used by the model for border-chunk timing), and the
// SM count (used to size the virtual device's worker pool).
//
// The per-GPU GCUPS figures are approximations of the sustained single-
// GPU CUDAlign rates of the era's cards, chosen so that the heterogeneous
// 3-GPU environment reproduces the paper's headline aggregate of
// ~140 GCUPS. See EXPERIMENTS.md for the calibration notes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mgpusw::vgpu {

struct DeviceSpec {
  std::string name;
  int sm_count = 1;             // streaming multiprocessors
  int clock_mhz = 1000;
  std::int64_t memory_bytes = 1LL << 30;
  double sw_gcups = 1.0;        // sustained SW throughput, billions cells/s
  double pcie_gbytes_per_s = 3.0;  // effective host<->device bandwidth
  double pcie_latency_us = 8.0;    // per-transfer latency

  /// Block kernel this device runs, by registry name (sw::kernel_registry).
  /// Empty means "use the engine's configured default" — the knob that
  /// lets a heterogeneous setup pair each device with the traversal that
  /// suits it.
  std::string kernel;

  bool operator==(const DeviceSpec&) const = default;
};

/// NVIDIA GeForce GTX 560 Ti (Fermi GF114).
[[nodiscard]] DeviceSpec gtx_560_ti();

/// NVIDIA GeForce GTX 580 (Fermi GF110).
[[nodiscard]] DeviceSpec gtx_580();

/// NVIDIA GeForce GTX 680 (Kepler GK104).
[[nodiscard]] DeviceSpec gtx_680();

/// NVIDIA Tesla M2090 (Fermi GF110, compute SKU).
[[nodiscard]] DeviceSpec tesla_m2090();

/// A deliberately slow profile for tests and extreme-heterogeneity
/// sweeps.
[[nodiscard]] DeviceSpec toy_device(double gcups);

/// Environment 1 of the evaluation: three heterogeneous desktop GPUs
/// (GTX 560 Ti + GTX 580 + GTX 680), aggregate ≈ 140 GCUPS.
[[nodiscard]] std::vector<DeviceSpec> environment1();

/// Environment 2: homogeneous compute nodes with Tesla M2090 cards.
[[nodiscard]] std::vector<DeviceSpec> environment2();

/// Looks a spec up by name ("gtx560ti", "gtx580", "gtx680", "m2090");
/// throws InvalidArgument for unknown names.
[[nodiscard]] DeviceSpec spec_by_name(const std::string& name);

}  // namespace mgpusw::vgpu
