#include "vgpu/fault.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "base/error.hpp"
#include "obs/metrics.hpp"

namespace mgpusw::vgpu {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
  bool device;  // device fault (vs channel fault)
};

constexpr KindName kKindNames[] = {
    {FaultKind::kDie, "die", true},
    {FaultKind::kKernelFail, "kernel-fail", true},
    {FaultKind::kAllocFail, "alloc-fail", true},
    {FaultKind::kChunkDrop, "drop", false},
    {FaultKind::kChunkCorrupt, "corrupt", false},
    {FaultKind::kChunkDelay, "delay", false},
};

const KindName& kind_info(FaultKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry;
  }
  throw InternalError("unknown FaultKind");
}

std::int64_t parse_int(const std::string& text, const std::string& clause) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  MGPUSW_REQUIRE(ec == std::errc{} && ptr == text.data() + text.size() &&
                     value >= 0,
                 "fault clause '" << clause << "': '" << text
                                  << "' is not a non-negative integer");
  return value;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  std::istringstream in(text);
  while (std::getline(in, current, sep)) parts.push_back(current);
  return parts;
}

FaultSpec parse_clause(const std::string& clause) {
  const auto colon = clause.find(':');
  MGPUSW_REQUIRE(colon != std::string::npos,
                 "fault clause '" << clause << "' has no ':' separator");
  const std::string target = clause.substr(0, colon);
  const std::string event = clause.substr(colon + 1);

  FaultSpec spec;
  bool device_target = false;
  if (target.rfind("dev", 0) == 0) {
    device_target = true;
    spec.target = static_cast<int>(parse_int(target.substr(3), clause));
  } else if (target.rfind("chan", 0) == 0) {
    spec.target = static_cast<int>(parse_int(target.substr(4), clause));
  } else {
    MGPUSW_REQUIRE(false, "fault clause '"
                              << clause
                              << "': target must be dev<N> or chan<N>");
  }

  const auto at = event.find('@');
  MGPUSW_REQUIRE(at != std::string::npos,
                 "fault clause '" << clause << "' has no '@' separator");
  const std::string name = event.substr(0, at);

  bool known = false;
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      MGPUSW_REQUIRE(entry.device == device_target,
                     "fault clause '" << clause << "': '" << name
                                      << "' applies to "
                                      << (entry.device ? "dev" : "chan")
                                      << " targets");
      spec.kind = entry.kind;
      known = true;
      break;
    }
  }
  MGPUSW_REQUIRE(known, "fault clause '" << clause << "': unknown fault '"
                                         << name << "'");

  for (const std::string& param : split(event.substr(at + 1), ',')) {
    const auto eq = param.find('=');
    MGPUSW_REQUIRE(eq != std::string::npos,
                   "fault clause '" << clause << "': parameter '" << param
                                    << "' is not key=value");
    const std::string key = param.substr(0, eq);
    const std::string value = param.substr(eq + 1);
    if (key == "kernel") {
      spec.kernel = parse_int(value, clause);
    } else if (key == "block") {
      const auto slash = value.find('/');
      MGPUSW_REQUIRE(slash != std::string::npos,
                     "fault clause '" << clause
                                      << "': block wants <I>/<J>");
      spec.block_i = parse_int(value.substr(0, slash), clause);
      spec.block_j = parse_int(value.substr(slash + 1), clause);
    } else if (key == "ms") {
      spec.ms = parse_int(value, clause);
    } else if (key == "bytes") {
      spec.bytes = parse_int(value, clause);
    } else if (key == "chunk") {
      spec.chunk = parse_int(value, clause);
    } else {
      MGPUSW_REQUIRE(false, "fault clause '" << clause
                                             << "': unknown parameter '"
                                             << key << "'");
    }
  }

  // Each kind needs exactly the trigger that makes it deterministic.
  switch (spec.kind) {
    case FaultKind::kDie:
      MGPUSW_REQUIRE(
          spec.kernel >= 0 || spec.block_i >= 0 || spec.ms >= 0,
          "fault clause '" << clause
                           << "': die wants kernel=, block= or ms=");
      break;
    case FaultKind::kKernelFail:
      MGPUSW_REQUIRE(spec.kernel >= 0 || spec.block_i >= 0,
                     "fault clause '" << clause
                                      << "': kernel-fail wants kernel= or "
                                         "block=");
      break;
    case FaultKind::kAllocFail:
      MGPUSW_REQUIRE(spec.bytes >= 0, "fault clause '"
                                          << clause
                                          << "': alloc-fail wants bytes=");
      break;
    case FaultKind::kChunkDrop:
    case FaultKind::kChunkCorrupt:
      MGPUSW_REQUIRE(spec.chunk >= 0, "fault clause '"
                                          << clause << "': wants chunk=");
      break;
    case FaultKind::kChunkDelay:
      MGPUSW_REQUIRE(spec.chunk >= 0 && spec.ms >= 0,
                     "fault clause '" << clause
                                      << "': delay wants chunk= and ms=");
      break;
  }
  return spec;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  for (std::string clause : split(spec, ';')) {
    const auto begin = clause.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;  // blank clause: skip
    clause = clause.substr(begin, clause.find_last_not_of(" \t") - begin + 1);
    plan.faults.push_back(parse_clause(clause));
  }
  return plan;
}

std::string format_fault_plan(const FaultPlan& plan) {
  std::ostringstream os;
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    const FaultSpec& spec = plan.faults[i];
    if (i > 0) os << ';';
    const KindName& info = kind_info(spec.kind);
    os << (info.device ? "dev" : "chan") << spec.target << ':' << info.name
       << '@';
    bool first = true;
    const auto param = [&](const char* key, std::int64_t value) {
      if (value < 0) return;
      if (!first) os << ',';
      first = false;
      os << key << '=' << value;
    };
    if (spec.block_i >= 0) {
      os << "block=" << spec.block_i << '/' << spec.block_j;
      first = false;
    }
    param("kernel", spec.kernel);
    param("chunk", spec.chunk);
    param("bytes", spec.bytes);
    param("ms", spec.ms);
  }
  return os.str();
}

const std::string& fault_plan_grammar() {
  static const std::string grammar =
      "semicolon-separated clauses: dev<N>:die@kernel=<K>|block=<I>/<J>|"
      "ms=<T>; dev<N>:kernel-fail@kernel=<K>|block=<I>/<J>; "
      "dev<N>:alloc-fail@bytes=<B>; chan<N>:drop@chunk=<S>; "
      "chan<N>:corrupt@chunk=<S>; chan<N>:delay@chunk=<S>,ms=<T>";
  return grammar;
}

// ---------------------------------------------------------------------------
// FaultInjector

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  consumed_.assign(plan_.faults.size(), false);
}

void FaultInjector::set_obs(const obs::Scope& scope) {
  std::lock_guard lock(mu_);
  metrics_ = scope.metrics;
}

void FaultInjector::record_fired() {
  ++fired_;  // mu_ already held by the calling hook
  if (metrics_ != nullptr) metrics_->counter("fault.injected").increment();
}

void FaultInjector::ensure_device(int device) {
  const auto needed = static_cast<std::size_t>(device) + 1;
  if (launches_.size() < needed) launches_.resize(needed, 0);
  if (dead_.size() < needed) dead_.resize(needed, false);
}

void FaultInjector::on_kernel_launch(int device, std::int64_t block_i,
                                     std::int64_t block_j) {
  std::lock_guard lock(mu_);
  ensure_device(device);
  const std::int64_t ordinal = launches_[static_cast<std::size_t>(device)]++;
  if (dead_[static_cast<std::size_t>(device)]) {
    throw DeviceLostError("device " + std::to_string(device) +
                          " is dead (fault injection)");
  }
  const std::int64_t now_ms = clock_.elapsed_ns() / 1'000'000;
  for (std::size_t s = 0; s < plan_.faults.size(); ++s) {
    const FaultSpec& spec = plan_.faults[s];
    if (spec.target != device) continue;
    if (spec.kind != FaultKind::kDie && spec.kind != FaultKind::kKernelFail) {
      continue;
    }
    if (consumed_[s]) continue;
    const bool hit = (spec.kernel >= 0 && spec.kernel == ordinal) ||
                     (spec.block_i >= 0 && spec.block_i == block_i &&
                      spec.block_j == block_j) ||
                     (spec.kind == FaultKind::kDie && spec.ms >= 0 &&
                      now_ms >= spec.ms);
    if (!hit) continue;
    consumed_[s] = true;
    record_fired();
    if (spec.kind == FaultKind::kDie) {
      dead_[static_cast<std::size_t>(device)] = true;
      throw DeviceLostError("device " + std::to_string(device) +
                            " died at kernel launch " +
                            std::to_string(ordinal) + " (injected: " +
                            format_fault_plan({{spec}}) + ")");
    }
    throw TransientError("injected kernel failure on device " +
                         std::to_string(device) + " at launch " +
                         std::to_string(ordinal) + " (block " +
                         std::to_string(block_i) + "," +
                         std::to_string(block_j) + ")");
  }
}

void FaultInjector::on_alloc(int device, std::int64_t cumulative_bytes) {
  std::lock_guard lock(mu_);
  ensure_device(device);
  if (dead_[static_cast<std::size_t>(device)]) {
    throw DeviceLostError("device " + std::to_string(device) +
                          " is dead (fault injection)");
  }
  for (std::size_t s = 0; s < plan_.faults.size(); ++s) {
    const FaultSpec& spec = plan_.faults[s];
    if (spec.kind != FaultKind::kAllocFail || spec.target != device) {
      continue;
    }
    if (cumulative_bytes < spec.bytes) continue;
    if (!consumed_[s]) {
      consumed_[s] = true;
      record_fired();
    }
    dead_[static_cast<std::size_t>(device)] = true;
    throw DeviceLostError("device " + std::to_string(device) +
                          ": injected allocation failure at " +
                          std::to_string(cumulative_bytes) + " bytes");
  }
}

FaultInjector::ChunkFault FaultInjector::on_chunk(int channel,
                                                  std::int64_t sequence) {
  std::lock_guard lock(mu_);
  ChunkFault fault;
  for (std::size_t s = 0; s < plan_.faults.size(); ++s) {
    const FaultSpec& spec = plan_.faults[s];
    if (spec.target != channel || consumed_[s]) continue;
    if (spec.chunk != sequence) continue;
    switch (spec.kind) {
      case FaultKind::kChunkDrop:
        fault.drop = true;
        break;
      case FaultKind::kChunkCorrupt:
        fault.corrupt = true;
        break;
      case FaultKind::kChunkDelay:
        fault.delay_ms = spec.ms;
        break;
      default:
        continue;
    }
    consumed_[s] = true;
    record_fired();
  }
  return fault;
}

std::int64_t FaultInjector::fired() const {
  std::lock_guard lock(mu_);
  return fired_;
}

bool FaultInjector::device_dead(int device) const {
  std::lock_guard lock(mu_);
  return static_cast<std::size_t>(device) < dead_.size() &&
         dead_[static_cast<std::size_t>(device)];
}

}  // namespace mgpusw::vgpu
