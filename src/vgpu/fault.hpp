// Deterministic fault injection for the virtual GPU runtime.
//
// A megabase comparison keeps several devices busy for hours; surviving a
// device death or a flaky link matters as much as raw GCUPS. This layer
// makes failure *testable*: a FaultPlan is a declarative, deterministic
// list of faults — "device 1 dies at its 100th kernel launch", "channel 0
// drops border chunk 5" — that devices and comm channels consult at
// well-defined points. Benches, tests and the CLI all build plans from
// one textual grammar (`--fault=...`), so a failure scenario reproduced
// in a test can be replayed verbatim from a shell.
//
// Grammar (clauses separated by ';'):
//
//   dev<N>:die@kernel=<K>        device N dies at its K-th kernel launch
//                                (0-based); persistent — every later
//                                launch and allocation also fails
//   dev<N>:die@block=<I>/<J>     dies when launching block (I, J)
//   dev<N>:die@ms=<T>            dies at the first launch >= T ms after
//                                the injector was armed
//   dev<N>:kernel-fail@kernel=<K>   one transient kernel failure
//   dev<N>:kernel-fail@block=<I>/<J>
//   dev<N>:alloc-fail@bytes=<B>  allocation pushing the device's
//                                cumulative footprint past B bytes fails;
//                                persistent (classified as device loss)
//   chan<N>:drop@chunk=<S>       channel N silently drops the border
//                                chunk with sequence number S (once)
//   chan<N>:corrupt@chunk=<S>    scrambles the chunk's framing (sequence
//                                number), so the receiver detects it
//   chan<N>:delay@chunk=<S>,ms=<T>  delays the chunk by T ms
//
// Example: --fault="dev1:die@kernel=40;chan0:drop@chunk=3"
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "base/time.hpp"
#include "obs/obs.hpp"

namespace mgpusw::vgpu {

enum class FaultKind {
  kDie,         // permanent device death       (dev)
  kKernelFail,  // one-shot kernel failure      (dev)
  kAllocFail,   // allocation failure           (dev)
  kChunkDrop,   // drop a border chunk          (chan)
  kChunkCorrupt,  // corrupt a chunk's framing  (chan)
  kChunkDelay,  // delay a chunk                (chan)
};

/// One declarative fault. `target` is a device ordinal for device
/// faults and a channel ordinal (channel c connects device c to c+1)
/// for chunk faults.
struct FaultSpec {
  FaultKind kind = FaultKind::kDie;
  int target = 0;
  std::int64_t kernel = -1;   // kernel launch ordinal trigger
  std::int64_t block_i = -1;  // block coordinate trigger (with block_j)
  std::int64_t block_j = -1;
  std::int64_t ms = -1;       // wall-clock trigger / delay duration
  std::int64_t bytes = -1;    // cumulative allocation trigger
  std::int64_t chunk = -1;    // border chunk sequence number trigger

  bool operator==(const FaultSpec&) const = default;
};

/// A deterministic, replayable failure scenario.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }
  bool operator==(const FaultPlan&) const = default;
};

/// Parses the grammar documented above. Throws InvalidArgument with the
/// offending clause for malformed specs. An empty string yields an empty
/// plan.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

/// Renders a plan back into the grammar (parse/format round-trip).
[[nodiscard]] std::string format_fault_plan(const FaultPlan& plan);

/// One-line grammar summary for --help strings.
[[nodiscard]] const std::string& fault_plan_grammar();

/// Runtime arming of a plan for one run: devices and channels call the
/// hooks below at their injection points; the injector decides, thread-
/// safely and deterministically, whether a fault fires. One-shot faults
/// (kernel-fail, chunk faults) stay consumed across engine restarts, so
/// a recovered run does not re-hit them; death and allocation faults are
/// persistent — the device stays dead until the injector is destroyed.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Device hook, called before every kernel launch with the block
  /// coordinates the launch computes. Throws DeviceLostError (die /
  /// already dead) or TransientError (kernel-fail).
  void on_kernel_launch(int device, std::int64_t block_i,
                        std::int64_t block_j);

  /// Device hook, called by the allocator with the would-be cumulative
  /// footprint. Throws DeviceLostError when an alloc fault trips or the
  /// device already died.
  void on_alloc(int device, std::int64_t cumulative_bytes);

  /// What a channel should do with one outgoing chunk.
  struct ChunkFault {
    bool drop = false;
    bool corrupt = false;
    std::int64_t delay_ms = 0;
  };

  /// Channel hook, called before chunk `sequence` is sent on `channel`.
  [[nodiscard]] ChunkFault on_chunk(int channel, std::int64_t sequence);

  /// Attaches a metrics registry: every fault that fires from now on
  /// also bumps the fault.injected counter. The engine arms this with
  /// its run's scope; pass an empty scope to detach.
  void set_obs(const obs::Scope& scope);

  /// Faults that have fired so far (for logs and tests).
  [[nodiscard]] std::int64_t fired() const;

  /// True once `device` has hit a persistent death fault.
  [[nodiscard]] bool device_dead(int device) const;

 private:
  mutable std::mutex mu_;
  FaultPlan plan_;
  std::vector<bool> consumed_;        // one-shot bookkeeping, per spec
  std::vector<std::int64_t> launches_;  // per-device kernel ordinals
  std::vector<bool> dead_;            // per-device death flags
  base::WallTimer clock_;             // armed at construction
  std::int64_t fired_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;

  void record_fired();  // ++fired_ plus the fault.injected counter
  void ensure_device(int device);
};

}  // namespace mgpusw::vgpu
