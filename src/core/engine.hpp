// The multi-device Smith-Waterman engine — the paper's contribution.
//
// One huge DP matrix is computed cooperatively by several (virtual) GPUs:
//
//   subject columns  ───────────────────────────────────────────►
//   ┌──────────────┬──────────────────────┬─────────────────────┐
//   │  device 0    │      device 1        │      device 2       │ query
//   │  (slice ∝    │                      │                     │ rows
//   │   speed_0)   │ ◄── border (H,E) ──  │ ◄── border (H,E) ── │   │
//   └──────────────┴──────────────────────┴─────────────────────┘   ▼
//
// Each device sweeps its slice in block wavefront order (external block
// diagonals, CUDAlign-style). When a block of the slice's last column
// finishes, its (H, E) border cells are pushed into a bounded circular
// buffer; the right-hand neighbour pops them to seed its first block
// column. The buffer capacity bounds how far a device can run ahead —
// the paper's mechanism for overlapping communication with computation.
//
// The engine is the thin top of a three-layer core (see DESIGN.md):
//   plan   (core/plan.hpp)         — what to compute, decided up front;
//   runner (core/slice_runner.hpp) — one device's slice execution;
//   engine (this file)             — plan → build runners → join →
//                                    reduce.
// Execution is real: every matrix cell is computed with the Gotoh
// recurrences on the devices' worker threads, and the result provably
// equals the serial scan (see tests/core).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/time.hpp"
#include "comm/channel.hpp"
#include "core/partition.hpp"
#include "core/plan.hpp"
#include "core/rebalance.hpp"
#include "core/slice_runner.hpp"
#include "core/special_rows.hpp"
#include "seq/sequence.hpp"
#include "sw/kernel.hpp"
#include "sw/scoring.hpp"
#include "vgpu/device.hpp"

namespace mgpusw::core {

struct EngineConfig {
  sw::ScoreScheme scheme;
  std::int64_t block_rows = 512;   // block height (query direction)
  std::int64_t block_cols = 512;   // block width (subject direction)
  std::int64_t buffer_capacity = 16;  // circular buffer size, in chunks
  Transport transport = Transport::kInProcess;
  Schedule schedule = Schedule::kRowMajor;

  /// Block kernel, by registry name (sw::kernel_registry(); e.g. "row",
  /// "antidiag", "strip4", "simd"). Every kernel produces bit-identical
  /// results; they differ in traversal and speed. A device whose spec
  /// names its own kernel overrides this default for its slice.
  std::string kernel{sw::kDefaultKernel};
  BalanceMode balance = BalanceMode::kSpecGcups;
  std::vector<double> custom_weights;  // used when balance == kCustomWeights

  /// Block pruning (extension, CUDAlign 2.1 technique): skip blocks whose
  /// upper bound cannot beat the best score seen so far. Exact score,
  /// possibly different co-optimal end position.
  bool enable_pruning = false;

  /// Save the H row every `special_row_interval` block rows into
  /// `special_rows` (0 = off). Extension used by alignment retrieval.
  std::int64_t special_row_interval = 0;
  SpecialRowStore* special_rows = nullptr;

  /// Also save the F (vertical gap) values with each special row, making
  /// the rows usable as restart checkpoints (doubles their size) — the
  /// incremental-execution feature of the CUDAlign lineage.
  bool checkpoint_f = false;

  /// Progress callback; called concurrently from device threads (must be
  /// thread-safe). Null disables reporting.
  std::function<void(const ProgressEvent&)> progress;

  /// Label identifying this comparison in ProgressEvents (the batch
  /// scheduler sets it to the item label; empty otherwise).
  std::string job;

  /// Fault injector (vgpu/fault.hpp) armed on every device and channel
  /// for the duration of each run; null disables injection. Borrowed —
  /// must outlive the engine's runs.
  vgpu::FaultInjector* fault = nullptr;

  /// Injector ordinal per device (parallel to the engine's device list).
  /// Empty = use pool indices. The recovery layer pins these to the
  /// *original* pool indices so a `dev<N>` fault spec keeps naming the
  /// same physical device after deaths shrink the pool.
  std::vector<int> fault_ordinals;

  /// TCP transport only: bounds connection setup and every blocking
  /// socket read/write; a silent peer surfaces as TransientError instead
  /// of hanging the wavefront. 0 = block forever (historical behaviour).
  std::int64_t comm_timeout_ms = 0;

  /// Observability (obs/obs.hpp): tracer + metrics registry + phase
  /// profiling switch, threaded through every runner, channel and fault
  /// hook of each run. Default-disabled; the referenced tracer/registry
  /// are borrowed and must outlive the engine's runs.
  obs::Scope obs;

  /// Dynamic rebalancing policy (core/rebalance.hpp). The engine itself
  /// only polls `stop_request`; run_with_recovery owns the controller
  /// that raises the flag and turns the stop into a re-split restart.
  RebalancePolicy rebalance;

  /// Cooperative stop flag, polled by every runner at scheduling-unit
  /// boundaries; raising it makes the run fail with InterruptedError
  /// (transient — restartable from the newest checkpoint). Borrowed;
  /// null disables the check.
  std::atomic<bool>* stop_request = nullptr;
};

/// One device's contribution to a failed run.
struct DeviceFault {
  int device_index = -1;
  std::string device_name;
  std::exception_ptr error;
};

/// Post-mortem of a failed run, captured before the engine rethrows:
/// which devices failed with what, plus the best score-result over every
/// block that *did* complete. The recovery layer carries that partial
/// best forward so a restarted run's merged answer is bit-identical to
/// an unfailed run (the completed and resumed block sets together cover
/// every matrix cell, and sw::improves is a total order).
struct RunFailure {
  std::vector<DeviceFault> faults;
  sw::ScoreResult partial_best;
  bool valid = false;  // true only directly after a failed run
};

struct EngineResult {
  sw::ScoreResult best;
  std::string kernel;    // engine-default kernel the run used
  std::string simd_isa;  // strongest SIMD ISA detected on the host
  std::int64_t matrix_cells = 0;  // rows * cols of the full matrix
  std::int64_t computed_cells = 0;  // < matrix_cells when pruning fired
  double wall_seconds = 0.0;
  std::vector<DeviceRunStats> devices;

  /// Billions of matrix cells per wall second — the paper's metric.
  /// Pruned cells count as processed (they were resolved, just not
  /// recomputed), matching how CUDAlign reports GCUPS.
  [[nodiscard]] double gcups() const {
    return base::gcups(matrix_cells, wall_seconds);
  }
};

class MultiDeviceEngine {
 public:
  /// Devices are borrowed; they must outlive the engine. (Use
  /// core::DeviceFleet to own a device set and lease disjoint subsets to
  /// concurrent engines.)
  MultiDeviceEngine(EngineConfig config,
                    std::vector<vgpu::Device*> devices);

  /// Computes the optimal local alignment score of query vs subject.
  /// Thread-safe for distinct engines; one engine runs one comparison at
  /// a time.
  [[nodiscard]] EngineResult run(const seq::Sequence& query,
                                 const seq::Sequence& subject);

  /// Resumes an interrupted comparison from a checkpoint row previously
  /// saved with checkpoint_f = true: recomputes only matrix rows
  /// (checkpoint_row, end). The returned best covers the *resumed region
  /// only*; combine it with the best recorded before the interruption
  /// using sw::improves. checkpoint_row must lie on a block-row boundary
  /// ((row + 1) % block_rows == 0). Both schedules are supported.
  [[nodiscard]] EngineResult resume(const seq::Sequence& query,
                                    const seq::Sequence& subject,
                                    const SpecialRowStore& checkpoints,
                                    std::int64_t checkpoint_row);

  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Post-mortem of the most recent failed run (valid == false when the
  /// last run succeeded or nothing ran yet). Read it after catching the
  /// exception run()/resume() rethrew.
  [[nodiscard]] const RunFailure& last_failure() const {
    return last_failure_;
  }

  /// The full pre-execution plan for a rows x cols comparison on this
  /// engine's devices — the same value run() executes and
  /// sim::simulate_pipeline projects (the engine–simulator shared-plan
  /// contract).
  [[nodiscard]] AlignmentPlan plan(std::int64_t rows, std::int64_t cols,
                                   std::int64_t start_block_row = 0) const;

  /// The column split the engine would use for `total_cols` columns
  /// (exposed for tests and the split-balance experiment).
  [[nodiscard]] std::vector<ColumnRange> plan_partition(
      std::int64_t total_cols) const;

 private:
  struct ResumeSeed;
  [[nodiscard]] EngineResult run_internal(const seq::Sequence& query,
                                          const seq::Sequence& subject,
                                          const ResumeSeed* seed);
  [[nodiscard]] std::vector<double> balance_weights() const;

  EngineConfig config_;
  std::vector<vgpu::Device*> devices_;
  std::vector<sw::BlockKernelFn> kernels_;  // resolved once, per device
  RunFailure last_failure_;
};

}  // namespace mgpusw::core
