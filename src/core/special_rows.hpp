// Special-row checkpointing (CUDAlign-style extension).
//
// CUDAlign's later stages retrieve the full alignment by re-running small
// parts of the matrix between saved "special rows". Stage 1 optionally
// checkpoints the H values of every k-th block-row border here. In the
// multi-device engine each device saves only its column slice, so a
// special row arrives as several segments that this store stitches
// together.
//
// Two storage modes, as in CUDAlign (which writes its special rows area
// to disk because a megabase run checkpoints gigabytes):
//   * in-memory (default) — segments held in RAM;
//   * disk-spill — construct with a directory; each row's segments are
//     appended to one binary file, RAM holds only per-row metadata.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sw/scoring.hpp"

namespace mgpusw::core {

class SpecialRowStore {
 public:
  /// In-memory store.
  SpecialRowStore() = default;

  /// Disk-spilling store: segments are appended to
  /// `<directory>/row_<index>.srw`. The directory must exist and be
  /// writable; files are overwritten by clear() and on first use.
  explicit SpecialRowStore(std::string directory);

  /// Saves the H values of matrix row `row` for columns
  /// [first_col, first_col + h.size()). Thread-safe; segments for one row
  /// may arrive from different devices in any order. `f` (the vertical
  /// gap state, same length) is optional: it is required only for rows
  /// intended as restart checkpoints (see MultiDeviceEngine resume); pass
  /// an empty vector when the row is only used for alignment retrieval.
  void save_segment(std::int64_t row, std::int64_t first_col,
                    std::vector<sw::Score> h,
                    std::vector<sw::Score> f = {});

  /// Assembles the F values of one full row; requires every segment of
  /// that row to have been saved with F data.
  [[nodiscard]] std::vector<sw::Score> assemble_row_f(
      std::int64_t row, std::int64_t expected_cols) const;

  /// Sorted list of saved row indices.
  [[nodiscard]] std::vector<std::int64_t> rows() const;

  /// Largest saved row below `limit_row` that can seed a restart: its
  /// segments tile [0, expected_cols) exactly and every segment carries
  /// F data. Rows that fail the probe — incomplete (the run died while
  /// devices were still saving), missing F, or failing the disk CRC —
  /// are skipped, so recovery falls back to the newest *intact*
  /// checkpoint. Returns -1 when no row qualifies.
  [[nodiscard]] std::int64_t last_restartable_row(
      std::int64_t expected_cols,
      std::int64_t limit_row =
          std::numeric_limits<std::int64_t>::max()) const;

  /// Assembles one full row. Throws InternalError when the saved segments
  /// do not tile [0, expected_cols) exactly.
  [[nodiscard]] std::vector<sw::Score> assemble_row(
      std::int64_t row, std::int64_t expected_cols) const;

  /// Outcome of recover_existing(): what survived on disk and how much
  /// torn tail was cut away.
  struct RecoveryReport {
    std::int64_t rows = 0;             // row files with >= 1 intact record
    std::int64_t segments = 0;         // intact records registered
    std::int64_t truncated_bytes = 0;  // torn/corrupt tail bytes removed
  };

  /// Revives a disk store from whatever a previous process left in the
  /// directory (crash recovery): scans every `row_<n>.srw`, keeps each
  /// file's longest prefix of CRC-intact records, truncates the torn or
  /// corrupt tail in place (a record after a bad one is unreachable by
  /// the sequential reader anyway), and deletes files with no intact
  /// record. Disk mode only; call before any save_segment.
  RecoveryReport recover_existing();

  /// Total payload bytes currently stored (RAM or disk).
  [[nodiscard]] std::int64_t bytes() const;

  [[nodiscard]] bool spills_to_disk() const { return !directory_.empty(); }

  /// Drops all rows; removes spill files in disk mode.
  void clear();

 private:
  struct Segment {
    std::int64_t first_col;
    std::vector<sw::Score> h;
    std::vector<sw::Score> f;  // empty unless saved as a checkpoint
  };

  [[nodiscard]] std::string row_path(std::int64_t row) const;
  void append_to_disk(std::int64_t row, std::int64_t first_col,
                      const std::vector<sw::Score>& h,
                      const std::vector<sw::Score>& f);
  [[nodiscard]] std::vector<Segment> read_from_disk(std::int64_t row) const;
  [[nodiscard]] std::vector<Segment> row_segments(std::int64_t row) const;
  [[nodiscard]] std::vector<sw::Score> assemble(std::int64_t row,
                                                std::int64_t expected_cols,
                                                bool want_f) const;

  mutable std::mutex mu_;
  std::string directory_;  // empty = in-memory mode
  std::map<std::int64_t, std::vector<Segment>> rows_;  // in-memory mode
  std::map<std::int64_t, std::int64_t> disk_rows_;     // row -> bytes
  std::int64_t bytes_ = 0;
};

}  // namespace mgpusw::core
