// Load-balancing weight computation.
//
// The paper sizes device slices statically, proportional to each GPU's
// measured Smith-Waterman speed. spec_weights() uses the profile figures;
// calibrate_weights() measures the actual speed of each virtual device by
// timing a short block sweep on it in isolation — the equivalent of the
// paper's short calibration run before the real comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sw/kernel.hpp"
#include "sw/scoring.hpp"
#include "vgpu/device.hpp"

namespace mgpusw::core {

/// Weights from device profiles: sw_gcups divided by the runtime
/// slowdown throttle.
[[nodiscard]] std::vector<double> spec_weights(
    const std::vector<vgpu::Device*>& devices);

/// Measures each device's effective cell rate with a short sweep of
/// `sample_rows` x `sample_cols` random-sequence cells (devices timed one
/// at a time; per device: one unclocked warmup sweep, then the minimum
/// over a few timed repetitions, so cold-start skew cannot seed a bad
/// split). Returns cells/second per device, usable directly as partition
/// weights. The sweep runs the named block kernel — pass the kernel the
/// real comparison will use (a device whose spec names its own kernel is
/// calibrated with that one), so the calibration measures the code path
/// that actually runs.
[[nodiscard]] std::vector<double> calibrate_weights(
    const std::vector<vgpu::Device*>& devices, const sw::ScoreScheme& scheme,
    std::int64_t sample_rows = 2048, std::int64_t sample_cols = 2048,
    std::uint64_t seed = 42,
    const std::string& kernel = std::string(sw::kDefaultKernel));

}  // namespace mgpusw::core
