#include "core/report.hpp"

#include <sstream>

namespace mgpusw::core {

namespace {

/// Escapes the characters JSON strings cannot carry verbatim. Device
/// names are ASCII in practice, but stay safe for user-provided labels.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const EngineResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"score\": " << result.best.score << ",\n";
  os << "  \"end_row\": " << result.best.end.row << ",\n";
  os << "  \"end_col\": " << result.best.end.col << ",\n";
  os << "  \"kernel\": \"" << json_escape(result.kernel) << "\",\n";
  os << "  \"simd_isa\": \"" << json_escape(result.simd_isa) << "\",\n";
  os << "  \"matrix_cells\": " << result.matrix_cells << ",\n";
  os << "  \"computed_cells\": " << result.computed_cells << ",\n";
  os << "  \"wall_seconds\": " << result.wall_seconds << ",\n";
  os << "  \"gcups\": " << result.gcups() << ",\n";
  os << "  \"devices\": [\n";
  for (std::size_t d = 0; d < result.devices.size(); ++d) {
    const DeviceRunStats& stats = result.devices[d];
    os << "    {\"name\": \"" << json_escape(stats.device_name) << "\", "
       << "\"first_col\": " << stats.slice.first_col << ", "
       << "\"cols\": " << stats.slice.cols << ", "
       << "\"blocks\": " << stats.blocks << ", "
       << "\"pruned_blocks\": " << stats.pruned_blocks << ", "
       << "\"cells\": " << stats.cells << ", "
       << "\"busy_ns\": " << stats.busy_ns << ", "
       << "\"recv_stall_ns\": " << stats.recv_stall_ns << ", "
       << "\"send_stall_ns\": " << stats.send_stall_ns << ", "
       << "\"chunks_sent\": " << stats.chunks_sent << ", "
       << "\"bytes_sent\": " << stats.bytes_sent << "}"
       << (d + 1 < result.devices.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string to_json(const RecoveryResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"restarts\": " << result.restarts << ",\n";
  os << "  \"lost_devices\": [";
  for (std::size_t i = 0; i < result.lost_devices.size(); ++i) {
    os << (i > 0 ? ", " : "") << "\""
       << json_escape(result.lost_devices[i]) << "\"";
  }
  os << "],\n";
  std::string run = to_json(result.result);
  while (!run.empty() && run.back() == '\n') run.pop_back();
  os << "  \"run\": " << run << "\n}\n";
  return os.str();
}

std::string to_json(const sim::SimResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"makespan_ns\": " << result.makespan_ns << ",\n";
  os << "  \"total_cells\": " << result.total_cells << ",\n";
  os << "  \"gcups\": " << result.gcups() << ",\n";
  os << "  \"devices\": [\n";
  for (std::size_t d = 0; d < result.devices.size(); ++d) {
    const sim::SimDeviceStats& stats = result.devices[d];
    os << "    {\"name\": \"" << json_escape(stats.device_name) << "\", "
       << "\"first_col\": " << stats.slice.first_col << ", "
       << "\"cols\": " << stats.slice.cols << ", "
       << "\"cells\": " << stats.cells << ", "
       << "\"busy_ns\": " << stats.busy_ns << ", "
       << "\"recv_wait_ns\": " << stats.recv_wait_ns << ", "
       << "\"send_wait_ns\": " << stats.send_wait_ns << ", "
       << "\"start_ns\": " << stats.start_ns << ", "
       << "\"finish_ns\": " << stats.finish_ns << "}"
       << (d + 1 < result.devices.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace mgpusw::core
