#include "core/report.hpp"

#include "base/json.hpp"
#include "obs/metrics.hpp"

namespace mgpusw::core {

namespace {

/// Splices the registry snapshot under "metrics". raw_value keeps the
/// snapshot valid JSON; its inner indentation restarts at column zero,
/// which parsers do not care about.
void append_metrics(base::JsonWriter& w,
                    const obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  w.key("metrics").raw_value(metrics->to_json());
}

void device_row(base::JsonWriter& w, const DeviceRunStats& stats) {
  w.begin_object(base::JsonWriter::kCompact);
  w.key("name").value(stats.device_name);
  w.key("first_col").value(stats.slice.first_col);
  w.key("cols").value(stats.slice.cols);
  w.key("blocks").value(stats.blocks);
  w.key("pruned_blocks").value(stats.pruned_blocks);
  w.key("cells").value(stats.cells);
  w.key("pruned_cells").value(stats.pruned_cells);
  w.key("busy_ns").value(stats.busy_ns);
  w.key("recv_stall_ns").value(stats.recv_stall_ns);
  w.key("send_stall_ns").value(stats.send_stall_ns);
  w.key("chunks_sent").value(stats.chunks_sent);
  w.key("bytes_sent").value(stats.bytes_sent);
  w.key("overflow_reruns").value(stats.overflow_reruns);
  if (stats.phases_tracked) {
    w.key("phase_compute_ns").value(stats.phase_compute_ns);
    w.key("phase_recv_ns").value(stats.phase_recv_ns);
    w.key("phase_send_ns").value(stats.phase_send_ns);
    w.key("phase_checkpoint_ns").value(stats.phase_checkpoint_ns);
    w.key("phase_idle_ns").value(stats.phase_idle_ns);
  }
  w.end_object();
}

}  // namespace

std::string to_json(const EngineResult& result,
                    const obs::MetricsRegistry* metrics) {
  base::JsonWriter w;
  w.begin_object();
  w.key("score").value(result.best.score);
  w.key("end_row").value(result.best.end.row);
  w.key("end_col").value(result.best.end.col);
  w.key("kernel").value(result.kernel);
  w.key("simd_isa").value(result.simd_isa);
  w.key("matrix_cells").value(result.matrix_cells);
  w.key("computed_cells").value(result.computed_cells);
  w.key("wall_seconds").value(result.wall_seconds);
  w.key("gcups").value(result.gcups());
  std::int64_t overflow_reruns = 0;
  for (const DeviceRunStats& stats : result.devices) {
    overflow_reruns += stats.overflow_reruns;
  }
  w.key("overflow_reruns").value(overflow_reruns);
  w.key("devices").begin_array();
  for (const DeviceRunStats& stats : result.devices) {
    device_row(w, stats);
  }
  w.end_array();
  append_metrics(w, metrics);
  w.end_object();
  return w.str() + "\n";
}

std::string to_json(const RecoveryResult& result,
                    const obs::MetricsRegistry* metrics) {
  base::JsonWriter w;
  w.begin_object();
  w.key("restarts").value(result.restarts);
  w.key("lost_devices").begin_array(base::JsonWriter::kCompact);
  for (const std::string& name : result.lost_devices) {
    w.value(name);
  }
  w.end_array();
  w.key("rebalances").value(result.rebalances);
  w.key("rebalanced_weights").begin_array(base::JsonWriter::kCompact);
  for (double weight : result.rebalanced_weights) {
    w.value(weight);
  }
  w.end_array();
  std::string run = to_json(result.result);
  while (!run.empty() && run.back() == '\n') run.pop_back();
  w.key("run").raw_value(run);
  append_metrics(w, metrics);
  w.end_object();
  return w.str() + "\n";
}

std::string to_json(const sim::SimResult& result) {
  base::JsonWriter w;
  w.begin_object();
  w.key("makespan_ns").value(result.makespan_ns);
  w.key("total_cells").value(result.total_cells);
  w.key("gcups").value(result.gcups());
  w.key("devices").begin_array();
  for (const sim::SimDeviceStats& stats : result.devices) {
    w.begin_object(base::JsonWriter::kCompact);
    w.key("name").value(stats.device_name);
    w.key("first_col").value(stats.slice.first_col);
    w.key("cols").value(stats.slice.cols);
    w.key("cells").value(stats.cells);
    w.key("busy_ns").value(stats.busy_ns);
    w.key("recv_wait_ns").value(stats.recv_wait_ns);
    w.key("send_wait_ns").value(stats.send_wait_ns);
    w.key("start_ns").value(stats.start_ns);
    w.key("finish_ns").value(stats.finish_ns);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace mgpusw::core
