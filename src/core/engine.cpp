#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "base/log.hpp"
#include "base/math.hpp"
#include "base/time.hpp"
#include "sw/block.hpp"
#include "sw/block_simd.hpp"
#include "sw/kernel.hpp"

namespace mgpusw::core {

namespace {

/// Atomically raises `target` to at least `value`.
void atomic_max(std::atomic<sw::Score>& target, sw::Score value) {
  sw::Score current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

/// Result of one block task, reduced by the driver after each diagonal.
struct TaskOutcome {
  sw::BlockResult block;
  std::int64_t cells = 0;
  bool pruned = false;
  bool valid = false;
};

/// Executes one device's column slice: the block wavefront, the border
/// exchange, pruning and special-row checkpointing.
class DeviceWorker {
 public:
  DeviceWorker(const EngineConfig& config, sw::BlockKernelFn kernel,
               vgpu::Device& device, int device_index,
               const std::vector<seq::Nt>& query,
               const std::vector<seq::Nt>& subject, ColumnRange slice,
               comm::BorderSource* in, comm::BorderSink* out,
               std::atomic<sw::Score>& global_best,
               std::int64_t start_block_row = 0,
               const sw::Score* seed_h = nullptr,
               const sw::Score* seed_f = nullptr)
      : config_(config),
        kernel_(kernel),
        device_index_(device_index),
        device_(device),
        query_(query),
        subject_(subject),
        slice_(slice),
        in_(in),
        out_(out),
        global_best_(global_best),
        start_block_row_(start_block_row),
        seed_h_(seed_h),
        seed_f_(seed_f) {}

  void run() {
    base::WallTimer wall;
    const std::int64_t rows = static_cast<std::int64_t>(query_.size());
    const std::int64_t nbr = base::div_ceil(rows, config_.block_rows);
    const std::int64_t nbc = base::div_ceil(slice_.cols, config_.block_cols);

    // Border storage: one (H,F) row segment per block column, one (H,E)
    // column segment per block row, one corner per block column. Initial
    // values encode the local-alignment matrix boundary. This is the
    // device's O(m + n_slice) memory — the linear-memory property the
    // paper relies on to fit megabase matrices on GPUs.
    row_h_.assign(static_cast<std::size_t>(slice_.cols), 0);
    row_f_.assign(static_cast<std::size_t>(slice_.cols), sw::kNegInf);
    col_h_.assign(static_cast<std::size_t>(rows), 0);
    col_e_.assign(static_cast<std::size_t>(rows), sw::kNegInf);
    corner_.assign(static_cast<std::size_t>(nbc), 0);
    chunk_corner_.assign(static_cast<std::size_t>(nbr), 0);

    // Restarting from a checkpoint: the top borders of the first computed
    // block row come from the saved (H, F) row instead of the matrix
    // boundary, and the per-column corners come from the same row.
    sw::Score initial_sent_corner = 0;
    if (seed_h_ != nullptr) {
      std::copy(seed_h_ + slice_.first_col,
                seed_h_ + slice_.first_col + slice_.cols, row_h_.begin());
      std::copy(seed_f_ + slice_.first_col,
                seed_f_ + slice_.first_col + slice_.cols, row_f_.begin());
      for (std::int64_t j = 1; j < nbc; ++j) {
        corner_[static_cast<std::size_t>(j)] =
            seed_h_[slice_.first_col + j * config_.block_cols - 1];
      }
      // corner_[0] stays untouched: device 0's first-column corner is the
      // matrix boundary (H = 0), and downstream devices take theirs from
      // the incoming chunks, whose corners derive from
      // initial_sent_corner below.
      initial_sent_corner = seed_h_[slice_.end_col() - 1];
    }

    // Track the footprint against the device's memory capacity, as the
    // CUDA implementation's cudaMallocs would.
    const std::int64_t border_bytes = static_cast<std::int64_t>(
        (row_h_.size() + row_f_.size() + col_h_.size() + col_e_.size() +
         corner_.size()) *
        sizeof(sw::Score));
    vgpu::DeviceBuffer buffer = device_.allocate(border_bytes);

    std::vector<TaskOutcome> outcomes(static_cast<std::size_t>(nbc));
    // H(row above the first computed row, boundary col): the matrix
    // boundary for fresh runs, the checkpoint value for resumed runs.
    sw::Score sent_corner = initial_sent_corner;

    if (config_.schedule == Schedule::kRowMajor) {
      run_row_major(rows, nbr, nbc, sent_corner);
    } else {
      run_diagonal(rows, nbr, nbc, outcomes, sent_corner);
    }

    if (out_ != nullptr) out_->close();

    stats_.wall_ns = wall.elapsed_ns();
    stats_.device_name = device_.spec().name;
    stats_.slice = slice_;
    stats_.busy_ns = device_.busy_ns() - initial_busy_ns_;
    if (in_ != nullptr) {
      stats_.recv_stall_ns = in_->stats().consumer_stall_ns;
    }
    if (out_ != nullptr) {
      const comm::ChannelStats out_stats = out_->stats();
      stats_.send_stall_ns = out_stats.producer_stall_ns;
      stats_.chunks_sent = out_stats.chunks_sent;
      stats_.bytes_sent = out_stats.bytes_sent;
    }
  }

  [[nodiscard]] const DeviceRunStats& stats() const { return stats_; }
  [[nodiscard]] const sw::ScoreResult& best() const { return best_; }

  void snapshot_initial_busy() { initial_busy_ns_ = device_.busy_ns(); }

 private:
  void reduce_outcome(TaskOutcome& outcome) {
    MGPUSW_CHECK(outcome.valid);
    ++stats_.blocks;
    if (outcome.pruned) {
      ++stats_.pruned_blocks;
    } else {
      stats_.cells += outcome.cells;
    }
    if (sw::improves(outcome.block.best, best_)) {
      best_ = outcome.block.best;
    }
  }

  /// Fine-grain pipeline order: block rows in sequence, columns left to
  /// right; chunk i ships the moment row i completes (the paper's
  /// overlap behaviour). Blocks run inline on the driver thread.
  void run_row_major(std::int64_t rows, std::int64_t nbr, std::int64_t nbc,
                     sw::Score& sent_corner) {
    TaskOutcome outcome;
    for (std::int64_t i = start_block_row_; i < nbr; ++i) {
      if (in_ != nullptr) receive_chunk(i, rows);
      for (std::int64_t j = 0; j < nbc; ++j) {
        outcome = TaskOutcome{};
        compute_one(i, j, rows, outcome);
        reduce_outcome(outcome);
      }
      atomic_max(global_best_, best_.score);
      if (out_ != nullptr) send_chunk(i, rows, sent_corner);
      notify_progress(i + 1, nbr);
    }
  }

  void notify_progress(std::int64_t completed, std::int64_t total) {
    if (!config_.progress) return;
    ProgressEvent event;
    event.device_index = device_index_;
    event.completed_units = completed;
    event.total_units = total;
    event.device_cells_done = stats_.cells;
    config_.progress(event);
  }

  /// CUDAlign-style external block diagonals with a barrier per diagonal;
  /// blocks of one diagonal run concurrently on the device workers.
  void run_diagonal(std::int64_t rows, std::int64_t nbr, std::int64_t nbc,
                    std::vector<TaskOutcome>& outcomes,
                    sw::Score& sent_corner) {
    for (std::int64_t diag = 0; diag <= nbr + nbc - 2; ++diag) {
      // 1. Receive the border chunk feeding this diagonal's first-column
      //    block (device d > 0 only).
      if (in_ != nullptr && diag < nbr) {
        receive_chunk(diag, rows);
      }

      // 2. Launch every block on this external diagonal.
      const std::int64_t i_lo = std::max<std::int64_t>(0, diag - (nbc - 1));
      const std::int64_t i_hi = std::min<std::int64_t>(nbr - 1, diag);
      const bool inline_exec = device_.worker_count() == 1;
      for (std::int64_t i = i_lo; i <= i_hi; ++i) {
        const std::int64_t j = diag - i;
        TaskOutcome& outcome = outcomes[static_cast<std::size_t>(j)];
        outcome = TaskOutcome{};
        if (inline_exec) {
          compute_one(i, j, rows, outcome);
        } else {
          device_.execute(
              [this, i, j, rows, &outcome] { compute_one(i, j, rows, outcome); });
        }
      }
      if (!inline_exec) device_.synchronize();

      // 3. Reduce this diagonal's results.
      for (std::int64_t i = i_lo; i <= i_hi; ++i) {
        const std::int64_t j = diag - i;
        reduce_outcome(outcomes[static_cast<std::size_t>(j)]);
      }
      atomic_max(global_best_, best_.score);

      // 4. Ship the border chunk completed by this diagonal (last block
      //    column), honouring the circular buffer's capacity.
      if (out_ != nullptr) {
        const std::int64_t i_send = diag - (nbc - 1);
        if (i_send >= 0 && i_send < nbr) {
          send_chunk(i_send, rows, sent_corner);
        }
      }
      notify_progress(diag + 1, nbr + nbc - 1);
    }
  }

  void receive_chunk(std::int64_t block_row, std::int64_t rows) {
    std::optional<comm::BorderChunk> chunk = in_->recv();
    MGPUSW_CHECK_MSG(chunk.has_value(),
                     "upstream closed before chunk " << block_row);
    const std::int64_t r0 = block_row * config_.block_rows;
    const std::int64_t bh =
        std::min(config_.block_rows, rows - r0);
    MGPUSW_CHECK_MSG(chunk->sequence_number == block_row,
                     "expected chunk " << block_row << ", got "
                                       << chunk->sequence_number);
    MGPUSW_CHECK_MSG(chunk->first_row == r0 && chunk->rows() == bh,
                     "chunk " << block_row << " covers rows ["
                              << chunk->first_row << ", "
                              << chunk->first_row + chunk->rows()
                              << "), expected [" << r0 << ", " << r0 + bh
                              << ")");
    std::copy(chunk->h.begin(), chunk->h.end(),
              col_h_.begin() + static_cast<std::ptrdiff_t>(r0));
    std::copy(chunk->e.begin(), chunk->e.end(),
              col_e_.begin() + static_cast<std::ptrdiff_t>(r0));
    chunk_corner_[static_cast<std::size_t>(block_row)] =
        static_cast<sw::Score>(chunk->corner_h);
    ++stats_.chunks_received;
  }

  void send_chunk(std::int64_t block_row, std::int64_t rows,
                  sw::Score& sent_corner) {
    const std::int64_t r0 = block_row * config_.block_rows;
    const std::int64_t bh = std::min(config_.block_rows, rows - r0);
    comm::BorderChunk chunk;
    chunk.sequence_number = block_row;
    chunk.first_row = r0;
    chunk.corner_h = sent_corner;
    chunk.h.assign(col_h_.begin() + static_cast<std::ptrdiff_t>(r0),
                   col_h_.begin() + static_cast<std::ptrdiff_t>(r0 + bh));
    chunk.e.assign(col_e_.begin() + static_cast<std::ptrdiff_t>(r0),
                   col_e_.begin() + static_cast<std::ptrdiff_t>(r0 + bh));
    sent_corner = chunk.h.back();
    out_->send(std::move(chunk));
  }

  void compute_one(std::int64_t i, std::int64_t j, std::int64_t rows,
                   TaskOutcome& outcome) {
    const std::int64_t r0 = i * config_.block_rows;
    const std::int64_t bh = std::min(config_.block_rows, rows - r0);
    const std::int64_t c0 = j * config_.block_cols;  // slice-local
    const std::int64_t bw = std::min(config_.block_cols, slice_.cols - c0);
    const std::int64_t c0_global = slice_.first_col + c0;

    sw::Score* const top_h = row_h_.data() + c0;
    sw::Score* const top_f = row_f_.data() + c0;
    sw::Score* const left_h = col_h_.data() + r0;
    sw::Score* const left_e = col_e_.data() + r0;

    const sw::Score corner_in =
        j == 0 ? (in_ != nullptr
                      ? chunk_corner_[static_cast<std::size_t>(i)]
                      : sw::Score{0})
               : corner_[static_cast<std::size_t>(j)];
    // The corner for block (i+1, j) is this block's left border's last
    // element; capture it before the kernel overwrites the segment.
    corner_[static_cast<std::size_t>(j)] = left_h[bh - 1];

    if (config_.enable_pruning &&
        try_prune(corner_in, top_h, bw, left_h, bh, r0, c0_global)) {
      std::fill(top_h, top_h + bw, sw::Score{0});
      std::fill(top_f, top_f + bw, sw::kNegInf);
      std::fill(left_h, left_h + bh, sw::Score{0});
      std::fill(left_e, left_e + bh, sw::kNegInf);
      outcome.cells = sw::block_cells(bh, bw);
      outcome.pruned = true;
      outcome.valid = true;
      // Special rows must stay gap-free even through pruned regions: the
      // zeroed borders are exactly the values this run propagated, so a
      // resume seeded from them reproduces the same (exact) final score.
      maybe_save_special_row(i, r0, bh, c0_global, bw, top_h, top_f);
      return;
    }

    sw::BlockArgs args;
    args.query = query_.data() + r0;
    args.subject = subject_.data() + c0_global;
    args.rows = bh;
    args.cols = bw;
    args.global_row = r0;
    args.global_col = c0_global;
    args.top_h = top_h;
    args.top_f = top_f;
    args.left_h = left_h;
    args.left_e = left_e;
    args.corner_h = corner_in;
    args.bottom_h = top_h;
    args.bottom_f = top_f;
    args.right_h = left_h;
    args.right_e = left_e;

    base::WallTimer timer;
    outcome.block = kernel_(config_.scheme, args);
    device_.account_kernel(timer.elapsed_ns(), sw::block_cells(bh, bw));
    outcome.cells = sw::block_cells(bh, bw);
    outcome.valid = true;

    // After the kernel, top_h/top_f alias the block's bottom borders.
    maybe_save_special_row(i, r0, bh, c0_global, bw, top_h, top_f);
  }

  void maybe_save_special_row(std::int64_t i, std::int64_t r0,
                              std::int64_t bh, std::int64_t c0_global,
                              std::int64_t bw, const sw::Score* bottom_h,
                              const sw::Score* bottom_f) {
    if (config_.special_row_interval <= 0 ||
        (i + 1) % config_.special_row_interval != 0) {
      return;
    }
    config_.special_rows->save_segment(
        r0 + bh - 1, c0_global,
        std::vector<sw::Score>(bottom_h, bottom_h + bw),
        config_.checkpoint_f
            ? std::vector<sw::Score>(bottom_f, bottom_f + bw)
            : std::vector<sw::Score>{});
  }

  /// Block pruning (extension): true when no alignment through this
  /// block can beat the best score already found anywhere.
  bool try_prune(sw::Score corner_in, const sw::Score* top_h,
                 std::int64_t bw, const sw::Score* left_h, std::int64_t bh,
                 std::int64_t r0, std::int64_t c0_global) const {
    sw::Score border_in_max = corner_in;
    for (std::int64_t k = 0; k < bw; ++k) {
      border_in_max = std::max(border_in_max, top_h[k]);
    }
    for (std::int64_t k = 0; k < bh; ++k) {
      border_in_max = std::max(border_in_max, left_h[k]);
    }
    const std::int64_t remaining_rows =
        static_cast<std::int64_t>(query_.size()) - r0;
    const std::int64_t remaining_cols =
        static_cast<std::int64_t>(subject_.size()) - c0_global;
    const std::int64_t reach = std::min(remaining_rows, remaining_cols);
    const sw::Score upper_bound =
        border_in_max +
        config_.scheme.match * static_cast<sw::Score>(reach);
    return upper_bound <= global_best_.load(std::memory_order_relaxed);
  }

  const EngineConfig& config_;
  const sw::BlockKernelFn kernel_;
  const int device_index_ = 0;
  vgpu::Device& device_;
  const std::vector<seq::Nt>& query_;
  const std::vector<seq::Nt>& subject_;
  const ColumnRange slice_;
  comm::BorderSource* const in_;
  comm::BorderSink* const out_;
  std::atomic<sw::Score>& global_best_;
  const std::int64_t start_block_row_ = 0;  // > 0 when resuming
  const sw::Score* seed_h_ = nullptr;       // checkpoint row (full width)
  const sw::Score* seed_f_ = nullptr;

  std::vector<sw::Score> row_h_, row_f_;   // horizontal borders per column
  std::vector<sw::Score> col_h_, col_e_;   // vertical borders per row
  std::vector<sw::Score> corner_;          // per block column
  std::vector<sw::Score> chunk_corner_;    // per block row (device d > 0)

  DeviceRunStats stats_;
  sw::ScoreResult best_;
  std::int64_t initial_busy_ns_ = 0;
};

std::vector<seq::Nt> unpack(const seq::Sequence& s) {
  std::vector<seq::Nt> out(static_cast<std::size_t>(s.size()));
  if (s.size() > 0) s.extract(0, s.size(), out.data());
  return out;
}

}  // namespace

MultiDeviceEngine::MultiDeviceEngine(EngineConfig config,
                                     std::vector<vgpu::Device*> devices)
    : config_(std::move(config)), devices_(std::move(devices)) {
  config_.scheme.validate();
  MGPUSW_REQUIRE(!devices_.empty(), "engine needs at least one device");
  for (vgpu::Device* device : devices_) {
    MGPUSW_REQUIRE(device != nullptr, "device pointer is null");
  }
  MGPUSW_REQUIRE(config_.block_rows > 0, "block_rows must be positive");
  MGPUSW_REQUIRE(config_.block_cols > 0, "block_cols must be positive");
  MGPUSW_REQUIRE(config_.buffer_capacity > 0,
                 "buffer_capacity must be positive");
  if (config_.balance == BalanceMode::kCustomWeights) {
    MGPUSW_REQUIRE(config_.custom_weights.size() == devices_.size(),
                   "custom_weights must have one entry per device");
  }
  if (config_.special_row_interval > 0) {
    MGPUSW_REQUIRE(config_.special_rows != nullptr,
                   "special_row_interval set but special_rows is null");
  }
  // Resolve every kernel name now (find_kernel throws on unknown names),
  // so a typo fails at construction instead of mid-run, and log the
  // choice once per engine.
  (void)sw::find_kernel(config_.kernel);
  bool any_override = false;
  for (const vgpu::Device* device : devices_) {
    if (!device->spec().kernel.empty()) {
      (void)sw::find_kernel(device->spec().kernel);
      any_override = true;
    }
  }
  MGPUSW_LOG(kInfo) << "engine kernel=" << config_.kernel
                    << (any_override ? " (per-device overrides present)" : "")
                    << " simd_isa=" << sw::simd_isa_name(sw::detected_simd_isa())
                    << " simd_backend=" << sw::active_simd_backend();
}

std::vector<ColumnRange> MultiDeviceEngine::plan_partition(
    std::int64_t total_cols) const {
  std::vector<double> weights;
  weights.reserve(devices_.size());
  switch (config_.balance) {
    case BalanceMode::kEqual:
      weights.assign(devices_.size(), 1.0);
      break;
    case BalanceMode::kSpecGcups:
      for (const vgpu::Device* device : devices_) {
        weights.push_back(device->spec().sw_gcups / device->slowdown());
      }
      break;
    case BalanceMode::kCustomWeights:
      weights = config_.custom_weights;
      break;
  }
  return partition_columns(total_cols, weights, config_.block_cols);
}

/// Assembled checkpoint row used to seed a resumed run.
struct MultiDeviceEngine::ResumeSeed {
  std::int64_t checkpoint_row = -1;
  std::vector<sw::Score> h;
  std::vector<sw::Score> f;
};

EngineResult MultiDeviceEngine::run(const seq::Sequence& query,
                                    const seq::Sequence& subject) {
  return run_internal(query, subject, nullptr);
}

EngineResult MultiDeviceEngine::resume(const seq::Sequence& query,
                                       const seq::Sequence& subject,
                                       const SpecialRowStore& checkpoints,
                                       std::int64_t checkpoint_row) {
  MGPUSW_REQUIRE(config_.schedule == Schedule::kRowMajor,
                 "resume supports the kRowMajor schedule only");
  MGPUSW_REQUIRE((checkpoint_row + 1) % config_.block_rows == 0,
                 "checkpoint row " << checkpoint_row
                                   << " is not a block-row boundary for "
                                      "block_rows = "
                                   << config_.block_rows);
  MGPUSW_REQUIRE(checkpoint_row + 1 < query.size(),
                 "checkpoint row " << checkpoint_row
                                   << " leaves nothing to resume");
  ResumeSeed seed;
  seed.checkpoint_row = checkpoint_row;
  seed.h = checkpoints.assemble_row(checkpoint_row, subject.size());
  seed.f = checkpoints.assemble_row_f(checkpoint_row, subject.size());
  return run_internal(query, subject, &seed);
}

EngineResult MultiDeviceEngine::run_internal(const seq::Sequence& query,
                                             const seq::Sequence& subject,
                                             const ResumeSeed* seed) {
  MGPUSW_REQUIRE(!query.empty(), "query sequence is empty");
  MGPUSW_REQUIRE(!subject.empty(), "subject sequence is empty");

  const std::vector<seq::Nt> query_bases = unpack(query);
  const std::vector<seq::Nt> subject_bases = unpack(subject);

  const std::vector<ColumnRange> ranges = plan_partition(subject.size());

  // Channels between consecutive devices.
  std::vector<comm::ChannelPair> channels;
  channels.reserve(devices_.size() - 1);
  for (std::size_t d = 0; d + 1 < devices_.size(); ++d) {
    channels.push_back(
        config_.transport == Transport::kTcp
            ? comm::make_tcp_channel(
                  static_cast<std::size_t>(config_.buffer_capacity))
            : comm::make_ring_channel(
                  static_cast<std::size_t>(config_.buffer_capacity)));
  }

  std::atomic<sw::Score> global_best{0};
  std::vector<std::unique_ptr<DeviceWorker>> workers;
  workers.reserve(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    comm::BorderSource* in = d == 0 ? nullptr : channels[d - 1].source.get();
    comm::BorderSink* out =
        d + 1 == devices_.size() ? nullptr : channels[d].sink.get();
    const std::int64_t start_block_row =
        seed == nullptr ? 0
                        : (seed->checkpoint_row + 1) / config_.block_rows;
    const std::string& device_kernel = devices_[d]->spec().kernel;
    const sw::BlockKernelFn kernel = sw::find_kernel(
        device_kernel.empty() ? config_.kernel : device_kernel);
    workers.push_back(std::make_unique<DeviceWorker>(
        config_, kernel, *devices_[d], static_cast<int>(d), query_bases,
        subject_bases, ranges[d], in, out, global_best, start_block_row,
        seed == nullptr ? nullptr : seed->h.data(),
        seed == nullptr ? nullptr : seed->f.data()));
    workers.back()->snapshot_initial_busy();
  }

  base::WallTimer wall;
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(devices_.size());
  threads.reserve(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    threads.emplace_back([&, d] {
      try {
        workers[d]->run();
      } catch (...) {
        errors[d] = std::current_exception();
        // Unblock neighbours so every thread can exit: close the
        // downstream channel (consumer sees EOF) and, for in-process
        // channels, the upstream one (a producer blocked on a full
        // buffer gets an error instead of hanging).
        if (d + 1 < devices_.size()) channels[d].sink->close();
        if (d > 0 && config_.transport == Transport::kInProcess) {
          channels[d - 1].sink->close();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_seconds = wall.elapsed_seconds();

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  EngineResult result;
  result.kernel = config_.kernel;
  result.simd_isa = sw::simd_isa_name(sw::detected_simd_isa());
  const std::int64_t resumed_rows =
      seed == nullptr ? query.size()
                      : query.size() - (seed->checkpoint_row + 1);
  result.matrix_cells = resumed_rows * subject.size();
  result.wall_seconds = wall_seconds;
  for (const auto& worker : workers) {
    if (sw::improves(worker->best(), result.best)) {
      result.best = worker->best();
    }
    result.devices.push_back(worker->stats());
    result.computed_cells += worker->stats().cells;
  }
  return result;
}

}  // namespace mgpusw::core
