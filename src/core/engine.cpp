#include "core/engine.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "base/log.hpp"
#include "base/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sw/block_simd.hpp"
#include "vgpu/fault.hpp"

namespace mgpusw::core {

namespace {

std::vector<seq::Nt> unpack(const seq::Sequence& s) {
  std::vector<seq::Nt> out(static_cast<std::size_t>(s.size()));
  if (s.size() > 0) s.extract(0, s.size(), out.data());
  return out;
}

}  // namespace

MultiDeviceEngine::MultiDeviceEngine(EngineConfig config,
                                     std::vector<vgpu::Device*> devices)
    : config_(std::move(config)), devices_(std::move(devices)) {
  config_.scheme.validate();
  MGPUSW_REQUIRE(!devices_.empty(), "engine needs at least one device");
  for (vgpu::Device* device : devices_) {
    MGPUSW_REQUIRE(device != nullptr, "device pointer is null");
  }
  MGPUSW_REQUIRE(config_.block_rows > 0, "block_rows must be positive");
  MGPUSW_REQUIRE(config_.block_cols > 0, "block_cols must be positive");
  MGPUSW_REQUIRE(config_.buffer_capacity > 0,
                 "buffer_capacity must be positive");
  if (config_.balance == BalanceMode::kCustomWeights) {
    MGPUSW_REQUIRE(config_.custom_weights.size() == devices_.size(),
                   "custom_weights must have one entry per device");
  }
  if (config_.special_row_interval > 0) {
    MGPUSW_REQUIRE(config_.special_rows != nullptr,
                   "special_row_interval set but special_rows is null");
  }
  // Resolve every kernel once (find_kernel throws on unknown names), so
  // a typo fails at construction instead of mid-run and run_internal
  // never repeats the lookup.
  (void)sw::find_kernel(config_.kernel);
  kernels_.reserve(devices_.size());
  bool any_override = false;
  for (const vgpu::Device* device : devices_) {
    const std::string& device_kernel = device->spec().kernel;
    kernels_.push_back(sw::find_kernel(
        device_kernel.empty() ? config_.kernel : device_kernel));
    any_override = any_override || !device_kernel.empty();
  }
  MGPUSW_LOG(kInfo) << "engine kernel=" << config_.kernel
                    << (any_override ? " (per-device overrides present)" : "")
                    << " simd_isa=" << sw::simd_isa_name(sw::detected_simd_isa())
                    << " simd_backend=" << sw::active_simd_backend();
}

std::vector<double> MultiDeviceEngine::balance_weights() const {
  std::vector<double> weights;
  weights.reserve(devices_.size());
  switch (config_.balance) {
    case BalanceMode::kEqual:
      weights.assign(devices_.size(), 1.0);
      break;
    case BalanceMode::kSpecGcups:
      for (const vgpu::Device* device : devices_) {
        weights.push_back(device->spec().sw_gcups / device->slowdown());
      }
      break;
    case BalanceMode::kCustomWeights:
      weights = config_.custom_weights;
      break;
  }
  return weights;
}

AlignmentPlan MultiDeviceEngine::plan(std::int64_t rows, std::int64_t cols,
                                      std::int64_t start_block_row) const {
  PlanRequest request;
  request.rows = rows;
  request.cols = cols;
  request.block_rows = config_.block_rows;
  request.block_cols = config_.block_cols;
  request.buffer_capacity = config_.buffer_capacity;
  request.transport = config_.transport;
  request.schedule = config_.schedule;
  request.default_kernel = config_.kernel;
  request.weights = balance_weights();
  request.device_kernels.reserve(devices_.size());
  for (const vgpu::Device* device : devices_) {
    request.device_kernels.push_back(device->spec().kernel);
  }
  request.start_block_row = start_block_row;
  return make_plan(request);
}

std::vector<ColumnRange> MultiDeviceEngine::plan_partition(
    std::int64_t total_cols) const {
  return partition_columns(total_cols, balance_weights(),
                           config_.block_cols);
}

/// Assembled checkpoint row used to seed a resumed run.
struct MultiDeviceEngine::ResumeSeed {
  std::int64_t checkpoint_row = -1;
  std::vector<sw::Score> h;
  std::vector<sw::Score> f;
};

EngineResult MultiDeviceEngine::run(const seq::Sequence& query,
                                    const seq::Sequence& subject) {
  return run_internal(query, subject, nullptr);
}

EngineResult MultiDeviceEngine::resume(const seq::Sequence& query,
                                       const seq::Sequence& subject,
                                       const SpecialRowStore& checkpoints,
                                       std::int64_t checkpoint_row) {
  MGPUSW_REQUIRE((checkpoint_row + 1) % config_.block_rows == 0,
                 "checkpoint row " << checkpoint_row
                                   << " is not a block-row boundary for "
                                      "block_rows = "
                                   << config_.block_rows);
  MGPUSW_REQUIRE(checkpoint_row + 1 < query.size(),
                 "checkpoint row " << checkpoint_row
                                   << " leaves nothing to resume");
  ResumeSeed seed;
  seed.checkpoint_row = checkpoint_row;
  seed.h = checkpoints.assemble_row(checkpoint_row, subject.size());
  seed.f = checkpoints.assemble_row_f(checkpoint_row, subject.size());
  return run_internal(query, subject, &seed);
}

EngineResult MultiDeviceEngine::run_internal(const seq::Sequence& query,
                                             const seq::Sequence& subject,
                                             const ResumeSeed* seed) {
  MGPUSW_REQUIRE(!query.empty(), "query sequence is empty");
  MGPUSW_REQUIRE(!subject.empty(), "subject sequence is empty");

  last_failure_ = RunFailure{};

  obs::TraceSpan run_span(config_.obs.tracer, "engine",
                          seed == nullptr ? "run" : "resume");
  if (run_span.active()) {
    config_.obs.tracer->name_this_thread("engine");
    run_span.arg("rows", query.size())
        .arg("cols", subject.size())
        .arg("devices", static_cast<std::int64_t>(devices_.size()));
    if (!config_.job.empty()) run_span.arg("job", config_.job);
  }

  const std::vector<seq::Nt> query_bases = unpack(query);
  const std::vector<seq::Nt> subject_bases = unpack(subject);

  // 1. Plan: everything decided before execution, in one value.
  const std::int64_t start_block_row =
      seed == nullptr ? 0 : (seed->checkpoint_row + 1) / config_.block_rows;
  const AlignmentPlan plan =
      this->plan(query.size(), subject.size(), start_block_row);

  // Arm the fault injector (when configured) on every device for the
  // duration of this run; the guard disarms on every exit path so a
  // later run on the same devices starts clean.
  struct FaultArmGuard {
    std::vector<vgpu::Device*>* devices = nullptr;
    vgpu::FaultInjector* injector = nullptr;
    ~FaultArmGuard() {
      if (devices == nullptr) return;
      for (vgpu::Device* device : *devices) device->clear_fault_injector();
      if (injector != nullptr) injector->set_obs({});
    }
  } fault_guard;
  if (config_.fault != nullptr) {
    config_.fault->set_obs(config_.obs);
    fault_guard.injector = config_.fault;
    MGPUSW_REQUIRE(config_.fault_ordinals.empty() ||
                       config_.fault_ordinals.size() == devices_.size(),
                   "fault_ordinals must be empty or one per device");
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      const int ordinal = config_.fault_ordinals.empty()
                              ? static_cast<int>(d)
                              : config_.fault_ordinals[d];
      devices_[d]->set_fault_injector(config_.fault, ordinal);
    }
    fault_guard.devices = &devices_;
  }

  // 2. Channels between consecutive devices, per the plan's topology.
  std::vector<comm::ChannelPair> channels;
  channels.reserve(plan.channel_count());
  for (std::size_t c = 0; c < plan.channel_count(); ++c) {
    comm::ChannelPair pair =
        plan.transport == Transport::kTcp
            ? comm::make_tcp_channel(
                  static_cast<std::size_t>(plan.buffer_capacity),
                  config_.comm_timeout_ms, config_.obs)
            : comm::make_ring_channel(
                  static_cast<std::size_t>(plan.buffer_capacity),
                  config_.obs);
    if (config_.fault != nullptr) {
      vgpu::FaultInjector* injector = config_.fault;
      const int channel_index = static_cast<int>(c);
      pair.sink = comm::make_faulty_sink(
          std::move(pair.sink),
          [injector, channel_index](std::int64_t sequence) {
            const vgpu::FaultInjector::ChunkFault fate =
                injector->on_chunk(channel_index, sequence);
            return comm::ChunkFault{fate.drop, fate.corrupt, fate.delay_ms};
          },
          config_.obs);
    }
    channels.push_back(std::move(pair));
  }

  // 3. Build one runner per device slice.
  RunnerContext context;
  context.scheme = config_.scheme;
  context.block_rows = config_.block_rows;
  context.block_cols = config_.block_cols;
  context.schedule = plan.schedule;
  context.enable_pruning = config_.enable_pruning;
  context.special_row_interval = config_.special_row_interval;
  context.special_rows = config_.special_rows;
  context.checkpoint_f = config_.checkpoint_f;
  context.progress = config_.progress;
  context.job = config_.job;
  context.device_count = static_cast<int>(plan.device_count());
  context.stop_request = config_.stop_request;
  context.obs = config_.obs;
  context.run_epoch = std::chrono::steady_clock::now();

  std::atomic<sw::Score> global_best{0};
  std::vector<std::unique_ptr<SliceRunner>> runners;
  runners.reserve(plan.device_count());
  for (std::size_t d = 0; d < plan.device_count(); ++d) {
    comm::BorderSource* in =
        plan.devices[d].has_upstream ? channels[d - 1].source.get() : nullptr;
    comm::BorderSink* out =
        plan.devices[d].has_downstream ? channels[d].sink.get() : nullptr;
    runners.push_back(std::make_unique<SliceRunner>(
        context, kernels_[d], *devices_[d], static_cast<int>(d),
        query_bases, subject_bases, plan.devices[d], plan.block_row_count,
        in, out, global_best, plan.start_block_row,
        seed == nullptr ? nullptr : seed->h.data(),
        seed == nullptr ? nullptr : seed->f.data()));
    runners.back()->snapshot_initial_busy();
  }

  // 4. Join the device threads; reduce.
  base::WallTimer wall;
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(plan.device_count());
  threads.reserve(plan.device_count());
  for (std::size_t d = 0; d < plan.device_count(); ++d) {
    threads.emplace_back([&, d] {
      try {
        runners[d]->run();
      } catch (...) {
        errors[d] = std::current_exception();
        // Unblock neighbours so every thread can exit, whatever the
        // transport: close the downstream channel (consumer sees EOF)
        // and the upstream one from the consumer side (a producer
        // blocked on a full buffer or an exhausted ack window gets an
        // error instead of hanging). A close can itself throw — e.g.
        // EPIPE on the TCP sentinel when the peer died first — and must
        // not escape this catch block.
        if (d + 1 < plan.device_count()) {
          try {
            channels[d].sink->close();
          } catch (...) {  // NOLINT(bugprone-empty-catch)
          }
        }
        if (d > 0) {
          try {
            channels[d - 1].source->close();
          } catch (...) {  // NOLINT(bugprone-empty-catch)
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_seconds = wall.elapsed_seconds();

  std::exception_ptr first_error;
  for (std::size_t d = 0; d < errors.size(); ++d) {
    if (!errors[d]) continue;
    if (!first_error) first_error = errors[d];
    last_failure_.faults.push_back(DeviceFault{
        static_cast<int>(d), devices_[d]->spec().name, errors[d]});
  }
  if (first_error) {
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->counter("engine.runs_failed").increment();
    }
    if (config_.obs.tracer != nullptr) {
      config_.obs.tracer->instant(
          "engine", "run_failed",
          {obs::TraceArg::number(
              "failed_devices",
              static_cast<std::int64_t>(last_failure_.faults.size()))});
    }
    // Post-mortem for the recovery layer: every block a runner reduced
    // before its thread stopped is complete, so folding the runners'
    // bests gives the exact best over the completed region.
    last_failure_.valid = true;
    for (const auto& runner : runners) {
      if (sw::improves(runner->best(), last_failure_.partial_best)) {
        last_failure_.partial_best = runner->best();
      }
    }
    std::rethrow_exception(first_error);
  }

  EngineResult result;
  result.kernel = config_.kernel;
  result.simd_isa = sw::simd_isa_name(sw::detected_simd_isa());
  const std::int64_t resumed_rows =
      seed == nullptr ? query.size()
                      : query.size() - (seed->checkpoint_row + 1);
  result.matrix_cells = resumed_rows * subject.size();
  result.wall_seconds = wall_seconds;
  for (const auto& runner : runners) {
    if (sw::improves(runner->best(), result.best)) {
      result.best = runner->best();
    }
    result.devices.push_back(runner->stats());
    result.computed_cells += runner->stats().cells;
  }
  return result;
}

}  // namespace mgpusw::core
