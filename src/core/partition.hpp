// Static column partitioning across devices (the paper's load balancing).
//
// The DP matrix is split column-wise: device d computes a contiguous
// range of subject columns. For heterogeneous devices the paper sizes
// each range proportionally to the device's speed so that all devices
// finish their share of every wavefront step at roughly the same time;
// partitioning granularity is one block column so that the block grid
// stays aligned.
#pragma once

#include <cstdint>
#include <vector>

namespace mgpusw::core {

struct ColumnRange {
  std::int64_t first_col = 0;
  std::int64_t cols = 0;

  [[nodiscard]] std::int64_t end_col() const { return first_col + cols; }
  bool operator==(const ColumnRange&) const = default;
};

/// Splits `total_cols` matrix columns into one contiguous range per
/// weight, proportional to the weights, rounded to multiples of
/// `granularity` (the block width) except that the final range absorbs
/// the remainder. Every range receives at least one granularity unit.
///
/// Preconditions: total_cols > 0, granularity > 0, all weights > 0, and
/// total_cols >= granularity * weights.size() units available — i.e.
/// ceil(total_cols / granularity) >= weights.size().
[[nodiscard]] std::vector<ColumnRange> partition_columns(
    std::int64_t total_cols, const std::vector<double>& weights,
    std::int64_t granularity);

/// Convenience: equal weights.
[[nodiscard]] std::vector<ColumnRange> partition_columns_equal(
    std::int64_t total_cols, int parts, std::int64_t granularity);

}  // namespace mgpusw::core
