#include "core/balance.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "base/time.hpp"
#include "sw/block.hpp"

namespace mgpusw::core {

std::vector<double> spec_weights(const std::vector<vgpu::Device*>& devices) {
  std::vector<double> weights;
  weights.reserve(devices.size());
  for (const vgpu::Device* device : devices) {
    MGPUSW_REQUIRE(device != nullptr, "device pointer is null");
    weights.push_back(device->spec().sw_gcups / device->slowdown());
  }
  return weights;
}

std::vector<double> calibrate_weights(
    const std::vector<vgpu::Device*>& devices, const sw::ScoreScheme& scheme,
    std::int64_t sample_rows, std::int64_t sample_cols, std::uint64_t seed,
    const std::string& kernel) {
  MGPUSW_REQUIRE(sample_rows > 0 && sample_cols > 0,
                 "sample dimensions must be positive");
  scheme.validate();
  const sw::BlockKernelFn default_fn = sw::find_kernel(kernel);

  base::Rng rng(seed);
  std::vector<seq::Nt> query(static_cast<std::size_t>(sample_rows));
  std::vector<seq::Nt> subject(static_cast<std::size_t>(sample_cols));
  for (auto& base : query) base = static_cast<seq::Nt>(rng.next_below(4));
  for (auto& base : subject) base = static_cast<seq::Nt>(rng.next_below(4));

  std::vector<sw::Score> row_h(static_cast<std::size_t>(sample_cols));
  std::vector<sw::Score> row_f(static_cast<std::size_t>(sample_cols));
  std::vector<sw::Score> col_h(static_cast<std::size_t>(sample_rows));
  std::vector<sw::Score> col_e(static_cast<std::size_t>(sample_rows));

  // Timing discipline borrowed from bench/micro_kernels: one unclocked
  // warmup sweep (first-touch pages, cold caches, lazily started worker
  // threads), then the minimum over a few timed repetitions. A single
  // cold-start-skewed sample here would seed a bad initial split that
  // the whole run (or a rebalance restart) then pays for.
  constexpr int kTimedReps = 3;

  std::vector<double> weights;
  weights.reserve(devices.size());
  for (vgpu::Device* device : devices) {
    MGPUSW_REQUIRE(device != nullptr, "device pointer is null");
    sw::BlockArgs args;
    args.query = query.data();
    args.subject = subject.data();
    args.rows = sample_rows;
    args.cols = sample_cols;
    args.top_h = row_h.data();
    args.top_f = row_f.data();
    args.left_h = col_h.data();
    args.left_e = col_e.data();
    args.bottom_h = row_h.data();
    args.bottom_f = row_f.data();
    args.right_h = col_h.data();
    args.right_e = col_e.data();

    const sw::BlockKernelFn fn =
        device->spec().kernel.empty() ? default_fn
                                      : sw::find_kernel(device->spec().kernel);
    const auto sweep = [&] {
      // The kernel overwrites the borders in place; every sweep must
      // start from the matrix-boundary values to do identical work.
      std::fill(row_h.begin(), row_h.end(), 0);
      std::fill(row_f.begin(), row_f.end(), sw::kNegInf);
      std::fill(col_h.begin(), col_h.end(), 0);
      std::fill(col_e.begin(), col_e.end(), sw::kNegInf);
      device->execute([&] {
        base::WallTimer kernel_timer;
        (void)fn(scheme, args);
        device->account_kernel(kernel_timer.elapsed_ns(),
                               sample_rows * sample_cols);
      });
      device->synchronize();
    };

    sweep();  // warmup, unclocked
    double best_seconds = 0.0;
    for (int rep = 0; rep < kTimedReps; ++rep) {
      base::WallTimer timer;
      sweep();
      const double seconds = timer.elapsed_seconds();
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
    }
    const double cells =
        static_cast<double>(sample_rows) * static_cast<double>(sample_cols);
    weights.push_back(cells / best_seconds);
  }
  return weights;
}

}  // namespace mgpusw::core
