// Plan layer: everything decided *before* an alignment executes.
//
// An AlignmentPlan is a pure value describing one multi-device
// comparison: matrix geometry, the block grid, the speed-proportional
// column partition, the channel topology between neighbouring devices,
// the kernel each device will run, and (for resumed runs) the seed
// position. Both the real engine (core::MultiDeviceEngine) and the
// performance model (sim::simulate_pipeline) build their execution from
// the same plan, so the slice arithmetic exists in exactly one place —
// the engine validates the schedule computes correct scores, the
// simulator projects the same schedule to paper-scale hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/partition.hpp"
#include "sw/kernel.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw::core {

/// How slice widths are chosen for heterogeneous devices.
enum class BalanceMode {
  kEqual,          // equal block-column counts (the naive baseline)
  kSpecGcups,      // proportional to DeviceSpec::sw_gcups / slowdown
  kCustomWeights,  // caller-provided weights
};

enum class Transport {
  kInProcess,  // circular buffer in shared memory
  kTcp,        // loopback TCP sockets with the same framing
};

/// How a device orders the blocks of its slice. Both orders respect the
/// DP dependencies and produce identical results; they differ in
/// pipeline behaviour:
///   * kRowMajor (default) — fine-grain pipelining: the border chunk for
///     block row i ships as soon as row i is done, so a downstream device
///     lags its neighbour by one block row. This matches the paper's
///     communication-hiding design. Within a device, blocks execute
///     sequentially.
///   * kDiagonal — CUDAlign-style external block diagonals with a barrier
///     per diagonal; blocks within a diagonal are independent and run
///     concurrently on the device's worker pool. Maximises intra-device
///     parallelism but delays border chunks (chunk i completes only with
///     diagonal i + nbc - 1), lengthening the pipeline fill/drain.
/// The schedule ablation benchmark (bench/ablation_schedule) quantifies
/// the difference.
enum class Schedule {
  kRowMajor,
  kDiagonal,
};

/// One device's share of the plan.
struct SlicePlan {
  ColumnRange slice;               // contiguous subject columns
  std::int64_t block_columns = 0;  // nbc: block columns in the slice
  std::string kernel;              // registry name this device runs
  bool has_upstream = false;       // receives border chunks from d-1
  bool has_downstream = false;     // sends border chunks to d+1

  bool operator==(const SlicePlan&) const = default;
};

/// Inputs to plan construction. Weights are already resolved to one
/// positive number per device (see balance_weights / profile_weights);
/// device_kernels may be empty (everyone runs default_kernel) or hold
/// one entry per device ("" = default).
struct PlanRequest {
  std::int64_t rows = 0;  // query length (cells)
  std::int64_t cols = 0;  // subject length (cells)
  std::int64_t block_rows = 512;
  std::int64_t block_cols = 512;
  std::int64_t buffer_capacity = 16;
  Transport transport = Transport::kInProcess;
  Schedule schedule = Schedule::kRowMajor;
  std::string default_kernel{sw::kDefaultKernel};
  std::vector<double> weights;
  std::vector<std::string> device_kernels;
  std::int64_t start_block_row = 0;  // > 0 when resuming from a checkpoint
};

/// The full pre-execution decision record for one comparison.
struct AlignmentPlan {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t block_rows = 0;
  std::int64_t block_cols = 0;
  std::int64_t block_row_count = 0;  // nbr, shared by every slice
  std::int64_t buffer_capacity = 0;
  Transport transport = Transport::kInProcess;
  Schedule schedule = Schedule::kRowMajor;
  std::int64_t start_block_row = 0;
  std::vector<SlicePlan> devices;

  [[nodiscard]] std::size_t device_count() const { return devices.size(); }

  /// Border channels between consecutive devices.
  [[nodiscard]] std::size_t channel_count() const {
    return devices.empty() ? 0 : devices.size() - 1;
  }

  /// Scheduling units device d steps through (block rows in kRowMajor,
  /// external diagonals in kDiagonal) — the denominator of progress
  /// reporting.
  [[nodiscard]] std::int64_t schedule_units(std::size_t device) const;

  bool operator==(const AlignmentPlan&) const = default;
};

/// Builds the plan: derives the block grid, partitions the columns
/// proportionally to the weights (granularity one block column), and
/// resolves each device's kernel name (per-device override or default).
/// Throws InvalidArgument on inconsistent requests (non-positive
/// geometry, too many devices for the matrix, weight count mismatch).
[[nodiscard]] AlignmentPlan make_plan(const PlanRequest& request);

/// Profile weights straight from device specs (sw_gcups), the simulator's
/// default split and the raw material of BalanceMode::kSpecGcups.
[[nodiscard]] std::vector<double> profile_weights(
    const std::vector<vgpu::DeviceSpec>& devices);

}  // namespace mgpusw::core
