#include "core/partition.hpp"

#include <algorithm>
#include <numeric>

#include "base/error.hpp"
#include "base/math.hpp"

namespace mgpusw::core {

std::vector<ColumnRange> partition_columns(std::int64_t total_cols,
                                           const std::vector<double>& weights,
                                           std::int64_t granularity) {
  MGPUSW_REQUIRE(total_cols > 0, "total_cols must be positive");
  MGPUSW_REQUIRE(granularity > 0, "granularity must be positive");
  MGPUSW_REQUIRE(!weights.empty(), "need at least one weight");
  for (const double w : weights) {
    MGPUSW_REQUIRE(w > 0.0, "weights must be positive, got " << w);
  }

  const auto parts = static_cast<std::int64_t>(weights.size());
  const std::int64_t units = base::div_ceil(total_cols, granularity);
  MGPUSW_REQUIRE(units >= parts,
                 "matrix has only " << units << " block columns for "
                                    << parts << " devices");

  // Largest-remainder apportionment of `units` block columns, with a
  // floor of one unit per device.
  const double total_weight =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::int64_t> share(weights.size(), 1);
  std::int64_t assigned = parts;
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(weights.size());
  for (std::size_t d = 0; d < weights.size(); ++d) {
    const double exact =
        static_cast<double>(units) * (weights[d] / total_weight);
    const auto extra = static_cast<std::int64_t>(exact) - 1;
    if (extra > 0) {
      share[d] += extra;
      assigned += extra;
    }
    remainders.emplace_back(exact - static_cast<double>(share[d]), d);
  }
  std::sort(remainders.begin(), remainders.end(), [](auto& a, auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic tie-break
  });
  for (std::size_t k = 0; assigned < units; ++k) {
    ++share[remainders[k % remainders.size()].second];
    ++assigned;
  }
  // Over-assignment can only come from the per-device floor; shave the
  // largest shares back down (never below 1).
  for (std::size_t k = 0; assigned > units; ++k) {
    auto it = std::max_element(share.begin(), share.end());
    MGPUSW_CHECK(*it > 1);
    --*it;
    --assigned;
  }

  std::vector<ColumnRange> ranges(weights.size());
  std::int64_t col = 0;
  for (std::size_t d = 0; d < weights.size(); ++d) {
    const bool last = d + 1 == weights.size();
    const std::int64_t cols =
        last ? total_cols - col : std::min(share[d] * granularity,
                                           total_cols - col);
    ranges[d] = ColumnRange{col, cols};
    col += cols;
  }
  MGPUSW_CHECK(col == total_cols);
  for (const ColumnRange& range : ranges) {
    MGPUSW_CHECK_MSG(range.cols > 0, "a device received an empty slice");
  }
  return ranges;
}

std::vector<ColumnRange> partition_columns_equal(std::int64_t total_cols,
                                                 int parts,
                                                 std::int64_t granularity) {
  MGPUSW_REQUIRE(parts > 0, "parts must be positive");
  return partition_columns(total_cols,
                           std::vector<double>(static_cast<std::size_t>(parts),
                                               1.0),
                           granularity);
}

}  // namespace mgpusw::core
