#include "core/special_rows.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "base/crc32.hpp"
#include "base/error.hpp"

namespace mgpusw::core {

namespace {

struct RecordHeader {
  std::int64_t first_col;
  std::int64_t count;
  std::int64_t has_f;  // 1 when an F payload follows the H payload
  std::uint32_t crc;   // CRC-32 over the H payload then the F payload
  std::uint32_t reserved = 0;
};

/// CRC over a record's payloads in file order (H bytes, then F bytes).
std::uint32_t payload_crc(const std::vector<sw::Score>& h,
                          const std::vector<sw::Score>& f) {
  std::uint32_t crc =
      base::crc32_update(0, h.data(), h.size() * sizeof(sw::Score));
  return base::crc32_update(crc, f.data(), f.size() * sizeof(sw::Score));
}

}  // namespace

SpecialRowStore::SpecialRowStore(std::string directory)
    : directory_(std::move(directory)) {
  MGPUSW_REQUIRE(!directory_.empty(), "spill directory must be non-empty");
}

std::string SpecialRowStore::row_path(std::int64_t row) const {
  return directory_ + "/row_" + std::to_string(row) + ".srw";
}

void SpecialRowStore::append_to_disk(std::int64_t row,
                                     std::int64_t first_col,
                                     const std::vector<sw::Score>& h,
                                     const std::vector<sw::Score>& f) {
  std::ofstream out(row_path(row), std::ios::binary | std::ios::app);
  if (!out) throw IoError("cannot open spill file " + row_path(row));
  const RecordHeader header{first_col,
                            static_cast<std::int64_t>(h.size()),
                            f.empty() ? 0 : 1, payload_crc(h, f)};
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(h.data()),
            static_cast<std::streamsize>(h.size() * sizeof(sw::Score)));
  if (!f.empty()) {
    out.write(reinterpret_cast<const char*>(f.data()),
              static_cast<std::streamsize>(f.size() * sizeof(sw::Score)));
  }
  if (!out) throw IoError("error writing spill file " + row_path(row));
}

std::vector<SpecialRowStore::Segment> SpecialRowStore::read_from_disk(
    std::int64_t row) const {
  std::ifstream in(row_path(row), std::ios::binary);
  if (!in) throw IoError("cannot open spill file " + row_path(row));
  std::vector<Segment> segments;
  RecordHeader header;
  while (in.read(reinterpret_cast<char*>(&header), sizeof(header))) {
    if (header.count < 0 || header.first_col < 0) {
      throw IoError("corrupt spill record header in " + row_path(row));
    }
    Segment segment;
    segment.first_col = header.first_col;
    segment.h.resize(static_cast<std::size_t>(header.count));
    in.read(reinterpret_cast<char*>(segment.h.data()),
            static_cast<std::streamsize>(segment.h.size() *
                                         sizeof(sw::Score)));
    if (header.has_f != 0) {
      segment.f.resize(static_cast<std::size_t>(header.count));
      in.read(reinterpret_cast<char*>(segment.f.data()),
              static_cast<std::streamsize>(segment.f.size() *
                                           sizeof(sw::Score)));
    }
    if (!in) {
      throw IoError("truncated spill record in " + row_path(row));
    }
    if (payload_crc(segment.h, segment.f) != header.crc) {
      throw IoError("checksum mismatch in " + row_path(row) +
                    " (segment at column " +
                    std::to_string(header.first_col) + ")");
    }
    segments.push_back(std::move(segment));
  }
  return segments;
}

void SpecialRowStore::save_segment(std::int64_t row, std::int64_t first_col,
                                   std::vector<sw::Score> h,
                                   std::vector<sw::Score> f) {
  MGPUSW_REQUIRE(row >= 0, "row must be non-negative");
  MGPUSW_REQUIRE(first_col >= 0, "first_col must be non-negative");
  MGPUSW_REQUIRE(f.empty() || f.size() == h.size(),
                 "F payload must be empty or match the H payload size");
  std::lock_guard lock(mu_);
  const auto payload = static_cast<std::int64_t>(
      (h.size() + f.size()) * sizeof(sw::Score));
  bytes_ += payload;
  if (spills_to_disk()) {
    // First segment of a row after clear(): truncate any stale file.
    if (disk_rows_.find(row) == disk_rows_.end()) {
      std::remove(row_path(row).c_str());
    }
    append_to_disk(row, first_col, h, f);
    disk_rows_[row] += payload;
  } else {
    rows_[row].push_back(Segment{first_col, std::move(h), std::move(f)});
  }
}

std::vector<std::int64_t> SpecialRowStore::rows() const {
  std::lock_guard lock(mu_);
  std::vector<std::int64_t> out;
  if (spills_to_disk()) {
    out.reserve(disk_rows_.size());
    for (const auto& [row, bytes] : disk_rows_) out.push_back(row);
  } else {
    out.reserve(rows_.size());
    for (const auto& [row, segments] : rows_) out.push_back(row);
  }
  return out;
}

std::vector<SpecialRowStore::Segment> SpecialRowStore::row_segments(
    std::int64_t row) const {
  if (spills_to_disk()) {
    MGPUSW_CHECK_MSG(disk_rows_.find(row) != disk_rows_.end(),
                     "special row " << row << " not saved");
    return read_from_disk(row);
  }
  const auto it = rows_.find(row);
  MGPUSW_CHECK_MSG(it != rows_.end(), "special row " << row << " not saved");
  return it->second;
}

std::vector<sw::Score> SpecialRowStore::assemble(
    std::int64_t row, std::int64_t expected_cols, bool want_f) const {
  std::lock_guard lock(mu_);
  // A resumed run re-saves the segments of rows it recomputes; the
  // latest write wins (CUDAlign overwrites its special-row files too).
  std::map<std::int64_t, Segment> by_col;
  std::vector<Segment> raw = row_segments(row);
  for (Segment& segment : raw) {
    by_col[segment.first_col] = std::move(segment);
  }
  std::vector<Segment> segments;
  segments.reserve(by_col.size());
  for (auto& [col, segment] : by_col) {
    segments.push_back(std::move(segment));
  }
  std::vector<sw::Score> out;
  out.reserve(static_cast<std::size_t>(expected_cols));
  std::int64_t next = 0;
  for (const Segment& segment : segments) {
    MGPUSW_CHECK_MSG(segment.first_col == next,
                     "special row " << row << " has a gap at column "
                                    << next);
    const std::vector<sw::Score>& payload =
        want_f ? segment.f : segment.h;
    MGPUSW_CHECK_MSG(!want_f || segment.f.size() == segment.h.size(),
                     "special row " << row
                                    << " was saved without F data; it "
                                       "cannot seed a restart");
    out.insert(out.end(), payload.begin(), payload.end());
    next += static_cast<std::int64_t>(segment.h.size());
  }
  MGPUSW_CHECK_MSG(next == expected_cols,
                   "special row " << row << " covers " << next
                                  << " columns, expected " << expected_cols);
  return out;
}

std::vector<sw::Score> SpecialRowStore::assemble_row(
    std::int64_t row, std::int64_t expected_cols) const {
  return assemble(row, expected_cols, /*want_f=*/false);
}

std::vector<sw::Score> SpecialRowStore::assemble_row_f(
    std::int64_t row, std::int64_t expected_cols) const {
  return assemble(row, expected_cols, /*want_f=*/true);
}

std::int64_t SpecialRowStore::last_restartable_row(
    std::int64_t expected_cols, std::int64_t limit_row) const {
  const std::vector<std::int64_t> saved = rows();
  for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
    if (*it >= limit_row) continue;
    try {
      (void)assemble_row_f(*it, expected_cols);
      return *it;
    } catch (const Error& e) {
      // Incomplete, F-less, or failing its CRC: fall back to an older
      // checkpoint instead of aborting the whole recovery.
      std::fprintf(stderr, "mgpusw: skipping special row %lld: %s\n",
                   static_cast<long long>(*it), e.what());
    }
  }
  return -1;
}

SpecialRowStore::RecoveryReport SpecialRowStore::recover_existing() {
  MGPUSW_REQUIRE(spills_to_disk(),
                 "recover_existing applies to disk-spilling stores only");
  std::lock_guard lock(mu_);
  MGPUSW_REQUIRE(disk_rows_.empty(),
                 "recover_existing must run before any save_segment");
  RecoveryReport report;
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    // Only row_<digits>.srw files belong to the store.
    if (name.size() <= 8 || name.rfind("row_", 0) != 0 ||
        name.substr(name.size() - 4) != ".srw") {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 8);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const std::int64_t row = std::stoll(digits);

    // Walk the record sequence, remembering the end of the last record
    // that parses and passes its CRC; anything past it is torn.
    const std::string path = entry.path().string();
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::int64_t good_end = 0;
    std::int64_t payload_bytes = 0;
    std::int64_t segments = 0;
    RecordHeader header;
    while (in.read(reinterpret_cast<char*>(&header), sizeof(header))) {
      if (header.count < 0 || header.first_col < 0 ||
          header.count > (std::int64_t{1} << 31)) {
        break;
      }
      std::vector<sw::Score> h(static_cast<std::size_t>(header.count));
      std::vector<sw::Score> f;
      in.read(reinterpret_cast<char*>(h.data()),
              static_cast<std::streamsize>(h.size() * sizeof(sw::Score)));
      if (header.has_f != 0) {
        f.resize(static_cast<std::size_t>(header.count));
        in.read(
            reinterpret_cast<char*>(f.data()),
            static_cast<std::streamsize>(f.size() * sizeof(sw::Score)));
      }
      if (!in || payload_crc(h, f) != header.crc) break;
      good_end += static_cast<std::int64_t>(
          sizeof(header) + (h.size() + f.size()) * sizeof(sw::Score));
      payload_bytes +=
          static_cast<std::int64_t>((h.size() + f.size()) *
                                    sizeof(sw::Score));
      ++segments;
    }
    in.close();

    const std::int64_t file_size = static_cast<std::int64_t>(
        fs::file_size(fs::path(path), ec));
    if (!ec && file_size > good_end) {
      report.truncated_bytes += file_size - good_end;
      if (good_end == 0) {
        fs::remove(fs::path(path), ec);
      } else {
        fs::resize_file(fs::path(path),
                        static_cast<std::uintmax_t>(good_end), ec);
      }
    }
    if (good_end == 0) continue;
    disk_rows_[row] = payload_bytes;
    bytes_ += payload_bytes;
    ++report.rows;
    report.segments += segments;
  }
  return report;
}

std::int64_t SpecialRowStore::bytes() const {
  std::lock_guard lock(mu_);
  return bytes_;
}

void SpecialRowStore::clear() {
  std::lock_guard lock(mu_);
  if (spills_to_disk()) {
    for (const auto& [row, bytes] : disk_rows_) {
      std::remove(row_path(row).c_str());
    }
    disk_rows_.clear();
  }
  rows_.clear();
  bytes_ = 0;
}

}  // namespace mgpusw::core
