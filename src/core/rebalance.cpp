#include "core/rebalance.hpp"

#include <algorithm>
#include <utility>

#include "base/error.hpp"

namespace mgpusw::core {

std::vector<double> estimate_rates(
    const std::vector<DeviceRateSample>& samples) {
  std::vector<double> rates;
  rates.reserve(samples.size());
  for (const DeviceRateSample& sample : samples) {
    if (sample.cells <= 0 || sample.busy_ns <= 0) return {};
    rates.push_back(static_cast<double>(sample.cells) * 1e9 /
                    static_cast<double>(sample.busy_ns));
  }
  return rates;
}

double split_imbalance(const std::vector<double>& planned_shares,
                       const std::vector<double>& observed_rates) {
  MGPUSW_REQUIRE(!planned_shares.empty(), "no shares to judge");
  MGPUSW_REQUIRE(planned_shares.size() == observed_rates.size(),
                 "one observed rate per planned share required");
  // Projected finish time of device d's slice is share_d / rate_d; the
  // pipeline drains at the slowest device's pace, so the spread of these
  // projections is exactly what a re-split can recover.
  double slowest = 0.0;
  double fastest = 0.0;
  for (std::size_t d = 0; d < planned_shares.size(); ++d) {
    MGPUSW_REQUIRE(planned_shares[d] > 0.0, "shares must be positive");
    MGPUSW_REQUIRE(observed_rates[d] > 0.0, "rates must be positive");
    const double finish = planned_shares[d] / observed_rates[d];
    slowest = d == 0 ? finish : std::max(slowest, finish);
    fastest = d == 0 ? finish : std::min(fastest, finish);
  }
  return slowest / fastest - 1.0;
}

std::vector<double> normalize_weights(std::vector<double> weights) {
  double sum = 0.0;
  for (double w : weights) sum += w;
  MGPUSW_REQUIRE(sum > 0.0, "weights must have a positive sum");
  for (double& w : weights) w /= sum;
  return weights;
}

RebalanceController::RebalanceController(const RebalancePolicy& policy)
    : policy_(policy),
      next_check_(std::max<std::int64_t>(1, policy.check_every_rows)) {}

void RebalanceController::set_planned_shares(std::vector<double> shares) {
  std::lock_guard lock(mu_);
  shares_ = normalize_weights(std::move(shares));
  if (states_.size() < shares_.size()) states_.resize(shares_.size());
}

void RebalanceController::observe(const ProgressEvent& event) {
  if (stop_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(mu_);
  const auto d = static_cast<std::size_t>(event.device_index);
  if (states_.size() <= d) states_.resize(d + 1);
  DeviceState& state = states_[d];
  if (!state.seen) {
    state.seen = true;
    // Resumed runs report completed_units from mid-matrix; progress is
    // measured against what was already done when we started watching.
    state.baseline_units = event.completed_units - 1;
  }
  state.units = event.completed_units;
  state.sample.cells = event.device_cells_done;
  state.sample.busy_ns = event.busy_ns;

  if (shares_.empty() || states_.size() < shares_.size()) return;
  std::int64_t min_progress = 0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!states_[i].seen) return;  // some device has not reported yet
    const std::int64_t progress =
        states_[i].units - states_[i].baseline_units;
    min_progress = i == 0 ? progress : std::min(min_progress, progress);
  }
  if (min_progress < next_check_) return;
  next_check_ += std::max<std::int64_t>(1, policy_.check_every_rows);
  evaluate_locked();
}

void RebalanceController::evaluate_locked() {
  std::vector<DeviceRateSample> samples;
  samples.reserve(states_.size());
  for (const DeviceState& state : states_) samples.push_back(state.sample);
  const std::vector<double> rates = estimate_rates(samples);
  if (rates.empty()) return;  // e.g. a fully-pruned slice: no kernel time
  ++checks_;
  last_imbalance_ = split_imbalance(shares_, rates);
  if (last_imbalance_ <= policy_.min_imbalance) return;
  rates_ = rates;
  stop_.store(true, std::memory_order_release);
}

std::vector<double> RebalanceController::observed_weights() const {
  std::lock_guard lock(mu_);
  MGPUSW_CHECK(!rates_.empty());
  return normalize_weights(rates_);
}

double RebalanceController::last_imbalance() const {
  std::lock_guard lock(mu_);
  return last_imbalance_;
}

int RebalanceController::checks_run() const {
  std::lock_guard lock(mu_);
  return checks_;
}

}  // namespace mgpusw::core
