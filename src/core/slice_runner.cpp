#include "core/slice_runner.hpp"

#include <optional>
#include <sstream>
#include <utility>

#include "base/error.hpp"
#include "base/math.hpp"
#include "base/time.hpp"
#include "comm/border.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mgpusw::core {

namespace {

/// Atomically raises `target` to at least `value`.
void atomic_max(std::atomic<sw::Score>& target, sw::Score value) {
  sw::Score current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// components

void SpecialRowCapture::save(std::int64_t block_row, std::int64_t last_row,
                             std::int64_t c0_global, std::int64_t width,
                             const sw::Score* bottom_h,
                             const sw::Score* bottom_f) const {
  if (!due(block_row)) return;
  const obs::ScopedPhase phase(profiler_, obs::Phase::kCheckpoint);
  obs::TraceSpan span(scope_.tracer, "checkpoint", "save_row");
  span.arg("row", last_row).arg("col", c0_global).arg("width", width);
  store_->save_segment(
      last_row, c0_global,
      std::vector<sw::Score>(bottom_h, bottom_h + width),
      save_f_ ? std::vector<sw::Score>(bottom_f, bottom_f + width)
              : std::vector<sw::Score>{});
  if (scope_.metrics != nullptr) {
    scope_.metrics->counter("checkpoint.segments_saved").increment();
    scope_.metrics->counter("checkpoint.bytes")
        .add(static_cast<std::int64_t>((save_f_ ? 2 : 1) * width *
                                       sizeof(sw::Score)));
  }
}

sw::Score border_max(sw::Score corner, const sw::Score* top,
                     std::int64_t top_len, const sw::Score* left,
                     std::int64_t left_len) {
  sw::Score best = corner;
  for (std::int64_t k = 0; k < top_len; ++k) {
    best = std::max(best, top[k]);
  }
  for (std::int64_t k = 0; k < left_len; ++k) {
    best = std::max(best, left[k]);
  }
  return best;
}

void BorderExchange::set_obs(const obs::Scope& scope) {
  scope_ = scope;
  if (scope.metrics != nullptr) {
    border_wait_ms_ = &scope.metrics->histogram("comm.border_wait_ms");
  }
}

void BorderExchange::receive(std::int64_t block_row, sw::Score* col_h,
                             sw::Score* col_e, sw::Score& corner_out) {
  obs::TraceSpan span(scope_.tracer, "comm", "border_recv");
  span.arg("row", block_row);
  base::WallTimer wait;
  // Protocol violations (lost, reordered or damaged chunks) are
  // transient: the run can be restarted from the last checkpoint with a
  // fresh channel, so they throw ProtocolError rather than the fatal
  // InternalError a CHECK raises.
  std::optional<comm::BorderChunk> chunk = in_->recv();
  if (!chunk.has_value()) {
    throw ProtocolError("upstream closed before chunk " +
                        std::to_string(block_row));
  }
  const std::int64_t r0 = block_row * block_rows_;
  const std::int64_t bh = std::min(block_rows_, rows_ - r0);
  if (chunk->sequence_number != block_row) {
    std::ostringstream message;
    message << "expected chunk " << block_row << ", got "
            << chunk->sequence_number;
    throw ProtocolError(message.str());
  }
  if (chunk->first_row != r0 || chunk->rows() != bh) {
    std::ostringstream message;
    message << "chunk " << block_row << " covers rows ["
            << chunk->first_row << ", " << chunk->first_row + chunk->rows()
            << "), expected [" << r0 << ", " << r0 + bh << ")";
    throw ProtocolError(message.str());
  }
  std::copy(chunk->h.begin(), chunk->h.end(),
            col_h + static_cast<std::ptrdiff_t>(r0));
  std::copy(chunk->e.begin(), chunk->e.end(),
            col_e + static_cast<std::ptrdiff_t>(r0));
  corner_out = static_cast<sw::Score>(chunk->corner_h);
  ++chunks_received_;
  if (border_wait_ms_ != nullptr) {
    border_wait_ms_->observe(wait.elapsed_seconds() * 1e3);
  }
}

void BorderExchange::send(std::int64_t block_row, const sw::Score* col_h,
                          const sw::Score* col_e, sw::Score& sent_corner) {
  obs::TraceSpan span(scope_.tracer, "comm", "border_send");
  span.arg("row", block_row);
  const std::int64_t r0 = block_row * block_rows_;
  const std::int64_t bh = std::min(block_rows_, rows_ - r0);
  comm::BorderChunk chunk;
  chunk.sequence_number = block_row;
  chunk.first_row = r0;
  chunk.corner_h = sent_corner;
  chunk.h.assign(col_h + static_cast<std::ptrdiff_t>(r0),
                 col_h + static_cast<std::ptrdiff_t>(r0 + bh));
  chunk.e.assign(col_e + static_cast<std::ptrdiff_t>(r0),
                 col_e + static_cast<std::ptrdiff_t>(r0 + bh));
  sent_corner = chunk.h.back();
  out_->send(std::move(chunk));
}

void BorderExchange::close_downstream() {
  if (out_ != nullptr) out_->close();
}

void BorderExchange::fill_stats(DeviceRunStats& stats) const {
  stats.chunks_received = chunks_received_;
  if (in_ != nullptr) {
    stats.recv_stall_ns = in_->stats().consumer_stall_ns;
  }
  if (out_ != nullptr) {
    const comm::ChannelStats out_stats = out_->stats();
    stats.send_stall_ns = out_stats.producer_stall_ns;
    stats.chunks_sent = out_stats.chunks_sent;
    stats.bytes_sent = out_stats.bytes_sent;
  }
}

// ---------------------------------------------------------------------------
// SliceRunner

SliceRunner::SliceRunner(const RunnerContext& context,
                         sw::BlockKernelFn kernel, vgpu::Device& device,
                         int device_index,
                         const std::vector<seq::Nt>& query,
                         const std::vector<seq::Nt>& subject,
                         const SlicePlan& slice_plan,
                         std::int64_t block_row_count,
                         comm::BorderSource* in, comm::BorderSink* out,
                         std::atomic<sw::Score>& global_best,
                         std::int64_t start_block_row,
                         const sw::Score* seed_h, const sw::Score* seed_f)
    : context_(context),
      kernel_(kernel),
      device_index_(device_index),
      device_(device),
      query_(query),
      subject_(subject),
      slice_(slice_plan.slice),
      nbr_(block_row_count),
      nbc_(slice_plan.block_columns),
      exchange_(in, out, context.block_rows,
                static_cast<std::int64_t>(query.size())),
      pruner_(context.scheme, static_cast<std::int64_t>(query.size()),
              static_cast<std::int64_t>(subject.size())),
      special_rows_(context.special_row_interval, context.special_rows,
                    context.checkpoint_f),
      global_best_(global_best),
      start_block_row_(start_block_row),
      seed_h_(seed_h),
      seed_f_(seed_f),
      obs_(context.obs),
      profile_(context.obs.profile_phases) {
  exchange_.set_obs(obs_);
  // The checkpoint phase can only be charged when save() runs on this
  // driver thread; under the diagonal schedule with multiple device
  // workers, compute_one runs off-thread and checkpoint time stays
  // inside the compute phase.
  const bool driver_inline = context.schedule == Schedule::kRowMajor ||
                             device.worker_count() == 1;
  special_rows_.set_obs(obs_, profile_ && driver_inline ? &profiler_
                                                        : nullptr);
}

void SliceRunner::init_borders() {
  const std::int64_t rows = static_cast<std::int64_t>(query_.size());

  // Border storage: one (H,F) row segment per block column, one (H,E)
  // column segment per block row, one corner per block column. Initial
  // values encode the local-alignment matrix boundary. This is the
  // device's O(m + n_slice) memory — the linear-memory property the
  // paper relies on to fit megabase matrices on GPUs.
  row_h_.assign(static_cast<std::size_t>(slice_.cols), 0);
  row_f_.assign(static_cast<std::size_t>(slice_.cols), sw::kNegInf);
  col_h_.assign(static_cast<std::size_t>(rows), 0);
  col_e_.assign(static_cast<std::size_t>(rows), sw::kNegInf);
  corner_.assign(static_cast<std::size_t>(nbc_), 0);
  chunk_corner_.assign(static_cast<std::size_t>(nbr_), 0);

  // Restarting from a checkpoint: the top borders of the first computed
  // block row come from the saved (H, F) row instead of the matrix
  // boundary, and the per-column corners come from the same row.
  sent_corner_ = 0;
  if (seed_h_ != nullptr) {
    std::copy(seed_h_ + slice_.first_col,
              seed_h_ + slice_.first_col + slice_.cols, row_h_.begin());
    std::copy(seed_f_ + slice_.first_col,
              seed_f_ + slice_.first_col + slice_.cols, row_f_.begin());
    for (std::int64_t j = 1; j < nbc_; ++j) {
      corner_[static_cast<std::size_t>(j)] =
          seed_h_[slice_.first_col + j * context_.block_cols - 1];
    }
    // corner_[0] stays untouched: device 0's first-column corner is the
    // matrix boundary (H = 0), and downstream devices take theirs from
    // the incoming chunks, whose corners derive from sent_corner_.
    sent_corner_ = seed_h_[slice_.end_col() - 1];
  }
}

void SliceRunner::run() {
  base::WallTimer wall;
  obs::TraceSpan slice_span;
  if (obs_.tracer != nullptr) {
    obs_.tracer->name_this_thread("dev" + std::to_string(device_index_) +
                                  " " + device_.spec().name);
    slice_span = obs::TraceSpan(obs_.tracer, "engine", "slice");
    slice_span.arg("device", device_index_)
        .arg("first_col", slice_.first_col)
        .arg("cols", slice_.cols);
  }
  init_borders();

  // Track the footprint against the device's memory capacity, as the
  // CUDA implementation's cudaMallocs would.
  const std::int64_t border_bytes = static_cast<std::int64_t>(
      (row_h_.size() + row_f_.size() + col_h_.size() + col_e_.size() +
       corner_.size()) *
      sizeof(sw::Score));
  vgpu::DeviceBuffer buffer = device_.allocate(border_bytes);

  if (context_.schedule == Schedule::kRowMajor) {
    RowMajorSchedule{}.run(*this);
  } else {
    DiagonalSchedule{}.run(*this);
  }

  phase(obs::Phase::kBorderSend);
  exchange_.close_downstream();
  phase(obs::Phase::kIdle);

  stats_.wall_ns = wall.elapsed_ns();
  stats_.device_name = device_.spec().name;
  stats_.slice = slice_;
  stats_.busy_ns = device_.busy_ns() - initial_busy_ns_;
  exchange_.fill_stats(stats_);
  flush_obs();
}

void SliceRunner::flush_obs() {
  if (profile_) {
    profiler_.stop();
    stats_.phases_tracked = true;
    stats_.phase_compute_ns = profiler_.ns(obs::Phase::kCompute);
    stats_.phase_recv_ns = profiler_.ns(obs::Phase::kBorderRecv);
    stats_.phase_send_ns = profiler_.ns(obs::Phase::kBorderSend);
    stats_.phase_checkpoint_ns = profiler_.ns(obs::Phase::kCheckpoint);
    stats_.phase_idle_ns = profiler_.ns(obs::Phase::kIdle);
  }
  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& m = *obs_.metrics;
    m.counter("engine.blocks_computed")
        .add(stats_.blocks - stats_.pruned_blocks);
    m.counter("engine.blocks_pruned").add(stats_.pruned_blocks);
    m.counter("engine.cells_computed").add(stats_.cells);
    m.counter("engine.cells_pruned").add(stats_.pruned_cells);
    m.counter("comm.chunks_sent").add(stats_.chunks_sent);
    m.counter("comm.chunks_received").add(stats_.chunks_received);
    m.counter("comm.bytes_sent").add(stats_.bytes_sent);
    m.counter("kernel.overflow_reruns").add(stats_.overflow_reruns);
  }
}

void SliceRunner::reduce_outcome(TaskOutcome& outcome) {
  if (outcome.error) std::rethrow_exception(outcome.error);
  MGPUSW_CHECK(outcome.valid);
  ++stats_.blocks;
  if (outcome.pruned) {
    ++stats_.pruned_blocks;
    stats_.pruned_cells += outcome.cells;
  } else {
    stats_.cells += outcome.cells;
    stats_.overflow_reruns += outcome.block.overflow_reruns;
  }
  if (sw::improves(outcome.block.best, best_)) {
    best_ = outcome.block.best;
  }
}

void SliceRunner::publish_best() { atomic_max(global_best_, best_.score); }

void SliceRunner::notify_progress(std::int64_t completed,
                                  std::int64_t total,
                                  std::int64_t settled_block_rows) {
  if (obs_.tracer != nullptr) {
    // ProgressEvent re-expressed as a trace counter: one series per
    // device, plotting completed scheduling units over time.
    obs_.tracer->counter("engine",
                         "progress dev" + std::to_string(device_index_),
                         completed);
  }
  if (!context_.progress) return;
  ProgressEvent event;
  event.device_index = device_index_;
  event.completed_units = completed;
  event.total_units = total;
  event.device_cells_done = stats_.cells;
  event.t_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - context_.run_epoch)
                   .count();
  event.job = context_.job;
  event.busy_ns = device_.busy_ns() - initial_busy_ns_;
  event.device_count = context_.device_count;
  if (settled_block_rows > 0) {
    const std::int64_t rows = static_cast<std::int64_t>(query_.size());
    event.safe_row =
        std::min(settled_block_rows * context_.block_rows, rows) - 1;
  }
  event.best = best_;
  context_.progress(event);
}

void SliceRunner::throw_if_stop_requested() const {
  if (context_.stop_request == nullptr ||
      !context_.stop_request->load(std::memory_order_acquire)) {
    return;
  }
  throw InterruptedError("device " + std::to_string(device_index_) +
                         " stopped cooperatively (rebalance requested)");
}

void SliceRunner::compute_one(std::int64_t i, std::int64_t j,
                              TaskOutcome& outcome) {
  // Fault-injection hook: an armed FaultInjector may throw here to
  // simulate a failed kernel launch or a dying device.
  device_.fault_point(i, j);
  const std::int64_t rows = static_cast<std::int64_t>(query_.size());
  const std::int64_t r0 = i * context_.block_rows;
  const std::int64_t bh = std::min(context_.block_rows, rows - r0);
  const std::int64_t c0 = j * context_.block_cols;  // slice-local
  const std::int64_t bw = std::min(context_.block_cols, slice_.cols - c0);
  const std::int64_t c0_global = slice_.first_col + c0;

  sw::Score* const top_h = row_h_.data() + c0;
  sw::Score* const top_f = row_f_.data() + c0;
  sw::Score* const left_h = col_h_.data() + r0;
  sw::Score* const left_e = col_e_.data() + r0;

  const sw::Score corner_in =
      j == 0 ? (exchange_.has_upstream()
                    ? chunk_corner_[static_cast<std::size_t>(i)]
                    : sw::Score{0})
             : corner_[static_cast<std::size_t>(j)];
  // The corner for block (i+1, j) is this block's left border's last
  // element; capture it before the kernel overwrites the segment.
  corner_[static_cast<std::size_t>(j)] = left_h[bh - 1];

  if (context_.enable_pruning &&
      pruner_.can_prune(border_max(corner_in, top_h, bw, left_h, bh), r0,
                        c0_global,
                        global_best_.load(std::memory_order_relaxed))) {
    std::fill(top_h, top_h + bw, sw::Score{0});
    std::fill(top_f, top_f + bw, sw::kNegInf);
    std::fill(left_h, left_h + bh, sw::Score{0});
    std::fill(left_e, left_e + bh, sw::kNegInf);
    outcome.cells = sw::block_cells(bh, bw);
    outcome.pruned = true;
    outcome.valid = true;
    // Special rows must stay gap-free even through pruned regions: the
    // zeroed borders are exactly the values this run propagated, so a
    // resume seeded from them reproduces the same (exact) final score.
    special_rows_.save(i, r0 + bh - 1, c0_global, bw, top_h, top_f);
    return;
  }

  sw::BlockArgs args;
  args.query = query_.data() + r0;
  args.subject = subject_.data() + c0_global;
  args.rows = bh;
  args.cols = bw;
  args.global_row = r0;
  args.global_col = c0_global;
  args.top_h = top_h;
  args.top_f = top_f;
  args.left_h = left_h;
  args.left_e = left_e;
  args.corner_h = corner_in;
  args.bottom_h = top_h;
  args.bottom_f = top_f;
  args.right_h = left_h;
  args.right_e = left_e;

  obs::TraceSpan span(obs_.tracer, "engine", "block");
  span.arg("i", i).arg("j", j);
  base::WallTimer timer;
  outcome.block = kernel_(context_.scheme, args);
  device_.account_kernel(timer.elapsed_ns(), sw::block_cells(bh, bw));
  span.finish();
  outcome.cells = sw::block_cells(bh, bw);
  outcome.valid = true;

  // After the kernel, top_h/top_f alias the block's bottom borders.
  special_rows_.save(i, r0 + bh - 1, c0_global, bw, top_h, top_f);
}

// ---------------------------------------------------------------------------
// schedules

void RowMajorSchedule::run(SliceRunner& r) const {
  TaskOutcome outcome;
  for (std::int64_t i = r.start_block_row_; i < r.nbr_; ++i) {
    r.throw_if_stop_requested();
    if (r.exchange_.has_upstream()) {
      r.phase(obs::Phase::kBorderRecv);
      r.exchange_.receive(i, r.col_h_.data(), r.col_e_.data(),
                          r.chunk_corner_[static_cast<std::size_t>(i)]);
    }
    r.phase(obs::Phase::kCompute);
    for (std::int64_t j = 0; j < r.nbc_; ++j) {
      outcome = TaskOutcome{};
      r.compute_one(i, j, outcome);
      r.reduce_outcome(outcome);
    }
    r.publish_best();
    if (r.exchange_.has_downstream()) {
      r.phase(obs::Phase::kBorderSend);
      r.exchange_.send(i, r.col_h_.data(), r.col_e_.data(),
                       r.sent_corner_);
    }
    r.phase(obs::Phase::kIdle);
    r.notify_progress(i + 1, r.nbr_, i + 1);
  }
}

void DiagonalSchedule::run(SliceRunner& r) const {
  // Per-block-column scratch for the in-flight diagonal; row-major never
  // needs this, so the storage lives with the schedule that uses it.
  std::vector<TaskOutcome> outcomes(static_cast<std::size_t>(r.nbc_));
  // When resuming, the diagonals sweep only the rows below the
  // checkpoint; absolute block-row indices (chunk sequence numbers,
  // compute coordinates) keep their full-matrix values.
  const std::int64_t start = r.start_block_row_;
  const std::int64_t nbr_eff = r.nbr_ - start;
  for (std::int64_t diag = 0; diag <= nbr_eff + r.nbc_ - 2; ++diag) {
    r.throw_if_stop_requested();
    // 1. Receive the border chunk feeding this diagonal's first-column
    //    block (device d > 0 only).
    if (r.exchange_.has_upstream() && diag < nbr_eff) {
      r.phase(obs::Phase::kBorderRecv);
      const std::int64_t i_recv = start + diag;
      r.exchange_.receive(
          i_recv, r.col_h_.data(), r.col_e_.data(),
          r.chunk_corner_[static_cast<std::size_t>(i_recv)]);
    }

    // 2. Launch every block on this external diagonal. compute_one may
    //    throw (kernel fault, dying device); on a worker thread the
    //    exception is parked in the outcome — letting it escape would
    //    terminate the pool — and rethrown by reduce on the driver.
    r.phase(obs::Phase::kCompute);
    const std::int64_t li_lo =
        std::max<std::int64_t>(0, diag - (r.nbc_ - 1));
    const std::int64_t li_hi = std::min<std::int64_t>(nbr_eff - 1, diag);
    const bool inline_exec = r.device_.worker_count() == 1;
    for (std::int64_t li = li_lo; li <= li_hi; ++li) {
      const std::int64_t i = start + li;
      const std::int64_t j = diag - li;
      TaskOutcome& outcome = outcomes[static_cast<std::size_t>(j)];
      outcome = TaskOutcome{};
      if (inline_exec) {
        try {
          r.compute_one(i, j, outcome);
        } catch (...) {
          outcome.error = std::current_exception();
        }
      } else {
        r.device_.execute([&r, i, j, &outcome] {
          try {
            r.compute_one(i, j, outcome);
          } catch (...) {
            outcome.error = std::current_exception();
          }
        });
      }
    }
    if (!inline_exec) r.device_.synchronize();

    // 3. Reduce this diagonal's results — valid outcomes first, failure
    //    after. Every block that saved its special-row segment must also
    //    be folded into best_, or a restart from that row could miss its
    //    contribution and break bit-identical recovery.
    std::exception_ptr failure;
    for (std::int64_t li = li_lo; li <= li_hi; ++li) {
      const std::int64_t j = diag - li;
      TaskOutcome& outcome = outcomes[static_cast<std::size_t>(j)];
      if (outcome.error) {
        if (!failure) failure = outcome.error;
        continue;
      }
      r.reduce_outcome(outcome);
    }
    r.publish_best();
    if (failure) std::rethrow_exception(failure);

    // 4. Ship the border chunk completed by this diagonal (last block
    //    column), honouring the circular buffer's capacity.
    if (r.exchange_.has_downstream()) {
      const std::int64_t li_send = diag - (r.nbc_ - 1);
      if (li_send >= 0 && li_send < nbr_eff) {
        r.phase(obs::Phase::kBorderSend);
        r.exchange_.send(start + li_send, r.col_h_.data(),
                         r.col_e_.data(), r.sent_corner_);
      }
    }
    r.phase(obs::Phase::kIdle);
    // Relative block row li settles once diagonal li + nbc - 1 is done,
    // so after `diag` the first max(0, diag - nbc + 2) relative rows are
    // complete; rows before `start` were settled by the predecessor.
    r.notify_progress(diag + 1, nbr_eff + r.nbc_ - 1,
                      start + std::max<std::int64_t>(
                                  0, diag - r.nbc_ + 2));
  }
}

}  // namespace mgpusw::core
