// Machine-readable run reports.
//
// Serializes engine and simulator results to JSON so external tooling
// (plotting scripts, regression dashboards) can consume benchmark runs
// without scraping tables. Built on base::JsonWriter — the document
// structure is flat and fully controlled here, with no external JSON
// dependency.
//
// Each engine/recovery overload optionally merges an observability
// snapshot: pass the run's obs::MetricsRegistry and the report gains a
// "metrics" object (counters/gauges/histograms, see obs/metrics.hpp).
#pragma once

#include <string>

#include "core/engine.hpp"
#include "core/recovery.hpp"
#include "sim/pipeline_sim.hpp"

namespace mgpusw::obs {
class MetricsRegistry;
}  // namespace mgpusw::obs

namespace mgpusw::core {

/// EngineResult -> JSON object (pretty-printed, stable key order).
/// Device rows carry per-phase nanosecond totals when the run profiled
/// phases (EngineConfig::obs.profile_phases).
[[nodiscard]] std::string to_json(
    const EngineResult& result,
    const obs::MetricsRegistry* metrics = nullptr);

/// RecoveryResult -> JSON object: restart count, lost devices, and the
/// recovered run under "run". The metrics snapshot (when given) lands
/// at the top level, covering every attempt, not just the last run.
[[nodiscard]] std::string to_json(
    const RecoveryResult& result,
    const obs::MetricsRegistry* metrics = nullptr);

/// SimResult -> JSON object.
[[nodiscard]] std::string to_json(const sim::SimResult& result);

}  // namespace mgpusw::core
