// Machine-readable run reports.
//
// Serializes engine and simulator results to JSON so external tooling
// (plotting scripts, regression dashboards) can consume benchmark runs
// without scraping tables. No external JSON dependency: the document
// structure is flat and fully controlled here.
#pragma once

#include <string>

#include "core/engine.hpp"
#include "core/recovery.hpp"
#include "sim/pipeline_sim.hpp"

namespace mgpusw::core {

/// EngineResult -> JSON object (pretty-printed, stable key order).
[[nodiscard]] std::string to_json(const EngineResult& result);

/// RecoveryResult -> JSON object: restart count, lost devices, and the
/// recovered run under "run".
[[nodiscard]] std::string to_json(const RecoveryResult& result);

/// SimResult -> JSON object.
[[nodiscard]] std::string to_json(const sim::SimResult& result);

}  // namespace mgpusw::core
