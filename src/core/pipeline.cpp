#include "core/pipeline.hpp"

#include "base/error.hpp"
#include "base/time.hpp"
#include "sw/linear.hpp"
#include "sw/myers_miller.hpp"

namespace mgpusw::core {

AlignmentPipeline::AlignmentPipeline(EngineConfig config,
                                     std::vector<vgpu::Device*> devices,
                                     std::int64_t max_region_cells)
    : engine_(config, std::move(devices)),
      scheme_(config.scheme),
      max_region_cells_(max_region_cells) {
  MGPUSW_REQUIRE(max_region_cells > 0, "max_region_cells must be positive");
}

PipelineResult AlignmentPipeline::align(const seq::Sequence& query,
                                        const seq::Sequence& subject) {
  PipelineResult result;
  result.stage1 = engine_.run(query, subject);
  if (result.stage1.best.score == 0) {
    result.start = sw::CellPos{-1, -1};
    return result;  // empty alignment
  }

  // Stage 2 scans the rectangle above-left of the end cell; stage 3 the
  // start..end region. Both are bounded by the same guard.
  const sw::CellPos end = result.stage1.best.end;
  const std::int64_t stage2_cells = (end.row + 1) * (end.col + 1);
  MGPUSW_REQUIRE(stage2_cells <= max_region_cells_,
                 "alignment region has "
                     << stage2_cells << " cells, over the retrieval limit "
                     << max_region_cells_
                     << "; raise max_region_cells to proceed");

  base::WallTimer stage2;
  result.start = sw::find_alignment_start(scheme_, query, subject,
                                          result.stage1.best);
  result.stage2_seconds = stage2.elapsed_seconds();

  base::WallTimer stage3;
  const std::int64_t q_len = end.row - result.start.row + 1;
  const std::int64_t s_len = end.col - result.start.col + 1;
  sw::Alignment inner = sw::global_align(
      scheme_, query.subsequence(result.start.row, q_len),
      subject.subsequence(result.start.col, s_len));
  result.stage3_seconds = stage3.elapsed_seconds();

  result.alignment.query_begin = result.start.row;
  result.alignment.query_end = end.row + 1;
  result.alignment.subject_begin = result.start.col;
  result.alignment.subject_end = end.col + 1;
  result.alignment.ops = std::move(inner.ops);
  result.alignment.score = inner.score;
  MGPUSW_CHECK_MSG(result.alignment.score == result.stage1.best.score,
                   "stage-3 score " << result.alignment.score
                                    << " != stage-1 score "
                                    << result.stage1.best.score);
  return result;
}

}  // namespace mgpusw::core
