#include "core/fleet.hpp"

#include "base/error.hpp"
#include "base/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mgpusw::core {

DeviceLease& DeviceLease::operator=(DeviceLease&& other) noexcept {
  if (this != &other) {
    release();
    fleet_ = other.fleet_;
    devices_ = std::move(other.devices_);
    indices_ = std::move(other.indices_);
    other.fleet_ = nullptr;
    other.devices_.clear();
    other.indices_.clear();
  }
  return *this;
}

void DeviceLease::release() {
  if (fleet_ == nullptr) return;
  fleet_->release_indices(indices_);
  fleet_ = nullptr;
  devices_.clear();
  indices_.clear();
}

DeviceFleet::DeviceFleet(std::vector<std::unique_ptr<vgpu::Device>> devices)
    : owned_(std::move(devices)) {
  MGPUSW_REQUIRE(!owned_.empty(), "fleet needs at least one device");
  for (const auto& device : owned_) {
    MGPUSW_REQUIRE(device != nullptr, "device pointer is null");
    devices_.push_back(device.get());
  }
  in_use_.assign(devices_.size(), false);
  healthy_.assign(devices_.size(), true);
}

DeviceFleet::DeviceFleet(const std::vector<vgpu::Device*>& devices)
    : devices_(devices) {
  MGPUSW_REQUIRE(!devices_.empty(), "fleet needs at least one device");
  for (vgpu::Device* device : devices_) {
    MGPUSW_REQUIRE(device != nullptr, "device pointer is null");
  }
  in_use_.assign(devices_.size(), false);
  healthy_.assign(devices_.size(), true);
}

DeviceFleet DeviceFleet::from_specs(
    const std::vector<vgpu::DeviceSpec>& specs,
    vgpu::DeviceOptions options) {
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  devices.reserve(specs.size());
  for (const vgpu::DeviceSpec& spec : specs) {
    devices.push_back(std::make_unique<vgpu::Device>(spec, options));
  }
  return DeviceFleet(std::move(devices));
}

std::size_t DeviceFleet::available() const {
  std::lock_guard lock(mu_);
  return free_count_locked();
}

std::size_t DeviceFleet::free_count_locked() const {
  std::size_t free = 0;
  for (std::size_t i = 0; i < in_use_.size(); ++i) {
    if (!in_use_[i] && healthy_[i]) ++free;
  }
  return free;
}

std::size_t DeviceFleet::healthy_count_locked() const {
  std::size_t healthy = 0;
  for (const bool ok : healthy_) {
    if (ok) ++healthy;
  }
  return healthy;
}

std::size_t DeviceFleet::healthy_count() const {
  std::lock_guard lock(mu_);
  return healthy_count_locked();
}

void DeviceFleet::set_obs(const obs::Scope& scope) { obs_ = scope; }

void DeviceFleet::mark_unhealthy(const vgpu::Device* device) {
  {
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      if (devices_[i] == device && healthy_[i]) {
        healthy_[i] = false;
        if (obs_.metrics != nullptr) {
          obs_.metrics->counter("fleet.devices_unhealthy").increment();
        }
      }
    }
  }
  // Blocked acquires re-evaluate: a request the degraded fleet can no
  // longer satisfy must throw, not wait forever.
  cv_.notify_all();
}

DeviceLease DeviceFleet::grab_locked(std::size_t count) {
  std::vector<vgpu::Device*> granted;
  std::vector<std::size_t> indices;
  granted.reserve(count);
  indices.reserve(count);
  for (std::size_t i = 0; i < devices_.size() && granted.size() < count;
       ++i) {
    if (in_use_[i] || !healthy_[i]) continue;
    in_use_[i] = true;
    granted.push_back(devices_[i]);
    indices.push_back(i);
  }
  MGPUSW_CHECK(granted.size() == count);
  return DeviceLease(this, std::move(granted), std::move(indices));
}

DeviceLease DeviceFleet::acquire(std::size_t count) {
  MGPUSW_REQUIRE(count >= 1, "lease needs at least one device");
  MGPUSW_REQUIRE(count <= devices_.size(),
                 "lease of " << count << " devices from a fleet of "
                             << devices_.size());
  obs::TraceSpan wait_span(obs_.tracer, "fleet", "lease_wait");
  wait_span.arg("count", static_cast<std::int64_t>(count));
  base::WallTimer wait;
  std::unique_lock lock(mu_);
  if (obs_.metrics != nullptr) {
    obs_.metrics->gauge("fleet.waiters").add(1);
  }
  const std::uint64_t ticket = next_ticket_++;
  cv_.wait(lock, [&] {
    return now_serving_ == ticket && (free_count_locked() >= count ||
                                      healthy_count_locked() < count);
  });
  if (obs_.metrics != nullptr) {
    obs_.metrics->gauge("fleet.waiters").add(-1);
    obs_.metrics->histogram("fleet.lease_wait_ms")
        .observe(wait.elapsed_seconds() * 1e3);
  }
  if (healthy_count_locked() < count) {
    // Pass the FIFO head on before throwing, or every later acquire
    // would wait behind a ticket that will never be served.
    ++now_serving_;
    const std::size_t healthy = healthy_count_locked();
    lock.unlock();
    cv_.notify_all();
    throw Error("fleet degraded to " + std::to_string(healthy) +
                " healthy device(s); cannot lease " +
                std::to_string(count));
  }
  DeviceLease lease = grab_locked(count);
  ++now_serving_;
  lock.unlock();
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("fleet.leases_granted").increment();
  }
  // Wake the next ticket (and any releases racing with it).
  cv_.notify_all();
  return lease;
}

std::optional<DeviceLease> DeviceFleet::try_acquire(std::size_t count) {
  MGPUSW_REQUIRE(count >= 1, "lease needs at least one device");
  MGPUSW_REQUIRE(count <= devices_.size(),
                 "lease of " << count << " devices from a fleet of "
                             << devices_.size());
  std::lock_guard lock(mu_);
  // Respect the FIFO queue: jumping ahead of a blocked acquire would
  // starve wide requests.
  if (next_ticket_ != now_serving_) return std::nullopt;
  if (healthy_count_locked() < count) return std::nullopt;
  if (free_count_locked() < count) return std::nullopt;
  ++next_ticket_;
  DeviceLease lease = grab_locked(count);
  ++now_serving_;
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("fleet.leases_granted").increment();
  }
  return lease;
}

void DeviceFleet::release_indices(const std::vector<std::size_t>& indices) {
  {
    std::lock_guard lock(mu_);
    for (const std::size_t i : indices) {
      MGPUSW_CHECK(in_use_[i]);
      in_use_[i] = false;
    }
  }
  cv_.notify_all();
}

}  // namespace mgpusw::core
