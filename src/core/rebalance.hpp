// Feedback-driven dynamic load rebalancing.
//
// The column split is decided once, up front, from device weights (spec
// GCUPS or a calibration run). When a weight is wrong — a mispredicted
// profile, a device throttled mid-run — the whole fine-grain pipeline
// drains at the laggard's rate while every faster device burns its time
// waiting on borders. This module closes the loop:
//
//   SliceRunner ──ProgressEvent{cells, busy_ns}──► RebalanceController
//        ▲                                              │
//        │    stop_request (checked at scheduling-      │ observed rates
//        │    unit boundaries, throws InterruptedError) │ diverge from the
//        └──────────────────────────────────────────────┘ planned shares
//
// run_with_recovery owns the controller: when it trips, the run stops
// cooperatively, the remaining rows are re-split with the *measured*
// rates as custom weights, and the restart resumes from the newest
// checkpoint through the exact machinery device-loss recovery uses — so
// a rebalanced run is bit-identical to an unrebalanced one.
//
// Rates are derived from Device::busy_ns (kernel time including the
// throttle penalty), not wall time, so border-wait and buffer stalls are
// discounted: a fast device starved by its upstream neighbour still
// reports its true compute rate.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/slice_runner.hpp"

namespace mgpusw::core {

/// When and how aggressively the controller re-splits. Default-disabled;
/// the knobs trade reaction time against re-split overhead (each
/// re-split abandons the rows computed past the newest checkpoint).
struct RebalancePolicy {
  bool enabled = false;
  /// Evaluate the split every time the *slowest* device has completed
  /// this many further scheduling units (block rows under kRowMajor,
  /// external diagonals under kDiagonal).
  std::int64_t check_every_rows = 8;
  /// Hysteresis threshold: re-split only when the projected makespan of
  /// the current split exceeds a perfectly proportional one by this
  /// fraction (0.5 = the slowest slice would take 50% longer than the
  /// fastest). Below it, the measured skew is treated as noise.
  double min_imbalance = 0.5;
  /// Re-splits allowed per comparison. Each one also consumes a restart
  /// from RecoveryPolicy::max_restarts (shared budget).
  int max_resplits = 2;
};

/// One device's compute totals between two observation points.
struct DeviceRateSample {
  std::int64_t cells = 0;    // cells actually scored
  std::int64_t busy_ns = 0;  // kernel time incl. throttle, stalls excluded
};

/// Effective cell rate per device (cells per second) from per-device
/// compute totals. Returns an empty vector when any device has no
/// measurable sample yet (zero cells or zero busy time) — callers treat
/// that as "not enough data, keep waiting".
[[nodiscard]] std::vector<double> estimate_rates(
    const std::vector<DeviceRateSample>& samples);

/// How lopsided a split is, given the share of columns each device was
/// planned to own and its observed rate: the ratio of the slowest
/// projected per-device finish time (share / rate) to the fastest, minus
/// one. 0 = perfectly proportional; 3.0 = the worst device needs 4x the
/// time of the best. Both vectors must be the same non-zero size with
/// positive entries.
[[nodiscard]] double split_imbalance(
    const std::vector<double>& planned_shares,
    const std::vector<double>& observed_rates);

/// Normalizes weights to sum 1 (REQUIREs a positive sum).
[[nodiscard]] std::vector<double> normalize_weights(
    std::vector<double> weights);

/// Watches ProgressEvents from one engine run and raises a cooperative
/// stop flag when the observed per-device rates say the planned split is
/// lopsided beyond the policy threshold. Thread-safe: observe() is called
/// concurrently from every device's driver thread.
///
/// Lifecycle (per engine attempt): construct → set_planned_shares(from
/// the engine's plan) → wire stop_flag() into EngineConfig::stop_request
/// and observe() into the progress callback → run. After the run, if
/// stop_requested(), observed_weights() is the measured-rate split for
/// the restart.
class RebalanceController {
 public:
  explicit RebalanceController(const RebalancePolicy& policy);

  /// The fraction of columns the plan gave each device (normalized block
  /// columns). Must be called before the first evaluation can fire.
  void set_planned_shares(std::vector<double> shares);

  /// Feeds one progress event. Cheap when no evaluation is due (one
  /// mutex, a few integer updates).
  void observe(const ProgressEvent& event);

  /// The flag the engine's runners poll at scheduling-unit boundaries.
  [[nodiscard]] std::atomic<bool>* stop_flag() { return &stop_; }

  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// Measured rates normalized to weights; valid after stop_requested().
  [[nodiscard]] std::vector<double> observed_weights() const;

  /// Imbalance of the latest evaluation (-1 before the first one).
  [[nodiscard]] double last_imbalance() const;

  /// Evaluations performed so far (diagnostic).
  [[nodiscard]] int checks_run() const;

 private:
  struct DeviceState {
    bool seen = false;
    std::int64_t baseline_units = 0;  // units completed before we watched
    std::int64_t units = 0;           // latest completed_units
    DeviceRateSample sample;
  };

  void evaluate_locked();

  const RebalancePolicy policy_;
  mutable std::mutex mu_;
  std::vector<double> shares_;       // normalized; empty until set
  std::vector<DeviceState> states_;  // grown on demand by device index
  std::int64_t next_check_ = 0;
  int checks_ = 0;
  double last_imbalance_ = -1.0;
  std::vector<double> rates_;  // cells/s at the moment the stop fired
  std::atomic<bool> stop_{false};
};

}  // namespace mgpusw::core
