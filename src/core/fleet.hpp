// Fleet layer: ownership and admission control for a set of devices.
//
// The engine borrows raw device pointers and assumes exclusive use; that
// was fine while the process ran one comparison at a time, but a server
// answering many concurrent comparisons needs an owner that decides who
// computes on what. DeviceFleet owns the devices of one host and hands
// out blocking, FIFO-fair DeviceLeases of N devices; each lease is a
// disjoint device set, so any number of engines can run concurrently
// without sharing a device. Leases release on destruction (RAII), also
// when the leasing engine throws mid-run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/obs.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw::core {

class DeviceFleet;

/// Exclusive RAII grant of N devices. Move-only; releases its devices
/// back to the fleet on destruction or release().
class DeviceLease {
 public:
  DeviceLease() = default;
  ~DeviceLease() { release(); }

  DeviceLease(const DeviceLease&) = delete;
  DeviceLease& operator=(const DeviceLease&) = delete;
  DeviceLease(DeviceLease&& other) noexcept { *this = std::move(other); }
  DeviceLease& operator=(DeviceLease&& other) noexcept;

  [[nodiscard]] bool valid() const { return fleet_ != nullptr; }
  [[nodiscard]] const std::vector<vgpu::Device*>& devices() const {
    return devices_;
  }

  /// Returns the devices to the fleet early (idempotent).
  void release();

 private:
  friend class DeviceFleet;
  DeviceLease(DeviceFleet* fleet, std::vector<vgpu::Device*> devices,
              std::vector<std::size_t> indices)
      : fleet_(fleet),
        devices_(std::move(devices)),
        indices_(std::move(indices)) {}

  DeviceFleet* fleet_ = nullptr;
  std::vector<vgpu::Device*> devices_;
  std::vector<std::size_t> indices_;  // fleet slots backing devices_
};

/// Owns (or fronts) the devices of one host and arbitrates access.
///
/// acquire(n) blocks until n devices are free AND every earlier acquire
/// has been served — strict FIFO arrival order, so a wide request (all
/// devices) cannot be starved by a stream of narrow ones. Thread-safe.
class DeviceFleet {
 public:
  /// Owning constructor: the fleet manages device lifetime.
  explicit DeviceFleet(std::vector<std::unique_ptr<vgpu::Device>> devices);

  /// Borrowing constructor for legacy call sites that already own their
  /// devices; they must outlive the fleet.
  explicit DeviceFleet(const std::vector<vgpu::Device*>& devices);

  /// Convenience: builds and owns one device per spec.
  static DeviceFleet from_specs(const std::vector<vgpu::DeviceSpec>& specs,
                                vgpu::DeviceOptions options = {});

  DeviceFleet(const DeviceFleet&) = delete;
  DeviceFleet& operator=(const DeviceFleet&) = delete;

  [[nodiscard]] std::size_t size() const { return devices_.size(); }

  /// Attaches observability: lease-wait spans plus the
  /// fleet.lease_wait_ms histogram, fleet.leases_granted counter,
  /// fleet.waiters gauge and fleet.devices_unhealthy counter. Call
  /// before concurrent use; the scope's targets must outlive the fleet.
  void set_obs(const obs::Scope& scope);

  /// Healthy devices currently free (snapshot; for tests/monitoring).
  [[nodiscard]] std::size_t available() const;

  /// Devices not marked unhealthy (leased or free).
  [[nodiscard]] std::size_t healthy_count() const;

  /// Takes `device` permanently out of the leasing pool (the recovery
  /// layer calls this when a device dies mid-run). A currently-leased
  /// device finishes its lease normally and is simply never granted
  /// again. Wakes blocked acquires so requests the degraded fleet can no
  /// longer satisfy fail instead of hanging. Unknown pointers ignored.
  void mark_unhealthy(const vgpu::Device* device);

  /// Blocks until `count` healthy devices are free and this caller is at
  /// the head of the FIFO queue, then grants them exclusively. count
  /// must be in [1, size()]. Throws Error when the fleet has degraded
  /// below `count` healthy devices (immediately, or mid-wait after a
  /// mark_unhealthy).
  [[nodiscard]] DeviceLease acquire(std::size_t count);

  /// Non-blocking variant: fails (nullopt) when the devices are not
  /// immediately available, earlier acquires are still waiting, or the
  /// fleet has fewer than `count` healthy devices.
  [[nodiscard]] std::optional<DeviceLease> try_acquire(std::size_t count);

 private:
  friend class DeviceLease;
  void release_indices(const std::vector<std::size_t>& indices);
  [[nodiscard]] std::size_t free_count_locked() const;
  [[nodiscard]] std::size_t healthy_count_locked() const;
  [[nodiscard]] DeviceLease grab_locked(std::size_t count);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  obs::Scope obs_;
  std::vector<std::unique_ptr<vgpu::Device>> owned_;
  std::vector<vgpu::Device*> devices_;
  std::vector<bool> in_use_;
  std::vector<bool> healthy_;
  std::uint64_t next_ticket_ = 0;  // next arrival's queue position
  std::uint64_t now_serving_ = 0;  // FIFO head
};

}  // namespace mgpusw::core
