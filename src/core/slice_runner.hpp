// Runner layer: executes one device's column slice of a planned
// alignment.
//
// A SliceRunner owns the O(m + n_slice) border state of one slice and
// drives the block wavefront over it. The cross-cutting concerns are
// split into named components with unit-testable seams:
//
//   * BorderExchange    — receive/send of border chunks over the
//                         neighbour channels, with sequencing checks
//                         and stall accounting;
//   * BlockPruner       — the CUDAlign-2.1 upper-bound pruning decision
//                         (pure arithmetic, no state);
//   * SpecialRowCapture — checkpoint rows saved every k-th block row;
//   * RowMajorSchedule / DiagonalSchedule — the two block orderings
//                         (fine-grain pipeline vs external diagonals).
//
// The engine (core/engine.cpp) builds one runner per device from an
// AlignmentPlan and joins them; nothing in this layer knows about device
// fleets, balance modes or transports.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "comm/channel.hpp"
#include "core/plan.hpp"
#include "core/special_rows.hpp"
#include "obs/obs.hpp"
#include "obs/phase_profiler.hpp"
#include "seq/alphabet.hpp"
#include "sw/kernel.hpp"
#include "sw/scoring.hpp"
#include "vgpu/device.hpp"

namespace mgpusw::obs {
class Histogram;
}  // namespace mgpusw::obs

namespace mgpusw::core {

/// Progress notification, emitted by each device's driver thread after
/// every completed scheduling unit (block row in kRowMajor, external
/// diagonal in kDiagonal).
struct ProgressEvent {
  int device_index = 0;
  std::int64_t completed_units = 0;
  std::int64_t total_units = 0;
  std::int64_t device_cells_done = 0;
  /// Monotonic timestamp: steady-clock nanoseconds since the run's
  /// epoch (RunnerContext::run_epoch), so consumers can order events
  /// across device threads without reading the wall clock.
  std::int64_t t_ns = 0;
  /// Job label of the comparison this device is working on (the batch
  /// scheduler threads the item label through here; empty for plain
  /// engine runs).
  std::string job;
  /// This device's cumulative kernel time (incl. throttle penalty) this
  /// run, in nanoseconds. Border waits and buffer stalls are excluded,
  /// so device_cells_done / busy_ns is the device's effective compute
  /// rate — what the rebalance controller feeds on.
  std::int64_t busy_ns = 0;
  /// How many recovery restarts preceded this event (0 on a clean run;
  /// stamped by run_with_recovery so consumers can tell attempts apart).
  int restarts = 0;
  /// How many of those restarts were rebalance re-splits (stamped by
  /// run_with_recovery; always <= restarts).
  int rebalances = 0;
  /// How many devices participate in the attempt this event belongs to.
  /// A consumer that has collected events from `device_count` distinct
  /// devices of one attempt may take the minimum of their safe rows as
  /// globally settled.
  int device_count = 1;
  /// Highest matrix row fully settled from this device's point of view:
  /// every block row at or below it is computed (or was settled by the
  /// resume predecessor this attempt seeded from). -1 until the first
  /// unit completes. min() over an attempt's devices is crash-safe: a
  /// restart from that row plus `best` reproduces the final result.
  std::int64_t safe_row = -1;
  /// This device's running best (merged across its computed blocks this
  /// attempt). Valid whenever safe_row >= 0 or units completed.
  sw::ScoreResult best;
};

/// Per-device outcome of a run.
struct DeviceRunStats {
  std::string device_name;
  ColumnRange slice;
  std::int64_t blocks = 0;
  std::int64_t pruned_blocks = 0;
  std::int64_t cells = 0;          // actually computed (pruned excluded)
  std::int64_t pruned_cells = 0;   // skipped by block pruning
  std::int64_t busy_ns = 0;        // kernel time incl. throttle penalty
  std::int64_t recv_stall_ns = 0;  // waiting for upstream border chunks
  std::int64_t send_stall_ns = 0;  // blocked on a full circular buffer
  std::int64_t wall_ns = 0;        // device thread total
  std::int64_t chunks_received = 0;
  std::int64_t chunks_sent = 0;
  std::int64_t bytes_sent = 0;
  /// Blocks a low-precision kernel re-ran at a wider precision after
  /// hitting its saturation watermark (kernel.overflow_reruns metric).
  std::int64_t overflow_reruns = 0;

  /// Driver-thread phase attribution (obs::PhaseProfiler). Filled only
  /// when phases_tracked; the five fields then partition wall_ns up to
  /// scheduling noise.
  bool phases_tracked = false;
  std::int64_t phase_compute_ns = 0;
  std::int64_t phase_recv_ns = 0;
  std::int64_t phase_send_ns = 0;
  std::int64_t phase_checkpoint_ns = 0;
  std::int64_t phase_idle_ns = 0;
};

/// The slice-level view of the engine configuration: exactly what a
/// runner needs, nothing about transports, balancing or device kernels
/// (those are plan/engine concerns).
struct RunnerContext {
  sw::ScoreScheme scheme;
  std::int64_t block_rows = 512;
  std::int64_t block_cols = 512;
  Schedule schedule = Schedule::kRowMajor;
  bool enable_pruning = false;
  std::int64_t special_row_interval = 0;
  SpecialRowStore* special_rows = nullptr;
  bool checkpoint_f = false;
  std::function<void(const ProgressEvent&)> progress;
  std::string job;  // threaded into every ProgressEvent
  /// Devices participating in the run; stamped into every ProgressEvent
  /// so durability consumers know when an attempt's picture is complete.
  int device_count = 1;

  /// Cooperative stop flag (EngineConfig::stop_request): polled at every
  /// scheduling-unit boundary; when raised, the runner throws
  /// InterruptedError so the run unwinds restartably. Null disables.
  std::atomic<bool>* stop_request = nullptr;

  /// Observability handles (null/disabled by default: every hook then
  /// costs one branch). The engine threads its EngineConfig scope here.
  obs::Scope obs;
  /// Timebase of ProgressEvent::t_ns; the engine stamps it at run start.
  std::chrono::steady_clock::time_point run_epoch =
      std::chrono::steady_clock::now();
};

/// Result of one block task, reduced by the driver after each scheduling
/// unit.
struct TaskOutcome {
  sw::BlockResult block;
  std::int64_t cells = 0;
  bool pruned = false;
  bool valid = false;
  /// Exception thrown by compute_one on a device worker thread
  /// (DiagonalSchedule): captured there — a throw would escape the
  /// thread pool and terminate — and rethrown by the driver's reduce.
  std::exception_ptr error;
};

/// Largest incoming-border H value of a block: the seed of the pruning
/// upper bound.
[[nodiscard]] sw::Score border_max(sw::Score corner, const sw::Score* top,
                                   std::int64_t top_len,
                                   const sw::Score* left,
                                   std::int64_t left_len);

/// Block pruning (CUDAlign 2.1 technique): a block may be skipped when
/// even a perfect-match extension of its best incoming border value
/// cannot beat the globally best score already found. Pure arithmetic —
/// exact score, possibly different co-optimal end position.
class BlockPruner {
 public:
  BlockPruner(const sw::ScoreScheme& scheme, std::int64_t rows,
              std::int64_t cols)
      : match_(scheme.match), rows_(rows), cols_(cols) {}

  /// True when the block starting at (r0, c0_global) whose incoming
  /// border maximum is `border_in` cannot reach `global_best`.
  [[nodiscard]] bool can_prune(sw::Score border_in, std::int64_t r0,
                               std::int64_t c0_global,
                               sw::Score global_best) const {
    const std::int64_t reach =
        std::min(rows_ - r0, cols_ - c0_global);
    const sw::Score upper_bound =
        border_in + match_ * static_cast<sw::Score>(reach);
    return upper_bound <= global_best;
  }

 private:
  sw::Score match_;
  std::int64_t rows_;
  std::int64_t cols_;
};

/// Saves the H (and optionally F) row every `interval` block rows — the
/// special-row store feeding alignment retrieval and restart
/// checkpoints.
class SpecialRowCapture {
 public:
  SpecialRowCapture(std::int64_t interval, SpecialRowStore* store,
                    bool save_f)
      : interval_(interval), store_(store), save_f_(save_f) {}

  /// Attaches tracing/metrics. `profiler` must be null unless save()
  /// always runs on the profiler's driver thread (the runner passes it
  /// only for inline execution).
  void set_obs(const obs::Scope& scope, obs::PhaseProfiler* profiler) {
    scope_ = scope;
    profiler_ = profiler;
  }

  [[nodiscard]] bool due(std::int64_t block_row) const {
    return interval_ > 0 && (block_row + 1) % interval_ == 0;
  }

  /// Records the bottom border of block row `block_row` for the segment
  /// [c0_global, c0_global + width) whose last matrix row is `last_row`.
  void save(std::int64_t block_row, std::int64_t last_row,
            std::int64_t c0_global, std::int64_t width,
            const sw::Score* bottom_h, const sw::Score* bottom_f) const;

 private:
  std::int64_t interval_ = 0;
  SpecialRowStore* store_ = nullptr;
  bool save_f_ = false;
  obs::Scope scope_;
  obs::PhaseProfiler* profiler_ = nullptr;
};

/// Border chunk traffic with the two neighbour devices: validates the
/// sequencing invariants of the circular-buffer protocol and accounts
/// traffic/stall statistics.
class BorderExchange {
 public:
  /// `in`/`out` may be null (first/last device). col_h/col_e are the
  /// runner's full-height vertical border arrays the chunks read from
  /// and write into.
  BorderExchange(comm::BorderSource* in, comm::BorderSink* out,
                 std::int64_t block_rows, std::int64_t rows)
      : in_(in), out_(out), block_rows_(block_rows), rows_(rows) {}

  [[nodiscard]] bool has_upstream() const { return in_ != nullptr; }
  [[nodiscard]] bool has_downstream() const { return out_ != nullptr; }

  /// Attaches tracing (border-recv/send spans on the calling thread's
  /// track) and metrics (comm.border_wait_ms histogram).
  void set_obs(const obs::Scope& scope);

  /// Receives the chunk feeding block row `block_row`, scattering it
  /// into the vertical border arrays; stores the chunk's corner in
  /// `corner_out`. Checks sequence numbers and row coverage.
  void receive(std::int64_t block_row, sw::Score* col_h, sw::Score* col_e,
               sw::Score& corner_out);

  /// Ships the vertical border segment of block row `block_row`.
  /// `sent_corner` carries H(previous row, slice boundary) in and is
  /// updated to this chunk's last element for the next send.
  void send(std::int64_t block_row, const sw::Score* col_h,
            const sw::Score* col_e, sw::Score& sent_corner);

  /// Signals the downstream neighbour that no further chunks follow.
  void close_downstream();

  [[nodiscard]] std::int64_t chunks_received() const {
    return chunks_received_;
  }

  /// Folds channel statistics (stalls, traffic) into `stats`.
  void fill_stats(DeviceRunStats& stats) const;

 private:
  comm::BorderSource* in_ = nullptr;
  comm::BorderSink* out_ = nullptr;
  std::int64_t block_rows_ = 0;
  std::int64_t rows_ = 0;
  std::int64_t chunks_received_ = 0;
  obs::Scope scope_;
  obs::Histogram* border_wait_ms_ = nullptr;
};

class SliceRunner;

/// Fine-grain pipeline order: block rows in sequence, columns left to
/// right; chunk i ships the moment row i completes (the paper's overlap
/// behaviour). Blocks run inline on the driver thread.
struct RowMajorSchedule {
  void run(SliceRunner& runner) const;
};

/// CUDAlign-style external block diagonals with a barrier per diagonal;
/// blocks of one diagonal run concurrently on the device's workers.
struct DiagonalSchedule {
  void run(SliceRunner& runner) const;
};

/// Executes one device's column slice: owns the border state, computes
/// blocks through the resolved kernel, and delegates ordering to the
/// schedule named by the plan.
class SliceRunner {
 public:
  /// `slice_plan` and `block_row_count` come from the AlignmentPlan;
  /// query/subject/seed pointers must outlive the runner.
  SliceRunner(const RunnerContext& context, sw::BlockKernelFn kernel,
              vgpu::Device& device, int device_index,
              const std::vector<seq::Nt>& query,
              const std::vector<seq::Nt>& subject,
              const SlicePlan& slice_plan, std::int64_t block_row_count,
              comm::BorderSource* in, comm::BorderSink* out,
              std::atomic<sw::Score>& global_best,
              std::int64_t start_block_row = 0,
              const sw::Score* seed_h = nullptr,
              const sw::Score* seed_f = nullptr);

  /// Runs the slice to completion. Called on the device's driver thread.
  void run();

  [[nodiscard]] const DeviceRunStats& stats() const { return stats_; }
  [[nodiscard]] const sw::ScoreResult& best() const { return best_; }

  void snapshot_initial_busy() { initial_busy_ns_ = device_.busy_ns(); }

 private:
  friend struct RowMajorSchedule;
  friend struct DiagonalSchedule;

  void init_borders();
  void compute_one(std::int64_t i, std::int64_t j, TaskOutcome& outcome);
  void reduce_outcome(TaskOutcome& outcome);
  void publish_best();
  /// `settled_block_rows` counts block rows of the matrix (from row 0,
  /// including rows settled by the resume predecessor) whose every block
  /// in this slice is complete — the durability cursor behind
  /// ProgressEvent::safe_row.
  void notify_progress(std::int64_t completed, std::int64_t total,
                       std::int64_t settled_block_rows);

  /// Throws InterruptedError when the engine's cooperative stop flag is
  /// raised. The schedules call it at unit boundaries only, so every
  /// block (and checkpoint segment) completed so far stays intact.
  void throw_if_stop_requested() const;

  /// One-branch phase hook used by the schedules.
  void phase(obs::Phase next) {
    if (profile_) profiler_.switch_to(next);
  }
  void flush_obs();  // phase totals into stats_, bulk metric adds

  const RunnerContext& context_;
  const sw::BlockKernelFn kernel_;
  const int device_index_ = 0;
  vgpu::Device& device_;
  const std::vector<seq::Nt>& query_;
  const std::vector<seq::Nt>& subject_;
  const ColumnRange slice_;
  const std::int64_t nbr_ = 0;  // block rows of the matrix
  const std::int64_t nbc_ = 0;  // block columns of the slice
  BorderExchange exchange_;
  BlockPruner pruner_;
  SpecialRowCapture special_rows_;
  std::atomic<sw::Score>& global_best_;
  const std::int64_t start_block_row_ = 0;  // > 0 when resuming
  const sw::Score* seed_h_ = nullptr;       // checkpoint row (full width)
  const sw::Score* seed_f_ = nullptr;

  std::vector<sw::Score> row_h_, row_f_;   // horizontal borders per column
  std::vector<sw::Score> col_h_, col_e_;   // vertical borders per row
  std::vector<sw::Score> corner_;          // per block column
  std::vector<sw::Score> chunk_corner_;    // per block row (device d > 0)
  sw::Score sent_corner_ = 0;              // corner of the next sent chunk

  DeviceRunStats stats_;
  sw::ScoreResult best_;
  std::int64_t initial_busy_ns_ = 0;

  const obs::Scope obs_;        // from RunnerContext
  const bool profile_ = false;  // obs_.profile_phases
  obs::PhaseProfiler profiler_;
};

}  // namespace mgpusw::core
