// Batch comparison runner.
//
// The paper's evaluation compares four chromosome pairs back to back on
// one device set. This module runs a list of comparisons sequentially on
// a shared device fleet (borders and channels are rebuilt per pair) and
// aggregates the metrics the paper reports per pair.
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"

namespace mgpusw::core {

struct BatchItem {
  std::string label;
  seq::Sequence query;
  seq::Sequence subject;
};

struct BatchItemResult {
  std::string label;
  EngineResult result;
};

struct BatchResult {
  std::vector<BatchItemResult> items;
  double total_seconds = 0.0;
  std::int64_t total_cells = 0;

  /// Aggregate GCUPS across the whole batch.
  [[nodiscard]] double gcups() const {
    if (total_seconds <= 0.0) return 0.0;
    return static_cast<double>(total_cells) / total_seconds / 1e9;
  }
};

/// Runs every item on the given devices with the given configuration.
/// Items run one after another (each comparison already spans all
/// devices, as in the paper).
[[nodiscard]] BatchResult run_batch(const EngineConfig& config,
                                    const std::vector<vgpu::Device*>& devices,
                                    const std::vector<BatchItem>& items);

}  // namespace mgpusw::core
