// Batch comparison scheduler.
//
// The paper's evaluation compares four chromosome pairs back to back on
// one device set; a production service has *many* independent
// comparisons in flight. This module schedules a list of comparisons
// over a shared DeviceFleet: each item leases `devices_per_item` devices
// (FIFO-fair, blocking) and up to `max_in_flight` items run
// concurrently on disjoint leases. Per-item results are bit-identical
// to a sequential run — the engine's reduction is a total order, so
// neither the lease composition nor the interleaving can change a
// score. Aggregate batch GCUPS is computed from batch wall time, so
// concurrency shows up in the metric.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/fleet.hpp"
#include "core/recovery.hpp"

namespace mgpusw::core {

struct BatchItem {
  std::string label;
  seq::Sequence query;
  seq::Sequence subject;
  /// Admission order: higher runs first; ties keep submission order.
  int priority = 0;
  /// Optional cancel flag (owned by the caller, e.g. the service's job
  /// record). When raised, the item's engine stops at the next
  /// scheduling-unit boundary with InterruptedError — recovery does not
  /// restart a cancelled item.
  std::atomic<bool>* cancel = nullptr;

  /// Durable-checkpoint handoff (the service's journal layer). When
  /// non-null, the item's engine checkpoints into this store (usually a
  /// disk-spilling SpecialRowStore that outlives the process) at the
  /// recovery policy's checkpoint_interval, overriding
  /// BatchConfig::engine's store for this item. Requires
  /// enable_recovery.
  SpecialRowStore* checkpoints = nullptr;
  /// Where the item resumes from (row = -1: from scratch). Only
  /// meaningful with `checkpoints`, which must contain the row.
  ResumeSpec resume;
  /// Forwarded to run_with_recovery: fires before each in-process
  /// restart with the crash-resumable (row, carried best) pair.
  RestartHook on_restart;
};

struct BatchItemResult {
  std::string label;
  EngineResult result;
  /// Recovery bookkeeping (zero / empty unless enable_recovery fired).
  int restarts = 0;
  std::vector<std::string> lost_devices;
};

struct BatchConfig {
  EngineConfig engine;
  /// Devices leased per comparison; 0 = the whole fleet (the paper's
  /// one-comparison-spans-all-devices mode).
  int devices_per_item = 0;
  /// Comparisons running concurrently on disjoint leases. 1 = strictly
  /// sequential (the paper's evaluation order).
  int max_in_flight = 1;

  /// Run each item under run_with_recovery: device deaths shrink the
  /// item's lease (the fleet stops leasing dead devices), transient
  /// failures restart from checkpoints, and an item whose whole lease
  /// died retries on a fresh lease from the surviving pool.
  bool enable_recovery = false;
  RecoveryPolicy recovery;

  /// Items whose query AND subject are both at most this many bases skip
  /// the block engine and run through the inter-sequence SIMD kernel
  /// (sw/batch_simd.hpp) — one pair per vector lane, 16/32 short
  /// comparisons at a time — before the device workers start. 0 = off.
  /// Results are bit-identical to engine runs; the per-item EngineResult
  /// then reports the batch kernel's name and a proportional share of
  /// the pre-pass wall time.
  std::int64_t interseq_max_len = 0;
  /// Batch kernel for the short-item pre-pass (sw::batch_kernel_names()).
  std::string interseq_kernel = "interseq";

  /// Completion hook, called once per item as it finishes: the item's
  /// index, its (possibly partial) result entry, and the error that
  /// aborted it — nullptr on success. Runs on the worker thread that ran
  /// the item, so it must be thread-safe when max_in_flight > 1; it
  /// fires before run_batch returns and before a batch-level abort
  /// rethrows.
  std::function<void(std::size_t, const BatchItemResult&,
                     std::exception_ptr)>
      on_item_done;
};

struct BatchResult {
  std::vector<BatchItemResult> items;
  double total_seconds = 0.0;  // summed per-item wall time
  double wall_seconds = 0.0;   // batch wall-clock time
  std::int64_t total_cells = 0;

  /// Aggregate GCUPS across the whole batch, from batch wall time —
  /// concurrent items overlap, so this exceeds summed_gcups() when
  /// max_in_flight > 1 actually helps.
  [[nodiscard]] double gcups() const {
    return base::gcups(total_cells,
                       wall_seconds > 0.0 ? wall_seconds : total_seconds);
  }

  /// GCUPS over summed per-item time (concurrency-blind; the paper's
  /// back-to-back accounting).
  [[nodiscard]] double summed_gcups() const {
    return base::gcups(total_cells, total_seconds);
  }
};

/// Runs every item on leases drawn from `fleet`. Items are admitted in
/// priority order (descending; ties by position); each engine sees the
/// item's label in ProgressEvent::job. Exceptions from any item abort
/// the batch (first error rethrown after all in-flight items finish and
/// release their leases).
[[nodiscard]] BatchResult run_batch(const BatchConfig& config,
                                    DeviceFleet& fleet,
                                    const std::vector<BatchItem>& items);

/// Runs one item: leases devices from `fleet`, runs the engine (under
/// recovery with the degraded-pool retry loop when enable_recovery is
/// set), and fills `entry`. This is the per-item body of run_batch,
/// exposed so a long-lived scheduler (the service daemon) can drive
/// items through the identical lease/recovery/metrics path one job at a
/// time. Throws on failure; `entry` then holds whatever bookkeeping
/// (restarts, lost devices) accumulated before the error.
void run_batch_item(const BatchConfig& config, DeviceFleet& fleet,
                    const BatchItem& item, BatchItemResult& entry);

/// Legacy sequential entry point: every item spans all `devices`, one
/// item at a time (the paper's evaluation mode).
[[nodiscard]] BatchResult run_batch(const EngineConfig& config,
                                    const std::vector<vgpu::Device*>& devices,
                                    const std::vector<BatchItem>& items);

}  // namespace mgpusw::core
