#include "core/plan.hpp"

#include "base/error.hpp"
#include "base/math.hpp"

namespace mgpusw::core {

std::int64_t AlignmentPlan::schedule_units(std::size_t device) const {
  MGPUSW_CHECK(device < devices.size());
  const std::int64_t rows_left = block_row_count - start_block_row;
  if (schedule == Schedule::kRowMajor) return rows_left;
  return rows_left + devices[device].block_columns - 1;
}

AlignmentPlan make_plan(const PlanRequest& request) {
  MGPUSW_REQUIRE(request.rows > 0 && request.cols > 0,
                 "matrix dimensions must be positive");
  MGPUSW_REQUIRE(request.block_rows > 0 && request.block_cols > 0,
                 "block dimensions must be positive");
  MGPUSW_REQUIRE(request.buffer_capacity > 0,
                 "buffer_capacity must be positive");
  MGPUSW_REQUIRE(!request.weights.empty(),
                 "plan needs at least one device weight");
  MGPUSW_REQUIRE(request.device_kernels.empty() ||
                     request.device_kernels.size() == request.weights.size(),
                 "device_kernels must be empty or one entry per device");
  MGPUSW_REQUIRE(request.start_block_row >= 0,
                 "start_block_row must be non-negative");

  AlignmentPlan plan;
  plan.rows = request.rows;
  plan.cols = request.cols;
  plan.block_rows = request.block_rows;
  plan.block_cols = request.block_cols;
  plan.block_row_count = base::div_ceil(request.rows, request.block_rows);
  plan.buffer_capacity = request.buffer_capacity;
  plan.transport = request.transport;
  plan.schedule = request.schedule;
  plan.start_block_row = request.start_block_row;
  MGPUSW_REQUIRE(request.start_block_row < plan.block_row_count,
                 "start_block_row " << request.start_block_row
                                    << " leaves nothing to compute");

  const std::vector<ColumnRange> ranges = partition_columns(
      request.cols, request.weights, request.block_cols);

  plan.devices.reserve(ranges.size());
  for (std::size_t d = 0; d < ranges.size(); ++d) {
    SlicePlan slice;
    slice.slice = ranges[d];
    slice.block_columns = base::div_ceil(ranges[d].cols, request.block_cols);
    const std::string& override_kernel =
        request.device_kernels.empty() ? std::string{}
                                       : request.device_kernels[d];
    slice.kernel =
        override_kernel.empty() ? request.default_kernel : override_kernel;
    slice.has_upstream = d > 0;
    slice.has_downstream = d + 1 < ranges.size();
    plan.devices.push_back(std::move(slice));
  }
  return plan;
}

std::vector<double> profile_weights(
    const std::vector<vgpu::DeviceSpec>& devices) {
  std::vector<double> weights;
  weights.reserve(devices.size());
  for (const vgpu::DeviceSpec& spec : devices) {
    weights.push_back(spec.sw_gcups);
  }
  return weights;
}

}  // namespace mgpusw::core
