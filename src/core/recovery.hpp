// Recovery layer: automatic restart of a multi-device run after device
// or communication failures.
//
// The engine reports *what* failed (MultiDeviceEngine::last_failure);
// this layer decides what to do about it:
//
//   run ──failure──► classify (base/error.hpp taxonomy)
//        │             ├── fatal       → rethrow unchanged
//        │             └── transient / device loss
//        │                   ├── drop dead devices from the pool
//        │                   │   (and tell the DeviceFleet, if any)
//        │                   ├── carry the partial best forward
//        │                   └── restart from the newest intact
//        │                       checkpoint (special-row store), bounded
//        │                       by RecoveryPolicy
//        └──success──► merge carried best; done.
//
// The recovered result is bit-identical to an unfailed run: the blocks
// completed before each failure and the blocks of the resumed region
// together cover every matrix cell, and sw::improves is a total order,
// so folding the partial bests reproduces the full-run optimum exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "core/engine.hpp"
#include "core/fleet.hpp"
#include "seq/sequence.hpp"

namespace mgpusw::core {

/// Bounds on the recovery loop.
struct RecoveryPolicy {
  /// Restarts allowed per comparison before giving up.
  int max_restarts = 2;
  /// Sleep before the first restart; doubles per restart. 0 = none.
  std::int64_t backoff_ms = 0;
  /// Checkpoint every k-th block row when the caller's config has no
  /// special-row store of its own (run_with_recovery then provides an
  /// in-memory store so restarts have something to resume from).
  std::int64_t checkpoint_interval = 4;
};

/// Where a run resumes from: a restartable checkpoint row of the
/// caller's special-row store plus the best score over every cell in
/// rows <= that row. `row = -1` runs from scratch; `carried_best` is
/// merged into the final result either way (merging a best over a
/// subset of cells is a no-op when those cells are recomputed, since
/// sw::improves is a total order).
struct ResumeSpec {
  std::int64_t row = -1;
  sw::ScoreResult carried_best;
};

/// Fired by run_with_recovery right before each in-process restart with
/// the exact state a *process* crash at that moment could resume from:
/// the checkpoint row the restart seeds from and the best carried over
/// all cells at or below it. A durability layer journals this pair.
using RestartHook = std::function<void(const ResumeSpec&)>;

/// A recovered (or clean) run plus how eventful it was.
struct RecoveryResult {
  EngineResult result;
  int restarts = 0;
  std::vector<std::string> lost_devices;  // spec names, in loss order
  /// Restarts that were rebalance re-splits (EngineConfig::rebalance);
  /// they share the max_restarts budget, so rebalances <= restarts.
  int rebalances = 0;
  /// The measured-rate column weights of the last re-split; empty when
  /// no rebalance fired.
  std::vector<double> rebalanced_weights;
};

/// The run failed more times than RecoveryPolicy allows, or no healthy
/// device is left to restart on.
class RecoveryExhaustedError : public Error {
 public:
  RecoveryExhaustedError(const std::string& what, int restarts,
                         std::vector<std::string> lost_devices = {})
      : Error(what),
        restarts_(restarts),
        lost_devices_(std::move(lost_devices)) {}
  [[nodiscard]] int restarts() const { return restarts_; }
  /// Devices lost before recovery gave up — the caller's bookkeeping
  /// (e.g. a batch retry on a fresh lease) would otherwise lose them.
  [[nodiscard]] const std::vector<std::string>& lost_devices() const {
    return lost_devices_;
  }

 private:
  int restarts_ = 0;
  std::vector<std::string> lost_devices_;
};

/// Runs query vs subject on `devices` with automatic recovery.
///
/// On a transient failure the run restarts from the newest intact
/// checkpoint on the same pool; on a device loss the dead devices leave
/// the pool first (the column split re-balances over the survivors) and
/// `fleet`, when given, is told to stop leasing them. Fatal errors
/// rethrow unchanged; exhausting the policy throws
/// RecoveryExhaustedError. ProgressEvents are stamped with the current
/// restart count.
///
/// `config.special_rows` may be null — recovery then checkpoints into a
/// private in-memory store per `policy.checkpoint_interval`. A non-null
/// store must have checkpoint_f = true and a positive interval.
///
/// When `config.rebalance.enabled`, each attempt runs under a
/// RebalanceController fed by the progress stream: if the observed
/// per-device cell rates say the column split is lopsided beyond
/// `rebalance.min_imbalance`, the run is stopped cooperatively and
/// restarted from the newest checkpoint with the measured rates as
/// custom weights. Rebalance restarts consume the same max_restarts
/// budget as failures and are counted in RecoveryResult::rebalances;
/// the recovered result stays bit-identical either way.
///
/// `resume`, when non-null with row >= 0, seeds the first attempt from
/// that row of `config.special_rows` (which must then be non-null and
/// contain it) instead of running from scratch — the cross-process
/// counterpart of the internal restart path. `on_restart` is invoked
/// before each in-process restart with the pair a crash could resume
/// from (see RestartHook).
[[nodiscard]] RecoveryResult run_with_recovery(
    const EngineConfig& config, std::vector<vgpu::Device*> devices,
    const seq::Sequence& query, const seq::Sequence& subject,
    const RecoveryPolicy& policy = {}, DeviceFleet* fleet = nullptr,
    const ResumeSpec* resume = nullptr,
    const RestartHook& on_restart = {});

}  // namespace mgpusw::core
