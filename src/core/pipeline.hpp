// Alignment retrieval pipeline — CUDAlign's stage structure on top of
// the multi-device engine.
//
//   stage 1  multi-device engine      -> optimal score + end cell
//   stage 2  anchored reverse scan    -> start cell
//   stage 3  Myers-Miller (linear sp) -> full ops between start and end
//
// Stage 1 is the paper's contribution and runs distributed; stages 2-3
// run serially over the bounded alignment region (in the full CUDAlign
// system they are also GPU stages — out of this paper's scope, see
// DESIGN.md §7).
#pragma once

#include "core/engine.hpp"
#include "sw/alignment.hpp"

namespace mgpusw::core {

struct PipelineResult {
  EngineResult stage1;
  sw::CellPos start;            // stage 2 output
  sw::Alignment alignment;      // stage 3 output (empty if score == 0)
  double stage2_seconds = 0.0;
  double stage3_seconds = 0.0;
};

class AlignmentPipeline {
 public:
  /// Devices are borrowed; they must outlive the pipeline.
  AlignmentPipeline(EngineConfig config, std::vector<vgpu::Device*> devices,
                    std::int64_t max_region_cells = 256'000'000);

  /// Runs all three stages. Throws InvalidArgument when the aligned
  /// region exceeds max_region_cells (stages 2-3 are quadratic in the
  /// region size; raise the limit deliberately for big regions).
  [[nodiscard]] PipelineResult align(const seq::Sequence& query,
                                     const seq::Sequence& subject);

 private:
  MultiDeviceEngine engine_;
  sw::ScoreScheme scheme_;
  std::int64_t max_region_cells_;
};

}  // namespace mgpusw::core
