#include "core/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "base/error.hpp"
#include "base/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sw/batch_simd.hpp"
#include "sw/block_simd.hpp"

namespace mgpusw::core {

namespace {

/// Runs every item short enough for the inter-sequence kernel through
/// sw::batch_align_scores (many pairs per vector) and fills its batch
/// entry; marks those items handled so the device workers skip them.
void run_interseq_prepass(const BatchConfig& config,
                          const std::vector<BatchItem>& items,
                          BatchResult& batch, std::vector<char>& handled) {
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].query.size() <= config.interseq_max_len &&
        items[i].subject.size() <= config.interseq_max_len) {
      selected.push_back(i);
    }
  }
  if (selected.empty()) return;

  // Unpack all selected pairs into one contiguous code buffer; PairViews
  // point into it.
  std::int64_t total_bases = 0;
  for (const std::size_t i : selected) {
    total_bases += items[i].query.size() + items[i].subject.size();
  }
  std::vector<seq::Nt> codes(static_cast<std::size_t>(total_bases));
  std::vector<sw::PairView> pairs(selected.size());
  std::int64_t offset = 0;
  for (std::size_t k = 0; k < selected.size(); ++k) {
    const BatchItem& item = items[selected[k]];
    sw::PairView& pair = pairs[k];
    pair.query = codes.data() + offset;
    pair.query_len = item.query.size();
    item.query.extract(0, pair.query_len, codes.data() + offset);
    offset += pair.query_len;
    pair.subject = codes.data() + offset;
    pair.subject_len = item.subject.size();
    item.subject.extract(0, pair.subject_len, codes.data() + offset);
    offset += pair.subject_len;
  }

  const obs::Scope& obs = config.engine.obs;
  obs::TraceSpan span(obs.tracer, "batch",
                      "interseq x" + std::to_string(selected.size()));
  base::WallTimer timer;
  sw::BatchStats stats;
  const std::vector<sw::ScoreResult> scores = sw::batch_align_scores(
      config.engine.scheme, pairs, config.interseq_kernel, &stats);
  const double seconds = timer.elapsed_seconds();

  std::int64_t total_cells = 0;
  for (const sw::PairView& pair : pairs) {
    total_cells += pair.query_len * pair.subject_len;
  }
  for (std::size_t k = 0; k < selected.size(); ++k) {
    const std::size_t index = selected[k];
    BatchItemResult& entry = batch.items[index];
    entry.label = items[index].label;
    entry.result.best = scores[k];
    entry.result.kernel = config.interseq_kernel;
    entry.result.simd_isa = sw::simd_isa_name(sw::detected_simd_isa());
    entry.result.matrix_cells =
        pairs[k].query_len * pairs[k].subject_len;
    entry.result.computed_cells = entry.result.matrix_cells;
    // Per-item share of the pre-pass wall time, proportional to cells.
    entry.result.wall_seconds =
        total_cells > 0 ? seconds * static_cast<double>(
                                        entry.result.matrix_cells) /
                              static_cast<double>(total_cells)
                        : seconds / static_cast<double>(selected.size());
    handled[index] = 1;
  }
  if (obs.metrics != nullptr) {
    obs.metrics->counter("kernel.overflow_reruns")
        .add(stats.overflow_reruns);
    obs.metrics->counter("batch.items_completed")
        .add(static_cast<std::int64_t>(selected.size()));
    obs.metrics->counter("batch.interseq_items")
        .add(static_cast<std::int64_t>(selected.size()));
  }
}

}  // namespace

void run_batch_item(const BatchConfig& config, DeviceFleet& fleet,
                    const BatchItem& item, BatchItemResult& entry) {
  MGPUSW_REQUIRE(config.devices_per_item >= 0,
                 "devices_per_item must be non-negative");
  const std::size_t per_item = config.devices_per_item == 0
                                   ? fleet.size()
                                   : static_cast<std::size_t>(
                                         config.devices_per_item);
  MGPUSW_REQUIRE(per_item <= fleet.size(),
                 "devices_per_item exceeds fleet size");
  entry.label = item.label;
  // Item lifetime span: covers the lease wait, the run(s) and any
  // recovery retries, on the calling thread's track.
  const obs::Scope& obs = config.engine.obs;
  obs::TraceSpan item_span(obs.tracer, "batch", "item " + item.label);
  if (obs.metrics != nullptr) {
    obs.metrics->gauge("batch.in_flight").add(1);
  }
  MGPUSW_REQUIRE(item.checkpoints == nullptr || config.enable_recovery,
                 "durable checkpoints need enable_recovery");
  try {
    if (!config.enable_recovery) {
      DeviceLease lease = fleet.acquire(per_item);
      EngineConfig engine_config = config.engine;
      engine_config.job = item.label;
      if (item.cancel != nullptr) engine_config.stop_request = item.cancel;
      MultiDeviceEngine engine(engine_config, lease.devices());
      entry.result = engine.run(item.query, item.subject);
    } else {
      // Degraded-pool retry loop: each pass leases what the fleet
      // can still grant (devices that died under other items shrink
      // the request) and runs the item under recovery. A pass whose
      // whole lease died retries on a fresh lease; bounded so a
      // cascade of deaths cannot loop forever.
      int lease_attempts = 0;
      // Fault-plan ordinals name devices of the lease they were armed
      // against. After an exhausted lease the retry runs on different
      // physical devices; re-arming the plan would remap its ordinals
      // onto healthy hardware and kill the replacements too.
      bool fault_spent = false;
      for (;;) {
        const std::size_t healthy = fleet.healthy_count();
        if (healthy == 0) {
          throw Error("batch item \"" + item.label +
                      "\": no healthy devices left");
        }
        const std::size_t want =
            std::max<std::size_t>(1, std::min(per_item, healthy));
        DeviceLease lease;
        try {
          lease = fleet.acquire(want);
        } catch (const Error&) {
          // The fleet degraded between the snapshot and the
          // acquire; re-evaluate with the smaller pool.
          if (++lease_attempts > config.recovery.max_restarts + 1) {
            throw;
          }
          continue;
        }
        EngineConfig engine_config = config.engine;
        engine_config.job = item.label;
        if (fault_spent) engine_config.fault = nullptr;
        if (item.cancel != nullptr) {
          engine_config.stop_request = item.cancel;
        }
        if (item.checkpoints != nullptr) {
          // Durable store (service journal): the engine checkpoints
          // where a restarted *process* can find them.
          engine_config.special_rows = item.checkpoints;
          engine_config.special_row_interval =
              config.recovery.checkpoint_interval;
          engine_config.checkpoint_f = true;
        }
        try {
          RecoveryResult recovered = run_with_recovery(
              engine_config, lease.devices(), item.query,
              item.subject, config.recovery, &fleet,
              item.checkpoints != nullptr ? &item.resume : nullptr,
              item.on_restart);
          entry.result = std::move(recovered.result);
          entry.restarts += recovered.restarts;
          entry.lost_devices.insert(
              entry.lost_devices.end(),
              recovered.lost_devices.begin(),
              recovered.lost_devices.end());
          break;
        } catch (const RecoveryExhaustedError& e) {
          entry.restarts += e.restarts();
          entry.lost_devices.insert(entry.lost_devices.end(),
                                    e.lost_devices().begin(),
                                    e.lost_devices().end());
          lease.release();
          if (fleet.healthy_count() == 0 ||
              ++lease_attempts > config.recovery.max_restarts + 1) {
            throw;
          }
          fault_spent = true;
          // The fresh-lease rerun replays the item from scratch: count
          // it with the restarts it recovers from. run_with_recovery
          // threw before booking its own counters, so the retry books
          // them here — a death must show up as recovery.* whichever
          // path survives it.
          ++entry.restarts;
          if (obs.metrics != nullptr) {
            obs.metrics->counter("recovery.restarts").increment();
            obs.metrics->counter("recovery.devices_lost")
                .add(static_cast<std::int64_t>(e.lost_devices().size()));
          }
        }
      }
    }
  } catch (...) {
    if (obs.metrics != nullptr) {
      obs.metrics->gauge("batch.in_flight").add(-1);
      obs.metrics->counter("batch.items_failed").increment();
    }
    throw;
  }
  if (obs.metrics != nullptr) {
    obs.metrics->gauge("batch.in_flight").add(-1);
    obs.metrics->counter("batch.items_completed").increment();
  }
}

BatchResult run_batch(const BatchConfig& config, DeviceFleet& fleet,
                      const std::vector<BatchItem>& items) {
  MGPUSW_REQUIRE(!items.empty(), "batch needs at least one item");
  MGPUSW_REQUIRE(config.devices_per_item >= 0,
                 "devices_per_item must be non-negative");
  MGPUSW_REQUIRE(config.max_in_flight >= 1,
                 "max_in_flight must be at least 1");
  const std::size_t per_item = config.devices_per_item == 0
                                   ? fleet.size()
                                   : static_cast<std::size_t>(
                                         config.devices_per_item);
  MGPUSW_REQUIRE(per_item <= fleet.size(),
                 "devices_per_item exceeds fleet size");

  BatchResult batch;
  batch.items.resize(items.size());

  base::WallTimer wall;
  std::vector<char> handled(items.size(), 0);
  if (config.interseq_max_len > 0) {
    run_interseq_prepass(config, items, batch, handled);
    if (config.on_item_done) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (handled[i] != 0) {
          config.on_item_done(i, batch.items[i], nullptr);
        }
      }
    }
  }

  // Admission order: priority descending, ties in submission order.
  std::vector<std::size_t> order(items.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&items](std::size_t a, std::size_t b) {
                     return items[a].priority > items[b].priority;
                   });

  const std::size_t worker_count = std::min<std::size_t>(
      static_cast<std::size_t>(config.max_in_flight), items.size());

  std::atomic<std::size_t> next_slot{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t slot =
          next_slot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= order.size()) return;
      const std::size_t index = order[slot];
      if (handled[index] != 0) continue;  // solved by the interseq pass
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error) return;  // abort: stop admitting items
      }
      const BatchItem& item = items[index];
      BatchItemResult& entry = batch.items[index];
      try {
        run_batch_item(config, fleet, item, entry);
      } catch (...) {
        const std::exception_ptr error = std::current_exception();
        if (config.on_item_done) config.on_item_done(index, entry, error);
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = error;
        return;
      }
      if (config.on_item_done) config.on_item_done(index, entry, nullptr);
    }
  };

  if (worker_count == 1) {
    worker();  // sequential mode: no thread overhead, same code path
  } else {
    std::vector<std::thread> threads;
    threads.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) thread.join();
  }
  batch.wall_seconds = wall.elapsed_seconds();

  if (first_error) std::rethrow_exception(first_error);

  for (const BatchItemResult& entry : batch.items) {
    batch.total_seconds += entry.result.wall_seconds;
    batch.total_cells += entry.result.matrix_cells;
  }
  return batch;
}

BatchResult run_batch(const EngineConfig& config,
                      const std::vector<vgpu::Device*>& devices,
                      const std::vector<BatchItem>& items) {
  DeviceFleet fleet(devices);
  BatchConfig batch_config;
  batch_config.engine = config;
  batch_config.devices_per_item = 0;  // every item spans all devices
  batch_config.max_in_flight = 1;
  return run_batch(batch_config, fleet, items);
}

}  // namespace mgpusw::core
