#include "core/batch.hpp"

#include "base/error.hpp"

namespace mgpusw::core {

BatchResult run_batch(const EngineConfig& config,
                      const std::vector<vgpu::Device*>& devices,
                      const std::vector<BatchItem>& items) {
  MGPUSW_REQUIRE(!items.empty(), "batch needs at least one item");
  MultiDeviceEngine engine(config, devices);
  BatchResult batch;
  batch.items.reserve(items.size());
  for (const BatchItem& item : items) {
    BatchItemResult entry;
    entry.label = item.label;
    entry.result = engine.run(item.query, item.subject);
    batch.total_seconds += entry.result.wall_seconds;
    batch.total_cells += entry.result.matrix_cells;
    batch.items.push_back(std::move(entry));
  }
  return batch;
}

}  // namespace mgpusw::core
