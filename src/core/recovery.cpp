#include "core/recovery.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "base/log.hpp"
#include "base/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mgpusw::core {

namespace {

/// Indices (into the failing engine's pool) of devices whose error
/// classifies as device loss — the ones recovery must stop using.
std::vector<std::size_t> lost_indices(const RunFailure& failure) {
  std::vector<std::size_t> lost;
  for (const DeviceFault& fault : failure.faults) {
    if (classify_error(fault.error) == ErrorSeverity::kDeviceLoss) {
      lost.push_back(static_cast<std::size_t>(fault.device_index));
    }
  }
  return lost;
}

}  // namespace

RecoveryResult run_with_recovery(const EngineConfig& base_config,
                                 std::vector<vgpu::Device*> devices,
                                 const seq::Sequence& query,
                                 const seq::Sequence& subject,
                                 const RecoveryPolicy& policy,
                                 DeviceFleet* fleet,
                                 const ResumeSpec* resume,
                                 const RestartHook& on_restart) {
  MGPUSW_REQUIRE(!devices.empty(), "recovery needs at least one device");
  MGPUSW_REQUIRE(policy.max_restarts >= 0,
                 "max_restarts must be non-negative");
  MGPUSW_REQUIRE(resume == nullptr || resume->row < 0 ||
                     base_config.special_rows != nullptr,
                 "resuming from a checkpoint row needs the caller's "
                 "special-row store");

  EngineConfig config = base_config;

  // The caller's stop flag means *cancel the job*, which recovery must
  // never treat as a restartable failure (InterruptedError classifies as
  // transient). Remember it so the attempt loop can tell a cancel apart
  // from an engine fault, including attempts where the rebalance
  // controller substitutes its own stop flag.
  std::atomic<bool>* const caller_stop = base_config.stop_request;

  // Checkpoints are what restarts resume from; without a caller-provided
  // store, recovery keeps its own (in-memory — it only needs to survive
  // the attempt loop, not the process).
  SpecialRowStore local_store;
  if (config.special_rows == nullptr) {
    MGPUSW_REQUIRE(policy.checkpoint_interval > 0,
                   "checkpoint_interval must be positive");
    config.special_rows = &local_store;
    config.special_row_interval = policy.checkpoint_interval;
    config.checkpoint_f = true;
  } else {
    MGPUSW_REQUIRE(config.special_row_interval > 0,
                   "recovery needs a positive special_row_interval");
    MGPUSW_REQUIRE(config.checkpoint_f,
                   "recovery needs checkpoint_f so special rows can seed "
                   "restarts");
  }

  // Stamp every ProgressEvent with the restart/rebalance counts so
  // consumers can tell attempts apart. Shared atomics: the wrapper
  // outlives this frame inside engine copies of the callback.
  auto restart_count = std::make_shared<std::atomic<int>>(0);
  auto rebalance_count = std::make_shared<std::atomic<int>>(0);
  if (base_config.progress) {
    config.progress = [inner = base_config.progress, restart_count,
                       rebalance_count](const ProgressEvent& event) {
      ProgressEvent stamped = event;
      stamped.restarts = restart_count->load(std::memory_order_relaxed);
      stamped.rebalances =
          rebalance_count->load(std::memory_order_relaxed);
      inner(stamped);
    };
  }

  // Pin injector ordinals to the original pool indices: a `dev<N>` fault
  // spec must keep naming the same physical device after deaths shrink
  // the pool, and a survivor must not inherit a dead ordinal.
  std::vector<int> ordinals(devices.size());
  for (std::size_t d = 0; d < ordinals.size(); ++d) {
    ordinals[d] = static_cast<int>(d);
  }

  base::WallTimer total_wall;
  RecoveryResult out;
  sw::ScoreResult carried_best;
  std::vector<double> rebalanced_weights;
  std::int64_t resume_row = -1;
  if (resume != nullptr) {
    // Cross-process resume: seed the first attempt exactly like an
    // internal restart would — from the caller's checkpoint row with
    // the best over everything at or below it carried forward.
    carried_best = resume->carried_best;
    resume_row = resume->row;
  }
  std::int64_t backoff_ms = policy.backoff_ms;
  const std::int64_t rows = query.size();
  const std::int64_t cols = subject.size();

  while (true) {
    if (config.fault != nullptr) config.fault_ordinals = ordinals;

    // Arm a rebalance controller for this attempt when the policy asks
    // for one and both budgets (re-splits, shared restarts) have room —
    // arming with no restart left would stop a run it cannot restart.
    EngineConfig attempt = config;
    std::shared_ptr<RebalanceController> controller;
    if (config.rebalance.enabled &&
        rebalance_count->load(std::memory_order_relaxed) <
            config.rebalance.max_resplits &&
        restart_count->load(std::memory_order_relaxed) <
            policy.max_restarts) {
      controller =
          std::make_shared<RebalanceController>(config.rebalance);
      attempt.stop_request = controller->stop_flag();
      attempt.progress = [inner = config.progress, controller,
                          caller_stop](const ProgressEvent& event) {
        // The controller's flag replaced the caller's for this attempt;
        // forward a cancel so the engine still stops promptly.
        if (caller_stop != nullptr &&
            caller_stop->load(std::memory_order_relaxed)) {
          controller->stop_flag()->store(true, std::memory_order_relaxed);
        }
        controller->observe(event);
        if (inner) inner(event);
      };
    }
    MultiDeviceEngine engine(attempt, devices);
    if (controller != nullptr) {
      // The shares the controller judges against are the block columns
      // the plan actually allocated, not the raw weights — rounding to
      // block granularity is part of the split being observed.
      const AlignmentPlan plan = engine.plan(rows, cols);
      std::vector<double> shares;
      shares.reserve(plan.devices.size());
      for (const SlicePlan& slice : plan.devices) {
        shares.push_back(static_cast<double>(slice.block_columns));
      }
      controller->set_planned_shares(std::move(shares));
    }
    std::exception_ptr error;
    try {
      EngineResult result =
          resume_row < 0
              ? engine.run(query, subject)
              : engine.resume(query, subject, *config.special_rows,
                              resume_row);
      // Success: fold the best carried over from failed attempts. The
      // completed-then-lost blocks and the resumed region cover every
      // cell, so this merge equals the unfailed run's best exactly.
      if (sw::improves(carried_best, result.best)) {
        result.best = carried_best;
      }
      result.matrix_cells = rows * cols;
      result.wall_seconds = total_wall.elapsed_seconds();
      out.result = std::move(result);
      out.restarts = restart_count->load(std::memory_order_relaxed);
      out.rebalances = rebalance_count->load(std::memory_order_relaxed);
      out.rebalanced_weights = rebalanced_weights;
      return out;
    } catch (...) {
      error = std::current_exception();
    }

    // A raised caller flag means this failure *is* the cancel: rethrow
    // without consuming a restart, losing a device, or rebalancing.
    if (caller_stop != nullptr &&
        caller_stop->load(std::memory_order_relaxed)) {
      std::rethrow_exception(error);
    }

    const bool rebalance_stop =
        controller != nullptr && controller->stop_requested();
    std::vector<double> new_weights;
    if (rebalance_stop) new_weights = controller->observed_weights();

    // Judge the failure by *all* per-device faults, not just the first
    // error the engine rethrew: when a device dies, its neighbours often
    // fail first with secondary errors (closed channel, protocol
    // violation), and any of those may be what `error` holds. A genuine
    // device loss anywhere makes the run recoverable.
    const RunFailure& failure = engine.last_failure();
    const std::vector<std::size_t> lost = lost_indices(failure);
    if (lost.empty() && classify_error(error) == ErrorSeverity::kFatal) {
      std::rethrow_exception(error);
    }
    if (failure.valid) {
      if (sw::improves(failure.partial_best, carried_best)) {
        carried_best = failure.partial_best;
      }
      // Erase descending so earlier indices stay valid.
      for (auto it = lost.rbegin(); it != lost.rend(); ++it) {
        const std::size_t d = *it;
        MGPUSW_CHECK(d < devices.size());
        MGPUSW_LOG(kWarn) << "recovery: lost device "
                          << devices[d]->spec().name;
        out.lost_devices.push_back(devices[d]->spec().name);
        if (fleet != nullptr) fleet->mark_unhealthy(devices[d]);
        devices.erase(devices.begin() + static_cast<std::ptrdiff_t>(d));
        ordinals.erase(ordinals.begin() + static_cast<std::ptrdiff_t>(d));
        if (config.balance == BalanceMode::kCustomWeights &&
            d < config.custom_weights.size()) {
          config.custom_weights.erase(
              config.custom_weights.begin() +
              static_cast<std::ptrdiff_t>(d));
        }
        // Keep the measured rates parallel to the shrunken pool.
        if (rebalance_stop && d < new_weights.size()) {
          new_weights.erase(new_weights.begin() +
                            static_cast<std::ptrdiff_t>(d));
        }
      }
    }

    const int restarts_used =
        restart_count->load(std::memory_order_relaxed);
    if (devices.empty()) {
      throw RecoveryExhaustedError(
          "recovery exhausted: no healthy devices left after " +
              std::to_string(restarts_used) + " restart(s)",
          restarts_used, out.lost_devices);
    }
    if (restarts_used >= policy.max_restarts) {
      std::string reason = "unknown error";
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        reason = e.what();
      } catch (...) {
      }
      throw RecoveryExhaustedError(
          "recovery exhausted: " + std::to_string(restarts_used) +
              " restart(s) used, last error: " + reason,
          restarts_used, out.lost_devices);
    }
    restart_count->fetch_add(1, std::memory_order_relaxed);
    if (rebalance_stop && !new_weights.empty()) {
      // Re-split the remaining rows in proportion to the rates actually
      // measured; the restart below resumes from the newest checkpoint,
      // so the answer stays bit-identical (same recovery invariant as a
      // device-loss restart).
      rebalance_count->fetch_add(1, std::memory_order_relaxed);
      config.balance = BalanceMode::kCustomWeights;
      config.custom_weights = normalize_weights(std::move(new_weights));
      rebalanced_weights = config.custom_weights;
      MGPUSW_LOG(kInfo) << "recovery: rebalance "
                        << rebalance_count->load(std::memory_order_relaxed)
                        << ", observed imbalance "
                        << controller->last_imbalance();
      if (config.obs.metrics != nullptr) {
        config.obs.metrics->counter("recovery.rebalances").increment();
      }
      if (config.obs.tracer != nullptr) {
        config.obs.tracer->instant(
            "recovery", "rebalance",
            {obs::TraceArg::number("resplit",
                                   rebalance_count->load(
                                       std::memory_order_relaxed)),
             obs::TraceArg::number(
                 "imbalance_pct",
                 static_cast<std::int64_t>(
                     controller->last_imbalance() * 100.0))});
      }
    }
    if (config.obs.metrics != nullptr) {
      config.obs.metrics->counter("recovery.restarts").increment();
      config.obs.metrics->counter("recovery.devices_lost")
          .add(static_cast<std::int64_t>(lost.size()));
    }
    if (config.obs.tracer != nullptr) {
      config.obs.tracer->instant(
          "recovery", "restart",
          {obs::TraceArg::number(
               "attempt", restart_count->load(std::memory_order_relaxed)),
           obs::TraceArg::number(
               "devices_left", static_cast<std::int64_t>(devices.size())),
           obs::TraceArg::number("lost",
                                 static_cast<std::int64_t>(lost.size()))});
    }

    if (backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }

    // Restart from the newest checkpoint row that survived the failure
    // intact (complete coverage, F data, CRC); -1 restarts from scratch.
    // limit = rows - 1 keeps the resume precondition row + 1 < rows.
    resume_row = config.special_rows->last_restartable_row(cols, rows - 1);
    // (resume_row, carried_best) is now precisely what a process crash
    // could restart from; give the durability layer its chance to make
    // it crash-safe before the in-process attempt consumes it.
    if (on_restart) on_restart(ResumeSpec{resume_row, carried_best});
    MGPUSW_LOG(kInfo) << "recovery: restart "
                      << restart_count->load(std::memory_order_relaxed)
                      << " on " << devices.size() << " device(s)"
                      << (resume_row < 0
                              ? std::string(" from scratch")
                              : " from checkpoint row " +
                                    std::to_string(resume_row));
  }
}

}  // namespace mgpusw::core
