// Fixed-size worker pool.
//
// Used by vgpu::Device to emulate a GPU's streaming multiprocessors: the
// device submits block-kernel tasks and the pool executes them on a fixed
// set of threads. The pool is deliberately simple (single shared queue,
// condition-variable wakeups) — block kernels are large enough (>=64k
// cells) that queue contention is negligible.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "base/error.hpp"

namespace mgpusw::base {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads) {
    MGPUSW_REQUIRE(num_threads > 0, "thread pool needs at least one thread");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() { shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task for execution. Throws if the pool is shut down.
  void submit(std::function<void()> task) {
    {
      std::lock_guard lock(mu_);
      if (stopping_) throw Error("submit on stopped ThreadPool");
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished executing.
  void wait_idle() {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
  }

  /// Stops accepting work, drains the queue, joins all workers.
  void shutdown() {
    {
      std::lock_guard lock(mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for
  /// completion. fn must be safe to call concurrently.
  template <typename Fn>
  void parallel_for(std::size_t count, Fn&& fn) {
    if (count == 0) return;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
    const std::size_t shards = std::min(count, size());
    for (std::size_t s = 0; s < shards; ++s) {
      submit([&, count] {
        for (std::size_t i = next.fetch_add(1); i < count;
             i = next.fetch_add(1)) {
          fn(i);
          done.fetch_add(1);
        }
        std::lock_guard lock(done_mu);
        done_cv.notify_one();
      });
    }
    std::unique_lock lock(done_mu);
    done_cv.wait(lock, [&] { return done.load() == count; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) {
          if (stopping_) return;
          continue;
        }
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++active_;
      }
      task();
      {
        std::lock_guard lock(mu_);
        --active_;
        if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace mgpusw::base
