// Small integer math helpers used throughout the partitioning and
// scheduling code.
#pragma once

#include <cstdint>

#include "base/error.hpp"

namespace mgpusw::base {

/// ceil(a / b) for positive b.
[[nodiscard]] constexpr std::int64_t div_ceil(std::int64_t a,
                                              std::int64_t b) {
  return (a + b - 1) / b;
}

/// Smallest multiple of b that is >= a, for positive b.
[[nodiscard]] constexpr std::int64_t round_up(std::int64_t a,
                                              std::int64_t b) {
  return div_ceil(a, b) * b;
}

/// Largest multiple of b that is <= a, for positive b.
[[nodiscard]] constexpr std::int64_t round_down(std::int64_t a,
                                                std::int64_t b) {
  return (a / b) * b;
}

}  // namespace mgpusw::base
