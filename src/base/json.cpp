#include "base/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "base/error.hpp"

namespace mgpusw::base {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::indent(std::size_t depth) {
  out_.push_back('\n');
  out_.append(2 * depth, ' ');
}

void JsonWriter::begin_element() {
  if (stack_.empty()) return;  // top-level value
  Frame& frame = stack_.back();
  if (frame.count > 0) out_.push_back(',');
  if (frame.compact) {
    if (frame.count > 0) out_.push_back(' ');
  } else {
    indent(stack_.size());
  }
  ++frame.count;
}

void JsonWriter::begin_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // `"key": ` already written
  }
  MGPUSW_CHECK(stack_.empty() || stack_.back().array);
  begin_element();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  MGPUSW_CHECK(!stack_.empty() && !stack_.back().array && !key_pending_);
  begin_element();
  out_.push_back('"');
  out_ += escape(name);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

void JsonWriter::open(char bracket, Style style, bool array) {
  begin_value();
  out_.push_back(bracket);
  // A compact parent forces compact children: a one-line object cannot
  // contain multi-line layout.
  const bool parent_compact = !stack_.empty() && stack_.back().compact;
  stack_.push_back(Frame{array, style == kCompact || parent_compact, 0});
}

void JsonWriter::close(char bracket, bool array) {
  MGPUSW_CHECK(!stack_.empty() && stack_.back().array == array &&
               !key_pending_);
  const Frame frame = stack_.back();
  stack_.pop_back();
  if (!frame.compact && frame.count > 0) indent(stack_.size());
  out_.push_back(bracket);
}

JsonWriter& JsonWriter::begin_object(Style style) {
  open('{', style, false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('}', false);
  return *this;
}

JsonWriter& JsonWriter::begin_array(Style style) {
  open('[', style, true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(']', true);
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  begin_value();
  out_.push_back('"');
  out_ += escape(text);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  begin_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  begin_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  begin_value();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no NaN/Inf literals
    return *this;
  }
  std::ostringstream os;
  os << number;
  out_ += os.str();
  return *this;
}

JsonWriter& JsonWriter::value_fixed(double number, int precision) {
  begin_value();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  begin_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  begin_value();
  out_ += json;
  return *this;
}

const std::string& JsonWriter::str() const {
  MGPUSW_CHECK(stack_.empty() && !key_pending_);
  return out_;
}

namespace json {
namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json parse error at offset " +
                          std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        Value v;
        v.type = Value::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object(int depth) {
    expect('{');
    Value v;
    v.type = Value::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == '}') return v;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value v;
    v.type = Value::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == ']') return v;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate
      if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      } else {
        fail("unpaired surrogate");
      }
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    Value v;
    v.type = Value::kNumber;
    v.number = number;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* value = find(key);
  if (value == nullptr) {
    throw InvalidArgument("json: missing member \"" + std::string(key) +
                          "\"");
  }
  return *value;
}

std::int64_t Value::as_int() const {
  if (type != kNumber) throw InvalidArgument("json: value is not a number");
  return static_cast<std::int64_t>(number);
}

Value parse(std::string_view text) { return Parser(text).run(); }

void write(JsonWriter& writer, const Value& value, JsonWriter::Style style) {
  switch (value.type) {
    case Value::kNull:
      writer.null_value();
      return;
    case Value::kBool:
      writer.value(value.boolean);
      return;
    case Value::kNumber:
      // Integers must round-trip as integers (scores, counters); only
      // genuine fractions render through the double path.
      if (value.number == static_cast<double>(
                              static_cast<std::int64_t>(value.number))) {
        writer.value(static_cast<std::int64_t>(value.number));
      } else {
        writer.value(value.number);
      }
      return;
    case Value::kString:
      writer.value(value.string);
      return;
    case Value::kArray:
      writer.begin_array(style);
      for (const Value& element : value.array) {
        write(writer, element, style);
      }
      writer.end_array();
      return;
    case Value::kObject:
      writer.begin_object(style);
      for (const auto& [name, member] : value.object) {
        writer.key(name);
        write(writer, member, style);
      }
      writer.end_object();
      return;
  }
}

std::string dump(const Value& value, JsonWriter::Style style) {
  JsonWriter writer;
  write(writer, value, style);
  return writer.str();
}

}  // namespace json

}  // namespace mgpusw::base
