#include "base/json.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "base/error.hpp"

namespace mgpusw::base {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::indent(std::size_t depth) {
  out_.push_back('\n');
  out_.append(2 * depth, ' ');
}

void JsonWriter::begin_element() {
  if (stack_.empty()) return;  // top-level value
  Frame& frame = stack_.back();
  if (frame.count > 0) out_.push_back(',');
  if (frame.compact) {
    if (frame.count > 0) out_.push_back(' ');
  } else {
    indent(stack_.size());
  }
  ++frame.count;
}

void JsonWriter::begin_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // `"key": ` already written
  }
  MGPUSW_CHECK(stack_.empty() || stack_.back().array);
  begin_element();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  MGPUSW_CHECK(!stack_.empty() && !stack_.back().array && !key_pending_);
  begin_element();
  out_.push_back('"');
  out_ += escape(name);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

void JsonWriter::open(char bracket, Style style, bool array) {
  begin_value();
  out_.push_back(bracket);
  // A compact parent forces compact children: a one-line object cannot
  // contain multi-line layout.
  const bool parent_compact = !stack_.empty() && stack_.back().compact;
  stack_.push_back(Frame{array, style == kCompact || parent_compact, 0});
}

void JsonWriter::close(char bracket, bool array) {
  MGPUSW_CHECK(!stack_.empty() && stack_.back().array == array &&
               !key_pending_);
  const Frame frame = stack_.back();
  stack_.pop_back();
  if (!frame.compact && frame.count > 0) indent(stack_.size());
  out_.push_back(bracket);
}

JsonWriter& JsonWriter::begin_object(Style style) {
  open('{', style, false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('}', false);
  return *this;
}

JsonWriter& JsonWriter::begin_array(Style style) {
  open('[', style, true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(']', true);
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  begin_value();
  out_.push_back('"');
  out_ += escape(text);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  begin_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  begin_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  begin_value();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no NaN/Inf literals
    return *this;
  }
  std::ostringstream os;
  os << number;
  out_ += os.str();
  return *this;
}

JsonWriter& JsonWriter::value_fixed(double number, int precision) {
  begin_value();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  begin_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  begin_value();
  out_ += json;
  return *this;
}

const std::string& JsonWriter::str() const {
  MGPUSW_CHECK(stack_.empty() && !key_pending_);
  return out_;
}

}  // namespace mgpusw::base
