// JSON handling shared by every emitter and consumer in the tree: the
// streaming JsonWriter (core/report, the BENCH_*.json bench records,
// the observability exports, the service wire protocol) and the strict
// recursive-descent parser (artifact validation in tests and CI, the
// trace_view summarizer, service protocol payloads, the client's result
// pretty-printer). One implementation owns escaping, layout, number
// formatting and parsing so producers and consumers cannot drift apart;
// no external JSON dependency, matching the repo's zero-dependency rule.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mgpusw::base {

/// Builds a JSON document incrementally. Objects and arrays open in
/// pretty mode (newline + two-space indent per level) or compact mode
/// (single line, `", "` separators) — the layout the repo's reports have
/// always used: pretty outer structure, compact per-row inner objects.
///
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("score").value(42);
///   w.key("devices").begin_array();
///   w.begin_object(JsonWriter::kCompact);
///   w.key("name").value("GTX 580");
///   w.end_object();
///   w.end_array();
///   w.end_object();
///   std::string json = w.str();
///
/// Misuse (value without key inside an object, str() with open
/// containers) trips an internal check — emitters are test-covered, so
/// failing loudly beats writing a malformed file.
class JsonWriter {
 public:
  enum Style { kPretty, kCompact };

  JsonWriter& begin_object(Style style = kPretty);
  JsonWriter& end_object();
  JsonWriter& begin_array(Style style = kPretty);
  JsonWriter& end_array();

  /// Writes an object key; the next call must write its value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) {
    return value(std::string_view(text));
  }
  JsonWriter& value(bool flag);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) {
    return value(static_cast<std::int64_t>(number));
  }
  JsonWriter& value(std::size_t number) {
    return value(static_cast<std::int64_t>(number));
  }
  /// Default double formatting (6 significant digits, like ostream).
  JsonWriter& value(double number);
  /// Fixed-precision double: value_fixed(3.14159, 2) -> 3.14.
  JsonWriter& value_fixed(double number, int precision);
  JsonWriter& null_value();

  /// Splices pre-rendered JSON in value position (e.g. a nested
  /// document produced by another writer). The caller guarantees it is
  /// well-formed.
  JsonWriter& raw_value(std::string_view json);

  /// The finished document. Requires every container to be closed.
  [[nodiscard]] const std::string& str() const;

  /// Escapes `text` for embedding inside a JSON string literal (no
  /// surrounding quotes).
  [[nodiscard]] static std::string escape(std::string_view text);

 private:
  struct Frame {
    bool array = false;
    bool compact = false;
    int count = 0;
  };

  void begin_element();  // separator + layout before a key or array value
  void begin_value();    // like begin_element, but a key may precede
  void open(char bracket, Style style, bool array);
  void close(char bracket, bool array);
  void indent(std::size_t depth);

  std::string out_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

namespace json {

/// A parsed JSON value. Objects keep their members in document order
/// (duplicate keys are kept; find() returns the first).
struct Value {
  enum Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const { return type == kNull; }
  [[nodiscard]] bool is_object() const { return type == kObject; }
  [[nodiscard]] bool is_array() const { return type == kArray; }
  [[nodiscard]] bool is_string() const { return type == kString; }
  [[nodiscard]] bool is_number() const { return type == kNumber; }

  /// First member named `key`, or nullptr. Non-objects have no members.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// find(), but throws InvalidArgument when the member is missing.
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// The number as int64 (truncating); throws unless is_number().
  [[nodiscard]] std::int64_t as_int() const;
};

/// Parses one strict JSON document; trailing non-whitespace is an
/// error. Throws InvalidArgument on malformed input with an offset.
[[nodiscard]] Value parse(std::string_view text);

/// Writes `value` in value position on `writer` (containers open with
/// `style`). Together with parse() this re-renders any subtree of a
/// parsed document — the service protocol uses it to forward nested run
/// reports, the client to pretty-print them.
void write(JsonWriter& writer, const Value& value,
           JsonWriter::Style style = JsonWriter::kCompact);

/// parse()'s inverse as a one-liner: `value` rendered as a document.
[[nodiscard]] std::string dump(const Value& value,
                               JsonWriter::Style style = JsonWriter::kCompact);

}  // namespace json

}  // namespace mgpusw::base
