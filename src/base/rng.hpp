// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (synthetic genomes, mutation
// models, property tests) use this generator so that every experiment is
// reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>

namespace mgpusw::base {

/// SplitMix64: used to expand a user seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  [[nodiscard]] std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const auto wide =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool next_bool(double p) { return next_double() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace mgpusw::base
