#include "base/format.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "base/error.hpp"

namespace mgpusw::base {

std::string with_thousands(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string human_bytes(std::int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (std::abs(value) >= 1024.0 && unit + 1 < std::size(units)) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return std::to_string(bytes) + " B";
  return format_double(value, 1) + " " + units[unit];
}

std::string human_bp(std::int64_t bases) {
  if (bases >= 1'000'000) {
    return format_double(static_cast<double>(bases) / 1e6, 2) + " Mbp";
  }
  if (bases >= 1'000) {
    return format_double(static_cast<double>(bases) / 1e3, 2) + " Kbp";
  }
  return std::to_string(bases) + " bp";
}

std::string human_duration(double seconds) {
  if (seconds < 0.001) {
    return format_double(seconds * 1e6, 1) + " us";
  }
  if (seconds < 1.0) {
    return format_double(seconds * 1e3, 1) + " ms";
  }
  if (seconds < 60.0) {
    return format_double(seconds, 2) + " s";
  }
  const auto total = static_cast<std::int64_t>(seconds);
  if (seconds < 3600.0) {
    return std::to_string(total / 60) + "m" +
           std::to_string(total % 60) + "s";
  }
  return std::to_string(total / 3600) + "h" +
         std::to_string((total % 3600) / 60) + "m";
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MGPUSW_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  MGPUSW_REQUIRE(row.size() == header_.size(),
                 "row has " << row.size() << " cells, table has "
                            << header_.size() << " columns");
  rows_.push_back(std::move(row));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      os << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  auto emit_separator = [&](std::ostringstream& os) {
    os << "+";
    for (const std::size_t width : widths) {
      os << std::string(width + 2, '-') << '+';
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_separator(os);
  emit_row(os, header_);
  emit_separator(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_separator(os);
    } else {
      emit_row(os, row);
    }
  }
  emit_separator(os);
  return os.str();
}

}  // namespace mgpusw::base
