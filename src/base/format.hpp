// Text formatting helpers: human-readable units and an aligned text table
// used by the benchmark harnesses to print paper-style tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mgpusw::base {

/// "1234567" -> "1,234,567".
[[nodiscard]] std::string with_thousands(std::int64_t value);

/// Bytes with binary units: 1536 -> "1.5 KiB".
[[nodiscard]] std::string human_bytes(std::int64_t bytes);

/// Base-pair counts with metric units: 46944323 -> "46.94 Mbp".
[[nodiscard]] std::string human_bp(std::int64_t bases);

/// Fixed-precision double: format_double(3.14159, 2) -> "3.14".
[[nodiscard]] std::string format_double(double value, int precision);

/// Seconds rendered as "1h02m", "3m20s", "12.4s" or "85 ms".
[[nodiscard]] std::string human_duration(double seconds);

/// Column-aligned plain-text table. Rows are added as string vectors; the
/// printer right-pads each column to its widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void add_separator();

  /// Renders the table including header and separators.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
};

}  // namespace mgpusw::base
