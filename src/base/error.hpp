// Error handling primitives for mgpu-sw.
//
// The library uses exceptions for unrecoverable misuse (bad arguments,
// protocol violations) and MGPUSW_CHECK-style macros for internal
// invariants. Hot loops never throw; all validation happens at API
// boundaries before parallel execution starts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mgpusw {

/// Base class for all mgpu-sw exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes arguments that violate a documented
/// precondition (negative length, zero devices, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (FASTA parsing, socket errors, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated; indicates a bug in the
/// library itself rather than in calling code.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

// ---------------------------------------------------------------------------
// Failure taxonomy for the recovery layer (core/recovery.hpp).
//
// A multi-hour multi-device run can die in ways that a restart from the
// last checkpoint cures (a dropped border chunk, a comm timeout, a
// one-shot kernel fault) and in ways it cannot (a device that is gone for
// good must first leave the pool). The classes below let the recovery
// driver tell these apart without string-matching error messages.

/// An error a restart may cure without changing the device pool: border
/// traffic lost or corrupted, a comm timeout, an injected one-shot
/// kernel failure.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// Violation of the border-chunk sequencing protocol: the upstream
/// neighbour died mid-stream, skipped or corrupted a chunk. Transient
/// from the observing device's point of view — a restart re-establishes
/// the stream.
class ProtocolError : public TransientError {
 public:
  explicit ProtocolError(const std::string& what) : TransientError(what) {}
};

/// Cooperative interruption: a runner observed EngineConfig::stop_request
/// raised at a scheduling-unit boundary. The dynamic load rebalancer uses
/// this to stop a mis-split run so the remaining rows can be re-split;
/// everything completed before the stop is intact, so a restart from the
/// newest checkpoint is always safe — hence transient.
class InterruptedError : public TransientError {
 public:
  explicit InterruptedError(const std::string& what)
      : TransientError(what) {}
};

/// A device is gone for good (death fault, exhausted memory arena). The
/// recovery layer must remove it from the pool before restarting.
class DeviceLostError : public Error {
 public:
  explicit DeviceLostError(const std::string& what) : Error(what) {}
};

/// How the recovery layer reacts to a failed run.
enum class ErrorSeverity {
  kTransient,   // retry on the same device pool
  kDeviceLoss,  // drop the dead device, re-plan, retry
  kFatal,       // misuse or a library bug: rethrow, never retry
};

/// Classifies an in-flight exception for the recovery driver. IoError is
/// transient here because during a run the only I/O is channel traffic
/// (sockets, checkpoint spill files); argument and invariant violations
/// are fatal.
[[nodiscard]] inline ErrorSeverity classify_error(
    const std::exception_ptr& error) {
  if (!error) return ErrorSeverity::kFatal;
  try {
    std::rethrow_exception(error);
  } catch (const DeviceLostError&) {
    return ErrorSeverity::kDeviceLoss;
  } catch (const TransientError&) {
    return ErrorSeverity::kTransient;
  } catch (const IoError&) {
    return ErrorSeverity::kTransient;
  } catch (...) {
    return ErrorSeverity::kFatal;
  }
}

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace mgpusw

/// Internal invariant check. Active in all build types: the cost is
/// negligible outside inner kernels, and kernels deliberately avoid it.
#define MGPUSW_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::mgpusw::detail::check_failed("MGPUSW_CHECK", #expr, __FILE__,      \
                                     __LINE__, "");                        \
    }                                                                      \
  } while (0)

#define MGPUSW_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream mgpusw_os_;                                       \
      mgpusw_os_ << msg;                                                   \
      ::mgpusw::detail::check_failed("MGPUSW_CHECK", #expr, __FILE__,      \
                                     __LINE__, mgpusw_os_.str());          \
    }                                                                      \
  } while (0)

/// Precondition check at public API boundaries; throws InvalidArgument.
#define MGPUSW_REQUIRE(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream mgpusw_os_;                                       \
      mgpusw_os_ << "precondition (" << #expr << ") violated: " << msg;    \
      throw ::mgpusw::InvalidArgument(mgpusw_os_.str());                   \
    }                                                                      \
  } while (0)
