// Error handling primitives for mgpu-sw.
//
// The library uses exceptions for unrecoverable misuse (bad arguments,
// protocol violations) and MGPUSW_CHECK-style macros for internal
// invariants. Hot loops never throw; all validation happens at API
// boundaries before parallel execution starts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace mgpusw {

/// Base class for all mgpu-sw exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes arguments that violate a documented
/// precondition (negative length, zero devices, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (FASTA parsing, socket errors, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Thrown when an internal invariant is violated; indicates a bug in the
/// library itself rather than in calling code.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace mgpusw

/// Internal invariant check. Active in all build types: the cost is
/// negligible outside inner kernels, and kernels deliberately avoid it.
#define MGPUSW_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::mgpusw::detail::check_failed("MGPUSW_CHECK", #expr, __FILE__,      \
                                     __LINE__, "");                        \
    }                                                                      \
  } while (0)

#define MGPUSW_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream mgpusw_os_;                                       \
      mgpusw_os_ << msg;                                                   \
      ::mgpusw::detail::check_failed("MGPUSW_CHECK", #expr, __FILE__,      \
                                     __LINE__, mgpusw_os_.str());          \
    }                                                                      \
  } while (0)

/// Precondition check at public API boundaries; throws InvalidArgument.
#define MGPUSW_REQUIRE(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream mgpusw_os_;                                       \
      mgpusw_os_ << "precondition (" << #expr << ") violated: " << msg;    \
      throw ::mgpusw::InvalidArgument(mgpusw_os_.str());                   \
    }                                                                      \
  } while (0)
