#include "base/flags.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "base/error.hpp"

namespace mgpusw::base {

namespace {

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "bool";
    case 4: return "choice";
    default: return "string";
  }
}

std::string join_choices(const std::vector<std::string>& choices) {
  std::string out;
  for (const std::string& choice : choices) {
    if (!out.empty()) out += "|";
    out += choice;
  }
  return out;
}

}  // namespace

void FlagSet::add_int(const std::string& name, std::int64_t default_value,
                      const std::string& help) {
  Flag flag{Kind::kInt, help, std::to_string(default_value),
            std::to_string(default_value)};
  flags_.emplace(name, std::move(flag));
}

void FlagSet::add_double(const std::string& name, double default_value,
                         const std::string& help) {
  std::ostringstream os;
  os << default_value;
  Flag flag{Kind::kDouble, help, os.str(), os.str()};
  flags_.emplace(name, std::move(flag));
}

void FlagSet::add_bool(const std::string& name, bool default_value,
                       const std::string& help) {
  const char* text = default_value ? "true" : "false";
  Flag flag{Kind::kBool, help, text, text};
  flags_.emplace(name, std::move(flag));
}

void FlagSet::add_string(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  Flag flag{Kind::kString, help, default_value, default_value};
  flags_.emplace(name, std::move(flag));
}

void FlagSet::add_choice(const std::string& name,
                         const std::string& default_value,
                         std::vector<std::string> choices,
                         const std::string& help) {
  MGPUSW_REQUIRE(!choices.empty(), "flag --" << name << " needs choices");
  const bool default_ok =
      std::find(choices.begin(), choices.end(), default_value) !=
      choices.end();
  MGPUSW_REQUIRE(default_ok, "flag --" << name << ": default '"
                                       << default_value
                                       << "' is not among its choices");
  Flag flag{Kind::kChoice, help, default_value, default_value,
            std::move(choices)};
  flags_.emplace(name, std::move(flag));
}

bool FlagSet::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw InvalidArgument("unknown flag --" + name + "\n" + usage());
    }
    if (!has_value) {
      if (it->second.kind == Kind::kBool) {
        value = "true";  // bare --flag enables a boolean
      } else {
        if (i + 1 >= argc) {
          throw InvalidArgument("flag --" + name + " requires a value");
        }
        value = argv[++i];
      }
    }
    if (it->second.kind == Kind::kChoice) {
      const auto& choices = it->second.choices;
      if (std::find(choices.begin(), choices.end(), value) ==
          choices.end()) {
        throw InvalidArgument("flag --" + name + ": '" + value +
                              "' is not one of " + join_choices(choices));
      }
    }
    it->second.value = std::move(value);
  }
  return true;
}

const FlagSet::Flag& FlagSet::find(const std::string& name, Kind kind) const {
  auto it = flags_.find(name);
  MGPUSW_REQUIRE(it != flags_.end(), "flag --" << name << " not registered");
  MGPUSW_REQUIRE(it->second.kind == kind,
                 "flag --" << name << " is not of type "
                           << kind_name(static_cast<int>(kind)));
  return it->second;
}

std::int64_t FlagSet::get_int(const std::string& name) const {
  const Flag& flag = find(name, Kind::kInt);
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(flag.value, &pos);
    if (pos != flag.value.size()) throw std::invalid_argument(flag.value);
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("flag --" + name + ": '" + flag.value +
                          "' is not an integer");
  }
}

double FlagSet::get_double(const std::string& name) const {
  const Flag& flag = find(name, Kind::kDouble);
  try {
    std::size_t pos = 0;
    const double v = std::stod(flag.value, &pos);
    if (pos != flag.value.size()) throw std::invalid_argument(flag.value);
    return v;
  } catch (const std::exception&) {
    throw InvalidArgument("flag --" + name + ": '" + flag.value +
                          "' is not a number");
  }
}

bool FlagSet::get_bool(const std::string& name) const {
  const Flag& flag = find(name, Kind::kBool);
  if (flag.value == "true" || flag.value == "1" || flag.value == "yes") {
    return true;
  }
  if (flag.value == "false" || flag.value == "0" || flag.value == "no") {
    return false;
  }
  throw InvalidArgument("flag --" + name + ": '" + flag.value +
                        "' is not a boolean");
}

const std::string& FlagSet::get_string(const std::string& name) const {
  auto it = flags_.find(name);
  MGPUSW_REQUIRE(it != flags_.end(), "flag --" << name << " not registered");
  MGPUSW_REQUIRE(
      it->second.kind == Kind::kString || it->second.kind == Kind::kChoice,
      "flag --" << name << " is not of type string");
  return it->second.value;
}

std::string FlagSet::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (";
    if (flag.kind == Kind::kChoice) {
      os << join_choices(flag.choices);
    } else {
      os << kind_name(static_cast<int>(flag.kind));
    }
    os << ", default " << flag.default_value << ")\n      " << flag.help
       << "\n";
  }
  return os.str();
}

}  // namespace mgpusw::base
