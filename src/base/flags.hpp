// Minimal command-line flag parser shared by benches and examples.
//
// Supports --name=value and --name value forms plus --help. Unknown flags
// are an error so that typos in experiment sweeps fail loudly instead of
// silently benchmarking the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mgpusw::base {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description)
      : description_(std::move(program_description)) {}

  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// A string flag restricted to an enumerated set of values. The value
  /// is validated at parse time (and the default at registration time),
  /// so an invalid choice fails loudly with the allowed set; usage()
  /// lists the choices. Read the value with get_string().
  void add_choice(const std::string& name, const std::string& default_value,
                  std::vector<std::string> choices, const std::string& help);

  /// Parses argv. Returns false (after printing usage) when --help was
  /// given. Throws InvalidArgument on unknown flags or malformed values.
  bool parse(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString, kChoice };

  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // textual representation, parsed on get
    std::string default_value;
    std::vector<std::string> choices;  // kChoice only
  };

  const Flag& find(const std::string& name, Kind kind) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace mgpusw::base
