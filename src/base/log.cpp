#include "base/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace mgpusw::base {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_write_mu;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard lock(g_write_mu);
  std::fprintf(stderr, "[%s %9.4f] %s\n", level_tag(level),
               monotonic_seconds(), message.c_str());
}

}  // namespace mgpusw::base
