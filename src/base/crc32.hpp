// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//
// Used by the special-row disk-spill format to detect truncated or
// corrupted checkpoint files before a resumed run seeds itself from
// garbage. Not cryptographic; it only needs to catch torn writes and
// bit rot.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mgpusw::base {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Incrementally folds `size` bytes into a running CRC. Start with
/// crc = 0; chain calls to checksum several buffers as one stream.
[[nodiscard]] inline std::uint32_t crc32_update(std::uint32_t crc,
                                                const void* data,
                                                std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = detail::crc32_table()[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_update(0, data, size);
}

}  // namespace mgpusw::base
