// Wall-clock timing and a virtual clock used by the discrete-event
// pipeline simulator (src/sim).
#pragma once

#include <chrono>
#include <cstdint>

namespace mgpusw::base {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time in nanoseconds since construction or the last reset().
  [[nodiscard]] std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

  [[nodiscard]] double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Billions of cell updates per wall-clock second — the paper's
/// headline metric. Every GCUPS figure in the tree funnels through
/// here so the convention (non-positive time yields 0 rather than inf,
/// 1e9 divisor) cannot drift between the engine, the batch layer, the
/// simulator and the benches.
[[nodiscard]] constexpr double gcups(std::int64_t cells, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(cells) / seconds / 1e9;
}

/// Virtual time measured in nanoseconds. The simulator advances this
/// explicitly; it never reads the machine clock, which keeps simulated
/// results deterministic and host-speed independent.
using SimTime = std::int64_t;

constexpr SimTime kSimTimeNever = INT64_MAX;

/// Converts a cell count and a processing rate in GCUPS (billions of cell
/// updates per second) to virtual nanoseconds, rounding up so that zero-
/// duration events cannot occur for non-empty work.
[[nodiscard]] constexpr SimTime cells_to_ns(std::int64_t cells,
                                            double gcups) {
  if (cells <= 0) return 0;
  const double ns = static_cast<double>(cells) / gcups;  // 1 GCUPS = 1 cell/ns
  const auto rounded = static_cast<SimTime>(ns);
  return rounded > 0 ? rounded : 1;
}

/// Converts a byte count and a bandwidth in GB/s to virtual nanoseconds.
[[nodiscard]] constexpr SimTime bytes_to_ns(std::int64_t bytes,
                                            double gbytes_per_s) {
  if (bytes <= 0) return 0;
  const double ns = static_cast<double>(bytes) / gbytes_per_s;
  const auto rounded = static_cast<SimTime>(ns);
  return rounded > 0 ? rounded : 1;
}

}  // namespace mgpusw::base
