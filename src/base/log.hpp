// Lightweight leveled logging.
//
// Logging is off by default in benchmarks (it would perturb timing) and
// is controlled globally. Messages are written to stderr with a
// monotonic timestamp so interleavings between device threads can be
// reconstructed.
#pragma once

#include <sstream>
#include <string>

namespace mgpusw::base {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted. Thread-safe.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one log line (thread-safe, single write call).
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace mgpusw::base

#define MGPUSW_LOG(level)                                              \
  if (static_cast<int>(::mgpusw::base::log_level()) <=                 \
      static_cast<int>(::mgpusw::base::LogLevel::level))               \
  ::mgpusw::base::detail::LogLine(::mgpusw::base::LogLevel::level)
