// Bounded blocking queue with stall-time accounting.
//
// This is the concurrency primitive behind the paper's circular buffer:
// a fixed-capacity channel between a producer GPU (pushing border column
// chunks) and a consumer GPU (pulling them). The capacity bound provides
// the back-pressure that the paper's circular buffer mechanism relies on,
// and the stall counters let benchmarks measure how well communication is
// hidden behind computation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "base/error.hpp"
#include "base/time.hpp"

namespace mgpusw::base {

/// Multi-producer multi-consumer bounded blocking queue.
///
/// close() wakes all waiters; after close, push() throws and pop() drains
/// remaining elements then returns std::nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    MGPUSW_REQUIRE(capacity > 0, "queue capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Throws TransientError if the queue
  /// was closed — a consumer closing mid-stream is a peer failure the
  /// producer can survive (restart from a checkpoint), not a bug in the
  /// producer.
  void push(T value) {
    WallTimer stall;
    std::unique_lock lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    producer_stall_ns_.fetch_add(stall.elapsed_ns(),
                                 std::memory_order_relaxed);
    if (closed_) throw TransientError("push on closed BoundedQueue");
    items_.push_back(std::move(value));
    total_pushed_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    not_empty_.notify_one();
  }

  /// Non-blocking push; returns false when full or closed.
  [[nodiscard]] bool try_push(T value) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
      total_pushed_.fetch_add(1, std::memory_order_relaxed);
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns nullopt once the queue is
  /// closed and fully drained.
  [[nodiscard]] std::optional<T> pop() {
    WallTimer stall;
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    consumer_stall_ns_.fetch_add(stall.elapsed_ns(),
                                 std::memory_order_relaxed);
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop; returns nullopt when empty (even if open).
  [[nodiscard]] std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard lock(mu_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Closes the queue: producers fail, consumers drain then stop.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Total nanoseconds producers spent blocked on a full queue.
  [[nodiscard]] std::int64_t producer_stall_ns() const {
    return producer_stall_ns_.load(std::memory_order_relaxed);
  }

  /// Total nanoseconds consumers spent blocked on an empty queue.
  [[nodiscard]] std::int64_t consumer_stall_ns() const {
    return consumer_stall_ns_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t total_pushed() const {
    return total_pushed_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  std::atomic<std::int64_t> producer_stall_ns_{0};
  std::atomic<std::int64_t> consumer_stall_ns_{0};
  std::atomic<std::int64_t> total_pushed_{0};
};

}  // namespace mgpusw::base
