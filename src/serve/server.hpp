// The alignment service daemon (mgpusw-serve).
//
// One AlignServer owns the whole serving stack:
//
//   TcpListener ──► connection threads ──► JobQueue (priority + quotas)
//                                              │
//                              scheduler threads (one job each)
//                                              │
//                        core::run_batch_item  ──►  DeviceFleet lease
//                        (run_with_recovery: device death degrades the
//                         job, checkpoint restarts keep the score
//                         bit-identical; cancel stops cooperatively)
//
// Connection threads only ever touch the queue and job snapshots —
// device work happens exclusively on scheduler threads, so a slow or
// hostile client cannot stall the fleet. Metrics: the shared registry
// collects fleet.*, batch.*, recovery.* from the engine layers plus the
// serve.* counters the daemon maintains; METRICS (or a plain HTTP GET
// on the same port) returns one merged snapshot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "core/fleet.hpp"
#include "obs/metrics.hpp"
#include "serve/job_queue.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/quota.hpp"
#include "vgpu/device.hpp"
#include "vgpu/fault.hpp"

namespace mgpusw::serve {

struct ServerConfig {
  /// Port to bind (0 = ephemeral; read back with port()).
  std::uint16_t port = 0;
  /// Virtual devices in the fleet (environment-1 profiles, round-robin).
  int devices = 3;
  /// Concurrent jobs (scheduler threads). Each job leases
  /// `devices_per_job` devices, so keep threads * devices_per_job within
  /// the fleet or jobs will serialize on the lease queue (which is safe,
  /// just not concurrent).
  int scheduler_threads = 2;
  /// Devices leased per job; 0 = the whole fleet.
  int devices_per_job = 0;
  /// Block geometry for served jobs (small blocks keep progress events
  /// and cancel latency fine-grained).
  std::int64_t block = 128;
  sw::ScoreScheme scheme;
  QuotaPolicy quota;
  /// Recovery wrapping for every job (device death -> degraded lease,
  /// checkpoint restart; see core/recovery.hpp).
  bool enable_recovery = true;
  core::RecoveryPolicy recovery;
  /// Fault plan (vgpu grammar, e.g. "dev0:die@kernel=40") armed on the
  /// FIRST job that starts — only that job sees injected faults, so one
  /// injected death cannot re-fire in every concurrent job's
  /// lease-local ordinal space. Empty = no injection.
  std::string fault_plan;
  /// Admission cap on query/subject length (inline or synthetic), the
  /// daemon's defence against a single job monopolizing memory.
  std::int64_t max_job_bases = 4u << 20;

  /// Durable job journal directory (empty = volatile daemon, the
  /// pre-journal behaviour). With a journal every accepted job is
  /// written ahead of its SUBMIT_OK, runs checkpoint to disk, and a
  /// restarted daemon replays the log: terminal results are re-served,
  /// queued jobs re-enqueue, and mid-flight jobs resume from their
  /// newest intact checkpoint.
  std::string journal_dir;
  /// fdatasync every journal append (safe against power loss, not just
  /// daemon death). Off by default: tests and benches only need
  /// process-crash durability.
  bool journal_fsync = false;
  /// Compact the log once this many records accumulated since the last
  /// compaction (and terminal entries dominate the job table).
  std::int64_t journal_compact_min_appends = 512;
  /// Minimum spacing between CHECKPOINT records per job.
  std::int64_t journal_checkpoint_interval_ms = 200;
};

class AlignServer {
 public:
  explicit AlignServer(ServerConfig config);
  ~AlignServer();

  AlignServer(const AlignServer&) = delete;
  AlignServer& operator=(const AlignServer&) = delete;

  /// The bound port (useful with config.port = 0).
  [[nodiscard]] std::uint16_t port() const;

  /// Starts the accept loop and scheduler threads; returns immediately.
  void start();
  /// start() + block until a SHUTDOWN frame (or stop()) arrives.
  void run();
  /// Stops everything: closes the listener and queue, cancels live
  /// jobs, joins all threads. Idempotent; called by the destructor.
  ///
  /// Journal semantics: unless a drain was requested (SHUTDOWN with
  /// drain=true, or request_drain()), stop() freezes the journal FIRST
  /// — the in-memory cancels that follow are never journaled, so
  /// running and queued jobs replay in the next daemon life exactly as
  /// if the process had crashed. A drain stop instead lets running
  /// jobs finish (journaling their terminals) before closing.
  void stop();

  /// Switches the next stop() to drain mode: admission stops, running
  /// jobs finish and journal their terminals, queued jobs stay queued
  /// (their SUBMIT records carry them into the next daemon life).
  void request_drain();

  /// Jobs reconstructed from the journal at startup (0 without one).
  [[nodiscard]] std::int64_t replayed_jobs() const {
    return replayed_jobs_;
  }

  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

  /// The merged metrics snapshot the METRICS frame returns.
  [[nodiscard]] std::string metrics_json();

 private:
  struct Connection {
    std::shared_ptr<comm::TcpStream> stream;
    std::thread thread;
  };

  void accept_loop();
  void handle_connection(comm::TcpStream& stream);
  /// Answers a plain HTTP GET with the metrics snapshot and closes.
  void handle_http_scrape(comm::TcpStream& stream);
  /// Dispatches one protocol message; returns false when the
  /// connection should close (SHUTDOWN or a framing error).
  bool dispatch(comm::TcpStream& stream, const Message& message);
  void scheduler_loop();
  void run_job(const std::shared_ptr<Job>& job);
  void handle_submit(comm::TcpStream& stream, const std::string& body);
  void handle_progress_stream(comm::TcpStream& stream,
                              const std::shared_ptr<Job>& job);

  /// Builds the job's sequences from its wire spec (inline bases or the
  /// synthetic generator) — shared by admission and journal replay so a
  /// replayed job is bit-identical to its first submission.
  void make_sequences(const SubmitRequest& request, seq::Sequence& query,
                      seq::Sequence& subject) const;
  /// Replays the journal into the queue: terminal jobs become
  /// immediately queryable, everything else re-enqueues (mid-flight
  /// jobs with a ResumeSpec probed from their checkpoint store).
  void replay_journal();
  /// Appends one record unless the journal is absent or frozen.
  void journal_append(const JournalRecord& record);
  /// Journals the job's durable (row, best) pair if it advanced and the
  /// per-job checkpoint interval elapsed (force skips the throttle).
  void maybe_journal_checkpoint(const std::shared_ptr<Job>& job,
                                bool force = false);
  /// Rewrites the log as one snapshot when terminal records dominate.
  void maybe_compact();

  ServerConfig config_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<core::DeviceFleet> fleet_;  // owns the devices
  std::unique_ptr<vgpu::FaultInjector> injector_;
  std::atomic<bool> fault_armed_{false};
  JobQueue queue_;
  std::unique_ptr<JobJournal> journal_;  // null without journal_dir
  /// Set by a non-drain stop() before anything is cancelled: appends
  /// become no-ops, so the shutdown is journal-indistinguishable from a
  /// crash and unfinished jobs replay next life.
  std::atomic<bool> journal_frozen_{false};
  std::atomic<bool> drain_requested_{false};
  std::int64_t replayed_jobs_ = 0;  // written once, before start()
  comm::TcpListener listener_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> scheduler_threads_;
  std::mutex connections_mu_;
  std::vector<Connection> connections_;
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace mgpusw::serve
