#include "serve/job_queue.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/error.hpp"

namespace mgpusw::serve {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProgressUpdate Job::progress_update() {
  ProgressUpdate update;
  update.job_id = id;
  std::lock_guard<std::mutex> lock(progress.mu);
  for (const auto& [device, units] : progress.device_units) {
    update.completed_units += units.first;
    update.total_units += units.second;
  }
  update.restarts = progress.restarts;
  update.rebalances = progress.rebalances;
  return update;
}

JobQueue::JobQueue(QuotaPolicy policy)
    : quota_(policy), epoch_ns_(steady_ns()) {}

std::shared_ptr<Job> JobQueue::submit(std::string tenant, std::string label,
                                      int priority, seq::Sequence query,
                                      seq::Sequence subject) {
  SubmitRequest spec;
  spec.tenant = std::move(tenant);
  spec.label = std::move(label);
  spec.priority = priority;
  return submit(std::move(spec), std::move(query), std::move(subject));
}

std::shared_ptr<Job> JobQueue::submit(SubmitRequest spec,
                                      seq::Sequence query,
                                      seq::Sequence subject,
                                      bool* deduped) {
  if (deduped != nullptr) *deduped = false;
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || draining_) {
    throw ServeError("shutting-down",
                     "the server is shutting down; submit refused");
  }
  if (!spec.idempotency_key.empty()) {
    const auto it =
        by_key_.find(spec.tenant + "\n" + spec.idempotency_key);
    if (it != by_key_.end()) {
      if (deduped != nullptr) *deduped = true;
      return it->second;
    }
  }
  if (quota_.pending_full(spec.tenant)) {
    throw ServeError(
        "quota-exceeded",
        "tenant \"" + spec.tenant + "\" already has " +
            std::to_string(quota_.pending_count(spec.tenant)) +
            " queued job(s), the per-tenant cap");
  }
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->tenant = spec.tenant;
  job->label = spec.label;
  if (job->label.empty()) job->label = "job-" + std::to_string(job->id);
  job->priority = spec.priority;
  job->query = std::move(query);
  job->subject = std::move(subject);
  job->spec = std::move(spec);
  job->spec.label = job->label;  // journal the defaulted label
  job->submit_ns = steady_ns() - epoch_ns_;
  quota_.on_submit(job->tenant);
  jobs_.emplace(job->id, job);
  if (!job->spec.idempotency_key.empty()) {
    by_key_.emplace(job->tenant + "\n" + job->spec.idempotency_key, job);
  }
  pending_.push_back(job);
  runnable_cv_.notify_all();
  return job;
}

void JobQueue::restore(const std::shared_ptr<Job>& job) {
  std::lock_guard<std::mutex> lock(mu_);
  MGPUSW_REQUIRE(!closed_ && !draining_,
                 "restore() must run before shutdown begins");
  MGPUSW_REQUIRE(job->id >= 1, "restored job needs its journaled id");
  MGPUSW_REQUIRE(jobs_.find(job->id) == jobs_.end(),
                 "restored job id already in the table");
  if (job->id >= next_id_) next_id_ = job->id + 1;
  jobs_.emplace(job->id, job);
  if (!job->spec.idempotency_key.empty()) {
    by_key_.emplace(job->tenant + "\n" + job->spec.idempotency_key, job);
  }
  if (job->state == JobState::kQueued) {
    job->submit_ns = steady_ns() - epoch_ns_;
    quota_.on_submit(job->tenant);
    pending_.push_back(job);
    runnable_cv_.notify_all();
  } else {
    MGPUSW_REQUIRE(is_terminal(job->state),
                   "a restored job is either queued or terminal");
  }
}

void JobQueue::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || draining_) return;
  draining_ = true;
  // Wake schedulers blocked in next() so they observe the drain and
  // exit once their current jobs are finished.
  runnable_cv_.notify_all();
}

bool JobQueue::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::vector<std::shared_ptr<Job>> JobQueue::all_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Job>> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job);
  return out;
}

std::shared_ptr<Job> JobQueue::next() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Highest priority wins; FIFO within a priority (pending_ keeps
    // admission order, stable scan). Tenants at their running quota are
    // passed over — their jobs stay queued and a quota slot freeing up
    // re-wakes this scan.
    auto best = pending_.end();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (!quota_.can_start((*it)->tenant)) continue;
      if (best == pending_.end() ||
          (*it)->priority > (*best)->priority) {
        best = it;
      }
    }
    // Draining: hand out nothing more; pending jobs stay queued (their
    // journal SUBMITs carry them into the next daemon life).
    if (draining_) return nullptr;
    if (best != pending_.end()) {
      std::shared_ptr<Job> job = *best;
      pending_.erase(best);
      quota_.on_start(job->tenant);
      job->state = JobState::kRunning;
      return job;
    }
    if (closed_) return nullptr;
    runnable_cv_.wait(lock);
  }
}

void JobQueue::mark_completing(const std::shared_ptr<Job>& job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (job->state == JobState::kRunning) {
    job->state = JobState::kCompleting;
  }
}

void JobQueue::finish(const std::shared_ptr<Job>& job, JobState state,
                      std::string error_message) {
  MGPUSW_REQUIRE(is_terminal(state), "finish() needs a terminal state");
  std::lock_guard<std::mutex> lock(mu_);
  job->state = state;
  job->error = std::move(error_message);
  job->done_ns = steady_ns() - epoch_ns_;
  quota_.on_finish(job->tenant);
  // The freed running slot may make another of this tenant's jobs
  // runnable.
  runnable_cv_.notify_all();
  terminal_cv_.notify_all();
}

JobState JobQueue::cancel(std::int64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    throw ServeError("not-found",
                     "no job with id " + std::to_string(job_id));
  }
  const std::shared_ptr<Job>& job = it->second;
  switch (job->state) {
    case JobState::kQueued: {
      const auto pos =
          std::find(pending_.begin(), pending_.end(), job);
      if (pos != pending_.end()) pending_.erase(pos);
      quota_.on_cancel_queued(job->tenant);
      job->state = JobState::kCancelled;
      job->done_ns = steady_ns() - epoch_ns_;
      terminal_cv_.notify_all();
      break;
    }
    case JobState::kRunning:
      // Cooperative: the engine observes the flag at the next
      // scheduling-unit boundary; the scheduler thread then calls
      // finish(kCancelled). The state reported here is still kRunning.
      job->cancel.store(true, std::memory_order_relaxed);
      break;
    case JobState::kCompleting:
    case JobState::kDone:
    case JobState::kFailed:
    case JobState::kCancelled:
      break;  // too late (or already done) — a no-op, not an error
  }
  return job->state;
}

std::shared_ptr<Job> JobQueue::find(std::int64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    throw ServeError("not-found",
                     "no job with id " + std::to_string(job_id));
  }
  return it->second;
}

void JobQueue::wait_terminal(const std::shared_ptr<Job>& job) {
  std::unique_lock<std::mutex> lock(mu_);
  terminal_cv_.wait(lock, [&] { return is_terminal(job->state); });
}

JobStatus JobQueue::status(const std::shared_ptr<Job>& job) {
  std::lock_guard<std::mutex> lock(mu_);
  JobStatus status;
  status.job_id = job->id;
  status.state = job->state;
  status.tenant = job->tenant;
  status.label = job->label;
  status.error = job->error;
  status.resumed_row = job->resumed_row;
  // `entry` is written by the scheduler thread during the run; it is
  // safe to read only for states the scheduler publishes under mu_
  // *after* the run (completing and terminal). Live runs report the
  // progress snapshot instead, which has its own lock.
  if (job->state == JobState::kQueued ||
      job->state == JobState::kRunning) {
    std::lock_guard<std::mutex> progress_lock(job->progress.mu);
    status.restarts = job->progress.restarts;
    status.rebalances = job->progress.rebalances;
  } else {
    status.restarts = job->entry.restarts;
    status.lost_devices = job->entry.lost_devices;
    {
      std::lock_guard<std::mutex> progress_lock(job->progress.mu);
      status.rebalances = job->progress.rebalances;
    }
    if (job->state == JobState::kDone) {
      status.score = job->entry.result.best.score;
    }
  }
  return status;
}

void JobQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  // Queued jobs will never run; running jobs are asked to stop so the
  // scheduler threads can unwind promptly.
  for (const std::shared_ptr<Job>& job : pending_) {
    quota_.on_cancel_queued(job->tenant);
    job->state = JobState::kCancelled;
    job->done_ns = steady_ns() - epoch_ns_;
  }
  pending_.clear();
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kRunning) {
      job->cancel.store(true, std::memory_order_relaxed);
    }
  }
  runnable_cv_.notify_all();
  terminal_cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::int64_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(pending_.size());
}

}  // namespace mgpusw::serve
