// Per-tenant admission control for the alignment service.
//
// Two independent caps per tenant:
//   * running — jobs holding device leases right now. Enforced by the
//     scheduler: JobQueue::next() skips tenants at their cap, so one
//     tenant flooding the queue cannot starve the fleet for others.
//   * pending — jobs waiting in the queue. Enforced at submit time:
//     over the cap the submit is either rejected with a protocol error
//     (reject_when_full, the default) or simply queued (the cap is
//     advisory), per policy.
//
// The ledger itself is plain bookkeeping, guarded by the JobQueue's
// mutex — it is never touched concurrently.
#pragma once

#include <map>
#include <string>

namespace mgpusw::serve {

struct QuotaPolicy {
  /// Jobs a tenant may have running concurrently. <= 0 disables the cap.
  int max_running_per_tenant = 1;
  /// Jobs a tenant may have queued. <= 0 disables the cap.
  int max_pending_per_tenant = 8;
  /// Over the pending cap: true rejects the submit with a protocol
  /// error, false admits it anyway (the queue absorbs the burst).
  bool reject_when_full = true;
};

class QuotaLedger {
 public:
  explicit QuotaLedger(QuotaPolicy policy) : policy_(policy) {}

  /// Would admitting one more queued job for `tenant` exceed the
  /// pending cap (only meaningful when reject_when_full)?
  [[nodiscard]] bool pending_full(const std::string& tenant) const {
    if (policy_.max_pending_per_tenant <= 0 || !policy_.reject_when_full) {
      return false;
    }
    return pending_count(tenant) >= policy_.max_pending_per_tenant;
  }

  /// May the scheduler start a job for `tenant` now?
  [[nodiscard]] bool can_start(const std::string& tenant) const {
    if (policy_.max_running_per_tenant <= 0) return true;
    return running_count(tenant) < policy_.max_running_per_tenant;
  }

  void on_submit(const std::string& tenant) { ++counts_[tenant].pending; }
  void on_start(const std::string& tenant) {
    Counts& counts = counts_[tenant];
    --counts.pending;
    ++counts.running;
  }
  void on_finish(const std::string& tenant) { --counts_[tenant].running; }
  void on_cancel_queued(const std::string& tenant) {
    --counts_[tenant].pending;
  }

  [[nodiscard]] int pending_count(const std::string& tenant) const {
    const auto it = counts_.find(tenant);
    return it == counts_.end() ? 0 : it->second.pending;
  }
  [[nodiscard]] int running_count(const std::string& tenant) const {
    const auto it = counts_.find(tenant);
    return it == counts_.end() ? 0 : it->second.running;
  }

  [[nodiscard]] const QuotaPolicy& policy() const { return policy_; }

 private:
  struct Counts {
    int pending = 0;
    int running = 0;
  };

  QuotaPolicy policy_;
  std::map<std::string, Counts> counts_;
};

}  // namespace mgpusw::serve
