// Write-ahead job journal: the durability layer under the alignment
// service. Every job state transition the daemon commits to — SUBMIT,
// START, CANCEL intent, a resumable CHECKPOINT pair, and the terminal
// DONE / FAILED / CANCELLED — is appended to one log file before the
// transition is acknowledged, so a SIGKILL'd daemon restarts with its
// queue intact.
//
// On-disk format (`<dir>/journal.log`):
//
//   [8-byte header "MGJL" + version]
//   record*  where record = [u32 payload_len][u32 crc32(payload)][payload]
//
// The payload is a compact JSON object (base::JsonWriter / base::json —
// the same single JSON implementation the wire protocol uses). Replay
// applies the SpecialRowStore skip-corrupt-tail discipline: the log is
// the longest prefix of records that parse and pass their CRC; a torn
// or corrupt tail is truncated in place, never fatal. A record after a
// bad one is unreachable by the sequential reader anyway — exactly the
// semantics of a crashed append.
//
// Compaction rewrites the log as one snapshot record per live fact
// (terminal jobs shrink to SUBMIT + terminal; running jobs keep their
// newest CHECKPOINT) into `journal.log.tmp`, fsyncs, and renames over
// the old log — atomic on POSIX, so a crash mid-compaction leaves
// either the old or the new log, never a mix.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace mgpusw::serve {

/// One journal record. `kind` selects which fields are meaningful.
struct JournalRecord {
  enum class Kind : std::uint8_t {
    kSubmit,      // spec (full SubmitRequest), job_id
    kStart,       // job_id
    kCancel,      // job_id — client intent, job may still be running
    kCheckpoint,  // job_id, row, best_* — crash-resumable pair
    kDone,        // job_id, score, restarts, lost, resumed_row, result
    kFailed,      // job_id, error, restarts, lost, resumed_row
    kCancelled,   // job_id
  };

  Kind kind = Kind::kSubmit;
  std::int64_t job_id = -1;

  // kSubmit
  SubmitRequest spec;

  // kCheckpoint: the highest matrix row settled across every device of
  // the run plus the best over all cells at or below it — the pair a
  // restarted daemon seeds core::ResumeSpec from.
  std::int64_t row = -1;
  std::int64_t best_score = 0;
  std::int64_t best_row = -1;
  std::int64_t best_col = -1;

  // kDone / kFailed
  std::int64_t score = -1;
  int restarts = 0;
  int rebalances = 0;
  std::vector<std::string> lost_devices;
  std::int64_t resumed_row = -1;
  std::string result_json;  // core::to_json run report (kDone)
  std::string error;        // failure message (kFailed)
};

[[nodiscard]] std::string encode_record(const JournalRecord& record);
/// Throws ProtocolError on malformed JSON or an unknown kind.
[[nodiscard]] JournalRecord decode_record(const std::string& payload);

/// A job reconstructed by replay: its submit spec plus the newest fact
/// of each kind that referred to it, in log order.
struct ReplayedJob {
  std::int64_t job_id = -1;
  SubmitRequest spec;
  bool started = false;           // a START record exists
  bool cancel_requested = false;  // a CANCEL intent exists
  /// Newest CHECKPOINT (row = -1: none). The checkpoint row is what the
  /// journal *saw* settled; the actual resume row is probed against the
  /// job's SpecialRowStore at restore time.
  std::int64_t checkpoint_row = -1;
  std::int64_t best_score = 0;
  std::int64_t best_row = -1;
  std::int64_t best_col = -1;
  /// Terminal record, if any (kind is kDone / kFailed / kCancelled and
  /// the payload fields are filled from it).
  bool terminal = false;
  JournalRecord outcome;
};

struct ReplayResult {
  std::vector<ReplayedJob> jobs;   // in first-SUBMIT order
  std::int64_t next_job_id = 1;    // max journaled id + 1
  std::int64_t records = 0;        // intact records replayed
  std::int64_t truncated_bytes = 0;  // torn/corrupt tail cut away
};

/// Append-only journal over `<directory>/journal.log`. Thread-safe: one
/// internal mutex orders appends, compaction, and the stats reads.
class JobJournal {
 public:
  /// Creates `directory` (and parents) if missing. Call replay() before
  /// the first append — it opens the log.
  explicit JobJournal(std::string directory, bool fsync_each = false);
  ~JobJournal();

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// Reads the existing log (if any), truncates any torn tail in place,
  /// folds the intact records into per-job replay state, and opens the
  /// log for appending. Must be called exactly once, before append().
  [[nodiscard]] ReplayResult replay();

  /// Appends one record (length + CRC framing + payload, one write()).
  /// With fsync_each, fdatasyncs before returning — a crash after
  /// append() then cannot lose the record, only tear a later one.
  void append(const JournalRecord& record);

  /// Atomically replaces the log with `snapshot` (tmp + fsync + rename)
  /// and resets the appends-since-compaction counter. The caller builds
  /// the snapshot under whatever lock makes it consistent; the journal
  /// mutex is held for the whole rewrite, so concurrent appends queue
  /// behind it.
  void compact(const std::vector<JournalRecord>& snapshot);

  [[nodiscard]] const std::string& directory() const { return directory_; }
  /// Directory for one job's special-row checkpoint files (created on
  /// demand): `<directory>/jobs/job_<id>`.
  [[nodiscard]] std::string job_checkpoint_dir(std::int64_t job_id) const;

  [[nodiscard]] std::int64_t appends() const;
  [[nodiscard]] std::int64_t appends_since_compact() const;
  [[nodiscard]] std::int64_t compactions() const;

 private:
  void open_for_append();
  void write_header(int fd) const;

  mutable std::mutex mu_;
  std::string directory_;
  bool fsync_each_ = false;
  int fd_ = -1;
  bool replayed_ = false;
  std::int64_t appends_ = 0;
  std::int64_t appends_since_compact_ = 0;
  std::int64_t compactions_ = 0;
};

}  // namespace mgpusw::serve
