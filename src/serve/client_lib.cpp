#include "serve/client_lib.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "base/error.hpp"

namespace mgpusw::serve {

ServeClient::ServeClient(comm::TcpStream stream, std::string host,
                         std::uint16_t port, std::int64_t timeout_ms,
                         ReconnectPolicy policy)
    : stream_(std::move(stream)),
      host_(std::move(host)),
      port_(port),
      timeout_ms_(timeout_ms),
      policy_(policy) {}

ServeClient ServeClient::connect(const std::string& host,
                                 std::uint16_t port,
                                 std::int64_t timeout_ms,
                                 ReconnectPolicy policy) {
  std::int64_t backoff = policy.initial_backoff_ms;
  for (int attempt = 0;; ++attempt) {
    try {
      return ServeClient(comm::TcpStream::connect(host, port, timeout_ms),
                         host, port, timeout_ms, policy);
    } catch (const IoError&) {
      if (attempt >= policy.max_attempts) throw;
    } catch (const TransientError&) {
      if (attempt >= policy.max_attempts) throw;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    backoff = std::min(backoff * 2, policy.max_backoff_ms);
  }
}

bool ServeClient::try_recover(int failures) {
  if (policy_.max_attempts <= 0 || failures >= policy_.max_attempts) {
    return false;
  }
  std::int64_t backoff = policy_.initial_backoff_ms;
  for (int i = 0; i < failures; ++i) {
    backoff = std::min(backoff * 2, policy_.max_backoff_ms);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
  try {
    stream_ = comm::TcpStream::connect(host_, port_, timeout_ms_);
  } catch (const Error&) {
    // The daemon is still down; the retried request fails fast on the
    // stale socket and re-enters with a longer backoff.
  }
  return true;
}

Message ServeClient::round_trip(FrameType request, const std::string& body,
                                FrameType expected_reply) {
  for (int failures = 0;; ++failures) {
    try {
      send_message(stream_, request, body);
      std::optional<Message> reply = recv_message(stream_);
      if (!reply.has_value()) {
        throw IoError("server closed the connection mid-request");
      }
      if (reply->type == FrameType::kError) {
        throw_decoded_error(reply->body);
      }
      if (reply->type != expected_reply) {
        throw ProtocolError(
            "unexpected reply frame type " +
            std::to_string(static_cast<int>(reply->type)));
      }
      return std::move(*reply);
    } catch (const IoError&) {
      if (!try_recover(failures)) throw;
    } catch (const TransientError&) {
      // Covers torn frames and interrupted reads; ServeError is NOT
      // transient — a server-reported error is an answer, never
      // retried.
      if (!try_recover(failures)) throw;
    }
  }
}

std::int64_t ServeClient::submit(const SubmitRequest& request) {
  const Message reply = round_trip(
      FrameType::kSubmit, encode_submit(request), FrameType::kSubmitOk);
  return decode_job_id(reply.body);
}

JobStatus ServeClient::status(std::int64_t job_id) {
  const Message reply = round_trip(
      FrameType::kStatus, encode_job_ref(job_id), FrameType::kStatusOk);
  return decode_status(reply.body);
}

JobStatus ServeClient::result(std::int64_t job_id, bool wait) {
  const Message reply =
      round_trip(FrameType::kResult, encode_result_request(job_id, wait),
                 FrameType::kResultOk);
  return decode_status(reply.body);
}

JobStatus ServeClient::cancel(std::int64_t job_id) {
  const Message reply = round_trip(
      FrameType::kCancel, encode_job_ref(job_id), FrameType::kCancelOk);
  return decode_status(reply.body);
}

JobStatus ServeClient::stream_progress(
    std::int64_t job_id,
    const std::function<void(const ProgressUpdate&)>& on_update) {
  for (int failures = 0;; ++failures) {
    try {
      send_message(stream_, FrameType::kProgress, encode_job_ref(job_id));
      for (;;) {
        std::optional<Message> message = recv_message(stream_);
        if (!message.has_value()) {
          throw IoError("server closed the connection mid-stream");
        }
        switch (message->type) {
          case FrameType::kProgressEvent:
            if (on_update) on_update(decode_progress(message->body));
            break;
          case FrameType::kProgressDone:
            return decode_status(message->body);
          case FrameType::kError:
            throw_decoded_error(message->body);
          default:
            throw ProtocolError(
                "unexpected frame type " +
                std::to_string(static_cast<int>(message->type)) +
                " inside a progress stream");
        }
      }
    } catch (const IoError&) {
      if (!try_recover(failures)) throw;
    } catch (const TransientError&) {
      if (!try_recover(failures)) throw;
    }
  }
}

std::string ServeClient::metrics_json() {
  const Message reply =
      round_trip(FrameType::kMetrics, "{}", FrameType::kMetricsOk);
  return reply.body;
}

void ServeClient::shutdown_server(bool drain) {
  (void)round_trip(FrameType::kShutdown, encode_shutdown(drain),
                   FrameType::kShutdownOk);
}

}  // namespace mgpusw::serve
