#include "serve/client_lib.hpp"

#include <utility>

#include "base/error.hpp"

namespace mgpusw::serve {

ServeClient::ServeClient(comm::TcpStream stream)
    : stream_(std::move(stream)) {}

ServeClient ServeClient::connect(const std::string& host,
                                 std::uint16_t port,
                                 std::int64_t timeout_ms) {
  return ServeClient(comm::TcpStream::connect(host, port, timeout_ms));
}

Message ServeClient::round_trip(FrameType request, const std::string& body,
                                FrameType expected_reply) {
  send_message(stream_, request, body);
  std::optional<Message> reply = recv_message(stream_);
  if (!reply.has_value()) {
    throw IoError("server closed the connection mid-request");
  }
  if (reply->type == FrameType::kError) {
    throw_decoded_error(reply->body);
  }
  if (reply->type != expected_reply) {
    throw ProtocolError(
        "unexpected reply frame type " +
        std::to_string(static_cast<int>(reply->type)));
  }
  return std::move(*reply);
}

std::int64_t ServeClient::submit(const SubmitRequest& request) {
  const Message reply = round_trip(
      FrameType::kSubmit, encode_submit(request), FrameType::kSubmitOk);
  return decode_job_id(reply.body);
}

JobStatus ServeClient::status(std::int64_t job_id) {
  const Message reply = round_trip(
      FrameType::kStatus, encode_job_ref(job_id), FrameType::kStatusOk);
  return decode_status(reply.body);
}

JobStatus ServeClient::result(std::int64_t job_id, bool wait) {
  const Message reply =
      round_trip(FrameType::kResult, encode_result_request(job_id, wait),
                 FrameType::kResultOk);
  return decode_status(reply.body);
}

JobStatus ServeClient::cancel(std::int64_t job_id) {
  const Message reply = round_trip(
      FrameType::kCancel, encode_job_ref(job_id), FrameType::kCancelOk);
  return decode_status(reply.body);
}

JobStatus ServeClient::stream_progress(
    std::int64_t job_id,
    const std::function<void(const ProgressUpdate&)>& on_update) {
  send_message(stream_, FrameType::kProgress, encode_job_ref(job_id));
  for (;;) {
    std::optional<Message> message = recv_message(stream_);
    if (!message.has_value()) {
      throw IoError("server closed the connection mid-stream");
    }
    switch (message->type) {
      case FrameType::kProgressEvent:
        if (on_update) on_update(decode_progress(message->body));
        break;
      case FrameType::kProgressDone:
        return decode_status(message->body);
      case FrameType::kError:
        throw_decoded_error(message->body);
      default:
        throw ProtocolError(
            "unexpected frame type " +
            std::to_string(static_cast<int>(message->type)) +
            " inside a progress stream");
    }
  }
}

std::string ServeClient::metrics_json() {
  const Message reply =
      round_trip(FrameType::kMetrics, "{}", FrameType::kMetricsOk);
  return reply.body;
}

void ServeClient::shutdown_server() {
  (void)round_trip(FrameType::kShutdown, "{}", FrameType::kShutdownOk);
}

}  // namespace mgpusw::serve
