#include "serve/protocol.hpp"

#include <utility>

#include "base/error.hpp"

namespace mgpusw::serve {

namespace {

/// Parses a JSON body, mapping parser failures (InvalidArgument with an
/// offset) to ProtocolError — on the wire, malformed JSON is protocol
/// corruption, not caller misuse.
base::json::Value parse_body(const std::string& body) {
  try {
    return base::json::parse(body);
  } catch (const InvalidArgument& e) {
    throw ProtocolError(std::string("malformed message body: ") + e.what());
  }
}

const base::json::Value& require(const base::json::Value& object,
                                 std::string_view key) {
  const base::json::Value* member = object.find(key);
  if (member == nullptr) {
    throw ProtocolError("message body is missing \"" + std::string(key) +
                        "\"");
  }
  return *member;
}

std::string require_string(const base::json::Value& object,
                           std::string_view key) {
  const base::json::Value& member = require(object, key);
  if (!member.is_string()) {
    throw ProtocolError("\"" + std::string(key) + "\" must be a string");
  }
  return member.string;
}

std::int64_t require_int(const base::json::Value& object,
                         std::string_view key) {
  const base::json::Value& member = require(object, key);
  if (!member.is_number()) {
    throw ProtocolError("\"" + std::string(key) + "\" must be a number");
  }
  return member.as_int();
}

std::int64_t optional_int(const base::json::Value& object,
                          std::string_view key, std::int64_t fallback) {
  const base::json::Value* member = object.find(key);
  if (member == nullptr) return fallback;
  if (!member->is_number()) {
    throw ProtocolError("\"" + std::string(key) + "\" must be a number");
  }
  return member->as_int();
}

std::string optional_string(const base::json::Value& object,
                            std::string_view key) {
  const base::json::Value* member = object.find(key);
  if (member == nullptr) return {};
  if (!member->is_string()) {
    throw ProtocolError("\"" + std::string(key) + "\" must be a string");
  }
  return member->string;
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleting: return "completing";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobState job_state_from_name(std::string_view name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "completing") return JobState::kCompleting;
  if (name == "done") return JobState::kDone;
  if (name == "failed") return JobState::kFailed;
  if (name == "cancelled") return JobState::kCancelled;
  throw ProtocolError("unknown job state \"" + std::string(name) + "\"");
}

std::string encode_submit(const SubmitRequest& request) {
  base::JsonWriter w;
  w.begin_object(base::JsonWriter::kCompact);
  w.key("tenant").value(request.tenant);
  w.key("label").value(request.label);
  w.key("priority").value(request.priority);
  if (!request.query.empty()) w.key("query").value(request.query);
  if (!request.subject.empty()) w.key("subject").value(request.subject);
  if (request.rows > 0) w.key("rows").value(request.rows);
  if (request.cols > 0) w.key("cols").value(request.cols);
  w.key("seed").value(request.seed);
  if (!request.idempotency_key.empty()) {
    w.key("key").value(request.idempotency_key);
  }
  w.end_object();
  return w.str();
}

SubmitRequest decode_submit(const std::string& body) {
  const base::json::Value doc = parse_body(body);
  if (!doc.is_object()) throw ProtocolError("SUBMIT body must be an object");
  SubmitRequest request;
  request.tenant = require_string(doc, "tenant");
  if (request.tenant.empty()) {
    throw ProtocolError("SUBMIT needs a non-empty \"tenant\"");
  }
  request.label = optional_string(doc, "label");
  request.priority = static_cast<int>(optional_int(doc, "priority", 0));
  request.query = optional_string(doc, "query");
  request.subject = optional_string(doc, "subject");
  request.rows = optional_int(doc, "rows", 0);
  request.cols = optional_int(doc, "cols", 0);
  request.seed = optional_int(doc, "seed", 1);
  request.idempotency_key = optional_string(doc, "key");
  const bool inline_pair = !request.query.empty() && !request.subject.empty();
  const bool synth_pair = request.rows > 0 && request.cols > 0;
  if (inline_pair == synth_pair) {
    throw ProtocolError(
        "SUBMIT needs either inline \"query\"+\"subject\" bases or a "
        "synthetic \"rows\"+\"cols\" spec (exactly one of the two)");
  }
  return request;
}

std::string encode_job_ref(std::int64_t job_id) {
  base::JsonWriter w;
  w.begin_object(base::JsonWriter::kCompact);
  w.key("job_id").value(job_id);
  w.end_object();
  return w.str();
}

std::string encode_result_request(std::int64_t job_id, bool wait) {
  base::JsonWriter w;
  w.begin_object(base::JsonWriter::kCompact);
  w.key("job_id").value(job_id);
  w.key("wait").value(wait);
  w.end_object();
  return w.str();
}

std::int64_t decode_job_id(const std::string& body) {
  const base::json::Value doc = parse_body(body);
  if (!doc.is_object()) throw ProtocolError("body must be an object");
  return require_int(doc, "job_id");
}

bool decode_wait_flag(const std::string& body) {
  const base::json::Value doc = parse_body(body);
  if (!doc.is_object()) throw ProtocolError("body must be an object");
  const base::json::Value* wait = doc.find("wait");
  if (wait == nullptr) return true;
  if (wait->type != base::json::Value::kBool) {
    throw ProtocolError("\"wait\" must be a boolean");
  }
  return wait->boolean;
}

std::string encode_status(const JobStatus& status) {
  base::JsonWriter w;
  w.begin_object(base::JsonWriter::kCompact);
  w.key("job_id").value(status.job_id);
  w.key("state").value(job_state_name(status.state));
  w.key("tenant").value(status.tenant);
  w.key("label").value(status.label);
  w.key("restarts").value(status.restarts);
  w.key("rebalances").value(status.rebalances);
  w.key("lost_devices").begin_array(base::JsonWriter::kCompact);
  for (const std::string& name : status.lost_devices) w.value(name);
  w.end_array();
  if (!status.error.empty()) w.key("error").value(status.error);
  if (status.score >= 0) w.key("score").value(status.score);
  if (status.resumed_row >= 0) {
    w.key("resumed_row").value(status.resumed_row);
  }
  if (!status.result_json.empty()) {
    w.key("result").raw_value(status.result_json);
  }
  w.end_object();
  return w.str();
}

JobStatus decode_status(const std::string& body) {
  const base::json::Value doc = parse_body(body);
  if (!doc.is_object()) throw ProtocolError("status body must be an object");
  JobStatus status;
  status.job_id = require_int(doc, "job_id");
  status.state = job_state_from_name(require_string(doc, "state"));
  status.tenant = optional_string(doc, "tenant");
  status.label = optional_string(doc, "label");
  status.restarts = static_cast<int>(optional_int(doc, "restarts", 0));
  status.rebalances = static_cast<int>(optional_int(doc, "rebalances", 0));
  if (const base::json::Value* lost = doc.find("lost_devices")) {
    if (!lost->is_array()) {
      throw ProtocolError("\"lost_devices\" must be an array");
    }
    for (const base::json::Value& name : lost->array) {
      if (!name.is_string()) {
        throw ProtocolError("\"lost_devices\" entries must be strings");
      }
      status.lost_devices.push_back(name.string);
    }
  }
  status.error = optional_string(doc, "error");
  status.score = optional_int(doc, "score", -1);
  status.resumed_row = optional_int(doc, "resumed_row", -1);
  // The nested run report round-trips as text so the client can pretty-
  // print or archive it without knowing its schema.
  if (const base::json::Value* result = doc.find("result")) {
    if (!result->is_object()) {
      throw ProtocolError("\"result\" must be an object");
    }
    status.result_json = base::json::dump(*result);
  }
  return status;
}

std::string encode_progress(const ProgressUpdate& update) {
  base::JsonWriter w;
  w.begin_object(base::JsonWriter::kCompact);
  w.key("job_id").value(update.job_id);
  w.key("completed_units").value(update.completed_units);
  w.key("total_units").value(update.total_units);
  w.key("restarts").value(update.restarts);
  w.key("rebalances").value(update.rebalances);
  w.end_object();
  return w.str();
}

ProgressUpdate decode_progress(const std::string& body) {
  const base::json::Value doc = parse_body(body);
  if (!doc.is_object()) {
    throw ProtocolError("progress body must be an object");
  }
  ProgressUpdate update;
  update.job_id = require_int(doc, "job_id");
  update.completed_units = require_int(doc, "completed_units");
  update.total_units = require_int(doc, "total_units");
  update.restarts = static_cast<int>(optional_int(doc, "restarts", 0));
  update.rebalances = static_cast<int>(optional_int(doc, "rebalances", 0));
  return update;
}

std::string encode_shutdown(bool drain) {
  base::JsonWriter w;
  w.begin_object(base::JsonWriter::kCompact);
  w.key("drain").value(drain);
  w.end_object();
  return w.str();
}

bool decode_shutdown_drain(const std::string& body) {
  if (body.empty()) return false;
  const base::json::Value doc = parse_body(body);
  if (!doc.is_object()) throw ProtocolError("body must be an object");
  const base::json::Value* drain = doc.find("drain");
  if (drain == nullptr) return false;
  if (drain->type != base::json::Value::kBool) {
    throw ProtocolError("\"drain\" must be a boolean");
  }
  return drain->boolean;
}

std::string encode_error(const std::string& code,
                         const std::string& message) {
  base::JsonWriter w;
  w.begin_object(base::JsonWriter::kCompact);
  w.key("code").value(code);
  w.key("message").value(message);
  w.end_object();
  return w.str();
}

void throw_decoded_error(const std::string& body) {
  std::string code = "internal";
  std::string message = "unspecified server error";
  try {
    const base::json::Value doc = parse_body(body);
    if (doc.is_object()) {
      code = optional_string(doc, "code");
      message = optional_string(doc, "message");
    }
  } catch (const ProtocolError&) {
    // An unparseable ERROR body still surfaces as a ServeError.
  }
  throw ServeError(code, message);
}

void send_message(comm::TcpStream& stream, FrameType type,
                  const std::string& body) {
  comm::MessageFrame frame;
  frame.type = static_cast<std::uint8_t>(type);
  frame.body.assign(body.begin(), body.end());
  stream.send_frame(comm::serialize_message(frame));
}

std::optional<Message> recv_message(comm::TcpStream& stream) {
  std::optional<std::vector<std::uint8_t>> raw = stream.recv_frame();
  if (!raw.has_value()) return std::nullopt;
  const comm::MessageFrame frame =
      comm::deserialize_message(raw->data(), raw->size());
  if (frame.type < static_cast<std::uint8_t>(FrameType::kSubmit) ||
      frame.type > static_cast<std::uint8_t>(FrameType::kShutdownOk)) {
    throw ProtocolError("unknown frame type " +
                        std::to_string(static_cast<int>(frame.type)));
  }
  Message message;
  message.type = static_cast<FrameType>(frame.type);
  message.body.assign(frame.body.begin(), frame.body.end());
  return message;
}

}  // namespace mgpusw::serve
