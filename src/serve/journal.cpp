#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "base/crc32.hpp"
#include "base/error.hpp"
#include "base/json.hpp"
#include "base/log.hpp"

namespace mgpusw::serve {

namespace {

constexpr char kMagic[8] = {'M', 'G', 'J', 'L', 1, 0, 0, 0};
/// A single record is one JSON object; anything claiming to be larger
/// than this is a torn length word, not a record.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

struct RecordFrame {
  std::uint32_t length;
  std::uint32_t crc;
};

const char* kind_name(JournalRecord::Kind kind) {
  switch (kind) {
    case JournalRecord::Kind::kSubmit: return "submit";
    case JournalRecord::Kind::kStart: return "start";
    case JournalRecord::Kind::kCancel: return "cancel";
    case JournalRecord::Kind::kCheckpoint: return "checkpoint";
    case JournalRecord::Kind::kDone: return "done";
    case JournalRecord::Kind::kFailed: return "failed";
    case JournalRecord::Kind::kCancelled: return "cancelled";
  }
  return "unknown";
}

JournalRecord::Kind kind_from_name(std::string_view name) {
  if (name == "submit") return JournalRecord::Kind::kSubmit;
  if (name == "start") return JournalRecord::Kind::kStart;
  if (name == "cancel") return JournalRecord::Kind::kCancel;
  if (name == "checkpoint") return JournalRecord::Kind::kCheckpoint;
  if (name == "done") return JournalRecord::Kind::kDone;
  if (name == "failed") return JournalRecord::Kind::kFailed;
  if (name == "cancelled") return JournalRecord::Kind::kCancelled;
  throw ProtocolError("unknown journal record kind \"" +
                      std::string(name) + "\"");
}

std::string require_string(const base::json::Value& object,
                           std::string_view key) {
  const base::json::Value* member = object.find(key);
  if (member == nullptr || !member->is_string()) {
    throw ProtocolError("journal record needs string \"" +
                        std::string(key) + "\"");
  }
  return member->string;
}

std::int64_t require_int(const base::json::Value& object,
                         std::string_view key) {
  const base::json::Value* member = object.find(key);
  if (member == nullptr || !member->is_number()) {
    throw ProtocolError("journal record needs number \"" +
                        std::string(key) + "\"");
  }
  return member->as_int();
}

std::int64_t optional_int(const base::json::Value& object,
                          std::string_view key, std::int64_t fallback) {
  const base::json::Value* member = object.find(key);
  if (member == nullptr) return fallback;
  if (!member->is_number()) {
    throw ProtocolError("journal \"" + std::string(key) +
                        "\" must be a number");
  }
  return member->as_int();
}

std::string optional_string(const base::json::Value& object,
                            std::string_view key) {
  const base::json::Value* member = object.find(key);
  if (member == nullptr) return {};
  if (!member->is_string()) {
    throw ProtocolError("journal \"" + std::string(key) +
                        "\" must be a string");
  }
  return member->string;
}

}  // namespace

std::string encode_record(const JournalRecord& record) {
  base::JsonWriter w;
  w.begin_object(base::JsonWriter::kCompact);
  w.key("kind").value(kind_name(record.kind));
  w.key("job_id").value(record.job_id);
  switch (record.kind) {
    case JournalRecord::Kind::kSubmit:
      w.key("spec").raw_value(encode_submit(record.spec));
      break;
    case JournalRecord::Kind::kStart:
    case JournalRecord::Kind::kCancel:
    case JournalRecord::Kind::kCancelled:
      break;
    case JournalRecord::Kind::kCheckpoint:
      w.key("row").value(record.row);
      w.key("best_score").value(record.best_score);
      w.key("best_row").value(record.best_row);
      w.key("best_col").value(record.best_col);
      break;
    case JournalRecord::Kind::kDone:
    case JournalRecord::Kind::kFailed:
      w.key("restarts").value(record.restarts);
      w.key("rebalances").value(record.rebalances);
      w.key("lost").begin_array(base::JsonWriter::kCompact);
      for (const std::string& name : record.lost_devices) w.value(name);
      w.end_array();
      if (record.resumed_row >= 0) {
        w.key("resumed_row").value(record.resumed_row);
      }
      if (record.kind == JournalRecord::Kind::kDone) {
        w.key("score").value(record.score);
        if (!record.result_json.empty()) {
          w.key("result").raw_value(record.result_json);
        }
      } else {
        w.key("error").value(record.error);
      }
      break;
  }
  w.end_object();
  return w.str();
}

JournalRecord decode_record(const std::string& payload) {
  base::json::Value doc;
  try {
    doc = base::json::parse(payload);
  } catch (const InvalidArgument& e) {
    throw ProtocolError(std::string("malformed journal record: ") +
                        e.what());
  }
  if (!doc.is_object()) {
    throw ProtocolError("journal record must be an object");
  }
  JournalRecord record;
  record.kind = kind_from_name(require_string(doc, "kind"));
  record.job_id = require_int(doc, "job_id");
  switch (record.kind) {
    case JournalRecord::Kind::kSubmit: {
      const base::json::Value* spec = doc.find("spec");
      if (spec == nullptr || !spec->is_object()) {
        throw ProtocolError("journal submit record needs \"spec\"");
      }
      record.spec = decode_submit(base::json::dump(*spec));
      break;
    }
    case JournalRecord::Kind::kStart:
    case JournalRecord::Kind::kCancel:
    case JournalRecord::Kind::kCancelled:
      break;
    case JournalRecord::Kind::kCheckpoint:
      record.row = require_int(doc, "row");
      record.best_score = require_int(doc, "best_score");
      record.best_row = optional_int(doc, "best_row", -1);
      record.best_col = optional_int(doc, "best_col", -1);
      break;
    case JournalRecord::Kind::kDone:
    case JournalRecord::Kind::kFailed:
      record.restarts =
          static_cast<int>(optional_int(doc, "restarts", 0));
      record.rebalances =
          static_cast<int>(optional_int(doc, "rebalances", 0));
      if (const base::json::Value* lost = doc.find("lost")) {
        if (!lost->is_array()) {
          throw ProtocolError("journal \"lost\" must be an array");
        }
        for (const base::json::Value& name : lost->array) {
          if (!name.is_string()) {
            throw ProtocolError("journal \"lost\" entries must be strings");
          }
          record.lost_devices.push_back(name.string);
        }
      }
      record.resumed_row = optional_int(doc, "resumed_row", -1);
      if (record.kind == JournalRecord::Kind::kDone) {
        record.score = require_int(doc, "score");
        if (const base::json::Value* result = doc.find("result")) {
          if (!result->is_object()) {
            throw ProtocolError("journal \"result\" must be an object");
          }
          record.result_json = base::json::dump(*result);
        }
      } else {
        record.error = optional_string(doc, "error");
      }
      break;
  }
  return record;
}

JobJournal::JobJournal(std::string directory, bool fsync_each)
    : directory_(std::move(directory)), fsync_each_(fsync_each) {
  MGPUSW_REQUIRE(!directory_.empty(),
                 "journal directory must be non-empty");
  std::filesystem::create_directories(directory_);
}

JobJournal::~JobJournal() {
  if (fd_ >= 0) ::close(fd_);
}

std::string JobJournal::job_checkpoint_dir(std::int64_t job_id) const {
  const std::string dir =
      directory_ + "/jobs/job_" + std::to_string(job_id);
  std::filesystem::create_directories(dir);
  return dir;
}

void JobJournal::write_header(int fd) const {
  if (::write(fd, kMagic, sizeof(kMagic)) !=
      static_cast<ssize_t>(sizeof(kMagic))) {
    throw IoError("cannot write journal header in " + directory_);
  }
}

void JobJournal::open_for_append() {
  const std::string path = directory_ + "/journal.log";
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd_ < 0) throw IoError("cannot open journal " + path);
}

ReplayResult JobJournal::replay() {
  std::lock_guard lock(mu_);
  MGPUSW_REQUIRE(!replayed_, "journal already replayed");
  const std::string path = directory_ + "/journal.log";
  ReplayResult out;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    // Fresh journal: create the log with its header.
    const int create =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (create < 0) throw IoError("cannot create journal " + path);
    write_header(create);
    if (fsync_each_) ::fdatasync(create);
    ::close(create);
    open_for_append();
    replayed_ = true;
    return out;
  }

  // Sequential scan: every record must frame, CRC and parse; the log's
  // content is the longest prefix that does. good_end chases it.
  char magic[sizeof(kMagic)];
  const ssize_t header_read = ::read(fd, magic, sizeof(magic));
  std::int64_t good_end = 0;
  bool header_ok = header_read == static_cast<ssize_t>(sizeof(magic)) &&
                   std::memcmp(magic, kMagic, 4) == 0;
  if (header_read >= 4 && std::memcmp(magic, kMagic, 4) != 0) {
    ::close(fd);
    throw IoError(path + " is not a journal (bad magic)");
  }
  std::map<std::int64_t, std::size_t> by_id;
  if (header_ok) {
    good_end = sizeof(kMagic);
    for (;;) {
      RecordFrame frame;
      const ssize_t n = ::read(fd, &frame, sizeof(frame));
      if (n != static_cast<ssize_t>(sizeof(frame))) break;
      if (frame.length == 0 || frame.length > kMaxRecordBytes) break;
      std::string payload(frame.length, '\0');
      if (::read(fd, payload.data(), frame.length) !=
          static_cast<ssize_t>(frame.length)) {
        break;
      }
      if (base::crc32(payload.data(), payload.size()) != frame.crc) break;
      JournalRecord record;
      try {
        record = decode_record(payload);
      } catch (const ProtocolError&) {
        break;
      }
      good_end += static_cast<std::int64_t>(sizeof(frame) + frame.length);
      ++out.records;
      if (record.job_id >= out.next_job_id) {
        out.next_job_id = record.job_id + 1;
      }

      // Fold the record into per-job replay state (newest fact wins).
      auto it = by_id.find(record.job_id);
      if (record.kind == JournalRecord::Kind::kSubmit) {
        if (it == by_id.end()) {
          by_id[record.job_id] = out.jobs.size();
          ReplayedJob job;
          job.job_id = record.job_id;
          job.spec = record.spec;
          out.jobs.push_back(std::move(job));
        } else {
          out.jobs[it->second].spec = record.spec;
        }
        continue;
      }
      if (it == by_id.end()) continue;  // orphan: submit was lost
      ReplayedJob& job = out.jobs[it->second];
      switch (record.kind) {
        case JournalRecord::Kind::kStart:
          job.started = true;
          break;
        case JournalRecord::Kind::kCancel:
          job.cancel_requested = true;
          break;
        case JournalRecord::Kind::kCheckpoint:
          job.checkpoint_row = record.row;
          job.best_score = record.best_score;
          job.best_row = record.best_row;
          job.best_col = record.best_col;
          break;
        case JournalRecord::Kind::kDone:
        case JournalRecord::Kind::kFailed:
        case JournalRecord::Kind::kCancelled:
          job.terminal = true;
          job.outcome = record;
          break;
        case JournalRecord::Kind::kSubmit:
          break;  // handled above
      }
    }
  }
  struct stat st {};
  const std::int64_t file_size =
      ::fstat(fd, &st) == 0 ? static_cast<std::int64_t>(st.st_size) : 0;
  ::close(fd);

  if (!header_ok && file_size > 0) {
    // A header torn mid-write: nothing after it is trustworthy, but
    // nothing after it exists either (the header is the first write).
    out.truncated_bytes = file_size;
    const int create =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (create < 0) throw IoError("cannot recreate journal " + path);
    write_header(create);
    ::close(create);
  } else if (file_size > good_end) {
    out.truncated_bytes = file_size - good_end;
    MGPUSW_LOG(kWarn) << "journal: truncating " << out.truncated_bytes
                      << " torn tail byte(s) from " << path;
    if (::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0) {
      throw IoError("cannot truncate torn journal tail in " + path);
    }
  }

  open_for_append();
  replayed_ = true;
  return out;
}

void JobJournal::append(const JournalRecord& record) {
  const std::string payload = encode_record(record);
  MGPUSW_CHECK(payload.size() <= kMaxRecordBytes);
  std::string buffer(sizeof(RecordFrame) + payload.size(), '\0');
  RecordFrame frame;
  frame.length = static_cast<std::uint32_t>(payload.size());
  frame.crc = base::crc32(payload.data(), payload.size());
  std::memcpy(buffer.data(), &frame, sizeof(frame));
  std::memcpy(buffer.data() + sizeof(frame), payload.data(),
              payload.size());

  std::lock_guard lock(mu_);
  MGPUSW_REQUIRE(replayed_, "journal must be replayed before appending");
  // One write() per record: a crash can tear this record but cannot
  // interleave two, so replay's prefix discipline holds.
  if (::write(fd_, buffer.data(), buffer.size()) !=
      static_cast<ssize_t>(buffer.size())) {
    throw IoError("journal append failed in " + directory_);
  }
  if (fsync_each_) ::fdatasync(fd_);
  ++appends_;
  ++appends_since_compact_;
}

void JobJournal::compact(const std::vector<JournalRecord>& snapshot) {
  std::lock_guard lock(mu_);
  MGPUSW_REQUIRE(replayed_, "journal must be replayed before compacting");
  const std::string path = directory_ + "/journal.log";
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw IoError("cannot open " + tmp);
  try {
    write_header(fd);
    for (const JournalRecord& record : snapshot) {
      const std::string payload = encode_record(record);
      RecordFrame frame;
      frame.length = static_cast<std::uint32_t>(payload.size());
      frame.crc = base::crc32(payload.data(), payload.size());
      std::string buffer(sizeof(frame) + payload.size(), '\0');
      std::memcpy(buffer.data(), &frame, sizeof(frame));
      std::memcpy(buffer.data() + sizeof(frame), payload.data(),
                  payload.size());
      if (::write(fd, buffer.data(), buffer.size()) !=
          static_cast<ssize_t>(buffer.size())) {
        throw IoError("cannot write compacted journal " + tmp);
      }
    }
    // The rename is only atomic-durable if the new content is on disk
    // first; a compaction that loses the log would defeat the journal.
    if (::fsync(fd) != 0) throw IoError("cannot fsync " + tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    // The old log is still intact; reopen it and keep appending.
    open_for_append();
    throw IoError("cannot rename compacted journal over " + path);
  }
  open_for_append();
  ++compactions_;
  appends_since_compact_ = 0;
}

std::int64_t JobJournal::appends() const {
  std::lock_guard lock(mu_);
  return appends_;
}

std::int64_t JobJournal::appends_since_compact() const {
  std::lock_guard lock(mu_);
  return appends_since_compact_;
}

std::int64_t JobJournal::compactions() const {
  std::lock_guard lock(mu_);
  return compactions_;
}

}  // namespace mgpusw::serve
