// Client side of the alignment service protocol (mgpusw-client, tests,
// the throughput bench). One ServeClient is one connection; requests on
// it are sequential (the protocol is strict request/reply, except the
// PROGRESS stream which multiplexes its events before the final DONE).
// Not thread-safe — use one client per thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "comm/tcp_stream.hpp"
#include "serve/protocol.hpp"

namespace mgpusw::serve {

class ServeClient {
 public:
  /// Connects to a running daemon. `timeout_ms` bounds the connect and
  /// every blocking read/write (0 = block forever — the right choice
  /// when RESULT waits on a long job).
  [[nodiscard]] static ServeClient connect(const std::string& host,
                                           std::uint16_t port,
                                           std::int64_t timeout_ms = 0);

  /// Submits a job; returns its id. ERROR replies (quota, bad spec)
  /// throw ServeError with the server's code.
  [[nodiscard]] std::int64_t submit(const SubmitRequest& request);

  /// Current status of a job.
  [[nodiscard]] JobStatus status(std::int64_t job_id);

  /// Terminal status of a job; waits for completion when `wait` (the
  /// default). Done jobs carry the full run report in result_json.
  [[nodiscard]] JobStatus result(std::int64_t job_id, bool wait = true);

  /// Requests a cancel; returns the job's state after the attempt.
  [[nodiscard]] JobStatus cancel(std::int64_t job_id);

  /// Streams progress until the job is terminal: `on_update` fires per
  /// PROGRESS_EVENT; the returned status is the PROGRESS_DONE body.
  JobStatus stream_progress(
      std::int64_t job_id,
      const std::function<void(const ProgressUpdate&)>& on_update);

  /// The merged metrics registry snapshot (JSON text).
  [[nodiscard]] std::string metrics_json();

  /// Asks the daemon to shut down (acknowledged before it begins).
  void shutdown_server();

 private:
  explicit ServeClient(comm::TcpStream stream);

  /// One request/reply exchange; ERROR replies throw ServeError,
  /// unexpected frame types throw ProtocolError.
  Message round_trip(FrameType request, const std::string& body,
                     FrameType expected_reply);

  comm::TcpStream stream_;
};

}  // namespace mgpusw::serve
