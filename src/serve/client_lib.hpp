// Client side of the alignment service protocol (mgpusw-client, tests,
// the throughput bench). One ServeClient is one connection; requests on
// it are sequential (the protocol is strict request/reply, except the
// PROGRESS stream which multiplexes its events before the final DONE).
// Not thread-safe — use one client per thread.
//
// With a ReconnectPolicy the client rides through daemon restarts: a
// connection-level failure (refused connect, reset mid-request, torn
// frame) sleeps a bounded exponential backoff, re-dials, and repeats
// the request. Pair retried SUBMITs with an idempotency key — the
// journal-backed daemon then dedupes the resubmission onto the original
// job instead of running it twice. Server-reported errors (ServeError)
// are never retried; they are answers, not failures.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "comm/tcp_stream.hpp"
#include "serve/protocol.hpp"

namespace mgpusw::serve {

/// Retry schedule for connection-level failures. `max_attempts` counts
/// reconnect cycles per operation; 0 (the default) disables retrying —
/// the pre-journal fail-fast behaviour.
struct ReconnectPolicy {
  int max_attempts = 0;
  std::int64_t initial_backoff_ms = 50;
  std::int64_t max_backoff_ms = 2000;
};

class ServeClient {
 public:
  /// Connects to a running daemon. `timeout_ms` bounds the connect and
  /// every blocking read/write (0 = block forever — the right choice
  /// when RESULT waits on a long job). With a policy, a refused initial
  /// connect also retries on the backoff schedule.
  [[nodiscard]] static ServeClient connect(const std::string& host,
                                           std::uint16_t port,
                                           std::int64_t timeout_ms = 0,
                                           ReconnectPolicy policy = {});

  /// Submits a job; returns its id. ERROR replies (quota, bad spec)
  /// throw ServeError with the server's code.
  [[nodiscard]] std::int64_t submit(const SubmitRequest& request);

  /// Current status of a job.
  [[nodiscard]] JobStatus status(std::int64_t job_id);

  /// Terminal status of a job; waits for completion when `wait` (the
  /// default). Done jobs carry the full run report in result_json.
  [[nodiscard]] JobStatus result(std::int64_t job_id, bool wait = true);

  /// Requests a cancel; returns the job's state after the attempt.
  [[nodiscard]] JobStatus cancel(std::int64_t job_id);

  /// Streams progress until the job is terminal: `on_update` fires per
  /// PROGRESS_EVENT; the returned status is the PROGRESS_DONE body.
  /// After a mid-stream reconnect the stream restarts from the current
  /// snapshot, so updates may repeat.
  JobStatus stream_progress(
      std::int64_t job_id,
      const std::function<void(const ProgressUpdate&)>& on_update);

  /// The merged metrics registry snapshot (JSON text).
  [[nodiscard]] std::string metrics_json();

  /// Asks the daemon to shut down (acknowledged before it begins).
  /// With `drain`, running jobs finish (journaling their terminals)
  /// before the daemon exits; without it the stop is crash-equivalent
  /// for the journal and unfinished jobs replay on the next start.
  void shutdown_server(bool drain = false);

 private:
  ServeClient(comm::TcpStream stream, std::string host,
              std::uint16_t port, std::int64_t timeout_ms,
              ReconnectPolicy policy);

  /// One request/reply exchange; ERROR replies throw ServeError,
  /// unexpected frame types throw ProtocolError. Connection-level
  /// failures reconnect and repeat, per the policy.
  Message round_trip(FrameType request, const std::string& body,
                     FrameType expected_reply);

  /// Sleeps the backoff for this failure count and re-dials. Returns
  /// false once the policy's attempts are exhausted (caller rethrows).
  /// A failed re-dial still returns true — the retried request fails
  /// fast and re-enters with a longer backoff.
  bool try_recover(int failures);

  comm::TcpStream stream_;
  std::string host_;
  std::uint16_t port_ = 0;
  std::int64_t timeout_ms_ = 0;
  ReconnectPolicy policy_;
};

}  // namespace mgpusw::serve
