// The daemon's job table and priority queue.
//
// One JobQueue owns every job the daemon has accepted, for its whole
// lifetime (terminal jobs stay queryable until shutdown — the "persist"
// the protocol needs for STATUS/RESULT after completion). Scheduling
// order is priority descending, FIFO within a priority; a tenant at its
// running quota is skipped, not blocked — the next runnable tenant's
// job starts instead.
//
// Cancel semantics by state:
//   queued      -> kCancelled immediately (never reaches the fleet)
//   running     -> the job's cancel flag is raised; the engine stops at
//                  the next scheduling-unit boundary and the scheduler
//                  marks the job cancelled (the lease is released by the
//                  normal unwind, so the fleet is never wedged)
//   completing / terminal -> no-op; the current state is returned
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "seq/sequence.hpp"
#include "serve/protocol.hpp"
#include "serve/quota.hpp"

namespace mgpusw::serve {

/// One accepted job. State transitions and the bookkeeping fields are
/// guarded by the owning JobQueue's mutex; the progress snapshot has
/// its own lock because engine device threads write it concurrently
/// with protocol reads.
struct Job {
  std::int64_t id = -1;
  std::string tenant;
  std::string label;
  int priority = 0;
  seq::Sequence query;
  seq::Sequence subject;
  /// The wire spec as submitted — what the journal persists, so a
  /// restarted daemon can rebuild the job (and its sequences) verbatim.
  SubmitRequest spec;

  JobState state = JobState::kQueued;
  std::atomic<bool> cancel{false};
  core::BatchItemResult entry;  // result + recovery bookkeeping
  std::string error;            // failure message (kFailed)

  // --- journal-mode fields (unused without a journal) ---
  /// Per-job disk checkpoint store under the journal directory; owned
  /// here so it survives scheduler unwinds but dies with the job table.
  std::unique_ptr<core::SpecialRowStore> checkpoints;
  /// Seed for the next run (replay fills it from the journal + a disk
  /// probe); row = -1 runs from scratch.
  core::ResumeSpec resume;
  /// Checkpoint row the job's run actually resumed from (-1: none) —
  /// surfaced as JobStatus::resumed_row.
  std::int64_t resumed_row = -1;
  /// True when this daemon life never ran the job: its terminal facts
  /// (entry fields, result_json) were replayed from the journal.
  bool replayed = false;
  std::string replayed_result_json;  // RESULT body for replayed jobs

  /// Submit-to-result latency bookkeeping (steady-clock ns since the
  /// queue's epoch).
  std::int64_t submit_ns = 0;
  std::int64_t done_ns = 0;

  /// Progress snapshot, aggregated over the engine's device threads.
  struct Progress {
    std::mutex mu;
    std::map<int, std::pair<std::int64_t, std::int64_t>> device_units;
    int restarts = 0;
    int rebalances = 0;

    // Journal-mode durability cursor. Per-device (safe_row, best) of
    // the current attempt; once every device of the attempt has
    // reported, min(safe_row) + the merged bests fold into the durable
    // pair — the invariant being that `durable_best` covers every cell
    // in rows <= durable_row, so the pair is what a CHECKPOINT record
    // may journal.
    std::map<int, std::pair<std::int64_t, sw::ScoreResult>> device_safe;
    std::int64_t durable_row = -1;
    sw::ScoreResult durable_best;
    std::int64_t journaled_row = -1;  // newest CHECKPOINT written
    std::int64_t last_checkpoint_ns = 0;
  };
  Progress progress;

  /// Sums the per-device snapshot into a wire-ready update.
  [[nodiscard]] ProgressUpdate progress_update();
};

class JobQueue {
 public:
  explicit JobQueue(QuotaPolicy policy);

  /// Admits a job (unless the tenant's pending quota rejects it — then
  /// throws ServeError("quota-exceeded") — or the queue is closed or
  /// draining — ServeError("shutting-down")). Returns the job with its
  /// id set.
  std::shared_ptr<Job> submit(std::string tenant, std::string label,
                              int priority, seq::Sequence query,
                              seq::Sequence subject);

  /// Spec-carrying admission used by the journal path. When the spec
  /// has an idempotency key the tenant already used, no job is created:
  /// the original is returned and `*deduped` set — whatever its state,
  /// so a resubmission after a daemon restart finds its result instead
  /// of recomputing.
  std::shared_ptr<Job> submit(SubmitRequest spec, seq::Sequence query,
                              seq::Sequence subject,
                              bool* deduped = nullptr);

  /// Installs a job replayed from the journal: id, spec, state and any
  /// replayed terminal facts are already set by the caller. Queued jobs
  /// enter the pending queue (and charge the tenant's pending quota);
  /// terminal jobs only join the table, immediately queryable. Bumps
  /// the id counter past the replayed id and registers the idempotency
  /// key. Must run before the queue is closed or draining.
  void restore(const std::shared_ptr<Job>& job);

  /// Stops admission without cancelling anything: submit() refuses,
  /// next() returns null (running jobs finish normally), queued jobs
  /// stay queued — journaled as plain SUBMITs for the next daemon life.
  void drain();
  [[nodiscard]] bool draining() const;

  /// Snapshot of every job in the table, id-ascending (journal
  /// compaction walks this).
  [[nodiscard]] std::vector<std::shared_ptr<Job>> all_jobs() const;

  /// Blocks for the next runnable job: highest priority first, FIFO
  /// within a priority, skipping tenants at their running quota. Marks
  /// it kRunning and charges the tenant's running quota. Returns null
  /// once the queue is closed and drained of runnable work.
  std::shared_ptr<Job> next();

  /// The scheduler finished running `job` (any outcome): settles the
  /// tenant's running quota, stamps the terminal state, and wakes
  /// RESULT waiters. `state` must be terminal.
  void finish(const std::shared_ptr<Job>& job, JobState state,
              std::string error_message = {});

  /// Moves a running job to kCompleting (the engine is done; the result
  /// is being published). Cancel is a no-op from here on.
  void mark_completing(const std::shared_ptr<Job>& job);

  /// Cancels by id. Returns the job's state after the attempt (queued
  /// jobs transition to kCancelled right here). Throws
  /// ServeError("not-found") for unknown ids.
  JobState cancel(std::int64_t job_id);

  /// Looks a job up; throws ServeError("not-found") if absent.
  [[nodiscard]] std::shared_ptr<Job> find(std::int64_t job_id);

  /// Blocks until `job` reaches a terminal state.
  void wait_terminal(const std::shared_ptr<Job>& job);

  /// Snapshot of a job's wire status (everything but result_json).
  [[nodiscard]] JobStatus status(const std::shared_ptr<Job>& job);

  /// Stops admission and wakes every blocked next()/wait_terminal().
  /// Queued jobs are cancelled; running jobs get their cancel flag
  /// raised so schedulers can unwind.
  void close();

  [[nodiscard]] bool closed() const;
  /// Jobs currently waiting (the serve.queue_depth gauge).
  [[nodiscard]] std::int64_t depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable runnable_cv_;  // queue or quota state changed
  std::condition_variable terminal_cv_;  // some job reached terminal
  QuotaLedger quota_;
  std::deque<std::shared_ptr<Job>> pending_;  // admission order
  std::map<std::int64_t, std::shared_ptr<Job>> jobs_;
  /// "tenant\nkey" -> job, for idempotent resubmission.
  std::map<std::string, std::shared_ptr<Job>> by_key_;
  std::int64_t next_id_ = 1;
  bool closed_ = false;
  bool draining_ = false;
  const std::int64_t epoch_ns_;
};

}  // namespace mgpusw::serve
