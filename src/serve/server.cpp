#include "serve/server.hpp"

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "base/error.hpp"
#include "base/log.hpp"
#include "core/report.hpp"
#include "seq/synth.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw::serve {

namespace {

/// How often a PROGRESS stream samples the job snapshot.
constexpr auto kProgressPollInterval = std::chrono::milliseconds(20);

}  // namespace

AlignServer::AlignServer(ServerConfig config)
    : config_(std::move(config)),
      queue_(config_.quota),
      listener_(config_.port) {
  MGPUSW_REQUIRE(config_.devices >= 1, "server needs at least one device");
  MGPUSW_REQUIRE(config_.scheduler_threads >= 1,
                 "server needs at least one scheduler thread");
  const std::vector<vgpu::DeviceSpec> env = vgpu::environment1();
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  for (int d = 0; d < config_.devices; ++d) {
    devices.push_back(std::make_unique<vgpu::Device>(
        env[static_cast<std::size_t>(d) % env.size()]));
  }
  fleet_ = std::make_unique<core::DeviceFleet>(std::move(devices));
  // Lease waits, grants and device health land in the shared registry,
  // so a METRICS scrape shows fleet.* next to batch.*/recovery.*/serve.*.
  obs::Scope fleet_scope;
  fleet_scope.metrics = &metrics_;
  fleet_->set_obs(fleet_scope);
  if (!config_.fault_plan.empty()) {
    injector_ = std::make_unique<vgpu::FaultInjector>(
        vgpu::parse_fault_plan(config_.fault_plan));
  }
  // Touch every serve.* metric so a scrape shows zeros from the first
  // request on, not only after the counter first fires.
  metrics_.counter("serve.jobs_accepted");
  metrics_.counter("serve.jobs_rejected");
  metrics_.counter("serve.jobs_completed");
  metrics_.counter("serve.jobs_failed");
  metrics_.counter("serve.jobs_cancelled");
  metrics_.gauge("serve.queue_depth");
  metrics_.histogram("serve.submit_to_done_ms");
}

AlignServer::~AlignServer() { stop(); }

std::uint16_t AlignServer::port() const { return listener_.port(); }

void AlignServer::start() {
  if (started_.exchange(true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (int t = 0; t < config_.scheduler_threads; ++t) {
    scheduler_threads_.emplace_back([this] { scheduler_loop(); });
  }
}

void AlignServer::run() {
  start();
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_ || stopping_.load(std::memory_order_acquire);
  });
  lock.unlock();
  stop();
}

void AlignServer::stop() {
  if (stopping_.exchange(true)) {
    // A concurrent/second stop still waits for the joins below to have
    // happened — but those only run once; the first caller owns them.
    // Idempotent calls from the destructor after an explicit stop() see
    // already-joined (unjoinable) threads and fall through.
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  listener_.close();
  queue_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Schedulers drain: queue_.close() raised every running job's cancel
  // flag, so each current job reaches a terminal state and next()
  // returns null.
  for (std::thread& thread : scheduler_threads_) {
    if (thread.joinable()) thread.join();
  }
  scheduler_threads_.clear();
  // Connection handlers may be blocked in recv; shut their sockets so
  // the reads return EOF. The streams are shared_ptr-owned here so the
  // descriptor numbers cannot be recycled before the shutdown call.
  std::vector<Connection> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (Connection& connection : connections) {
    connection.stream->shutdown();
  }
  for (Connection& connection : connections) {
    if (connection.thread.joinable()) connection.thread.join();
  }
}

std::string AlignServer::metrics_json() {
  metrics_.gauge("serve.queue_depth").set(queue_.depth());
  return metrics_.to_json();
}

void AlignServer::accept_loop() {
  for (;;) {
    std::optional<comm::TcpStream> accepted = listener_.accept();
    if (!accepted.has_value()) return;  // listener closed: shutting down
    auto stream = std::make_shared<comm::TcpStream>(std::move(*accepted));
    std::lock_guard<std::mutex> lock(connections_mu_);
    if (stopping_.load(std::memory_order_acquire)) return;
    Connection connection;
    connection.stream = stream;
    connection.thread = std::thread([this, stream] {
      try {
        handle_connection(*stream);
      } catch (const std::exception& e) {
        // A torn connection is the client's problem, not the daemon's.
        MGPUSW_LOG(kWarn) << "serve: connection dropped: " << e.what();
      } catch (...) {
        MGPUSW_LOG(kWarn) << "serve: connection dropped";
      }
    });
    connections_.push_back(std::move(connection));
  }
}

void AlignServer::handle_http_scrape(comm::TcpStream& stream) {
  // Drain the request head (best effort — we answer any GET with the
  // metrics snapshot), then speak just enough HTTP/1.0 for curl and
  // Prometheus-style scrapers.
  char buffer[512];
  for (int i = 0; i < 64; ++i) {
    const std::size_t got = stream.read_some(buffer, sizeof(buffer));
    if (got == 0) break;
    if (got >= 4 && std::memcmp(buffer + got - 4, "\r\n\r\n", 4) == 0) {
      break;
    }
    if (got < sizeof(buffer)) break;  // short read: head is drained
  }
  const std::string body = metrics_json();
  std::string head =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\n\r\n";
  stream.write_all(head.data(), head.size());
  stream.write_all(body.data(), body.size());
  stream.shutdown();
}

void AlignServer::handle_connection(comm::TcpStream& stream) {
  // Protocol sniff: a framed message starts with its u32 length prefix,
  // an HTTP scrape starts with "GET ". Read the first four bytes by
  // hand, then either answer the scrape or finish reading the frame.
  std::uint8_t prefix[4];
  std::size_t have = 0;
  while (have < sizeof(prefix)) {
    const std::size_t got =
        stream.read_some(prefix + have, sizeof(prefix) - have);
    if (got == 0) {
      if (have == 0) return;  // clean disconnect, nothing sent
      throw ProtocolError("connection closed inside the first frame");
    }
    have += got;
  }
  if (std::memcmp(prefix, "GET ", 4) == 0) {
    handle_http_scrape(stream);
    return;
  }

  // First frame: the length prefix is already consumed.
  std::uint32_t length = 0;
  std::memcpy(&length, prefix, sizeof(length));
  std::optional<Message> first;
  try {
    if (length > comm::kMaxFrameBytes) {
      throw ProtocolError("frame length " + std::to_string(length) +
                          " exceeds the frame cap");
    }
    std::vector<std::uint8_t> payload(length);
    if (length > 0) stream.read_all(payload.data(), payload.size());
    const comm::MessageFrame frame =
        comm::deserialize_message(payload.data(), payload.size());
    Message message;
    message.type = static_cast<FrameType>(frame.type);
    message.body.assign(frame.body.begin(), frame.body.end());
    first = std::move(message);
  } catch (const ProtocolError& e) {
    send_message(stream, FrameType::kError,
                 encode_error("bad-request", e.what()));
    stream.shutdown();
    return;
  }

  bool first_pending = true;
  for (;;) {
    std::optional<Message> message;
    if (first_pending) {
      message = std::move(first);
      first_pending = false;
    } else {
      try {
        message = recv_message(stream);
      } catch (const ProtocolError& e) {
        // The stream position is untrustworthy after a framing error:
        // answer and drop the connection (never the daemon).
        send_message(stream, FrameType::kError,
                     encode_error("bad-request", e.what()));
        stream.shutdown();
        return;
      }
    }
    if (!message.has_value()) return;  // client closed
    if (!dispatch(stream, *message)) return;
  }
}

bool AlignServer::dispatch(comm::TcpStream& stream,
                           const Message& message) {
  try {
    switch (message.type) {
      case FrameType::kSubmit:
        handle_submit(stream, message.body);
        return true;
      case FrameType::kStatus: {
        const std::shared_ptr<Job> job =
            queue_.find(decode_job_id(message.body));
        send_message(stream, FrameType::kStatusOk,
                     encode_status(queue_.status(job)));
        return true;
      }
      case FrameType::kProgress: {
        const std::shared_ptr<Job> job =
            queue_.find(decode_job_id(message.body));
        handle_progress_stream(stream, job);
        return true;
      }
      case FrameType::kCancel: {
        const std::int64_t job_id = decode_job_id(message.body);
        const JobState after = queue_.cancel(job_id);
        if (after == JobState::kCancelled) {
          // Cancelled right in the queue; running jobs are counted by
          // the scheduler when they actually stop.
          metrics_.counter("serve.jobs_cancelled").increment();
        }
        send_message(stream, FrameType::kCancelOk,
                     encode_status(queue_.status(queue_.find(job_id))));
        return true;
      }
      case FrameType::kResult: {
        const std::int64_t job_id = decode_job_id(message.body);
        const bool wait = decode_wait_flag(message.body);
        const std::shared_ptr<Job> job = queue_.find(job_id);
        if (wait) queue_.wait_terminal(job);
        JobStatus status = queue_.status(job);
        if (!is_terminal(status.state)) {
          throw ServeError("not-ready",
                           "job " + std::to_string(job_id) + " is " +
                               job_state_name(status.state));
        }
        if (status.state == JobState::kDone) {
          // Safe to read entry: terminal states are published under the
          // queue mutex after the run finished.
          status.result_json = core::to_json(job->entry.result);
        }
        send_message(stream, FrameType::kResultOk, encode_status(status));
        return true;
      }
      case FrameType::kMetrics:
        send_message(stream, FrameType::kMetricsOk, metrics_json());
        return true;
      case FrameType::kShutdown: {
        send_message(stream, FrameType::kShutdownOk, "{}");
        {
          std::lock_guard<std::mutex> lock(shutdown_mu_);
          shutdown_requested_ = true;
        }
        // stop() must not run on this thread (it joins it); run() or
        // the owner reacts to the flag.
        shutdown_cv_.notify_all();
        return false;
      }
      default:
        throw ServeError("bad-request",
                         "frame type " +
                             std::to_string(static_cast<int>(message.type)) +
                             " is not a request");
    }
  } catch (const ServeError& e) {
    send_message(stream, FrameType::kError,
                 encode_error(e.code(), e.what()));
    return true;
  } catch (const ProtocolError& e) {
    send_message(stream, FrameType::kError,
                 encode_error("bad-request", e.what()));
    stream.shutdown();
    return false;
  } catch (const Error& e) {
    send_message(stream, FrameType::kError,
                 encode_error("internal", e.what()));
    return true;
  }
}

void AlignServer::handle_submit(comm::TcpStream& stream,
                                const std::string& body) {
  const SubmitRequest request = decode_submit(body);
  seq::Sequence query;
  seq::Sequence subject;
  try {
    if (!request.query.empty()) {
      if (static_cast<std::int64_t>(request.query.size()) >
              config_.max_job_bases ||
          static_cast<std::int64_t>(request.subject.size()) >
              config_.max_job_bases) {
        throw ServeError("bad-request",
                         "job exceeds the per-job base cap of " +
                             std::to_string(config_.max_job_bases));
      }
      query = seq::Sequence(request.label + ".q", request.query);
      subject = seq::Sequence(request.label + ".s", request.subject);
    } else {
      if (request.rows > config_.max_job_bases ||
          request.cols > config_.max_job_bases) {
        throw ServeError("bad-request",
                         "job exceeds the per-job base cap of " +
                             std::to_string(config_.max_job_bases));
      }
      query = seq::generate_chromosome(
          request.label + ".q", request.rows,
          static_cast<std::uint64_t>(request.seed));
      subject = seq::generate_chromosome(
          request.label + ".s", request.cols,
          static_cast<std::uint64_t>(request.seed) + 1);
    }
  } catch (const InvalidArgument& e) {
    throw ServeError("bad-request", e.what());
  }
  std::shared_ptr<Job> job;
  try {
    job = queue_.submit(request.tenant, request.label, request.priority,
                        std::move(query), std::move(subject));
  } catch (const ServeError&) {
    metrics_.counter("serve.jobs_rejected").increment();
    throw;
  }
  metrics_.counter("serve.jobs_accepted").increment();
  metrics_.gauge("serve.queue_depth").set(queue_.depth());
  send_message(stream, FrameType::kSubmitOk, encode_job_ref(job->id));
}

void AlignServer::handle_progress_stream(
    comm::TcpStream& stream, const std::shared_ptr<Job>& job) {
  ProgressUpdate last;
  last.completed_units = -1;  // force the first event out
  for (;;) {
    const JobStatus status = queue_.status(job);
    ProgressUpdate update = job->progress_update();
    if (is_terminal(status.state)) {
      send_message(stream, FrameType::kProgressDone,
                   encode_status(status));
      return;
    }
    if (update.completed_units != last.completed_units ||
        update.restarts != last.restarts ||
        update.rebalances != last.rebalances) {
      send_message(stream, FrameType::kProgressEvent,
                   encode_progress(update));
      last = update;
    }
    std::this_thread::sleep_for(kProgressPollInterval);
  }
}

void AlignServer::scheduler_loop() {
  for (;;) {
    const std::shared_ptr<Job> job = queue_.next();
    if (job == nullptr) return;  // queue closed and drained
    metrics_.gauge("serve.queue_depth").set(queue_.depth());
    run_job(job);
  }
}

void AlignServer::run_job(const std::shared_ptr<Job>& job) {
  core::BatchConfig batch;
  batch.engine.scheme = config_.scheme;
  batch.engine.block_rows = config_.block;
  batch.engine.block_cols = config_.block;
  batch.engine.obs.metrics = &metrics_;
  batch.devices_per_item = config_.devices_per_job;
  batch.enable_recovery = config_.enable_recovery;
  batch.recovery = config_.recovery;
  // Device threads stream progress into the job's snapshot; a restart
  // resets the per-device table (the engine re-plans from scratch, so
  // stale device rows would double-count).
  batch.engine.progress = [job](const core::ProgressEvent& event) {
    std::lock_guard<std::mutex> lock(job->progress.mu);
    if (event.restarts != job->progress.restarts) {
      job->progress.device_units.clear();
      job->progress.restarts = event.restarts;
    }
    job->progress.rebalances = event.rebalances;
    job->progress.device_units[event.device_index] = {
        event.completed_units, event.total_units};
  };
  // Injected faults arm on the first job only: injector ordinals are
  // lease-local, so sharing one injector across concurrent jobs would
  // replay a death into every job's device 0.
  if (injector_ != nullptr && !fault_armed_.exchange(true)) {
    batch.engine.fault = injector_.get();
  }

  core::BatchItem item;
  item.label = job->label;
  item.query = job->query;
  item.subject = job->subject;
  item.priority = job->priority;
  item.cancel = &job->cancel;

  try {
    core::run_batch_item(batch, *fleet_, item, job->entry);
  } catch (const std::exception& e) {
    if (job->cancel.load(std::memory_order_relaxed)) {
      metrics_.counter("serve.jobs_cancelled").increment();
      queue_.finish(job, JobState::kCancelled);
    } else {
      metrics_.counter("serve.jobs_failed").increment();
      queue_.finish(job, JobState::kFailed, e.what());
    }
    return;
  }
  queue_.mark_completing(job);
  metrics_.counter("serve.jobs_completed").increment();
  queue_.finish(job, JobState::kDone);
  metrics_.histogram("serve.submit_to_done_ms")
      .observe(static_cast<double>(job->done_ns - job->submit_ns) / 1e6);
}

}  // namespace mgpusw::serve
