#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "base/error.hpp"
#include "base/log.hpp"
#include "core/report.hpp"
#include "seq/synth.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw::serve {

namespace {

/// How often a PROGRESS stream samples the job snapshot.
constexpr auto kProgressPollInterval = std::chrono::milliseconds(20);

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

AlignServer::AlignServer(ServerConfig config)
    : config_(std::move(config)),
      queue_(config_.quota),
      listener_(config_.port) {
  MGPUSW_REQUIRE(config_.devices >= 1, "server needs at least one device");
  MGPUSW_REQUIRE(config_.scheduler_threads >= 1,
                 "server needs at least one scheduler thread");
  const std::vector<vgpu::DeviceSpec> env = vgpu::environment1();
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  for (int d = 0; d < config_.devices; ++d) {
    devices.push_back(std::make_unique<vgpu::Device>(
        env[static_cast<std::size_t>(d) % env.size()]));
  }
  fleet_ = std::make_unique<core::DeviceFleet>(std::move(devices));
  // Lease waits, grants and device health land in the shared registry,
  // so a METRICS scrape shows fleet.* next to batch.*/recovery.*/serve.*.
  obs::Scope fleet_scope;
  fleet_scope.metrics = &metrics_;
  fleet_->set_obs(fleet_scope);
  if (!config_.fault_plan.empty()) {
    injector_ = std::make_unique<vgpu::FaultInjector>(
        vgpu::parse_fault_plan(config_.fault_plan));
  }
  // Touch every serve.* metric so a scrape shows zeros from the first
  // request on, not only after the counter first fires.
  metrics_.counter("serve.jobs_accepted");
  metrics_.counter("serve.jobs_rejected");
  metrics_.counter("serve.jobs_deduped");
  metrics_.counter("serve.jobs_completed");
  metrics_.counter("serve.jobs_failed");
  metrics_.counter("serve.jobs_cancelled");
  metrics_.gauge("serve.queue_depth");
  metrics_.histogram("serve.submit_to_done_ms");
  if (!config_.journal_dir.empty()) {
    metrics_.counter("serve.journal_appends");
    metrics_.counter("serve.journal_replayed_jobs");
    metrics_.counter("serve.journal_truncated_bytes");
    metrics_.counter("serve.journal_compactions");
    metrics_.counter("serve.journal_checkpoints");
    journal_ = std::make_unique<JobJournal>(config_.journal_dir,
                                            config_.journal_fsync);
    replay_journal();
  }
}

AlignServer::~AlignServer() { stop(); }

void AlignServer::request_drain() {
  drain_requested_.store(true, std::memory_order_release);
  queue_.drain();
}

std::uint16_t AlignServer::port() const { return listener_.port(); }

void AlignServer::start() {
  if (started_.exchange(true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (int t = 0; t < config_.scheduler_threads; ++t) {
    scheduler_threads_.emplace_back([this] { scheduler_loop(); });
  }
}

void AlignServer::run() {
  start();
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_ || stopping_.load(std::memory_order_acquire);
  });
  lock.unlock();
  stop();
}

void AlignServer::stop() {
  if (stopping_.exchange(true)) {
    // A concurrent/second stop still waits for the joins below to have
    // happened — but those only run once; the first caller owns them.
    // Idempotent calls from the destructor after an explicit stop() see
    // already-joined (unjoinable) threads and fall through.
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  listener_.close();
  if (drain_requested_.load(std::memory_order_acquire)) {
    // Graceful drain: running jobs finish (and journal their
    // terminals) before the queue closes. next() hands out nothing
    // once the queue is draining, so the joins terminate; queued jobs
    // stay SUBMIT-only in the journal and re-enqueue next life.
    queue_.drain();
    for (std::thread& thread : scheduler_threads_) {
      if (thread.joinable()) thread.join();
    }
    scheduler_threads_.clear();
    queue_.close();  // wake RESULT waiters on still-queued jobs
  } else {
    // Hard stop. Freeze the journal FIRST: everything after this
    // instant — close()'s in-memory cancels included — is deliberately
    // not journaled, so on disk this shutdown is indistinguishable
    // from a crash and unfinished jobs replay in the next life.
    journal_frozen_.store(true, std::memory_order_release);
    queue_.close();
    // Schedulers drain: queue_.close() raised every running job's
    // cancel flag, so each current job reaches a terminal state and
    // next() returns null.
    for (std::thread& thread : scheduler_threads_) {
      if (thread.joinable()) thread.join();
    }
    scheduler_threads_.clear();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection handlers may be blocked in recv; shut their sockets so
  // the reads return EOF. The streams are shared_ptr-owned here so the
  // descriptor numbers cannot be recycled before the shutdown call.
  std::vector<Connection> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections.swap(connections_);
  }
  for (Connection& connection : connections) {
    connection.stream->shutdown();
  }
  for (Connection& connection : connections) {
    if (connection.thread.joinable()) connection.thread.join();
  }
}

std::string AlignServer::metrics_json() {
  metrics_.gauge("serve.queue_depth").set(queue_.depth());
  return metrics_.to_json();
}

void AlignServer::make_sequences(const SubmitRequest& request,
                                 seq::Sequence& query,
                                 seq::Sequence& subject) const {
  try {
    if (!request.query.empty()) {
      if (static_cast<std::int64_t>(request.query.size()) >
              config_.max_job_bases ||
          static_cast<std::int64_t>(request.subject.size()) >
              config_.max_job_bases) {
        throw ServeError("bad-request",
                         "job exceeds the per-job base cap of " +
                             std::to_string(config_.max_job_bases));
      }
      query = seq::Sequence(request.label + ".q", request.query);
      subject = seq::Sequence(request.label + ".s", request.subject);
    } else {
      if (request.rows > config_.max_job_bases ||
          request.cols > config_.max_job_bases) {
        throw ServeError("bad-request",
                         "job exceeds the per-job base cap of " +
                             std::to_string(config_.max_job_bases));
      }
      query = seq::generate_chromosome(
          request.label + ".q", request.rows,
          static_cast<std::uint64_t>(request.seed));
      subject = seq::generate_chromosome(
          request.label + ".s", request.cols,
          static_cast<std::uint64_t>(request.seed) + 1);
    }
  } catch (const InvalidArgument& e) {
    throw ServeError("bad-request", e.what());
  }
}

void AlignServer::replay_journal() {
  const ReplayResult replayed = journal_->replay();
  metrics_.counter("serve.journal_truncated_bytes")
      .add(replayed.truncated_bytes);
  for (const ReplayedJob& record : replayed.jobs) {
    auto job = std::make_shared<Job>();
    job->id = record.job_id;
    job->spec = record.spec;
    job->tenant = record.spec.tenant;
    job->label = record.spec.label.empty()
                     ? "job-" + std::to_string(job->id)
                     : record.spec.label;
    job->priority = record.spec.priority;
    if (record.terminal) {
      // Terminal: re-serve the journaled outcome, recompute nothing.
      const JournalRecord& outcome = record.outcome;
      switch (outcome.kind) {
        case JournalRecord::Kind::kDone:
          job->state = JobState::kDone;
          break;
        case JournalRecord::Kind::kFailed:
          job->state = JobState::kFailed;
          break;
        default:
          job->state = JobState::kCancelled;
          break;
      }
      job->replayed = true;
      job->replayed_result_json = outcome.result_json;
      job->error = outcome.error;
      job->resumed_row = outcome.resumed_row;
      job->entry.label = job->label;
      job->entry.restarts = outcome.restarts;
      job->entry.lost_devices = outcome.lost_devices;
      if (outcome.score >= 0) {
        job->entry.result.best.score =
            static_cast<sw::Score>(outcome.score);
      }
      job->progress.rebalances = outcome.rebalances;
      queue_.restore(job);
    } else if (record.cancel_requested) {
      // The cancel intent was journaled but the terminal never was (the
      // daemon died first). Honour it now, durably — the job never ran
      // to completion, so cancelled is the truthful terminal.
      job->state = JobState::kCancelled;
      job->replayed = true;
      queue_.restore(job);
      JournalRecord terminal;
      terminal.kind = JournalRecord::Kind::kCancelled;
      terminal.job_id = job->id;
      journal_append(terminal);
      metrics_.counter("serve.jobs_cancelled").increment();
    } else {
      // Queued or mid-flight: rebuild the sequences from the spec and
      // re-enqueue. A mid-flight job additionally probes its checkpoint
      // store for the newest restart-safe row at or below the journaled
      // pair — recomputing from there is bit-identical because the
      // journaled best already covers every cell at or below the row.
      try {
        make_sequences(job->spec, job->query, job->subject);
      } catch (const ServeError& e) {
        job->state = JobState::kFailed;
        job->replayed = true;
        job->error = std::string("replay rejected: ") + e.what();
        queue_.restore(job);
        JournalRecord terminal;
        terminal.kind = JournalRecord::Kind::kFailed;
        terminal.job_id = job->id;
        terminal.error = job->error;
        journal_append(terminal);
        metrics_.counter("serve.jobs_failed").increment();
        ++replayed_jobs_;
        continue;
      }
      job->checkpoints = std::make_unique<core::SpecialRowStore>(
          journal_->job_checkpoint_dir(job->id));
      const core::SpecialRowStore::RecoveryReport report =
          job->checkpoints->recover_existing();
      metrics_.counter("serve.journal_truncated_bytes")
          .add(report.truncated_bytes);
      if (record.checkpoint_row >= 0) {
        const auto rows = static_cast<std::int64_t>(job->query.size());
        const auto cols = static_cast<std::int64_t>(job->subject.size());
        // last_restartable_row's limit is exclusive; the journaled row
        // itself must stay eligible, and the engine requires a resume
        // row to leave at least one row to compute.
        const std::int64_t limit =
            std::min(record.checkpoint_row + 1, rows - 1);
        job->resume.row =
            job->checkpoints->last_restartable_row(cols, limit);
        job->resume.carried_best.score =
            static_cast<sw::Score>(record.best_score);
        job->resume.carried_best.end.row = record.best_row;
        job->resume.carried_best.end.col = record.best_col;
        job->resumed_row = job->resume.row;
        std::lock_guard<std::mutex> lock(job->progress.mu);
        job->progress.durable_row = job->resume.row;
        job->progress.durable_best = job->resume.carried_best;
        job->progress.journaled_row = record.checkpoint_row;
      }
      queue_.restore(job);
    }
    ++replayed_jobs_;
  }
  metrics_.counter("serve.journal_replayed_jobs").add(replayed_jobs_);
  metrics_.gauge("serve.queue_depth").set(queue_.depth());
}

void AlignServer::journal_append(const JournalRecord& record) {
  if (journal_ == nullptr ||
      journal_frozen_.load(std::memory_order_acquire)) {
    return;
  }
  journal_->append(record);
  metrics_.counter("serve.journal_appends").increment();
}

void AlignServer::maybe_journal_checkpoint(
    const std::shared_ptr<Job>& job, bool force) {
  if (journal_ == nullptr ||
      journal_frozen_.load(std::memory_order_acquire)) {
    return;
  }
  JournalRecord record;
  record.kind = JournalRecord::Kind::kCheckpoint;
  record.job_id = job->id;
  {
    // Decide and claim under the progress lock, append outside it — a
    // progress event must never wait on the journal's file write (and
    // compaction takes these locks in the opposite order).
    std::lock_guard<std::mutex> lock(job->progress.mu);
    if (job->progress.durable_row <= job->progress.journaled_row) {
      return;
    }
    const std::int64_t now = steady_ns();
    const std::int64_t interval_ns =
        config_.journal_checkpoint_interval_ms * 1'000'000;
    if (!force && job->progress.last_checkpoint_ns != 0 &&
        now - job->progress.last_checkpoint_ns < interval_ns) {
      return;
    }
    job->progress.last_checkpoint_ns = now;
    job->progress.journaled_row = job->progress.durable_row;
    record.row = job->progress.durable_row;
    record.best_score = job->progress.durable_best.score;
    record.best_row = job->progress.durable_best.end.row;
    record.best_col = job->progress.durable_best.end.col;
  }
  journal_append(record);
  metrics_.counter("serve.journal_checkpoints").increment();
}

void AlignServer::maybe_compact() {
  if (journal_ == nullptr ||
      journal_frozen_.load(std::memory_order_acquire)) {
    return;
  }
  if (journal_->appends_since_compact() <
      config_.journal_compact_min_appends) {
    return;
  }
  const std::vector<std::shared_ptr<Job>> jobs = queue_.all_jobs();
  std::int64_t terminal = 0;
  std::vector<JournalRecord> snapshot;
  snapshot.reserve(jobs.size() * 2);
  for (const std::shared_ptr<Job>& job : jobs) {
    const JobStatus status = queue_.status(job);
    JournalRecord submit;
    submit.kind = JournalRecord::Kind::kSubmit;
    submit.job_id = job->id;
    submit.spec = job->spec;
    snapshot.push_back(std::move(submit));
    JournalRecord fact;
    fact.job_id = job->id;
    switch (status.state) {
      case JobState::kQueued:
        continue;  // the SUBMIT alone re-enqueues it
      case JobState::kRunning:
      case JobState::kCompleting: {
        ++terminal;  // counts as reclaimable: its records re-shrink
        fact.kind = JournalRecord::Kind::kStart;
        snapshot.push_back(fact);
        JournalRecord checkpoint;
        checkpoint.kind = JournalRecord::Kind::kCheckpoint;
        checkpoint.job_id = job->id;
        {
          std::lock_guard<std::mutex> lock(job->progress.mu);
          checkpoint.row = job->progress.durable_row;
          checkpoint.best_score = job->progress.durable_best.score;
          checkpoint.best_row = job->progress.durable_best.end.row;
          checkpoint.best_col = job->progress.durable_best.end.col;
        }
        if (checkpoint.row >= 0) snapshot.push_back(std::move(checkpoint));
        if (job->cancel.load(std::memory_order_relaxed)) {
          JournalRecord intent;
          intent.kind = JournalRecord::Kind::kCancel;
          intent.job_id = job->id;
          snapshot.push_back(std::move(intent));
        }
        continue;
      }
      case JobState::kDone:
        ++terminal;
        fact.kind = JournalRecord::Kind::kDone;
        fact.score = status.score;
        fact.result_json = job->replayed
                               ? job->replayed_result_json
                               : core::to_json(job->entry.result);
        break;
      case JobState::kFailed:
        ++terminal;
        fact.kind = JournalRecord::Kind::kFailed;
        fact.error = job->error;
        break;
      case JobState::kCancelled:
        ++terminal;
        fact.kind = JournalRecord::Kind::kCancelled;
        break;
    }
    fact.restarts = status.restarts;
    fact.rebalances = status.rebalances;
    fact.lost_devices = status.lost_devices;
    fact.resumed_row = status.resumed_row;
    snapshot.push_back(std::move(fact));
  }
  // Only worth the rewrite when most of the log is settled history.
  if (terminal * 2 < static_cast<std::int64_t>(jobs.size())) return;
  journal_->compact(snapshot);
  metrics_.counter("serve.journal_compactions").increment();
}

void AlignServer::accept_loop() {
  for (;;) {
    std::optional<comm::TcpStream> accepted = listener_.accept();
    if (!accepted.has_value()) return;  // listener closed: shutting down
    auto stream = std::make_shared<comm::TcpStream>(std::move(*accepted));
    std::lock_guard<std::mutex> lock(connections_mu_);
    if (stopping_.load(std::memory_order_acquire)) return;
    Connection connection;
    connection.stream = stream;
    connection.thread = std::thread([this, stream] {
      try {
        handle_connection(*stream);
      } catch (const std::exception& e) {
        // A torn connection is the client's problem, not the daemon's.
        MGPUSW_LOG(kWarn) << "serve: connection dropped: " << e.what();
      } catch (...) {
        MGPUSW_LOG(kWarn) << "serve: connection dropped";
      }
    });
    connections_.push_back(std::move(connection));
  }
}

void AlignServer::handle_http_scrape(comm::TcpStream& stream) {
  // Drain the request head (best effort — we answer any GET with the
  // metrics snapshot), then speak just enough HTTP/1.0 for curl and
  // Prometheus-style scrapers.
  char buffer[512];
  for (int i = 0; i < 64; ++i) {
    const std::size_t got = stream.read_some(buffer, sizeof(buffer));
    if (got == 0) break;
    if (got >= 4 && std::memcmp(buffer + got - 4, "\r\n\r\n", 4) == 0) {
      break;
    }
    if (got < sizeof(buffer)) break;  // short read: head is drained
  }
  const std::string body = metrics_json();
  std::string head =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\n\r\n";
  stream.write_all(head.data(), head.size());
  stream.write_all(body.data(), body.size());
  stream.shutdown();
}

void AlignServer::handle_connection(comm::TcpStream& stream) {
  // Protocol sniff: a framed message starts with its u32 length prefix,
  // an HTTP scrape starts with "GET ". Read the first four bytes by
  // hand, then either answer the scrape or finish reading the frame.
  std::uint8_t prefix[4];
  std::size_t have = 0;
  while (have < sizeof(prefix)) {
    const std::size_t got =
        stream.read_some(prefix + have, sizeof(prefix) - have);
    if (got == 0) {
      if (have == 0) return;  // clean disconnect, nothing sent
      throw ProtocolError("connection closed inside the first frame");
    }
    have += got;
  }
  if (std::memcmp(prefix, "GET ", 4) == 0) {
    handle_http_scrape(stream);
    return;
  }

  // First frame: the length prefix is already consumed.
  std::uint32_t length = 0;
  std::memcpy(&length, prefix, sizeof(length));
  std::optional<Message> first;
  try {
    if (length > comm::kMaxFrameBytes) {
      throw ProtocolError("frame length " + std::to_string(length) +
                          " exceeds the frame cap");
    }
    std::vector<std::uint8_t> payload(length);
    if (length > 0) stream.read_all(payload.data(), payload.size());
    const comm::MessageFrame frame =
        comm::deserialize_message(payload.data(), payload.size());
    Message message;
    message.type = static_cast<FrameType>(frame.type);
    message.body.assign(frame.body.begin(), frame.body.end());
    first = std::move(message);
  } catch (const ProtocolError& e) {
    send_message(stream, FrameType::kError,
                 encode_error("bad-request", e.what()));
    stream.shutdown();
    return;
  }

  bool first_pending = true;
  for (;;) {
    std::optional<Message> message;
    if (first_pending) {
      message = std::move(first);
      first_pending = false;
    } else {
      try {
        message = recv_message(stream);
      } catch (const ProtocolError& e) {
        // The stream position is untrustworthy after a framing error:
        // answer and drop the connection (never the daemon).
        send_message(stream, FrameType::kError,
                     encode_error("bad-request", e.what()));
        stream.shutdown();
        return;
      }
    }
    if (!message.has_value()) return;  // client closed
    if (!dispatch(stream, *message)) return;
  }
}

bool AlignServer::dispatch(comm::TcpStream& stream,
                           const Message& message) {
  try {
    switch (message.type) {
      case FrameType::kSubmit:
        handle_submit(stream, message.body);
        return true;
      case FrameType::kStatus: {
        const std::shared_ptr<Job> job =
            queue_.find(decode_job_id(message.body));
        send_message(stream, FrameType::kStatusOk,
                     encode_status(queue_.status(job)));
        return true;
      }
      case FrameType::kProgress: {
        const std::shared_ptr<Job> job =
            queue_.find(decode_job_id(message.body));
        handle_progress_stream(stream, job);
        return true;
      }
      case FrameType::kCancel: {
        const std::int64_t job_id = decode_job_id(message.body);
        const JobState after = queue_.cancel(job_id);
        JournalRecord record;
        record.job_id = job_id;
        if (after == JobState::kCancelled) {
          // Cancelled right in the queue; running jobs are counted by
          // the scheduler when they actually stop.
          metrics_.counter("serve.jobs_cancelled").increment();
          record.kind = JournalRecord::Kind::kCancelled;
          journal_append(record);
        } else if (after == JobState::kRunning) {
          // Intent only: the scheduler journals the terminal when the
          // engine actually stops. If the daemon dies first, replay
          // honours the intent instead of re-running the job.
          record.kind = JournalRecord::Kind::kCancel;
          journal_append(record);
        }
        send_message(stream, FrameType::kCancelOk,
                     encode_status(queue_.status(queue_.find(job_id))));
        return true;
      }
      case FrameType::kResult: {
        const std::int64_t job_id = decode_job_id(message.body);
        const bool wait = decode_wait_flag(message.body);
        const std::shared_ptr<Job> job = queue_.find(job_id);
        if (wait) queue_.wait_terminal(job);
        JobStatus status = queue_.status(job);
        if (!is_terminal(status.state)) {
          throw ServeError("not-ready",
                           "job " + std::to_string(job_id) + " is " +
                               job_state_name(status.state));
        }
        if (status.state == JobState::kDone) {
          // Safe to read entry: terminal states are published under the
          // queue mutex after the run finished. A replayed job never
          // ran in this daemon life — its result body comes verbatim
          // from the journal instead.
          status.result_json = job->replayed
                                   ? job->replayed_result_json
                                   : core::to_json(job->entry.result);
        }
        send_message(stream, FrameType::kResultOk, encode_status(status));
        return true;
      }
      case FrameType::kMetrics:
        send_message(stream, FrameType::kMetricsOk, metrics_json());
        return true;
      case FrameType::kShutdown: {
        if (decode_shutdown_drain(message.body)) {
          // Drain before acknowledging: once the flag is up, stop()
          // lets running jobs finish and journal their terminals.
          request_drain();
        }
        send_message(stream, FrameType::kShutdownOk, "{}");
        {
          std::lock_guard<std::mutex> lock(shutdown_mu_);
          shutdown_requested_ = true;
        }
        // stop() must not run on this thread (it joins it); run() or
        // the owner reacts to the flag.
        shutdown_cv_.notify_all();
        return false;
      }
      default:
        throw ServeError("bad-request",
                         "frame type " +
                             std::to_string(static_cast<int>(message.type)) +
                             " is not a request");
    }
  } catch (const ServeError& e) {
    send_message(stream, FrameType::kError,
                 encode_error(e.code(), e.what()));
    return true;
  } catch (const ProtocolError& e) {
    send_message(stream, FrameType::kError,
                 encode_error("bad-request", e.what()));
    stream.shutdown();
    return false;
  } catch (const Error& e) {
    send_message(stream, FrameType::kError,
                 encode_error("internal", e.what()));
    return true;
  }
}

void AlignServer::handle_submit(comm::TcpStream& stream,
                                const std::string& body) {
  const SubmitRequest request = decode_submit(body);
  seq::Sequence query;
  seq::Sequence subject;
  make_sequences(request, query, subject);
  std::shared_ptr<Job> job;
  bool deduped = false;
  try {
    job = queue_.submit(request, std::move(query), std::move(subject),
                        &deduped);
  } catch (const ServeError&) {
    metrics_.counter("serve.jobs_rejected").increment();
    throw;
  }
  if (deduped) {
    // The idempotency key matched an existing job (possibly replayed
    // from the journal after a restart): hand back its id, whatever
    // state it is in — nothing new to journal or schedule.
    metrics_.counter("serve.jobs_deduped").increment();
    send_message(stream, FrameType::kSubmitOk, encode_job_ref(job->id));
    return;
  }
  // Write-ahead: the SUBMIT record hits the log before the client sees
  // SUBMIT_OK, so an acknowledged job can never vanish in a crash.
  JournalRecord record;
  record.kind = JournalRecord::Kind::kSubmit;
  record.job_id = job->id;
  record.spec = job->spec;
  journal_append(record);
  metrics_.counter("serve.jobs_accepted").increment();
  metrics_.gauge("serve.queue_depth").set(queue_.depth());
  send_message(stream, FrameType::kSubmitOk, encode_job_ref(job->id));
}

void AlignServer::handle_progress_stream(
    comm::TcpStream& stream, const std::shared_ptr<Job>& job) {
  ProgressUpdate last;
  last.completed_units = -1;  // force the first event out
  for (;;) {
    const JobStatus status = queue_.status(job);
    ProgressUpdate update = job->progress_update();
    if (is_terminal(status.state)) {
      send_message(stream, FrameType::kProgressDone,
                   encode_status(status));
      return;
    }
    if (update.completed_units != last.completed_units ||
        update.restarts != last.restarts ||
        update.rebalances != last.rebalances) {
      send_message(stream, FrameType::kProgressEvent,
                   encode_progress(update));
      last = update;
    }
    std::this_thread::sleep_for(kProgressPollInterval);
  }
}

void AlignServer::scheduler_loop() {
  for (;;) {
    const std::shared_ptr<Job> job = queue_.next();
    if (job == nullptr) return;  // queue closed and drained
    metrics_.gauge("serve.queue_depth").set(queue_.depth());
    run_job(job);
  }
}

void AlignServer::run_job(const std::shared_ptr<Job>& job) {
  core::BatchConfig batch;
  batch.engine.scheme = config_.scheme;
  batch.engine.block_rows = config_.block;
  batch.engine.block_cols = config_.block;
  batch.engine.obs.metrics = &metrics_;
  batch.devices_per_item = config_.devices_per_job;
  batch.enable_recovery = config_.enable_recovery;
  batch.recovery = config_.recovery;
  const bool journaling = journal_ != nullptr;
  // Device threads stream progress into the job's snapshot; a restart
  // resets the per-device table (the engine re-plans from scratch, so
  // stale device rows would double-count). In journal mode the same
  // events also advance the durable (row, best) cursor: once every
  // device of the attempt reported, min(safe_row) bounds the rows whose
  // cells are all settled, and the merged bests cover them — that pair
  // is what a CHECKPOINT record may persist.
  batch.engine.progress = [this, job,
                           journaling](const core::ProgressEvent& event) {
    bool checkpoint = false;
    {
      std::lock_guard<std::mutex> lock(job->progress.mu);
      if (event.restarts != job->progress.restarts) {
        job->progress.device_units.clear();
        job->progress.device_safe.clear();
        job->progress.restarts = event.restarts;
      }
      job->progress.rebalances = event.rebalances;
      job->progress.device_units[event.device_index] = {
          event.completed_units, event.total_units};
      if (journaling) {
        job->progress.device_safe[event.device_index] = {event.safe_row,
                                                         event.best};
        if (static_cast<int>(job->progress.device_safe.size()) >=
            event.device_count) {
          std::int64_t row = event.safe_row;
          sw::ScoreResult best = job->progress.durable_best;
          for (const auto& [device, pair] : job->progress.device_safe) {
            row = std::min(row, pair.first);
            if (sw::improves(pair.second, best)) best = pair.second;
          }
          if (row > job->progress.durable_row) {
            // Merging bests that may cover cells above `row` is safe:
            // a resumed run recomputes those cells and re-merges the
            // same values (sw::improves is a total order), so the
            // journaled pair still recovers bit-identically.
            job->progress.durable_row = row;
            job->progress.durable_best = best;
            checkpoint = true;
          }
        }
      }
    }
    if (checkpoint) maybe_journal_checkpoint(job);
  };
  // Injected faults arm on the first job only: injector ordinals are
  // lease-local, so sharing one injector across concurrent jobs would
  // replay a death into every job's device 0.
  if (injector_ != nullptr && !fault_armed_.exchange(true)) {
    batch.engine.fault = injector_.get();
  }

  core::BatchItem item;
  item.label = job->label;
  item.query = job->query;
  item.subject = job->subject;
  item.priority = job->priority;
  item.cancel = &job->cancel;
  if (journaling) {
    // Checkpoints go to the job's directory under the journal so the
    // next daemon life can find them; the resume seed is non-trivial
    // only for jobs replayed mid-flight.
    if (job->checkpoints == nullptr) {
      job->checkpoints = std::make_unique<core::SpecialRowStore>(
          journal_->job_checkpoint_dir(job->id));
    }
    item.checkpoints = job->checkpoints.get();
    item.resume = job->resume;
    // Before each in-process restart, recovery hands us the exact
    // (resume row, carried best) it will seed the next attempt with —
    // a restart-grade pair by construction, so journal it eagerly and
    // rebase the durability cursor on it.
    item.on_restart = [this, job](const core::ResumeSpec& spec) {
      {
        std::lock_guard<std::mutex> lock(job->progress.mu);
        job->progress.device_safe.clear();
        job->progress.durable_row = spec.row;
        job->progress.durable_best = spec.carried_best;
        job->progress.journaled_row =
            std::min(job->progress.journaled_row, spec.row);
      }
      maybe_journal_checkpoint(job, /*force=*/true);
    };
    JournalRecord start;
    start.kind = JournalRecord::Kind::kStart;
    start.job_id = job->id;
    journal_append(start);
  }

  JournalRecord terminal;
  terminal.job_id = job->id;
  terminal.resumed_row = job->resumed_row;
  try {
    core::run_batch_item(batch, *fleet_, item, job->entry);
  } catch (const std::exception& e) {
    terminal.restarts = job->entry.restarts;
    terminal.rebalances = job->progress_update().rebalances;
    terminal.lost_devices = job->entry.lost_devices;
    if (job->cancel.load(std::memory_order_relaxed)) {
      terminal.kind = JournalRecord::Kind::kCancelled;
      journal_append(terminal);
      metrics_.counter("serve.jobs_cancelled").increment();
      queue_.finish(job, JobState::kCancelled);
    } else {
      terminal.kind = JournalRecord::Kind::kFailed;
      terminal.error = e.what();
      journal_append(terminal);
      metrics_.counter("serve.jobs_failed").increment();
      queue_.finish(job, JobState::kFailed, e.what());
    }
    maybe_compact();
    return;
  }
  queue_.mark_completing(job);
  // Write-ahead: the DONE record (with the full result body) is on
  // disk before the job turns terminal, so no client can observe a
  // result the journal could still lose.
  terminal.kind = JournalRecord::Kind::kDone;
  terminal.score = job->entry.result.best.score;
  terminal.restarts = job->entry.restarts;
  terminal.rebalances = job->progress_update().rebalances;
  terminal.lost_devices = job->entry.lost_devices;
  terminal.result_json = core::to_json(job->entry.result);
  journal_append(terminal);
  metrics_.counter("serve.jobs_completed").increment();
  queue_.finish(job, JobState::kDone);
  metrics_.histogram("serve.submit_to_done_ms")
      .observe(static_cast<double>(job->done_ns - job->submit_ns) / 1e6);
  maybe_compact();
}

}  // namespace mgpusw::serve
