// Wire protocol of the alignment service (mgpusw-serve).
//
// Every message is one comm::MessageFrame (CRC-protected envelope, see
// comm/serialize.hpp) carried in one length-prefixed TCP frame
// (comm/tcp_stream.hpp). The frame type selects the request/reply kind;
// bodies are JSON documents written with base::JsonWriter and parsed
// with base::json — the same single implementation every other emitter
// in the tree uses, so client and server cannot drift apart.
//
//   request            reply
//   ───────            ─────
//   SUBMIT             SUBMIT_OK { job_id } | ERROR (quota, bad spec)
//   STATUS             STATUS_OK { job status }
//   PROGRESS           PROGRESS_EVENT* then PROGRESS_DONE (a stream)
//   CANCEL             CANCEL_OK { job status after the cancel }
//   RESULT             RESULT_OK { job status + result JSON }
//   METRICS            METRICS_OK (body = registry snapshot JSON)
//   SHUTDOWN           SHUTDOWN_OK
//
// Malformed frames and bodies throw ProtocolError on the decoding side;
// the server answers with ERROR and drops the connection (the stream
// position is untrustworthy after a framing error), it never dies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/json.hpp"
#include "comm/serialize.hpp"
#include "comm/tcp_stream.hpp"

namespace mgpusw::serve {

enum class FrameType : std::uint8_t {
  kSubmit = 1,
  kSubmitOk = 2,
  kStatus = 3,
  kStatusOk = 4,
  kProgress = 5,
  kProgressEvent = 6,
  kProgressDone = 7,
  kCancel = 8,
  kCancelOk = 9,
  kResult = 10,
  kResultOk = 11,
  kMetrics = 12,
  kMetricsOk = 13,
  kError = 14,
  kShutdown = 15,
  kShutdownOk = 16,
};

/// Lifecycle of a job inside the daemon. Queued and running jobs can be
/// cancelled; completing means the engine finished and the result is
/// being published (a cancel arriving now is a no-op); done / failed /
/// cancelled are terminal.
enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kCompleting,
  kDone,
  kFailed,
  kCancelled,
};

[[nodiscard]] const char* job_state_name(JobState state);
/// Throws ProtocolError on an unknown name.
[[nodiscard]] JobState job_state_from_name(std::string_view name);
[[nodiscard]] inline bool is_terminal(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

/// An ERROR reply, rethrown client-side as ServeError. Codes:
///   bad-request     malformed frame or body
///   quota-exceeded  tenant's pending quota full and policy rejects
///   not-found       unknown job id
///   not-ready       RESULT with wait=false on a non-terminal job
///   job-failed      RESULT for a job that failed
///   shutting-down   submit refused during shutdown
///   internal        anything else
class ServeError : public Error {
 public:
  ServeError(std::string code, const std::string& message)
      : Error(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// SUBMIT body. The comparison is either inline (ACGT strings) or a
/// synthetic spec (rows x cols generated server-side from `seed` — the
/// cheap way to ship a megabase benchmark job in a 40-byte request).
struct SubmitRequest {
  std::string tenant;
  std::string label;
  int priority = 0;
  std::string query;    // inline bases; empty = synthetic
  std::string subject;  // inline bases; empty = synthetic
  std::int64_t rows = 0;  // synthetic query length
  std::int64_t cols = 0;  // synthetic subject length
  std::int64_t seed = 1;  // synthetic generator seed
  /// Client-chosen dedupe token, scoped per tenant. A resubmission with
  /// the same key (e.g. after a reconnect, or to a restarted daemon
  /// that replayed its journal) returns the original job instead of
  /// queueing a duplicate. Empty = no deduplication.
  std::string idempotency_key;
};

/// The job-status object shared by STATUS_OK / CANCEL_OK / RESULT_OK /
/// PROGRESS_DONE bodies. `result_json` (the core::to_json run report)
/// is only present on RESULT_OK of a done job.
struct JobStatus {
  std::int64_t job_id = -1;
  JobState state = JobState::kQueued;
  std::string tenant;
  std::string label;
  int restarts = 0;
  int rebalances = 0;
  std::vector<std::string> lost_devices;
  std::string error;        // failure message (failed jobs)
  std::int64_t score = -1;  // best score (done jobs)
  std::string result_json;  // full run report (RESULT_OK only)
  /// Checkpoint row this job's run resumed from after a daemon restart
  /// (journal replay); -1 when the job ran start to finish in one
  /// daemon life.
  std::int64_t resumed_row = -1;
};

/// One PROGRESS_EVENT body: job-level totals aggregated over devices.
struct ProgressUpdate {
  std::int64_t job_id = -1;
  std::int64_t completed_units = 0;
  std::int64_t total_units = 0;
  int restarts = 0;
  int rebalances = 0;
};

// --- body encoding (JSON) --------------------------------------------------
// Decoders throw ProtocolError on malformed JSON or missing fields.

[[nodiscard]] std::string encode_submit(const SubmitRequest& request);
[[nodiscard]] SubmitRequest decode_submit(const std::string& body);

/// {"job_id": N} — the body of STATUS / PROGRESS / CANCEL / SUBMIT_OK;
/// RESULT adds {"wait": bool}.
[[nodiscard]] std::string encode_job_ref(std::int64_t job_id);
[[nodiscard]] std::string encode_result_request(std::int64_t job_id,
                                                bool wait);
[[nodiscard]] std::int64_t decode_job_id(const std::string& body);
[[nodiscard]] bool decode_wait_flag(const std::string& body);

[[nodiscard]] std::string encode_status(const JobStatus& status);
[[nodiscard]] JobStatus decode_status(const std::string& body);

[[nodiscard]] std::string encode_progress(const ProgressUpdate& update);
[[nodiscard]] ProgressUpdate decode_progress(const std::string& body);

/// SHUTDOWN body: {"drain": bool}. Draining stops admission, lets
/// running jobs finish (journaling their terminal records), and leaves
/// queued jobs journaled for the next daemon life; non-drain stops hard
/// (crash-equivalent for the journal). Decoding defaults to false so
/// pre-drain clients keep their immediate-stop behaviour.
[[nodiscard]] std::string encode_shutdown(bool drain);
[[nodiscard]] bool decode_shutdown_drain(const std::string& body);

[[nodiscard]] std::string encode_error(const std::string& code,
                                       const std::string& message);
/// Throws the decoded ServeError (never returns normally).
[[noreturn]] void throw_decoded_error(const std::string& body);

// --- framing ---------------------------------------------------------------

/// Sends one protocol message: MessageFrame envelope in one TCP frame.
void send_message(comm::TcpStream& stream, FrameType type,
                  const std::string& body);

struct Message {
  FrameType type = FrameType::kError;
  std::string body;
};

/// Receives one message; nullopt on clean disconnect. Throws
/// ProtocolError on framing violations (oversized, bad magic, bad CRC,
/// unknown frame type).
[[nodiscard]] std::optional<Message> recv_message(comm::TcpStream& stream);

}  // namespace mgpusw::serve
