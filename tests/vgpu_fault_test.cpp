// Fault plan grammar and injector semantics.
#include <gtest/gtest.h>

#include "base/error.hpp"
#include "vgpu/device.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using vgpu::FaultInjector;
using vgpu::FaultKind;
using vgpu::FaultPlan;
using vgpu::FaultSpec;
using vgpu::format_fault_plan;
using vgpu::parse_fault_plan;

TEST(FaultPlanTest, EmptyStringYieldsEmptyPlan) {
  EXPECT_TRUE(parse_fault_plan("").empty());
  EXPECT_TRUE(parse_fault_plan("  ").empty());
}

TEST(FaultPlanTest, ParsesEveryClauseKind) {
  const FaultPlan plan = parse_fault_plan(
      "dev1:die@kernel=40;dev0:die@block=2/3;dev2:die@ms=150;"
      "dev0:kernel-fail@kernel=7;dev1:alloc-fail@bytes=4096;"
      "chan0:drop@chunk=3;chan1:corrupt@chunk=5;chan0:delay@chunk=2,ms=20");
  ASSERT_EQ(plan.faults.size(), 8u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kDie);
  EXPECT_EQ(plan.faults[0].target, 1);
  EXPECT_EQ(plan.faults[0].kernel, 40);
  EXPECT_EQ(plan.faults[1].block_i, 2);
  EXPECT_EQ(plan.faults[1].block_j, 3);
  EXPECT_EQ(plan.faults[2].ms, 150);
  EXPECT_EQ(plan.faults[3].kind, FaultKind::kKernelFail);
  EXPECT_EQ(plan.faults[4].kind, FaultKind::kAllocFail);
  EXPECT_EQ(plan.faults[4].bytes, 4096);
  EXPECT_EQ(plan.faults[5].kind, FaultKind::kChunkDrop);
  EXPECT_EQ(plan.faults[5].chunk, 3);
  EXPECT_EQ(plan.faults[6].kind, FaultKind::kChunkCorrupt);
  EXPECT_EQ(plan.faults[7].kind, FaultKind::kChunkDelay);
  EXPECT_EQ(plan.faults[7].chunk, 2);
  EXPECT_EQ(plan.faults[7].ms, 20);
}

TEST(FaultPlanTest, FormatParsesBackToTheSamePlan) {
  const FaultPlan plan = parse_fault_plan(
      "dev1:die@kernel=40;chan0:drop@chunk=3;chan2:delay@chunk=1,ms=9;"
      "dev0:alloc-fail@bytes=100");
  EXPECT_EQ(parse_fault_plan(format_fault_plan(plan)), plan);
}

TEST(FaultPlanTest, RejectsMalformedClauses) {
  EXPECT_THROW((void)parse_fault_plan("gpu0:die@kernel=1"),
               InvalidArgument);
  EXPECT_THROW((void)parse_fault_plan("dev0:explode@kernel=1"),
               InvalidArgument);
  EXPECT_THROW((void)parse_fault_plan("dev0:die"), InvalidArgument);
  EXPECT_THROW((void)parse_fault_plan("dev0:die@chunk=1"),
               InvalidArgument);
  EXPECT_THROW((void)parse_fault_plan("devX:die@kernel=1"),
               InvalidArgument);
  EXPECT_THROW((void)parse_fault_plan("dev0:die@kernel=-3"),
               InvalidArgument);
  EXPECT_THROW((void)parse_fault_plan("chan0:drop@kernel=1"),
               InvalidArgument);
  EXPECT_THROW((void)parse_fault_plan("dev0:die@block=2"),
               InvalidArgument);
}

TEST(FaultInjectorTest, DiesAtKernelOrdinalAndStaysDead) {
  FaultInjector injector(parse_fault_plan("dev1:die@kernel=2"));
  // Device 0 is unaffected.
  for (int k = 0; k < 5; ++k) injector.on_kernel_launch(0, k, 0);
  injector.on_kernel_launch(1, 0, 0);
  injector.on_kernel_launch(1, 0, 1);
  EXPECT_FALSE(injector.device_dead(1));
  EXPECT_THROW(injector.on_kernel_launch(1, 0, 2), DeviceLostError);
  EXPECT_TRUE(injector.device_dead(1));
  // Persistent: every later launch and allocation fails too.
  EXPECT_THROW(injector.on_kernel_launch(1, 0, 3), DeviceLostError);
  EXPECT_THROW(injector.on_alloc(1, 1), DeviceLostError);
  EXPECT_EQ(injector.fired(), 1);
}

TEST(FaultInjectorTest, DiesAtBlockCoordinates) {
  FaultInjector injector(parse_fault_plan("dev0:die@block=1/2"));
  injector.on_kernel_launch(0, 0, 0);
  injector.on_kernel_launch(0, 1, 1);
  EXPECT_THROW(injector.on_kernel_launch(0, 1, 2), DeviceLostError);
}

TEST(FaultInjectorTest, KernelFailIsTransientAndOneShot) {
  FaultInjector injector(parse_fault_plan("dev0:kernel-fail@kernel=1"));
  injector.on_kernel_launch(0, 0, 0);
  EXPECT_THROW(injector.on_kernel_launch(0, 0, 1), TransientError);
  EXPECT_FALSE(injector.device_dead(0));
  // One-shot: consumed, the retry passes.
  injector.on_kernel_launch(0, 0, 1);
  injector.on_kernel_launch(0, 0, 2);
  EXPECT_EQ(injector.fired(), 1);
}

TEST(FaultInjectorTest, AllocFailTripsOnCumulativeBytes) {
  FaultInjector injector(parse_fault_plan("dev0:alloc-fail@bytes=1000"));
  injector.on_alloc(0, 512);
  EXPECT_THROW(injector.on_alloc(0, 1024), DeviceLostError);
  EXPECT_TRUE(injector.device_dead(0));
}

TEST(FaultInjectorTest, ChunkFaultsAreOneShotPerChannel) {
  FaultInjector injector(parse_fault_plan(
      "chan0:drop@chunk=3;chan1:corrupt@chunk=3;chan0:delay@chunk=5,ms=7"));
  EXPECT_FALSE(injector.on_chunk(0, 2).drop);
  EXPECT_TRUE(injector.on_chunk(0, 3).drop);
  EXPECT_FALSE(injector.on_chunk(0, 3).drop);  // consumed
  EXPECT_TRUE(injector.on_chunk(1, 3).corrupt);
  EXPECT_EQ(injector.on_chunk(0, 5).delay_ms, 7);
  EXPECT_EQ(injector.fired(), 3);
}

TEST(FaultInjectorTest, DeviceAllocatorConsultsTheInjector) {
  vgpu::Device device(vgpu::toy_device(10.0));
  FaultInjector injector(parse_fault_plan("dev0:alloc-fail@bytes=100"));
  device.set_fault_injector(&injector, 0);
  EXPECT_THROW((void)device.allocate(256), DeviceLostError);
  device.clear_fault_injector();
  // Disarmed: the same allocation succeeds (the failed one rolled back
  // its accounting).
  vgpu::DeviceBuffer buffer = device.allocate(256);
  EXPECT_EQ(device.memory_used(), 256);
}

}  // namespace
}  // namespace mgpusw
