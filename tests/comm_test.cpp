#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "base/error.hpp"
#include "comm/channel.hpp"
#include "comm/serialize.hpp"

namespace mgpusw {
namespace {

comm::BorderChunk make_chunk(std::int64_t number, std::int64_t rows) {
  comm::BorderChunk chunk;
  chunk.sequence_number = number;
  chunk.first_row = number * rows;
  chunk.corner_h = number * 3;
  chunk.h.resize(static_cast<std::size_t>(rows));
  chunk.e.resize(static_cast<std::size_t>(rows));
  for (std::int64_t k = 0; k < rows; ++k) {
    chunk.h[static_cast<std::size_t>(k)] =
        static_cast<sw::Score>(number * 100 + k);
    chunk.e[static_cast<std::size_t>(k)] =
        static_cast<sw::Score>(-(number * 100 + k));
  }
  return chunk;
}

// ---------------------------------------------------------------------------
// serialization

TEST(SerializeTest, RoundTrip) {
  const auto chunk = make_chunk(7, 33);
  const auto frame = comm::serialize_chunk(chunk);
  EXPECT_EQ(frame.size(), comm::frame_bytes(33));
  const auto parsed = comm::deserialize_chunk(frame.data(), frame.size());
  EXPECT_EQ(parsed, chunk);
}

TEST(SerializeTest, EmptyChunkRoundTrip) {
  comm::BorderChunk chunk;
  const auto frame = comm::serialize_chunk(chunk);
  const auto parsed = comm::deserialize_chunk(frame.data(), frame.size());
  EXPECT_EQ(parsed, chunk);
}

TEST(SerializeTest, BadMagicThrows) {
  auto frame = comm::serialize_chunk(make_chunk(1, 4));
  frame[0] ^= 0xFF;
  EXPECT_THROW(comm::deserialize_chunk(frame.data(), frame.size()),
               IoError);
}

TEST(SerializeTest, TruncatedFrameThrows) {
  const auto frame = comm::serialize_chunk(make_chunk(1, 4));
  EXPECT_THROW(comm::deserialize_chunk(frame.data(), frame.size() - 3),
               IoError);
  EXPECT_THROW(comm::deserialize_chunk(frame.data(), 5), IoError);
}

TEST(SerializeTest, OversizedFrameThrows) {
  auto frame = comm::serialize_chunk(make_chunk(1, 4));
  frame.push_back(0);
  EXPECT_THROW(comm::deserialize_chunk(frame.data(), frame.size()),
               IoError);
}

// ---------------------------------------------------------------------------
// channel semantics, shared by both transports

class ChannelParamTest : public ::testing::TestWithParam<const char*> {
 protected:
  comm::ChannelPair make(std::size_t capacity) {
    return std::string(GetParam()) == "tcp"
               ? comm::make_tcp_channel(capacity)
               : comm::make_ring_channel(capacity);
  }
};

TEST_P(ChannelParamTest, DeliversInOrder) {
  auto channel = make(4);
  std::thread producer([&] {
    for (int i = 0; i < 50; ++i) {
      channel.sink->send(make_chunk(i, 16));
    }
    channel.sink->close();
  });
  for (int i = 0; i < 50; ++i) {
    auto chunk = channel.source->recv();
    ASSERT_TRUE(chunk.has_value());
    EXPECT_EQ(*chunk, make_chunk(i, 16));
  }
  EXPECT_EQ(channel.source->recv(), std::nullopt);
  producer.join();
}

TEST_P(ChannelParamTest, CapacityBlocksProducer) {
  auto channel = make(2);
  std::atomic<int> sent{0};
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      channel.sink->send(make_chunk(i, 8));
      sent.fetch_add(1);
    }
    channel.sink->close();
  });
  // Give the producer time to fill the buffer; it must stop at the
  // capacity (ring: exactly 2; tcp: 2 frames + what sits in the kernel
  // socket buffer is still bounded by the ack window of 2 sends before
  // the first ack).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const int filled = sent.load();
  EXPECT_LT(filled, 6);
  // Drain everything; producer must finish.
  int received = 0;
  while (channel.source->recv().has_value()) ++received;
  EXPECT_EQ(received, 6);
  producer.join();
  EXPECT_EQ(sent.load(), 6);
  EXPECT_GT(channel.sink->stats().producer_stall_ns, 0);
}

TEST_P(ChannelParamTest, StatsCountChunksAndBytes) {
  auto channel = make(8);
  std::thread producer([&] {
    for (int i = 0; i < 5; ++i) channel.sink->send(make_chunk(i, 32));
    channel.sink->close();
  });
  while (channel.source->recv().has_value()) {
  }
  producer.join();
  const auto stats = channel.sink->stats();
  EXPECT_EQ(stats.chunks_sent, 5);
  EXPECT_GE(stats.bytes_sent,
            5 * static_cast<std::int64_t>(2 * 32 * sizeof(sw::Score)));
}

TEST_P(ChannelParamTest, CloseWithoutSends) {
  auto channel = make(2);
  channel.sink->close();
  EXPECT_EQ(channel.source->recv(), std::nullopt);
}

TEST_P(ChannelParamTest, LargeChunks) {
  auto channel = make(2);
  const auto big = make_chunk(3, 100'000);
  std::thread producer([&] {
    channel.sink->send(big);
    channel.sink->close();
  });
  const auto received = channel.source->recv();
  producer.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, big);
}

INSTANTIATE_TEST_SUITE_P(Transports, ChannelParamTest,
                         ::testing::Values("ring", "tcp"));

// ring-specific: push on closed channel throws
TEST(RingChannelTest, SendAfterCloseThrows) {
  auto channel = comm::make_ring_channel(2);
  channel.sink->close();
  EXPECT_THROW(channel.sink->send(make_chunk(0, 4)), Error);
}

TEST(RingChannelTest, ConsumerStallAccounted) {
  auto channel = comm::make_ring_channel(2);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    channel.sink->send(make_chunk(0, 4));
    channel.sink->close();
  });
  (void)channel.source->recv();
  producer.join();
  EXPECT_GT(channel.source->stats().consumer_stall_ns, 5'000'000);
}

TEST(ChannelTest, ZeroCapacityRejected) {
  EXPECT_THROW(comm::make_ring_channel(0), InvalidArgument);
  EXPECT_THROW(comm::make_tcp_channel(0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// TCP timeouts (--comm-timeout-ms)

TEST(TcpTimeoutTest, NegativeTimeoutRejected) {
  EXPECT_THROW(comm::make_tcp_channel(2, -1), InvalidArgument);
}

TEST(TcpTimeoutTest, SilentPeerSurfacesAsTransientError) {
  // Nobody ever sends: a bounded recv must fail as TransientError (so
  // the recovery layer can retry) instead of blocking the wavefront
  // forever.
  auto channel = comm::make_tcp_channel(4, 100);
  try {
    (void)channel.source->recv();
    FAIL() << "expected TransientError";
  } catch (const TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
}

TEST(TcpTimeoutTest, GenerousTimeoutDeliversNormally) {
  auto channel = comm::make_tcp_channel(4, 5000);
  std::thread producer([&] {
    channel.sink->send(make_chunk(0, 16));
    channel.sink->close();
  });
  const auto chunk = channel.source->recv();
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(*chunk, make_chunk(0, 16));
  EXPECT_EQ(channel.source->recv(), std::nullopt);
  producer.join();
}

// ---------------------------------------------------------------------------
// fault-injecting sink decorator

TEST(FaultySinkTest, DropsExactlyTheDoomedChunk) {
  auto channel = comm::make_ring_channel(4);
  auto sink = comm::make_faulty_sink(
      std::move(channel.sink), [](std::int64_t sequence) {
        return comm::ChunkFault{/*drop=*/sequence == 1, false, 0};
      });
  for (int i = 0; i < 3; ++i) sink->send(make_chunk(i, 8));
  sink->close();
  EXPECT_EQ(*channel.source->recv(), make_chunk(0, 8));
  EXPECT_EQ(*channel.source->recv(), make_chunk(2, 8));  // 1 vanished
  EXPECT_EQ(channel.source->recv(), std::nullopt);
  EXPECT_EQ(sink->stats().chunks_sent, 2);  // dropped chunk never sent
}

TEST(FaultySinkTest, CorruptionScramblesTheSequenceNumber) {
  auto channel = comm::make_ring_channel(4);
  auto sink = comm::make_faulty_sink(
      std::move(channel.sink), [](std::int64_t sequence) {
        return comm::ChunkFault{false, /*corrupt=*/sequence == 0, 0};
      });
  sink->send(make_chunk(0, 8));
  sink->close();
  const auto chunk = channel.source->recv();
  ASSERT_TRUE(chunk.has_value());
  // The receiver's sequence check (BorderExchange) keys off this field;
  // the payload is untouched.
  EXPECT_NE(chunk->sequence_number, 0);
  EXPECT_EQ(chunk->h, make_chunk(0, 8).h);
}

TEST(FaultySinkTest, DelayHoldsTheChunkBack) {
  auto channel = comm::make_ring_channel(4);
  auto sink = comm::make_faulty_sink(
      std::move(channel.sink), [](std::int64_t sequence) {
        return comm::ChunkFault{false, false,
                                /*delay_ms=*/sequence == 0 ? 30 : 0};
      });
  const auto start = std::chrono::steady_clock::now();
  sink->send(make_chunk(0, 8));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  sink->close();
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
  EXPECT_EQ(*channel.source->recv(), make_chunk(0, 8));  // intact, just late
}

}  // namespace
}  // namespace mgpusw
