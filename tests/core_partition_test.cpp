#include <gtest/gtest.h>

#include <numeric>

#include "base/error.hpp"
#include "core/partition.hpp"

namespace mgpusw {
namespace {

void expect_tiles(const std::vector<core::ColumnRange>& ranges,
                  std::int64_t total_cols) {
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().first_col, 0);
  for (std::size_t d = 0; d + 1 < ranges.size(); ++d) {
    EXPECT_EQ(ranges[d].end_col(), ranges[d + 1].first_col);
  }
  EXPECT_EQ(ranges.back().end_col(), total_cols);
  for (const auto& range : ranges) {
    EXPECT_GT(range.cols, 0);
  }
}

TEST(PartitionTest, SingleDeviceTakesAll) {
  const auto ranges = core::partition_columns(1000, {1.0}, 64);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (core::ColumnRange{0, 1000}));
}

TEST(PartitionTest, EqualWeightsNearEqualSplit) {
  const auto ranges = core::partition_columns_equal(1200, 3, 100);
  expect_tiles(ranges, 1200);
  EXPECT_EQ(ranges[0].cols, 400);
  EXPECT_EQ(ranges[1].cols, 400);
  EXPECT_EQ(ranges[2].cols, 400);
}

TEST(PartitionTest, ProportionalToWeights) {
  const auto ranges = core::partition_columns(4000, {1.0, 3.0}, 100);
  expect_tiles(ranges, 4000);
  EXPECT_EQ(ranges[0].cols, 1000);
  EXPECT_EQ(ranges[1].cols, 3000);
}

TEST(PartitionTest, GranularityRespectedExceptLast) {
  const auto ranges = core::partition_columns(1050, {1.0, 1.0}, 100);
  expect_tiles(ranges, 1050);
  EXPECT_EQ(ranges[0].cols % 100, 0);
  // The last device absorbs the remainder (not necessarily a multiple).
}

TEST(PartitionTest, EveryDeviceGetsAtLeastOneUnit) {
  // Extreme weights: the slow device must still receive one block column.
  const auto ranges = core::partition_columns(1000, {0.001, 1000.0}, 100);
  expect_tiles(ranges, 1000);
  EXPECT_GE(ranges[0].cols, 100);
}

TEST(PartitionTest, HeterogeneousPaperRatio) {
  // 33 : 50 : 57.5 (environment 1) over ~64k columns.
  const auto ranges =
      core::partition_columns(65536, {33.0, 50.0, 57.5}, 512);
  expect_tiles(ranges, 65536);
  const double total = 33.0 + 50.0 + 57.5;
  EXPECT_NEAR(static_cast<double>(ranges[0].cols) / 65536.0, 33.0 / total,
              0.02);
  EXPECT_NEAR(static_cast<double>(ranges[1].cols) / 65536.0, 50.0 / total,
              0.02);
  EXPECT_NEAR(static_cast<double>(ranges[2].cols) / 65536.0, 57.5 / total,
              0.02);
}

TEST(PartitionTest, RejectsBadArguments) {
  EXPECT_THROW(core::partition_columns(0, {1.0}, 10), InvalidArgument);
  EXPECT_THROW(core::partition_columns(100, {}, 10), InvalidArgument);
  EXPECT_THROW(core::partition_columns(100, {1.0, -1.0}, 10),
               InvalidArgument);
  EXPECT_THROW(core::partition_columns(100, {1.0}, 0), InvalidArgument);
  // 100 columns at granularity 100 = one unit, but two devices.
  EXPECT_THROW(core::partition_columns(100, {1.0, 1.0}, 100),
               InvalidArgument);
}

// Property sweep: tiling invariants hold for many shapes/weights.
class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PartitionProperty, TilesExactly) {
  const auto [total_scale, devices, granularity] = GetParam();
  const std::int64_t total = 997LL * total_scale + devices * granularity;
  std::vector<double> weights;
  for (int d = 0; d < devices; ++d) {
    weights.push_back(1.0 + 0.7 * d);
  }
  const auto ranges = core::partition_columns(total, weights, granularity);
  ASSERT_EQ(ranges.size(), static_cast<std::size_t>(devices));
  expect_tiles(ranges, total);
  // All but the last are granularity-aligned.
  for (std::size_t d = 0; d + 1 < ranges.size(); ++d) {
    EXPECT_EQ(ranges[d].first_col % granularity, 0);
    EXPECT_EQ(ranges[d].cols % granularity, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionProperty,
    ::testing::Combine(::testing::Values(1, 3, 17),
                       ::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(1, 7, 64, 512)));

TEST(PartitionTest, DeterministicForEqualRemainders) {
  const auto a = core::partition_columns(1000, {1.0, 1.0, 1.0}, 1);
  const auto b = core::partition_columns(1000, {1.0, 1.0, 1.0}, 1);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mgpusw
