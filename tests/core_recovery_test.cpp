// Recovery layer tests — the headline robustness property: a run that
// loses a device (or a border chunk) mid-flight and recovers must
// produce a bit-identical result to a run that never failed.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "base/error.hpp"
#include "core/batch.hpp"
#include "core/engine.hpp"
#include "core/fleet.hpp"
#include "core/recovery.hpp"
#include "core/report.hpp"
#include "sw/linear.hpp"
#include "tests/test_util.hpp"
#include "vgpu/device.hpp"
#include "vgpu/fault.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using core::BatchConfig;
using core::BatchItem;
using core::DeviceFleet;
using core::EngineConfig;
using core::MultiDeviceEngine;
using core::RecoveryExhaustedError;
using core::RecoveryPolicy;
using core::RecoveryResult;
using core::run_with_recovery;
using vgpu::FaultInjector;
using vgpu::parse_fault_plan;

EngineConfig small_blocks(core::Transport transport,
                          core::Schedule schedule) {
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.transport = transport;
  config.schedule = schedule;
  if (transport == core::Transport::kTcp) config.comm_timeout_ms = 5000;
  return config;
}

/// Three heterogeneous devices, as in the paper's mixed-GPU hosts.
struct Pool3 {
  vgpu::Device d0{vgpu::toy_device(10.0)};
  vgpu::Device d1{vgpu::toy_device(16.0)};
  vgpu::Device d2{vgpu::toy_device(22.0)};
  std::vector<vgpu::Device*> all() { return {&d0, &d1, &d2}; }
};

// ---------------------------------------------------------------------------
// Headline: injected mid-run device death on a 3-device heterogeneous
// pool completes on the surviving 2 and is bit-identical to an unfailed
// run — for both transports and both schedules.

class RecoveryMatrix
    : public ::testing::TestWithParam<
          std::tuple<core::Transport, core::Schedule>> {};

TEST_P(RecoveryMatrix, DeviceDeathRecoversBitIdentically) {
  const auto& [transport, schedule] = GetParam();
  auto [a, b] = testutil::related_pair(320, 201);
  EngineConfig config = small_blocks(transport, schedule);

  Pool3 pool;
  MultiDeviceEngine reference(config, pool.all());
  const auto expected = reference.run(a, b);
  EXPECT_EQ(expected.best, sw::linear_score(sw::ScoreScheme{}, a, b));

  FaultInjector injector(parse_fault_plan("dev1:die@kernel=12"));
  config.fault = &injector;
  RecoveryPolicy policy;
  policy.max_restarts = 2;
  const RecoveryResult recovered =
      run_with_recovery(config, pool.all(), a, b, policy);

  EXPECT_EQ(recovered.result.best, expected.best);
  EXPECT_EQ(recovered.restarts, 1);
  ASSERT_EQ(recovered.lost_devices.size(), 1u);
  EXPECT_EQ(recovered.lost_devices[0], pool.d1.spec().name);
  // The recovered attempt ran on the surviving two devices.
  EXPECT_EQ(recovered.result.devices.size(), 2u);
  EXPECT_GE(injector.fired(), 1);
  EXPECT_TRUE(injector.device_dead(1));
}

INSTANTIATE_TEST_SUITE_P(
    TransportsAndSchedules, RecoveryMatrix,
    ::testing::Combine(::testing::Values(core::Transport::kInProcess,
                                         core::Transport::kTcp),
                       ::testing::Values(core::Schedule::kRowMajor,
                                         core::Schedule::kDiagonal)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ==
                                 core::Transport::kInProcess
                             ? "Ring"
                             : "Tcp") +
             (std::get<1>(info.param) == core::Schedule::kRowMajor
                  ? "RowMajor"
                  : "Diagonal");
    });

// ---------------------------------------------------------------------------
// Transient faults: retried on the full pool, nothing lost.

TEST(RecoveryTest, DroppedBorderChunkIsRetried) {
  auto [a, b] = testutil::related_pair(320, 202);
  EngineConfig config =
      small_blocks(core::Transport::kInProcess, core::Schedule::kRowMajor);
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(14.0));

  MultiDeviceEngine reference(config, {&d0, &d1});
  const auto expected = reference.run(a, b);

  FaultInjector injector(parse_fault_plan("chan0:drop@chunk=2"));
  config.fault = &injector;
  const RecoveryResult recovered =
      run_with_recovery(config, {&d0, &d1}, a, b);

  EXPECT_EQ(recovered.result.best, expected.best);
  EXPECT_EQ(recovered.restarts, 1);
  EXPECT_TRUE(recovered.lost_devices.empty());
  EXPECT_EQ(recovered.result.devices.size(), 2u);  // nobody left the pool
  EXPECT_EQ(injector.fired(), 1);
}

TEST(RecoveryTest, CorruptedChunkIsDetectedAndRetried) {
  auto [a, b] = testutil::related_pair(320, 203);
  EngineConfig config =
      small_blocks(core::Transport::kInProcess, core::Schedule::kRowMajor);
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(14.0));

  MultiDeviceEngine reference(config, {&d0, &d1});
  const auto expected = reference.run(a, b);

  FaultInjector injector(parse_fault_plan("chan0:corrupt@chunk=1"));
  config.fault = &injector;
  const RecoveryResult recovered =
      run_with_recovery(config, {&d0, &d1}, a, b);
  EXPECT_EQ(recovered.result.best, expected.best);
  EXPECT_EQ(recovered.restarts, 1);
}

TEST(RecoveryTest, TransientKernelFailureIsRetried) {
  auto [a, b] = testutil::related_pair(288, 204);
  EngineConfig config =
      small_blocks(core::Transport::kInProcess, core::Schedule::kDiagonal);
  vgpu::Device device(vgpu::toy_device(12.0));

  MultiDeviceEngine reference(config, {&device});
  const auto expected = reference.run(a, b);

  FaultInjector injector(parse_fault_plan("dev0:kernel-fail@kernel=9"));
  config.fault = &injector;
  const RecoveryResult recovered =
      run_with_recovery(config, {&device}, a, b);
  EXPECT_EQ(recovered.result.best, expected.best);
  EXPECT_EQ(recovered.restarts, 1);
  EXPECT_TRUE(recovered.lost_devices.empty());
}

TEST(RecoveryTest, AllocationDeathRemovesTheDevice) {
  auto [a, b] = testutil::related_pair(288, 205);
  EngineConfig config =
      small_blocks(core::Transport::kInProcess, core::Schedule::kRowMajor);
  vgpu::Device d0(vgpu::toy_device(10.0));
  vgpu::Device d1(vgpu::toy_device(14.0));

  MultiDeviceEngine reference(config, {&d0, &d1});
  const auto expected = reference.run(a, b);

  // Device 1's very first allocation (its border arrays) kills it.
  FaultInjector injector(parse_fault_plan("dev1:alloc-fail@bytes=1"));
  config.fault = &injector;
  const RecoveryResult recovered =
      run_with_recovery(config, {&d0, &d1}, a, b);
  EXPECT_EQ(recovered.result.best, expected.best);
  ASSERT_EQ(recovered.lost_devices.size(), 1u);
  EXPECT_EQ(recovered.lost_devices[0], d1.spec().name);
  EXPECT_EQ(recovered.result.devices.size(), 1u);
}

// ---------------------------------------------------------------------------
// Exhaustion: structured failure, never a hang.

TEST(RecoveryTest, ExhaustedPolicyThrowsStructuredError) {
  auto [a, b] = testutil::related_pair(288, 206);
  EngineConfig config =
      small_blocks(core::Transport::kInProcess, core::Schedule::kRowMajor);
  vgpu::Device device(vgpu::toy_device(12.0));

  // One-shot transient fault but zero restarts allowed.
  FaultInjector injector(parse_fault_plan("dev0:kernel-fail@kernel=3"));
  config.fault = &injector;
  RecoveryPolicy policy;
  policy.max_restarts = 0;
  try {
    (void)run_with_recovery(config, {&device}, a, b, policy);
    FAIL() << "expected RecoveryExhaustedError";
  } catch (const RecoveryExhaustedError& e) {
    EXPECT_EQ(e.restarts(), 0);
    EXPECT_NE(std::string(e.what()).find("recovery exhausted"),
              std::string::npos);
  }
}

TEST(RecoveryTest, NoSurvivingDevicesThrowsExhausted) {
  auto [a, b] = testutil::related_pair(288, 207);
  EngineConfig config =
      small_blocks(core::Transport::kInProcess, core::Schedule::kRowMajor);
  vgpu::Device device(vgpu::toy_device(12.0));

  FaultInjector injector(parse_fault_plan("dev0:die@kernel=0"));
  config.fault = &injector;
  EXPECT_THROW((void)run_with_recovery(config, {&device}, a, b),
               RecoveryExhaustedError);
}

TEST(RecoveryTest, FatalErrorsPassThroughUnchanged) {
  auto [a, b] = testutil::related_pair(288, 208);
  EngineConfig config =
      small_blocks(core::Transport::kInProcess, core::Schedule::kRowMajor);
  config.kernel = "no-such-kernel";
  vgpu::Device device(vgpu::toy_device(12.0));
  EXPECT_THROW((void)run_with_recovery(config, {&device}, a, b),
               InvalidArgument);
}

TEST(RecoveryTest, ProgressEventsCarryRestartCounts) {
  auto [a, b] = testutil::related_pair(288, 209);
  EngineConfig config =
      small_blocks(core::Transport::kInProcess, core::Schedule::kRowMajor);
  vgpu::Device device(vgpu::toy_device(12.0));
  std::atomic<int> max_restarts_seen{-1};
  config.progress = [&](const core::ProgressEvent& event) {
    int seen = max_restarts_seen.load();
    while (event.restarts > seen &&
           !max_restarts_seen.compare_exchange_weak(seen, event.restarts)) {
    }
  };
  FaultInjector injector(parse_fault_plan("dev0:kernel-fail@kernel=5"));
  config.fault = &injector;
  const RecoveryResult recovered =
      run_with_recovery(config, {&device}, a, b);
  EXPECT_EQ(recovered.restarts, 1);
  EXPECT_EQ(max_restarts_seen.load(), 1);
}

// ---------------------------------------------------------------------------
// Fleet health

TEST(FleetHealthTest, UnhealthyDevicesAreNeverLeased) {
  Pool3 pool;
  DeviceFleet fleet(pool.all());
  EXPECT_EQ(fleet.healthy_count(), 3u);
  fleet.mark_unhealthy(&pool.d1);
  EXPECT_EQ(fleet.healthy_count(), 2u);
  EXPECT_EQ(fleet.available(), 2u);

  core::DeviceLease lease = fleet.acquire(2);
  for (vgpu::Device* device : lease.devices()) {
    EXPECT_NE(device, &pool.d1);
  }
}

TEST(FleetHealthTest, AcquireBeyondHealthyCountThrows) {
  Pool3 pool;
  DeviceFleet fleet(pool.all());
  fleet.mark_unhealthy(&pool.d0);
  EXPECT_THROW((void)fleet.acquire(3), Error);
  EXPECT_EQ(fleet.try_acquire(3), std::nullopt);
  // The FIFO head moved past the failed request; later acquires work.
  core::DeviceLease lease = fleet.acquire(2);
  EXPECT_TRUE(lease.valid());
}

// ---------------------------------------------------------------------------
// Batch integration: the degraded pool keeps serving the rest of the
// batch, restart counts reach the item results and the JSON report.

TEST(BatchRecoveryTest, BatchSurvivesDeviceDeathOnDegradedPool) {
  auto [a0, b0] = testutil::related_pair(320, 210);
  auto [a1, b1] = testutil::related_pair(288, 211);
  std::vector<BatchItem> items;
  items.push_back({"first", a0, b0});
  items.push_back({"second", a1, b1});

  EngineConfig engine_config =
      small_blocks(core::Transport::kInProcess, core::Schedule::kRowMajor);

  // Unfailed reference scores.
  std::vector<sw::ScoreResult> expected;
  for (const BatchItem& item : items) {
    expected.push_back(
        sw::linear_score(sw::ScoreScheme{}, item.query, item.subject));
  }

  Pool3 pool;
  DeviceFleet fleet(pool.all());
  // The last-armed device (ordinal 2) dies during the first item.
  FaultInjector injector(parse_fault_plan("dev2:die@kernel=10"));
  BatchConfig config;
  config.engine = engine_config;
  config.engine.fault = &injector;
  config.devices_per_item = 0;  // span whatever the fleet can grant
  config.max_in_flight = 1;
  config.enable_recovery = true;
  config.recovery.max_restarts = 2;

  const core::BatchResult batch = run_batch(config, fleet, items);
  ASSERT_EQ(batch.items.size(), 2u);
  EXPECT_EQ(batch.items[0].result.best, expected[0]);
  EXPECT_EQ(batch.items[1].result.best, expected[1]);
  EXPECT_EQ(batch.items[0].restarts, 1);
  ASSERT_EQ(batch.items[0].lost_devices.size(), 1u);
  EXPECT_EQ(batch.items[0].lost_devices[0], pool.d2.spec().name);
  EXPECT_EQ(batch.items[1].restarts, 0);
  EXPECT_EQ(fleet.healthy_count(), 2u);
  // The second item ran on the surviving two devices.
  EXPECT_EQ(batch.items[1].result.devices.size(), 2u);
}

// ---------------------------------------------------------------------------
// Cross-process resume: a ResumeSpec seeded from a disk checkpoint left
// by a "crashed" first run recovers bit-identically — the contract the
// serve layer's durable journal builds on.

TEST(RecoveryTest, ResumeSpecFromDiskCheckpointIsBitIdentical) {
  auto [a, b] = testutil::related_pair(320, 211);
  const std::string dir =
      ::testing::TempDir() + "resume_spec_checkpoints";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Pool3 pool;

  EngineConfig reference_config =
      small_blocks(core::Transport::kInProcess, core::Schedule::kRowMajor);
  MultiDeviceEngine reference(reference_config, pool.all());
  const auto expected = reference.run(a, b);

  // First life: checkpoint to disk and capture a mid-run durable pair
  // exactly the way the daemon folds it — min(safe_row) across the
  // devices of the attempt plus the merged bests.
  core::SpecialRowStore store(dir);
  std::mutex mu;
  std::map<int, std::pair<std::int64_t, sw::ScoreResult>> safe;
  std::int64_t captured_row = -1;
  sw::ScoreResult captured_best;
  EngineConfig first_config = reference_config;
  first_config.special_rows = &store;
  first_config.special_row_interval = 2;
  first_config.checkpoint_f = true;
  first_config.progress = [&](const core::ProgressEvent& event) {
    std::lock_guard<std::mutex> lock(mu);
    safe[event.device_index] = {event.safe_row, event.best};
    if (static_cast<int>(safe.size()) < event.device_count) return;
    std::int64_t row = event.safe_row;
    sw::ScoreResult best;
    for (const auto& [device, pair] : safe) {
      row = std::min(row, pair.first);
      if (sw::improves(pair.second, best)) best = pair.second;
    }
    if (row >= 160 && captured_row < 0) {
      captured_row = row;
      captured_best = best;
    }
  };
  const RecoveryResult first =
      run_with_recovery(first_config, pool.all(), a, b);
  EXPECT_EQ(first.result.best, expected.best);
  ASSERT_GE(captured_row, 160);

  // Second life: a fresh store revives the spill files, the resume row
  // is probed at or below the captured pair, and the run completes
  // from there with the carried best merged in.
  core::SpecialRowStore revived(dir);
  (void)revived.recover_existing();
  const std::int64_t rows = static_cast<std::int64_t>(a.size());
  const std::int64_t cols = static_cast<std::int64_t>(b.size());
  const std::int64_t probe = revived.last_restartable_row(
      cols, std::min(captured_row + 1, rows - 1));
  ASSERT_GT(probe, 0);
  core::ResumeSpec resume;
  resume.row = probe;
  resume.carried_best = captured_best;
  EngineConfig second_config = reference_config;
  second_config.special_rows = &revived;
  second_config.special_row_interval = 2;
  second_config.checkpoint_f = true;
  const RecoveryResult second = run_with_recovery(
      second_config, pool.all(), a, b, RecoveryPolicy{},
      /*fleet=*/nullptr, &resume);
  EXPECT_EQ(second.result.best, expected.best);
}

TEST(RecoveryTest, ReportCarriesRecoveryFields) {
  RecoveryResult result;
  result.restarts = 2;
  result.lost_devices = {"toy-a", "toy-b"};
  result.result.best.score = 42;
  const std::string json = core::to_json(result);
  EXPECT_NE(json.find("\"restarts\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"toy-a\", \"toy-b\""), std::string::npos);
  EXPECT_NE(json.find("\"score\": 42"), std::string::npos);
}

}  // namespace
}  // namespace mgpusw
