// Tests for the alignment service: protocol framing (round-trips and
// malformed-frame hardening), the quota-aware job queue, the batch
// scheduler's priority/callback hooks, and the daemon end to end
// (concurrent tenants, quotas, progress streaming, cancel at every
// state, injected device death with a bit-identical final score).
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "gtest/gtest.h"
#include "seq/synth.hpp"
#include "serve/client_lib.hpp"
#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw::serve {
namespace {

// --- message frame envelope ------------------------------------------------

TEST(MessageFrame, RoundTripsEveryFrameType) {
  for (int type = static_cast<int>(FrameType::kSubmit);
       type <= static_cast<int>(FrameType::kShutdownOk); ++type) {
    comm::MessageFrame frame;
    frame.type = static_cast<std::uint8_t>(type);
    const std::string body =
        R"({"job_id": )" + std::to_string(type) + "}";
    frame.body.assign(body.begin(), body.end());
    const std::vector<std::uint8_t> wire =
        comm::serialize_message(frame);
    const comm::MessageFrame back =
        comm::deserialize_message(wire.data(), wire.size());
    EXPECT_EQ(back.type, frame.type);
    EXPECT_EQ(back.body, frame.body);
  }
}

TEST(MessageFrame, RoundTripsEmptyBody) {
  comm::MessageFrame frame;
  frame.type = static_cast<std::uint8_t>(FrameType::kMetrics);
  const std::vector<std::uint8_t> wire = comm::serialize_message(frame);
  EXPECT_EQ(wire.size(), comm::kMessageHeaderBytes);
  const comm::MessageFrame back =
      comm::deserialize_message(wire.data(), wire.size());
  EXPECT_TRUE(back.body.empty());
}

TEST(MessageFrame, TruncatedEnvelopeThrowsProtocolError) {
  comm::MessageFrame frame;
  frame.type = 1;
  frame.body = {1, 2, 3};
  const std::vector<std::uint8_t> wire = comm::serialize_message(frame);
  for (std::size_t cut = 0; cut < comm::kMessageHeaderBytes; ++cut) {
    EXPECT_THROW(comm::deserialize_message(wire.data(), cut),
                 ProtocolError)
        << "cut at " << cut;
  }
}

TEST(MessageFrame, CorruptedBodyFailsCrc) {
  comm::MessageFrame frame;
  frame.type = 1;
  frame.body = {10, 20, 30, 40};
  std::vector<std::uint8_t> wire = comm::serialize_message(frame);
  wire.back() ^= 0xFF;
  EXPECT_THROW(comm::deserialize_message(wire.data(), wire.size()),
               ProtocolError);
}

TEST(MessageFrame, BadMagicThrowsProtocolError) {
  comm::MessageFrame frame;
  frame.type = 1;
  std::vector<std::uint8_t> wire = comm::serialize_message(frame);
  wire[0] ^= 0xFF;
  EXPECT_THROW(comm::deserialize_message(wire.data(), wire.size()),
               ProtocolError);
}

TEST(MessageFrame, NonzeroReservedBytesThrowProtocolError) {
  comm::MessageFrame frame;
  frame.type = 1;
  std::vector<std::uint8_t> wire = comm::serialize_message(frame);
  wire[6] = 1;
  EXPECT_THROW(comm::deserialize_message(wire.data(), wire.size()),
               ProtocolError);
}

TEST(MessageFrame, OversizedBodyThrowsProtocolError) {
  // Just past the cap: the size check fires before any CRC work.
  const std::vector<std::uint8_t> wire(
      comm::kMaxMessageBytes + comm::kMessageHeaderBytes + 1, 0);
  EXPECT_THROW(comm::deserialize_message(wire.data(), wire.size()),
               ProtocolError);
}

// --- length-prefixed stream framing over a socketpair ----------------------

struct StreamPair {
  comm::TcpStream a;
  comm::TcpStream b;

  StreamPair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw IoError("socketpair failed");
    }
    a = comm::TcpStream(fds[0]);
    b = comm::TcpStream(fds[1]);
  }
};

TEST(TcpStreamFraming, FrameRoundTrip) {
  StreamPair pair;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  pair.a.send_frame(payload);
  const auto got = pair.b.recv_frame();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(TcpStreamFraming, CleanEofAtFrameBoundaryReturnsNullopt) {
  StreamPair pair;
  pair.a.send_frame({9, 9});
  pair.a.close();
  EXPECT_TRUE(pair.b.recv_frame().has_value());
  EXPECT_FALSE(pair.b.recv_frame().has_value());
}

TEST(TcpStreamFraming, OversizedLengthPrefixThrowsProtocolError) {
  StreamPair pair;
  const std::uint32_t huge = (64u << 20) + 1;
  pair.a.write_all(&huge, sizeof(huge));
  EXPECT_THROW((void)pair.b.recv_frame(), ProtocolError);
}

TEST(TcpStreamFraming, TornFrameThrowsIoErrorNotHang) {
  StreamPair pair;
  const std::uint32_t length = 100;  // promised, never delivered
  pair.a.write_all(&length, sizeof(length));
  pair.a.close();
  EXPECT_THROW((void)pair.b.recv_frame(), IoError);
}

TEST(TcpListener, CloseWakesBlockedAccept) {
  comm::TcpListener listener(0);
  std::thread closer([&listener] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener.close();
  });
  EXPECT_FALSE(listener.accept().has_value());
  closer.join();
}

// --- protocol bodies -------------------------------------------------------

TEST(ProtocolBodies, SubmitRoundTrip) {
  SubmitRequest request;
  request.tenant = "alice";
  request.label = "chr21";
  request.priority = 3;
  request.rows = 4096;
  request.cols = 2048;
  request.seed = 7;
  const SubmitRequest back = decode_submit(encode_submit(request));
  EXPECT_EQ(back.tenant, "alice");
  EXPECT_EQ(back.label, "chr21");
  EXPECT_EQ(back.priority, 3);
  EXPECT_EQ(back.rows, 4096);
  EXPECT_EQ(back.cols, 2048);
  EXPECT_EQ(back.seed, 7);
}

TEST(ProtocolBodies, SubmitNeedsExactlyOnePairSpec) {
  SubmitRequest inline_and_synth;
  inline_and_synth.tenant = "t";
  inline_and_synth.query = "ACGT";
  inline_and_synth.subject = "ACGT";
  inline_and_synth.rows = 10;
  inline_and_synth.cols = 10;
  EXPECT_THROW((void)decode_submit(encode_submit(inline_and_synth)),
               ProtocolError);
  EXPECT_THROW((void)decode_submit(R"({"tenant": "t"})"), ProtocolError);
}

TEST(ProtocolBodies, MalformedJsonThrowsProtocolError) {
  EXPECT_THROW((void)decode_submit("{not json"), ProtocolError);
  EXPECT_THROW((void)decode_job_id("[1, 2"), ProtocolError);
  EXPECT_THROW((void)decode_status("42"), ProtocolError);
  EXPECT_THROW((void)decode_progress("{}"), ProtocolError);
}

TEST(ProtocolBodies, StatusRoundTripWithResult) {
  JobStatus status;
  status.job_id = 12;
  status.state = JobState::kDone;
  status.tenant = "bob";
  status.label = "j";
  status.restarts = 1;
  status.rebalances = 2;
  status.lost_devices = {"GTX 580"};
  status.score = 777;
  status.result_json = R"({"score": 777, "gcups": 1.5})";
  const JobStatus back = decode_status(encode_status(status));
  EXPECT_EQ(back.job_id, 12);
  EXPECT_EQ(back.state, JobState::kDone);
  EXPECT_EQ(back.restarts, 1);
  EXPECT_EQ(back.rebalances, 2);
  ASSERT_EQ(back.lost_devices.size(), 1u);
  EXPECT_EQ(back.lost_devices[0], "GTX 580");
  EXPECT_EQ(back.score, 777);
  // The nested report survives as parseable JSON with its fields.
  const base::json::Value report = base::json::parse(back.result_json);
  EXPECT_EQ(report.at("score").as_int(), 777);
}

TEST(ProtocolBodies, ErrorRoundTripThrowsServeError) {
  try {
    throw_decoded_error(encode_error("quota-exceeded", "too many jobs"));
    FAIL() << "throw_decoded_error returned";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), "quota-exceeded");
    EXPECT_STREQ(e.what(), "too many jobs");
  }
}

// --- quota ledger and job queue --------------------------------------------

seq::Sequence tiny_seq(const char* name) {
  return seq::generate_chromosome(name, 64, 3);
}

TEST(QuotaLedger, PendingAndRunningCaps) {
  QuotaPolicy policy;
  policy.max_running_per_tenant = 1;
  policy.max_pending_per_tenant = 2;
  QuotaLedger ledger(policy);
  EXPECT_FALSE(ledger.pending_full("t"));
  ledger.on_submit("t");
  ledger.on_submit("t");
  EXPECT_TRUE(ledger.pending_full("t"));
  EXPECT_FALSE(ledger.pending_full("other"));
  EXPECT_TRUE(ledger.can_start("t"));
  ledger.on_start("t");
  EXPECT_FALSE(ledger.can_start("t"));
  EXPECT_FALSE(ledger.pending_full("t"));  // one slot freed
  ledger.on_finish("t");
  EXPECT_TRUE(ledger.can_start("t"));
}

TEST(JobQueue, RejectsOverPendingQuota) {
  QuotaPolicy policy;
  policy.max_pending_per_tenant = 1;
  JobQueue queue(policy);
  (void)queue.submit("t", "a", 0, tiny_seq("q"), tiny_seq("s"));
  try {
    (void)queue.submit("t", "b", 0, tiny_seq("q"), tiny_seq("s"));
    FAIL() << "expected quota rejection";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), "quota-exceeded");
  }
  // Another tenant is unaffected.
  (void)queue.submit("u", "c", 0, tiny_seq("q"), tiny_seq("s"));
}

TEST(JobQueue, RunningQuotaSkipsTenantNotQueue) {
  QuotaPolicy policy;
  policy.max_running_per_tenant = 1;
  policy.max_pending_per_tenant = 0;  // uncapped
  JobQueue queue(policy);
  const auto a1 = queue.submit("a", "a1", 0, tiny_seq("q"), tiny_seq("s"));
  const auto a2 = queue.submit("a", "a2", 0, tiny_seq("q"), tiny_seq("s"));
  const auto b1 = queue.submit("b", "b1", 0, tiny_seq("q"), tiny_seq("s"));
  EXPECT_EQ(queue.next(), a1);
  // Tenant a is at its running cap: a2 is passed over for b1.
  EXPECT_EQ(queue.next(), b1);
  queue.finish(a1, JobState::kDone);
  EXPECT_EQ(queue.next(), a2);
}

TEST(JobQueue, PriorityBeatsFifo) {
  JobQueue queue(QuotaPolicy{0, 0, false});
  const auto low = queue.submit("t", "low", 0, tiny_seq("q"), tiny_seq("s"));
  const auto high =
      queue.submit("t", "high", 5, tiny_seq("q"), tiny_seq("s"));
  const auto low2 =
      queue.submit("t", "low2", 0, tiny_seq("q"), tiny_seq("s"));
  EXPECT_EQ(queue.next(), high);
  EXPECT_EQ(queue.next(), low);  // FIFO among equals
  EXPECT_EQ(queue.next(), low2);
}

TEST(JobQueue, CancelAtEveryState) {
  JobQueue queue(QuotaPolicy{0, 0, false});
  // Queued: cancelled immediately, leaves the queue.
  const auto queued =
      queue.submit("t", "queued", 0, tiny_seq("q"), tiny_seq("s"));
  EXPECT_EQ(queue.cancel(queued->id), JobState::kCancelled);
  EXPECT_EQ(queue.depth(), 0);

  // Running: the flag is raised; the scheduler settles the state.
  const auto running =
      queue.submit("t", "running", 0, tiny_seq("q"), tiny_seq("s"));
  EXPECT_EQ(queue.next(), running);
  EXPECT_EQ(queue.cancel(running->id), JobState::kRunning);
  EXPECT_TRUE(running->cancel.load());
  queue.finish(running, JobState::kCancelled);

  // Completing: too late, a no-op.
  const auto completing =
      queue.submit("t", "completing", 0, tiny_seq("q"), tiny_seq("s"));
  EXPECT_EQ(queue.next(), completing);
  queue.mark_completing(completing);
  EXPECT_EQ(queue.cancel(completing->id), JobState::kCompleting);
  EXPECT_FALSE(completing->cancel.load());
  queue.finish(completing, JobState::kDone);

  // Terminal: still a no-op, state reported back.
  EXPECT_EQ(queue.cancel(completing->id), JobState::kDone);
  EXPECT_THROW((void)queue.cancel(999), ServeError);
}

TEST(JobQueue, CloseCancelsPendingAndUnblocksNext) {
  JobQueue queue(QuotaPolicy{0, 0, false});
  const auto job =
      queue.submit("t", "doomed", 0, tiny_seq("q"), tiny_seq("s"));
  std::thread closer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    queue.close();
  });
  EXPECT_EQ(queue.next(), job);  // still runnable before close
  EXPECT_EQ(queue.next(), nullptr);
  closer.join();
  EXPECT_THROW((void)queue.submit("t", "late", 0, tiny_seq("q"),
                                  tiny_seq("s")),
               ServeError);
}

// --- batch scheduler hooks -------------------------------------------------

core::DeviceFleet make_fleet(int n) {
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  for (int d = 0; d < n; ++d) {
    devices.push_back(
        std::make_unique<vgpu::Device>(vgpu::toy_device(1.0)));
  }
  return core::DeviceFleet(std::move(devices));
}

TEST(BatchHooks, PriorityOrdersAdmissionAndCallbackFires) {
  core::DeviceFleet fleet = make_fleet(1);
  std::vector<core::BatchItem> items;
  for (int i = 0; i < 3; ++i) {
    core::BatchItem item;
    item.label = "item" + std::to_string(i);
    item.query = tiny_seq("q");
    item.subject = tiny_seq("s");
    item.priority = i;  // later items have higher priority
    items.push_back(std::move(item));
  }
  std::vector<std::size_t> done_order;
  core::BatchConfig config;
  config.engine.block_rows = 32;
  config.engine.block_cols = 32;
  config.max_in_flight = 1;
  config.on_item_done = [&done_order](std::size_t index,
                                      const core::BatchItemResult&,
                                      std::exception_ptr error) {
    EXPECT_EQ(error, nullptr);
    done_order.push_back(index);
  };
  const core::BatchResult result = core::run_batch(config, fleet, items);
  EXPECT_EQ(result.items.size(), 3u);
  ASSERT_EQ(done_order.size(), 3u);
  EXPECT_EQ(done_order, (std::vector<std::size_t>{2, 1, 0}));
}

TEST(BatchHooks, CancelFlagStopsItemWithInterruptedError) {
  core::DeviceFleet fleet = make_fleet(1);
  std::atomic<bool> cancel{true};  // pre-raised: stops at the first unit
  core::BatchItem item;
  item.label = "cancelled";
  item.query = seq::generate_chromosome("q", 2048, 5);
  item.subject = seq::generate_chromosome("s", 2048, 6);
  item.cancel = &cancel;
  core::BatchItemResult entry;
  core::BatchConfig config;
  config.engine.block_rows = 64;
  config.engine.block_cols = 64;
  EXPECT_THROW(core::run_batch_item(config, fleet, item, entry),
               InterruptedError);
  // The lease was released by the unwind: the fleet can serve again.
  core::BatchItem ok;
  ok.label = "after";
  ok.query = tiny_seq("q");
  ok.subject = tiny_seq("s");
  core::BatchItemResult after;
  core::run_batch_item(config, fleet, ok, after);
  EXPECT_GE(after.result.best.score, 0);
}

TEST(BatchHooks, CancelUnderRecoveryDoesNotRestart) {
  core::DeviceFleet fleet = make_fleet(2);
  std::atomic<bool> cancel{true};
  core::BatchItem item;
  item.label = "cancelled";
  item.query = seq::generate_chromosome("q", 2048, 5);
  item.subject = seq::generate_chromosome("s", 2048, 6);
  item.cancel = &cancel;
  core::BatchItemResult entry;
  core::BatchConfig config;
  config.engine.block_rows = 64;
  config.engine.block_cols = 64;
  config.enable_recovery = true;
  // Recovery must rethrow the cancel instead of burning restarts on it.
  EXPECT_THROW(core::run_batch_item(config, fleet, item, entry),
               InterruptedError);
  EXPECT_EQ(entry.restarts, 0);
}

// --- the daemon end to end -------------------------------------------------

ServerConfig small_server_config() {
  ServerConfig config;
  config.port = 0;
  config.devices = 3;
  config.scheduler_threads = 2;
  config.devices_per_job = 1;
  config.block = 64;
  config.quota.max_running_per_tenant = 1;
  config.quota.max_pending_per_tenant = 8;
  return config;
}

TEST(ServeEndToEnd, TwoTenantsRunConcurrentJobsToCompletion) {
  AlignServer server(small_server_config());
  server.start();
  ServeClient alice = ServeClient::connect("127.0.0.1", server.port());
  ServeClient bob = ServeClient::connect("127.0.0.1", server.port());
  std::vector<std::int64_t> jobs;
  for (int i = 0; i < 2; ++i) {
    SubmitRequest request;
    request.tenant = "alice";
    request.label = "a" + std::to_string(i);
    request.rows = 1024;
    request.cols = 1024;
    request.seed = 10 + i;
    jobs.push_back(alice.submit(request));
    request.tenant = "bob";
    request.label = "b" + std::to_string(i);
    jobs.push_back(bob.submit(request));
  }
  for (const std::int64_t id : jobs) {
    const JobStatus status = alice.result(id);
    EXPECT_EQ(status.state, JobState::kDone) << "job " << id;
    EXPECT_GE(status.score, 0);
    EXPECT_FALSE(status.result_json.empty());
  }
  // Same seed, same spec -> alice's and bob's runs score identically.
  EXPECT_EQ(alice.result(jobs[0]).score, bob.result(jobs[1]).score);
  server.stop();
}

TEST(ServeEndToEnd, PendingQuotaRejectsWithProtocolError) {
  ServerConfig config = small_server_config();
  config.scheduler_threads = 1;
  config.quota.max_pending_per_tenant = 1;
  AlignServer server(config);
  server.start();
  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  SubmitRequest request;
  request.tenant = "greedy";
  request.rows = 8192;
  request.cols = 8192;
  const std::int64_t running = client.submit(request);
  // Wait until the first job leaves the queue so the pending count is
  // deterministic.
  while (client.status(running).state == JobState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  request.rows = 1024;
  request.cols = 1024;
  (void)client.submit(request);  // fills the single pending slot
  try {
    (void)client.submit(request);
    FAIL() << "expected quota rejection";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), "quota-exceeded");
  }
  // Another tenant still gets in.
  request.tenant = "patient";
  const std::int64_t other = client.submit(request);
  EXPECT_EQ(client.result(other).state, JobState::kDone);
  server.stop();
}

TEST(ServeEndToEnd, ProgressStreamsThenReportsDone) {
  AlignServer server(small_server_config());
  server.start();
  ServeClient submitter = ServeClient::connect("127.0.0.1", server.port());
  SubmitRequest request;
  request.tenant = "alice";
  request.rows = 8192;
  request.cols = 8192;
  const std::int64_t id = submitter.submit(request);
  ServeClient watcher = ServeClient::connect("127.0.0.1", server.port());
  int updates = 0;
  std::int64_t last_completed = -1;
  const JobStatus final_status = watcher.stream_progress(
      id, [&](const ProgressUpdate& update) {
        ++updates;
        EXPECT_GE(update.completed_units, last_completed);
        last_completed = update.completed_units;
        EXPECT_EQ(update.job_id, id);
      });
  EXPECT_GE(updates, 1);
  EXPECT_EQ(final_status.state, JobState::kDone);
  server.stop();
}

TEST(ServeEndToEnd, CancelRunningJobFreesTheFleet) {
  ServerConfig config = small_server_config();
  config.scheduler_threads = 1;
  AlignServer server(config);
  server.start();
  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  SubmitRequest request;
  request.tenant = "alice";
  request.label = "doomed";
  request.rows = 16384;
  request.cols = 16384;
  const std::int64_t id = client.submit(request);
  while (client.status(id).state != JobState::kRunning) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  (void)client.cancel(id);
  const JobStatus cancelled = client.result(id);
  EXPECT_EQ(cancelled.state, JobState::kCancelled);
  // The lease is back: the next job runs to completion.
  request.label = "after";
  request.rows = 1024;
  request.cols = 1024;
  const std::int64_t after = client.submit(request);
  EXPECT_EQ(client.result(after).state, JobState::kDone);
  // Cancel on a terminal job stays a no-op.
  EXPECT_EQ(client.cancel(after).state, JobState::kDone);
  server.stop();
}

TEST(ServeEndToEnd, DeviceDeathSurvivedBitIdentical) {
  ServerConfig config = small_server_config();
  config.scheduler_threads = 1;
  config.devices_per_job = 3;
  config.fault_plan = "dev0:die@kernel=40";
  AlignServer faulty_server(config);
  faulty_server.start();
  ServeClient faulty = ServeClient::connect("127.0.0.1", faulty_server.port());
  SubmitRequest request;
  request.tenant = "alice";
  request.rows = 8192;
  request.cols = 8192;
  request.seed = 21;
  const JobStatus hit = faulty.result(faulty.submit(request));
  EXPECT_EQ(hit.state, JobState::kDone);
  EXPECT_GE(hit.restarts, 1);
  EXPECT_FALSE(hit.lost_devices.empty());

  // Metrics: the merged registry shows every layer.
  const base::json::Value snapshot =
      base::json::parse(faulty.metrics_json());
  const base::json::Value& counters = snapshot.at("counters");
  for (const char* key :
       {"serve.jobs_accepted", "serve.jobs_completed",
        "serve.jobs_rejected", "serve.jobs_cancelled",
        "batch.items_completed", "recovery.restarts",
        "recovery.devices_lost", "fleet.leases_granted",
        "fleet.devices_unhealthy"}) {
    EXPECT_NE(counters.find(key), nullptr) << "missing counter " << key;
  }
  EXPECT_NE(snapshot.at("gauges").find("serve.queue_depth"), nullptr);
  faulty_server.stop();

  ServerConfig clean_config = small_server_config();
  clean_config.scheduler_threads = 1;
  clean_config.devices_per_job = 3;
  AlignServer clean_server(clean_config);
  clean_server.start();
  ServeClient clean = ServeClient::connect("127.0.0.1", clean_server.port());
  const JobStatus unfailed = clean.result(clean.submit(request));
  EXPECT_EQ(unfailed.state, JobState::kDone);
  EXPECT_EQ(unfailed.restarts, 0);
  EXPECT_EQ(hit.score, unfailed.score)
      << "device death changed the final score";
  clean_server.stop();
}

TEST(ServeEndToEnd, SingleDeviceLeaseDeathRetriesOnFreshLease) {
  // A job whose whole (1-device) lease dies exhausts recovery in place;
  // the batch layer must retry it on a fresh lease with the spent fault
  // plan disarmed — not remap the plan onto the replacement device and
  // cascade through the fleet.
  ServerConfig config = small_server_config();
  config.scheduler_threads = 1;
  config.devices_per_job = 1;
  config.fault_plan = "dev0:die@kernel=10";
  AlignServer server(config);
  server.start();
  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  SubmitRequest request;
  request.tenant = "alice";
  request.rows = 4096;
  request.cols = 4096;
  request.seed = 33;
  const JobStatus hit = client.result(client.submit(request));
  EXPECT_EQ(hit.state, JobState::kDone);
  EXPECT_GE(hit.restarts, 1);  // the fresh-lease rerun counts
  EXPECT_EQ(hit.lost_devices.size(), 1u);
  // run_with_recovery threw before booking recovery.* counters; the
  // batch retry must book them instead, so the death is visible in the
  // scraped registry on this path too.
  const base::json::Value snapshot = base::json::parse(client.metrics_json());
  const base::json::Value& counters = snapshot.at("counters");
  ASSERT_NE(counters.find("recovery.restarts"), nullptr);
  EXPECT_GE(counters.at("recovery.restarts").as_int(), 1);
  ASSERT_NE(counters.find("recovery.devices_lost"), nullptr);
  EXPECT_GE(counters.at("recovery.devices_lost").as_int(), 1);
  // Exactly one device died; later jobs still complete on the rest.
  const JobStatus after = client.result(client.submit(request));
  EXPECT_EQ(after.state, JobState::kDone);
  EXPECT_EQ(after.restarts, 0);
  EXPECT_EQ(after.score, hit.score) << "rerun changed the score";
  server.stop();
}

TEST(ServeEndToEnd, MalformedFramesGetErrorRepliesNotCrashes) {
  AlignServer server(small_server_config());
  server.start();
  // Garbage that parses as a frame length, then junk: the daemon must
  // answer with an ERROR frame and close, then keep serving others.
  comm::TcpStream raw =
      comm::TcpStream::connect("127.0.0.1", server.port());
  const std::vector<std::uint8_t> junk = {1, 2, 3, 4, 5, 6, 7, 8};
  raw.send_frame(junk);  // valid framing, invalid message envelope
  const auto reply = raw.recv_frame();
  ASSERT_TRUE(reply.has_value());
  const comm::MessageFrame frame =
      comm::deserialize_message(reply->data(), reply->size());
  EXPECT_EQ(frame.type, static_cast<std::uint8_t>(FrameType::kError));
  raw.close();

  // The daemon still answers a healthy client.
  ServeClient client = ServeClient::connect("127.0.0.1", server.port());
  SubmitRequest request;
  request.tenant = "alice";
  request.rows = 512;
  request.cols = 512;
  EXPECT_EQ(client.result(client.submit(request)).state, JobState::kDone);
  server.stop();
}

TEST(ServeEndToEnd, HttpGetScrapesMetrics) {
  AlignServer server(small_server_config());
  server.start();
  comm::TcpStream http = comm::TcpStream::connect("127.0.0.1", server.port());
  const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
  http.write_all(get.data(), get.size());
  std::string response;
  char buffer[4096];
  for (;;) {
    const std::size_t got = http.read_some(buffer, sizeof(buffer));
    if (got == 0) break;
    response.append(buffer, got);
  }
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const base::json::Value snapshot =
      base::json::parse(response.substr(body_at + 4));
  EXPECT_TRUE(snapshot.is_object());
  EXPECT_NE(snapshot.at("counters").find("serve.jobs_accepted"), nullptr);
  server.stop();
}

}  // namespace
}  // namespace mgpusw::serve
