// The anti-diagonal kernel must be bit-identical to the row-scan kernel:
// same borders out, same block best (including tie-breaking), same
// border_max — for every geometry including the delegated degenerate
// shapes.
#include <gtest/gtest.h>

#include <vector>

#include "sw/block.hpp"
#include "sw/block_antidiag.hpp"
#include "sw/block_strip.hpp"
#include "sw/linear.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Nt;
using sw::BlockArgs;
using sw::Score;
using sw::ScoreScheme;

struct KernelIo {
  std::vector<Score> row_h, row_f, col_h, col_e;
  sw::BlockResult result;
};

enum class Kernel { kRowScan, kAntiDiag, kStripMined };

KernelIo run_kernel(Kernel kind, const ScoreScheme& scheme,
                    const std::vector<Nt>& query,
                    const std::vector<Nt>& subject, Score corner,
                    std::int64_t global_row = 0,
                    std::int64_t global_col = 0) {
  KernelIo io;
  const auto rows = static_cast<std::int64_t>(query.size());
  const auto cols = static_cast<std::int64_t>(subject.size());
  // Non-trivial borders: pseudo-random non-negative H, mixed E/F.
  io.row_h.resize(static_cast<std::size_t>(cols));
  io.row_f.resize(static_cast<std::size_t>(cols));
  io.col_h.resize(static_cast<std::size_t>(rows));
  io.col_e.resize(static_cast<std::size_t>(rows));
  for (std::int64_t j = 0; j < cols; ++j) {
    io.row_h[static_cast<std::size_t>(j)] = static_cast<Score>((j * 7) % 13);
    io.row_f[static_cast<std::size_t>(j)] =
        j % 3 == 0 ? sw::kNegInf : static_cast<Score>((j * 5) % 11 - 8);
  }
  for (std::int64_t i = 0; i < rows; ++i) {
    io.col_h[static_cast<std::size_t>(i)] = static_cast<Score>((i * 3) % 17);
    io.col_e[static_cast<std::size_t>(i)] =
        i % 4 == 0 ? sw::kNegInf : static_cast<Score>((i * 9) % 7 - 6);
  }

  BlockArgs args;
  args.query = query.data();
  args.subject = subject.data();
  args.rows = rows;
  args.cols = cols;
  args.global_row = global_row;
  args.global_col = global_col;
  args.corner_h = corner;
  args.top_h = io.row_h.data();
  args.top_f = io.row_f.data();
  args.left_h = io.col_h.data();
  args.left_e = io.col_e.data();
  args.bottom_h = io.row_h.data();
  args.bottom_f = io.row_f.data();
  args.right_h = io.col_h.data();
  args.right_e = io.col_e.data();
  switch (kind) {
    case Kernel::kAntiDiag:
      io.result = compute_block_antidiag(scheme, args);
      break;
    case Kernel::kStripMined:
      io.result = compute_block_strip(scheme, args);
      break;
    case Kernel::kRowScan:
      io.result = compute_block(scheme, args);
      break;
  }
  return io;
}

class AntidiagEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AntidiagEquivalence, IdenticalToRowScan) {
  const auto [rows, cols, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(seed) % testutil::test_schemes().size()];
  std::vector<Nt> query(static_cast<std::size_t>(rows));
  std::vector<Nt> subject(static_cast<std::size_t>(cols));
  base::Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  for (auto& nt : query) nt = static_cast<Nt>(rng.next_below(4));
  for (auto& nt : subject) nt = static_cast<Nt>(rng.next_below(4));

  const KernelIo scan =
      run_kernel(Kernel::kRowScan, scheme, query, subject, 3);
  for (const Kernel kind : {Kernel::kAntiDiag, Kernel::kStripMined}) {
    const KernelIo other = run_kernel(kind, scheme, query, subject, 3);
    EXPECT_EQ(other.result.best, scan.result.best);
    EXPECT_EQ(other.result.border_max, scan.result.border_max);
    EXPECT_EQ(other.row_h, scan.row_h);
    EXPECT_EQ(other.row_f, scan.row_f);
    EXPECT_EQ(other.col_h, scan.col_h);
    EXPECT_EQ(other.col_e, scan.col_e);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AntidiagEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 17, 64),
                       ::testing::Values(1, 2, 3, 7, 33, 64),
                       ::testing::Range(0, 4)));

TEST(AntidiagTest, GlobalCoordsReported) {
  // Zero borders, identical sequences: the best cell is the bottom-right
  // corner of the block, reported in global coordinates.
  std::vector<Nt> same(16, Nt::G);
  std::vector<Score> row_h(16, 0), row_f(16, sw::kNegInf);
  std::vector<Score> col_h(16, 0), col_e(16, sw::kNegInf);
  BlockArgs args;
  args.query = same.data();
  args.subject = same.data();
  args.rows = 16;
  args.cols = 16;
  args.global_row = 100;
  args.global_col = 200;
  args.top_h = row_h.data();
  args.top_f = row_f.data();
  args.left_h = col_h.data();
  args.left_e = col_e.data();
  args.bottom_h = row_h.data();
  args.bottom_f = row_f.data();
  args.right_h = col_h.data();
  args.right_e = col_e.data();
  const auto result = compute_block_antidiag(ScoreScheme{}, args);
  EXPECT_EQ(result.best.score, 16);
  EXPECT_EQ(result.best.end.row, 115);
  EXPECT_EQ(result.best.end.col, 215);
}

TEST(AntidiagTest, TieBreakMatchesRowScanOrder) {
  // Two equal optima in one block: both kernels must report the same
  // (row-major first) cell.
  const seq::Sequence a("a", "ACAC");
  const seq::Sequence b("b", "ACGGAC");
  std::vector<Nt> qa(4), qb(6);
  a.extract(0, 4, qa.data());
  b.extract(0, 6, qb.data());
  std::vector<Score> zero_h(6, 0), neg_f(6, sw::kNegInf);
  std::vector<Score> zero_hc(4, 0), neg_e(4, sw::kNegInf);
  for (const Kernel kind :
       {Kernel::kRowScan, Kernel::kAntiDiag, Kernel::kStripMined}) {
    std::vector<Score> row_h = zero_h, row_f = neg_f;
    std::vector<Score> col_h = zero_hc, col_e = neg_e;
    BlockArgs args;
    args.query = qa.data();
    args.subject = qb.data();
    args.rows = 4;
    args.cols = 6;
    args.top_h = row_h.data();
    args.top_f = row_f.data();
    args.left_h = col_h.data();
    args.left_e = col_e.data();
    args.bottom_h = row_h.data();
    args.bottom_f = row_f.data();
    args.right_h = col_h.data();
    args.right_e = col_e.data();
    sw::BlockResult result;
    switch (kind) {
      case Kernel::kAntiDiag:
        result = compute_block_antidiag(ScoreScheme{}, args);
        break;
      case Kernel::kStripMined:
        result = compute_block_strip(ScoreScheme{}, args);
        break;
      case Kernel::kRowScan:
        result = compute_block(ScoreScheme{}, args);
        break;
    }
    EXPECT_EQ(result.best.end, (sw::CellPos{1, 1}))
        << static_cast<int>(kind);
  }
}

}  // namespace
}  // namespace mgpusw
