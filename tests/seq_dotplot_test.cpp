#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "base/error.hpp"
#include "seq/dotplot.hpp"
#include "seq/synth.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::DotplotConfig;
using seq::Sequence;

DotplotConfig small_config() {
  DotplotConfig config;
  config.k = 12;  // large enough that random 4 kbp pairs barely collide
  config.width = 32;
  config.height = 32;
  return config;
}

TEST(DotplotTest, SelfComparisonIsDiagonal) {
  const Sequence s = testutil::random_sequence(4000, 7);
  const auto plot = seq::make_dotplot(s, s, small_config());
  EXPECT_GT(plot.max_count(), 0);
  EXPECT_GT(plot.diagonal_fraction(1), 0.95);
}

TEST(DotplotTest, HomologsShowDiagonalStructure) {
  const auto spec = seq::scaled_pair(seq::paper_chromosome_pairs()[2], 8192);
  const auto homologs = seq::make_homolog_pair(spec, 5);
  const auto plot =
      seq::make_dotplot(homologs.query, homologs.subject, small_config());
  EXPECT_GT(plot.diagonal_fraction(2), 0.8);
}

TEST(DotplotTest, UnrelatedSequencesAreFlat) {
  const Sequence a = testutil::random_sequence(8000, 8);
  const Sequence b = testutil::random_sequence(8000, 9);
  // Use a small word so random collisions produce plenty of hits; they
  // must spread uniformly, so the diagonal band holds only its area
  // share (~5 of 32 columns).
  DotplotConfig config = small_config();
  config.k = 8;
  const auto plot = seq::make_dotplot(a, b, config);
  EXPECT_GT(plot.max_count(), 0);
  EXPECT_LT(plot.diagonal_fraction(2), 0.4);
}

TEST(DotplotTest, EmptyAndShortInputs) {
  const Sequence empty;
  const Sequence s = testutil::random_sequence(100, 10);
  const auto plot = seq::make_dotplot(empty, s, small_config());
  EXPECT_EQ(plot.max_count(), 0);
  const Sequence tiny("t", "ACG");  // shorter than k
  EXPECT_EQ(seq::make_dotplot(tiny, s, small_config()).max_count(), 0);
}

TEST(DotplotTest, ConfigValidation) {
  const Sequence s = testutil::random_sequence(100, 11);
  DotplotConfig config = small_config();
  config.k = 2;
  EXPECT_THROW((void)seq::make_dotplot(s, s, config), InvalidArgument);
  config = small_config();
  config.width = 0;
  EXPECT_THROW((void)seq::make_dotplot(s, s, config), InvalidArgument);
}

TEST(DotplotTest, RepeatWordsAreSkipped) {
  // A homopolymer sequence is one giant repeat word; the cap must kick
  // in instead of producing a quadratic blowup of hits.
  const Sequence poly("p", std::string(2000, 'A'));
  DotplotConfig config = small_config();
  config.max_word_hits = 8;
  const auto plot = seq::make_dotplot(poly, poly, config);
  EXPECT_EQ(plot.max_count(), 0);  // the single word exceeded the cap
}

TEST(DotplotTest, PgmRoundTripHeader) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path =
      dir / ("mgpusw_dotplot_" + std::to_string(::getpid()) + ".pgm");
  const Sequence s = testutil::random_sequence(2000, 12);
  const auto plot = seq::make_dotplot(s, s, small_config());
  seq::write_pgm(plot, path.string());

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(in));
  std::string magic;
  std::int64_t width = 0, height = 0, maxval = 0;
  in >> magic >> width >> height >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(width, 32);
  EXPECT_EQ(height, 32);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> pixels(32 * 32);
  in.read(pixels.data(), static_cast<std::streamsize>(pixels.size()));
  EXPECT_TRUE(static_cast<bool>(in));
  std::remove(path.string().c_str());
}

TEST(DotplotTest, WritePgmBadPathThrows) {
  seq::Dotplot plot;
  plot.width = plot.height = 4;
  plot.counts.assign(16, 0);
  EXPECT_THROW(seq::write_pgm(plot, "/nonexistent/dir/plot.pgm"), IoError);
}

}  // namespace
}  // namespace mgpusw
