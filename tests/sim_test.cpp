#include <gtest/gtest.h>

#include "base/error.hpp"
#include "sim/pipeline_sim.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using sim::SimConfig;
using sim::SimResult;

SimConfig base_config(int devices, std::int64_t rows = 1 << 20,
                      std::int64_t cols = 1 << 20) {
  SimConfig config;
  config.rows = rows;
  config.cols = cols;
  config.block_rows = 4096;
  config.block_cols = 4096;
  config.buffer_capacity = 16;
  for (int d = 0; d < devices; ++d) {
    config.devices.push_back(vgpu::tesla_m2090());
  }
  return config;
}

TEST(SimTest, ValidatesConfig) {
  SimConfig config = base_config(1);
  config.rows = 0;
  EXPECT_THROW(sim::simulate_pipeline(config), InvalidArgument);
  config = base_config(0);
  EXPECT_THROW(sim::simulate_pipeline(config), InvalidArgument);
  config = base_config(1);
  config.buffer_capacity = 0;
  EXPECT_THROW(sim::simulate_pipeline(config), InvalidArgument);
}

TEST(SimTest, SingleDeviceApproachesProfileRate) {
  const SimConfig config = base_config(1, 1 << 22, 1 << 22);
  const SimResult result = sim::simulate_pipeline(config);
  EXPECT_EQ(result.total_cells,
            static_cast<std::int64_t>(1 << 22) * (1 << 22));
  // Large matrix: ramp-up is negligible; GCUPS ~= the device's 46.
  EXPECT_NEAR(result.gcups(), vgpu::tesla_m2090().sw_gcups, 1.5);
}

TEST(SimTest, DeterministicAcrossRuns) {
  const SimConfig config = base_config(3);
  const SimResult a = sim::simulate_pipeline(config);
  const SimResult b = sim::simulate_pipeline(config);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
}

TEST(SimTest, HomogeneousScalingIsNearLinear) {
  const double one = sim::simulate_pipeline(base_config(1)).gcups();
  const double two = sim::simulate_pipeline(base_config(2)).gcups();
  const double three = sim::simulate_pipeline(base_config(3)).gcups();
  EXPECT_GT(two, one * 1.6);
  EXPECT_GT(three, one * 2.2);
  EXPECT_LT(three, one * 3.05);  // cannot exceed aggregate rate
}

TEST(SimTest, HeterogeneousEnvironmentHitsHeadline) {
  // The paper's environment 1 on a chromosome-scale matrix approaches
  // ~140 GCUPS aggregate.
  SimConfig config = base_config(0, 32 << 20, 32 << 20);
  config.devices = vgpu::environment1();
  config.block_rows = 1 << 15;
  config.block_cols = 1 << 15;
  const SimResult result = sim::simulate_pipeline(config);
  const double aggregate = sim::aggregate_gcups(config.devices);
  EXPECT_GT(result.gcups(), aggregate * 0.9);
  EXPECT_LE(result.gcups(), aggregate * 1.001);
}

TEST(SimTest, TinyBufferSerializesPipeline) {
  SimConfig small_buffer = base_config(3);
  small_buffer.buffer_capacity = 1;
  SimConfig big_buffer = base_config(3);
  big_buffer.buffer_capacity = 64;
  const double constrained =
      sim::simulate_pipeline(small_buffer).gcups();
  const double relaxed = sim::simulate_pipeline(big_buffer).gcups();
  EXPECT_GE(relaxed, constrained);
}

TEST(SimTest, ProportionalSplitBeatsEqualSplitForHeterogeneous) {
  SimConfig proportional = base_config(0, 8 << 20, 8 << 20);
  proportional.devices = vgpu::environment1();
  proportional.block_rows = 1 << 14;
  proportional.block_cols = 1 << 14;
  SimConfig equal = proportional;
  equal.weights = {1.0, 1.0, 1.0};
  const double prop_gcups = sim::simulate_pipeline(proportional).gcups();
  const double equal_gcups = sim::simulate_pipeline(equal).gcups();
  EXPECT_GT(prop_gcups, equal_gcups * 1.1);
}

TEST(SimTest, StatsAreCoherent) {
  const SimConfig config = base_config(3);
  const SimResult result = sim::simulate_pipeline(config);
  ASSERT_EQ(result.devices.size(), 3u);
  std::int64_t cells = 0;
  for (const auto& device : result.devices) {
    cells += device.cells;
    EXPECT_GT(device.busy_ns, 0);
    EXPECT_LE(device.finish_ns, result.makespan_ns);
    EXPECT_GE(device.recv_wait_ns, 0);
    EXPECT_GE(device.send_wait_ns, 0);
  }
  EXPECT_EQ(cells, result.total_cells);
  EXPECT_EQ(result.total_cells, config.rows * config.cols);
  // Device 0 never waits to receive; the last never waits to send.
  EXPECT_EQ(result.devices[0].recv_wait_ns, 0);
  EXPECT_EQ(result.devices[2].send_wait_ns, 0);
}

TEST(SimTest, DownstreamDevicesStartLater) {
  const SimConfig config = base_config(3);
  const SimResult result = sim::simulate_pipeline(config);
  // Pipeline fill: each downstream device finishes later than (or with)
  // its upstream neighbour on an evenly split homogeneous run.
  EXPECT_GE(result.devices[1].finish_ns, result.devices[0].finish_ns);
  EXPECT_GE(result.devices[2].finish_ns, result.devices[1].finish_ns);
}

TEST(SimTest, RampUpPenalisesSmallMatrices) {
  // For a matrix barely wider than the dispatch width, GCUPS must fall
  // well short of the profile rate.
  SimConfig config = base_config(1, 32768, 32768);
  config.block_rows = 4096;
  config.block_cols = 4096;
  const double small = sim::simulate_pipeline(config).gcups();
  EXPECT_LT(small, vgpu::tesla_m2090().sw_gcups * 0.9);
}

TEST(SimTest, MoreDevicesNeedLongerSequencesToWin) {
  // Crossover shape: on a small matrix, 3 devices may lose to 1; on a
  // large matrix they must win clearly.
  SimConfig small1 = base_config(1, 1 << 17, 1 << 17);
  SimConfig small3 = base_config(3, 1 << 17, 1 << 17);
  SimConfig large1 = base_config(1, 1 << 22, 1 << 22);
  SimConfig large3 = base_config(3, 1 << 22, 1 << 22);
  const double ratio_small = sim::simulate_pipeline(small3).gcups() /
                             sim::simulate_pipeline(small1).gcups();
  const double ratio_large = sim::simulate_pipeline(large3).gcups() /
                             sim::simulate_pipeline(large1).gcups();
  EXPECT_GT(ratio_large, ratio_small);
  EXPECT_GT(ratio_large, 2.5);
}

TEST(SimTest, AggregateGcups) {
  EXPECT_NEAR(sim::aggregate_gcups(vgpu::environment1()), 140.5, 1.0);
  EXPECT_NEAR(sim::aggregate_gcups(vgpu::environment2()), 138.0, 1.0);
}

TEST(SimTest, DiagonalBarrierCostsThroughput) {
  // The barrier schedule serializes each device's tail behind its
  // upstream neighbour; at multi-device scale it must lose clearly to
  // the fine-grain schedule, and both must process every cell.
  SimConfig fine = base_config(3);
  SimConfig barrier = base_config(3);
  barrier.schedule = sim::SimSchedule::kDiagonalBarrier;
  const SimResult fine_result = sim::simulate_pipeline(fine);
  const SimResult barrier_result = sim::simulate_pipeline(barrier);
  EXPECT_EQ(barrier_result.total_cells, fine_result.total_cells);
  EXPECT_LT(barrier_result.gcups(), fine_result.gcups() * 0.95);
  // Single device: no pipeline, no barrier penalty at this granularity.
  SimConfig solo_fine = base_config(1);
  SimConfig solo_barrier = base_config(1);
  solo_barrier.schedule = sim::SimSchedule::kDiagonalBarrier;
  EXPECT_NEAR(sim::simulate_pipeline(solo_barrier).gcups(),
              sim::simulate_pipeline(solo_fine).gcups(), 0.5);
}

TEST(SimTest, DiagonalBarrierStatsCoherent) {
  SimConfig config = base_config(3);
  config.schedule = sim::SimSchedule::kDiagonalBarrier;
  const SimResult result = sim::simulate_pipeline(config);
  std::int64_t cells = 0;
  for (const auto& device : result.devices) {
    cells += device.cells;
    EXPECT_LE(device.finish_ns, result.makespan_ns);
  }
  EXPECT_EQ(cells, config.rows * config.cols);
}

TEST(SimTest, CrossoverLengthIsFoundAndOrdered) {
  SimConfig config = base_config(3);
  config.block_rows = 512;
  config.block_cols = 512;
  const std::int64_t break_even = sim::find_crossover_length(config, 1.0);
  const std::int64_t double_up = sim::find_crossover_length(config, 2.0);
  ASSERT_GT(break_even, 0);
  ASSERT_GT(double_up, 0);
  EXPECT_LE(break_even, double_up);
  // At the crossover the multi-device run really does meet the margin,
  // and just below it does not (bisection invariant).
  config.rows = config.cols = double_up;
  SimConfig solo = config;
  solo.devices = {config.devices[0]};
  const double multi = sim::simulate_pipeline(config).gcups();
  const double single = sim::simulate_pipeline(solo).gcups();
  EXPECT_GE(multi, single * 2.0);
}

TEST(SimTest, CrossoverUnreachableMarginReturnsMinusOne) {
  SimConfig config = base_config(3);
  // 3 homogeneous devices can never be 5x one of them.
  EXPECT_EQ(sim::find_crossover_length(config, 5.0, 1 << 22), -1);
}

TEST(SimTest, CrossoverValidatesArguments) {
  SimConfig config = base_config(2);
  EXPECT_THROW((void)sim::find_crossover_length(config, 0.0),
               InvalidArgument);
  config.devices.clear();
  EXPECT_THROW((void)sim::find_crossover_length(config, 1.0),
               InvalidArgument);
}

TEST(SimTest, WeightsMustMatchDevices) {
  SimConfig config = base_config(2);
  config.weights = {1.0};
  EXPECT_THROW(sim::simulate_pipeline(config), InvalidArgument);
}

}  // namespace
}  // namespace mgpusw
