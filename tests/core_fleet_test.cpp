// DeviceFleet tests: lease accounting, FIFO fairness under contention,
// and RAII release when an engine throws while holding a lease.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "core/engine.hpp"
#include "core/fleet.hpp"
#include "tests/test_util.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using core::DeviceFleet;
using core::DeviceLease;

DeviceFleet toy_fleet(int count, double gcups = 10.0) {
  std::vector<vgpu::DeviceSpec> specs;
  for (int d = 0; d < count; ++d) specs.push_back(vgpu::toy_device(gcups));
  return DeviceFleet::from_specs(specs);
}

TEST(FleetTest, AcquireReleaseAccounting) {
  DeviceFleet fleet = toy_fleet(3);
  EXPECT_EQ(fleet.size(), 3u);
  EXPECT_EQ(fleet.available(), 3u);
  {
    DeviceLease lease = fleet.acquire(2);
    ASSERT_TRUE(lease.valid());
    EXPECT_EQ(lease.devices().size(), 2u);
    EXPECT_NE(lease.devices()[0], lease.devices()[1]);
    EXPECT_EQ(fleet.available(), 1u);
  }
  EXPECT_EQ(fleet.available(), 3u);  // RAII release
}

TEST(FleetTest, ExplicitReleaseIsIdempotent) {
  DeviceFleet fleet = toy_fleet(2);
  DeviceLease lease = fleet.acquire(1);
  lease.release();
  EXPECT_FALSE(lease.valid());
  EXPECT_EQ(fleet.available(), 2u);
  lease.release();  // second release is a no-op
  EXPECT_EQ(fleet.available(), 2u);
}

TEST(FleetTest, MoveTransfersOwnership) {
  DeviceFleet fleet = toy_fleet(2);
  DeviceLease lease = fleet.acquire(1);
  DeviceLease moved = std::move(lease);
  EXPECT_FALSE(lease.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(fleet.available(), 1u);
  moved.release();
  EXPECT_EQ(fleet.available(), 2u);
}

TEST(FleetTest, TryAcquire) {
  DeviceFleet fleet = toy_fleet(2);
  std::optional<DeviceLease> all = fleet.try_acquire(2);
  ASSERT_TRUE(all.has_value());
  EXPECT_FALSE(fleet.try_acquire(1).has_value());  // nothing free
  all->release();
  EXPECT_TRUE(fleet.try_acquire(1).has_value());
}

TEST(FleetTest, RejectsBadCounts) {
  DeviceFleet fleet = toy_fleet(2);
  EXPECT_THROW((void)fleet.acquire(0), InvalidArgument);
  EXPECT_THROW((void)fleet.acquire(3), InvalidArgument);
  EXPECT_THROW((void)fleet.try_acquire(0), InvalidArgument);
}

TEST(FleetTest, FifoFairnessWideRequestNotStarved) {
  // A wide request (all devices) queued behind nothing must be served
  // before a narrow request that arrived later, even though the narrow
  // one could have been satisfied immediately.
  DeviceFleet fleet = toy_fleet(2);
  DeviceLease initial = fleet.acquire(2);

  std::mutex order_mu;
  std::vector<std::string> order;
  std::atomic<bool> wide_queued{false};

  std::thread wide([&] {
    wide_queued = true;
    DeviceLease lease = fleet.acquire(2);
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back("wide");
  });
  while (!wide_queued) std::this_thread::yield();
  // Give the wide acquire time to take its ticket before the narrow one.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread narrow([&] {
    DeviceLease lease = fleet.acquire(1);
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back("narrow");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  initial.release();  // both waiters become serviceable
  wide.join();
  narrow.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "wide");
  EXPECT_EQ(order[1], "narrow");
}

TEST(FleetTest, ContendedStressKeepsLeasesDisjoint) {
  constexpr int kDevices = 4;
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  DeviceFleet fleet = toy_fleet(kDevices);

  // One flag per device: set while some lease holds it. A fleet bug that
  // hands the same device to two leases trips the EXPECT below.
  std::vector<std::atomic<bool>> held(kDevices);
  for (auto& flag : held) flag = false;
  std::vector<vgpu::Device*> all_devices;
  {
    DeviceLease everything = fleet.acquire(kDevices);
    all_devices = everything.devices();
  }
  auto device_slot = [&](vgpu::Device* device) {
    const auto it =
        std::find(all_devices.begin(), all_devices.end(), device);
    ASSERT_NE(it, all_devices.end());
    const auto slot = static_cast<std::size_t>(it - all_devices.begin());
    EXPECT_FALSE(held[slot].exchange(true)) << "device leased twice";
    std::this_thread::yield();
    held[slot] = false;
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::size_t count =
            1 + static_cast<std::size_t>((t + i) % kDevices);
        DeviceLease lease = fleet.acquire(count);
        for (vgpu::Device* device : lease.devices()) device_slot(device);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(fleet.available(), static_cast<std::size_t>(kDevices));
}

TEST(FleetTest, LeaseReleasesWhenEngineThrows) {
  // An engine failure mid-run must not leak the lease: the next acquire
  // of the full fleet would otherwise deadlock.
  std::vector<vgpu::DeviceSpec> specs = {vgpu::toy_device(10.0),
                                         vgpu::toy_device(10.0)};
  specs[1].memory_bytes = 16;  // second device cannot allocate borders
  DeviceFleet fleet = DeviceFleet::from_specs(specs);

  auto [a, b] = testutil::related_pair(300, 31);
  try {
    DeviceLease lease = fleet.acquire(2);
    core::EngineConfig config;
    config.block_rows = 32;
    config.block_cols = 32;
    core::MultiDeviceEngine engine(config, lease.devices());
    (void)engine.run(a, b);
    FAIL() << "run should have thrown";
  } catch (const Error&) {
  }
  EXPECT_EQ(fleet.available(), 2u);
  DeviceLease again = fleet.acquire(2);  // must not block
  EXPECT_TRUE(again.valid());
}

}  // namespace
}  // namespace mgpusw
