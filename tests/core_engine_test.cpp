// End-to-end tests of the multi-device engine: the central correctness
// claim is that splitting the matrix across devices and exchanging
// borders through circular buffers changes nothing about the result.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "base/error.hpp"
#include "core/balance.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"
#include "core/special_rows.hpp"
#include "obs/metrics.hpp"
#include "sw/block_simd.hpp"
#include "sw/kernel.hpp"
#include "sw/linear.hpp"
#include "tests/test_util.hpp"
#include "vgpu/device.hpp"
#include "vgpu/spec.hpp"

namespace mgpusw {
namespace {

using core::BalanceMode;
using core::EngineConfig;
using core::EngineResult;
using core::MultiDeviceEngine;
using core::Transport;
using seq::Sequence;

/// Owns N toy devices and hands out raw pointers.
class DeviceFleet {
 public:
  explicit DeviceFleet(int count, double base_gcups = 10.0,
                       double gcups_step = 0.0) {
    for (int d = 0; d < count; ++d) {
      devices_.push_back(std::make_unique<vgpu::Device>(
          vgpu::toy_device(base_gcups + gcups_step * d)));
    }
  }

  [[nodiscard]] std::vector<vgpu::Device*> pointers() const {
    std::vector<vgpu::Device*> out;
    for (const auto& device : devices_) out.push_back(device.get());
    return out;
  }

 private:
  std::vector<std::unique_ptr<vgpu::Device>> devices_;
};

EngineConfig small_config() {
  EngineConfig config;
  config.block_rows = 32;
  config.block_cols = 32;
  config.buffer_capacity = 4;
  return config;
}

// ---------------------------------------------------------------------------
// construction validation

TEST(EngineConfigTest, RejectsBadConfigs) {
  DeviceFleet fleet(1);
  {
    EngineConfig config = small_config();
    config.block_rows = 0;
    EXPECT_THROW(MultiDeviceEngine(config, fleet.pointers()),
                 InvalidArgument);
  }
  {
    EngineConfig config = small_config();
    config.buffer_capacity = 0;
    EXPECT_THROW(MultiDeviceEngine(config, fleet.pointers()),
                 InvalidArgument);
  }
  {
    EngineConfig config = small_config();
    EXPECT_THROW(MultiDeviceEngine(config, {}), InvalidArgument);
  }
  {
    EngineConfig config = small_config();
    config.balance = BalanceMode::kCustomWeights;
    config.custom_weights = {1.0, 2.0};  // one device only
    EXPECT_THROW(MultiDeviceEngine(config, fleet.pointers()),
                 InvalidArgument);
  }
  {
    EngineConfig config = small_config();
    config.kernel = "warp-shuffle";  // not a registered kernel
    EXPECT_THROW(MultiDeviceEngine(config, fleet.pointers()),
                 InvalidArgument);
  }
  {
    EngineConfig config = small_config();
    config.special_row_interval = 2;  // no store provided
    EXPECT_THROW(MultiDeviceEngine(config, fleet.pointers()),
                 InvalidArgument);
  }
}

TEST(EngineTest, RejectsEmptySequences) {
  DeviceFleet fleet(1);
  MultiDeviceEngine engine(small_config(), fleet.pointers());
  const Sequence s("s", "ACGT");
  EXPECT_THROW((void)engine.run(Sequence{}, s), InvalidArgument);
  EXPECT_THROW((void)engine.run(s, Sequence{}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// single-device correctness

TEST(EngineTest, SingleDeviceEqualsLinearScan) {
  DeviceFleet fleet(1);
  MultiDeviceEngine engine(small_config(), fleet.pointers());
  auto [a, b] = testutil::related_pair(300, 5);
  const EngineResult result = engine.run(a, b);
  EXPECT_EQ(result.best, linear_score(sw::ScoreScheme{}, a, b));
  EXPECT_EQ(result.matrix_cells, a.size() * b.size());
  EXPECT_EQ(result.computed_cells, a.size() * b.size());
  ASSERT_EQ(result.devices.size(), 1u);
  EXPECT_EQ(result.devices[0].chunks_sent, 0);
  EXPECT_GT(result.devices[0].blocks, 0);
  EXPECT_GT(result.gcups(), 0.0);
}

// ---------------------------------------------------------------------------
// multi-device correctness properties

struct MultiDeviceCase {
  int devices;
  std::int64_t block_rows;
  std::int64_t block_cols;
  std::int64_t buffer_capacity;
};

class MultiDeviceProperty
    : public ::testing::TestWithParam<std::tuple<MultiDeviceCase, int>> {};

TEST_P(MultiDeviceProperty, EqualsLinearScan) {
  const auto [test_case, seed] = GetParam();
  DeviceFleet fleet(test_case.devices, 8.0, 4.0);  // heterogeneous specs
  EngineConfig config;
  config.block_rows = test_case.block_rows;
  config.block_cols = test_case.block_cols;
  config.buffer_capacity = test_case.buffer_capacity;
  MultiDeviceEngine engine(config, fleet.pointers());

  auto [a, b] = testutil::related_pair(
      260 + seed * 17, static_cast<std::uint64_t>(seed) + 500);
  const auto expected = linear_score(config.scheme, a, b);
  const EngineResult result = engine.run(a, b);
  EXPECT_EQ(result.best, expected)
      << test_case.devices << " devices, blocks " << test_case.block_rows
      << "x" << test_case.block_cols << ", buffer "
      << test_case.buffer_capacity;
  EXPECT_EQ(result.computed_cells, a.size() * b.size());
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, MultiDeviceProperty,
    ::testing::Combine(
        ::testing::Values(
            MultiDeviceCase{2, 32, 32, 4},
            MultiDeviceCase{2, 16, 64, 1},   // minimal buffer
            MultiDeviceCase{3, 32, 32, 2},
            MultiDeviceCase{3, 8, 8, 16},    // many tiny blocks
            MultiDeviceCase{4, 64, 16, 3},
            MultiDeviceCase{5, 16, 16, 1}),  // deep pipeline, tight buffer
        ::testing::Range(0, 4)));

// Both block schedules must produce identical results; kDiagonal also
// exercises the device worker pool (blocks of one diagonal run
// concurrently).
class ScheduleProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleProperty, DiagonalEqualsRowMajorEqualsLinear) {
  const int seed = GetParam();
  auto [a, b] = testutil::related_pair(
      280 + seed * 23, static_cast<std::uint64_t>(seed) + 900);
  DeviceFleet fleet(3, 8.0, 4.0);
  EngineConfig config = small_config();
  const auto expected = linear_score(config.scheme, a, b);

  config.schedule = core::Schedule::kRowMajor;
  MultiDeviceEngine row_major(config, fleet.pointers());
  EXPECT_EQ(row_major.run(a, b).best, expected);

  config.schedule = core::Schedule::kDiagonal;
  MultiDeviceEngine diagonal(config, fleet.pointers());
  EXPECT_EQ(diagonal.run(a, b).best, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleProperty, ::testing::Range(0, 5));

TEST(EngineTest, DiagonalScheduleWithWorkerPool) {
  // Multi-threaded device workers: blocks of one diagonal in parallel.
  auto device = std::make_unique<vgpu::Device>(
      vgpu::toy_device(10.0), vgpu::DeviceOptions{.worker_threads = 3});
  EngineConfig config = small_config();
  config.schedule = core::Schedule::kDiagonal;
  MultiDeviceEngine engine(config, {device.get()});
  auto [a, b] = testutil::related_pair(400, 31);
  EXPECT_EQ(engine.run(a, b).best, linear_score(config.scheme, a, b));
  EXPECT_GT(device->kernels_launched(), 0);
}

TEST(EngineTest, EqualBalanceMatchesToo) {
  DeviceFleet fleet(3);
  EngineConfig config = small_config();
  config.balance = BalanceMode::kEqual;
  MultiDeviceEngine engine(config, fleet.pointers());
  auto [a, b] = testutil::related_pair(400, 9);
  EXPECT_EQ(engine.run(a, b).best, linear_score(config.scheme, a, b));
}

TEST(EngineTest, CustomWeightsRespectedInPartition) {
  DeviceFleet fleet(2);
  EngineConfig config = small_config();
  config.balance = BalanceMode::kCustomWeights;
  config.custom_weights = {1.0, 3.0};
  MultiDeviceEngine engine(config, fleet.pointers());
  const auto ranges = engine.plan_partition(3200);
  EXPECT_NEAR(static_cast<double>(ranges[1].cols) /
                  static_cast<double>(ranges[0].cols),
              3.0, 0.5);
  auto [a, b] = testutil::related_pair(350, 10);
  EXPECT_EQ(engine.run(a, b).best, linear_score(config.scheme, a, b));
}

TEST(EngineTest, TcpTransportEqualsInProcess) {
  DeviceFleet fleet(3);
  EngineConfig config = small_config();
  config.transport = Transport::kTcp;
  MultiDeviceEngine engine(config, fleet.pointers());
  auto [a, b] = testutil::related_pair(300, 11);
  const auto expected = linear_score(config.scheme, a, b);
  const EngineResult result = engine.run(a, b);
  EXPECT_EQ(result.best, expected);
  EXPECT_GT(result.devices[0].bytes_sent, 0);
}

TEST(EngineTest, ThrottledDevicesStillCorrect) {
  // Heterogeneity realized through the real-mode throttle.
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  devices.push_back(std::make_unique<vgpu::Device>(vgpu::toy_device(10.0)));
  devices.push_back(std::make_unique<vgpu::Device>(
      vgpu::toy_device(5.0), vgpu::DeviceOptions{.slowdown = 2.0}));
  MultiDeviceEngine engine(small_config(),
                           {devices[0].get(), devices[1].get()});
  auto [a, b] = testutil::related_pair(250, 12);
  EXPECT_EQ(engine.run(a, b).best,
            linear_score(sw::ScoreScheme{}, a, b));
}

TEST(EngineTest, NonDefaultSchemePropagates) {
  DeviceFleet fleet(2);
  EngineConfig config = small_config();
  config.scheme = sw::ScoreScheme{2, -1, 1, 1};
  MultiDeviceEngine engine(config, fleet.pointers());
  auto [a, b] = testutil::related_pair(280, 13);
  EXPECT_EQ(engine.run(a, b).best, linear_score(config.scheme, a, b));
}

TEST(EngineTest, RepeatedRunsAreDeterministic) {
  DeviceFleet fleet(3);
  MultiDeviceEngine engine(small_config(), fleet.pointers());
  auto [a, b] = testutil::related_pair(300, 14);
  const auto first = engine.run(a, b);
  const auto second = engine.run(a, b);
  EXPECT_EQ(first.best, second.best);
}

TEST(EngineTest, MatrixSmallerThanOneBlock) {
  DeviceFleet fleet(1);
  EngineConfig config;
  config.block_rows = 512;
  config.block_cols = 512;
  MultiDeviceEngine engine(config, fleet.pointers());
  auto [a, b] = testutil::related_pair(40, 15);
  EXPECT_EQ(engine.run(a, b).best, linear_score(config.scheme, a, b));
}

TEST(EngineTest, TooManyDevicesForMatrixThrows) {
  DeviceFleet fleet(4);
  EngineConfig config;
  config.block_cols = 512;  // 40-column subject -> one block column
  MultiDeviceEngine engine(config, fleet.pointers());
  auto [a, b] = testutil::related_pair(40, 16);
  EXPECT_THROW((void)engine.run(a, b), InvalidArgument);
}

// ---------------------------------------------------------------------------
// statistics

TEST(EngineTest, StatsAreCoherent) {
  DeviceFleet fleet(3, 10.0, 5.0);
  EngineConfig config = small_config();
  MultiDeviceEngine engine(config, fleet.pointers());
  auto [a, b] = testutil::related_pair(500, 17);
  const EngineResult result = engine.run(a, b);

  ASSERT_EQ(result.devices.size(), 3u);
  std::int64_t total_cells = 0;
  for (std::size_t d = 0; d < 3; ++d) {
    const auto& stats = result.devices[d];
    total_cells += stats.cells;
    EXPECT_GT(stats.blocks, 0);
    EXPECT_GT(stats.busy_ns, 0);
    EXPECT_GT(stats.wall_ns, 0);
    EXPECT_EQ(stats.cells, stats.slice.cols * a.size());
  }
  EXPECT_EQ(total_cells, a.size() * b.size());

  // Border traffic: device d sends one chunk per block row to d+1.
  const std::int64_t block_rows_count =
      (a.size() + config.block_rows - 1) / config.block_rows;
  EXPECT_EQ(result.devices[0].chunks_sent, block_rows_count);
  EXPECT_EQ(result.devices[1].chunks_received, block_rows_count);
  EXPECT_EQ(result.devices[1].chunks_sent, block_rows_count);
  EXPECT_EQ(result.devices[2].chunks_received, block_rows_count);
  EXPECT_EQ(result.devices[2].chunks_sent, 0);
  EXPECT_GT(result.devices[0].bytes_sent, 0);
}

// Randomised configuration fuzzing: draw engine configurations and
// sequence shapes from a seeded RNG and check exactness for each. This
// catches interactions the hand-picked parameter grids miss.
TEST(EngineFuzzTest, RandomConfigurationsAreExact) {
  base::Rng rng(20260706);
  for (int trial = 0; trial < 25; ++trial) {
    const auto schemes = testutil::test_schemes();
    EngineConfig config;
    config.scheme = schemes[rng.next_below(schemes.size())];
    config.block_rows = rng.next_range(1, 96);
    config.block_cols = rng.next_range(1, 96);
    config.buffer_capacity = rng.next_range(1, 8);
    config.schedule = rng.next_bool(0.5) ? core::Schedule::kRowMajor
                                         : core::Schedule::kDiagonal;
    const auto& registry = sw::kernel_registry();
    config.kernel = registry[rng.next_below(registry.size())].name;
    config.balance = rng.next_bool(0.5) ? BalanceMode::kSpecGcups
                                        : BalanceMode::kEqual;

    const auto device_count = static_cast<int>(rng.next_range(1, 4));
    DeviceFleet fleet(device_count, 5.0 + rng.next_double() * 20.0,
                      rng.next_double() * 10.0);

    const std::int64_t rows = rng.next_range(1, 400);
    // Ensure at least one block column per device.
    const std::int64_t min_cols = config.block_cols * device_count;
    const std::int64_t cols = min_cols + rng.next_range(0, 300);
    const seq::Sequence a = testutil::random_sequence(
        rows, rng.next_u64(), "fuzz-a");
    const seq::Sequence b = testutil::random_sequence(
        cols, rng.next_u64(), "fuzz-b");

    MultiDeviceEngine engine(config, fleet.pointers());
    const auto expected = linear_score(config.scheme, a, b);
    EXPECT_EQ(engine.run(a, b).best, expected)
        << "trial " << trial << ": " << device_count << " devices, blocks "
        << config.block_rows << "x" << config.block_cols << ", buffer "
        << config.buffer_capacity << ", rows " << rows << ", cols "
        << cols << ", kernel " << config.kernel;
  }
}

// ---------------------------------------------------------------------------
// kernel selection

TEST(EngineKernelTest, SimdKernelIsExactAcrossDevices) {
  DeviceFleet fleet(3, 10.0, 5.0);
  EngineConfig config = small_config();
  config.kernel = "simd";
  MultiDeviceEngine engine(config, fleet.pointers());
  auto [a, b] = testutil::related_pair(700, 11);
  const EngineResult result = engine.run(a, b);
  EXPECT_EQ(result.best, linear_score(config.scheme, a, b));
  EXPECT_EQ(result.kernel, "simd");
  EXPECT_EQ(result.simd_isa,
            sw::simd_isa_name(sw::detected_simd_isa()));
}

TEST(EngineKernelTest, PerDeviceSpecOverrideIsExact) {
  // Heterogeneous kernels: device 0 keeps the engine default (row),
  // device 1 runs the SIMD kernel on its slice. The split must still be
  // invisible in the result.
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  vgpu::DeviceSpec plain = vgpu::toy_device(10.0);
  vgpu::DeviceSpec simd = vgpu::toy_device(10.0);
  simd.kernel = "simd";
  devices.push_back(std::make_unique<vgpu::Device>(plain));
  devices.push_back(std::make_unique<vgpu::Device>(simd));
  const std::vector<vgpu::Device*> ptrs = {devices[0].get(),
                                           devices[1].get()};
  MultiDeviceEngine engine(small_config(), ptrs);
  auto [a, b] = testutil::related_pair(400, 23);
  EXPECT_EQ(engine.run(a, b).best,
            linear_score(sw::ScoreScheme{}, a, b));
}

TEST(EngineKernelTest, LowPrecisionLadderIsExactAndCountsReruns) {
  // match=25 saturates int8 on any decent homology run, so the simd8
  // ladder must escalate (int8 -> int16) on most blocks — and the rerun
  // count must surface through DeviceRunStats, the metrics registry and
  // the JSON report, while the result stays bit-identical.
  DeviceFleet fleet(3, 10.0, 5.0);
  obs::MetricsRegistry metrics;
  EngineConfig config = small_config();
  // Blocks must clear the int8 kernel's vector-geometry floor (32 rows,
  // 64 cols) or it delegates to the exact kernel and never reruns.
  config.block_rows = 64;
  config.block_cols = 128;
  config.kernel = "simd8";
  config.scheme = sw::ScoreScheme{25, -2, 2, 1};
  config.obs.metrics = &metrics;
  MultiDeviceEngine engine(config, fleet.pointers());
  auto [a, b] = testutil::related_pair(700, 11);
  const EngineResult result = engine.run(a, b);
  EXPECT_EQ(result.best, linear_score(config.scheme, a, b));
  EXPECT_EQ(result.kernel, "simd8");

  std::int64_t reruns = 0;
  for (const core::DeviceRunStats& stats : result.devices) {
    reruns += stats.overflow_reruns;
  }
  EXPECT_GT(reruns, 0);
  EXPECT_EQ(metrics.counter_value("kernel.overflow_reruns"), reruns);
  const std::string json = core::to_json(result, &metrics);
  EXPECT_NE(json.find("\"overflow_reruns\""), std::string::npos);
}

TEST(EngineKernelTest, NarrowKernelsAreExactAcrossDevices) {
  DeviceFleet fleet(2, 10.0, 5.0);
  auto [a, b] = testutil::related_pair(500, 17);
  for (const std::string kernel : {"simd16", "simd8", "auto"}) {
    EngineConfig config = small_config();
    config.kernel = kernel;
    MultiDeviceEngine engine(config, fleet.pointers());
    const EngineResult result = engine.run(a, b);
    EXPECT_EQ(result.best, linear_score(config.scheme, a, b)) << kernel;
    EXPECT_EQ(result.kernel, kernel);
  }
}

TEST(EngineKernelTest, RejectsUnknownPerDeviceKernel) {
  vgpu::DeviceSpec bad = vgpu::toy_device(10.0);
  bad.kernel = "tensor-core";
  vgpu::Device device(bad);
  const std::vector<vgpu::Device*> ptrs = {&device};
  EXPECT_THROW(MultiDeviceEngine(small_config(), ptrs), InvalidArgument);
}

// ---------------------------------------------------------------------------
// failure propagation: an error inside one device's worker must surface
// as an exception from run() without hanging the other devices.

TEST(EngineFailureTest, DeviceOutOfMemoryPropagates) {
  vgpu::DeviceSpec tiny_spec = vgpu::toy_device(10.0);
  tiny_spec.memory_bytes = 16;  // border allocation cannot fit
  vgpu::Device tiny(tiny_spec);
  MultiDeviceEngine engine(small_config(), {&tiny});
  auto [a, b] = testutil::related_pair(200, 21);
  EXPECT_THROW((void)engine.run(a, b), Error);
}

TEST(EngineFailureTest, MiddleDeviceFailureUnblocksNeighbours) {
  // Device 1 of 3 cannot allocate its borders; devices 0 and 2 must not
  // deadlock on their channels, and run() must rethrow.
  vgpu::Device left(vgpu::toy_device(10.0));
  vgpu::DeviceSpec tiny_spec = vgpu::toy_device(10.0);
  tiny_spec.memory_bytes = 16;
  vgpu::Device middle(tiny_spec);
  vgpu::Device right(vgpu::toy_device(10.0));
  EngineConfig config = small_config();
  config.buffer_capacity = 1;  // maximal back-pressure on device 0
  MultiDeviceEngine engine(config, {&left, &middle, &right});
  auto [a, b] = testutil::related_pair(400, 22);
  EXPECT_THROW((void)engine.run(a, b), Error);
}

TEST(EngineFailureTest, LastDeviceFailureUnblocksUpstream) {
  vgpu::Device left(vgpu::toy_device(10.0));
  vgpu::DeviceSpec tiny_spec = vgpu::toy_device(10.0);
  tiny_spec.memory_bytes = 16;
  vgpu::Device broken(tiny_spec);
  EngineConfig config = small_config();
  config.buffer_capacity = 1;
  MultiDeviceEngine engine(config, {&left, &broken});
  auto [a, b] = testutil::related_pair(400, 23);
  EXPECT_THROW((void)engine.run(a, b), Error);
}

TEST(EngineFailureTest, TcpDownstreamDeathUnblocksProducer) {
  // Downstream death over TCP: device 1 throws mid-run (from its progress
  // callback) while device 0 is throttled by a one-chunk acknowledgement
  // window. Without a consumer-side channel close, device 0 would wait
  // forever for an ack that is never coming; run() must rethrow instead.
  DeviceFleet fleet(2);
  EngineConfig config = small_config();
  config.transport = Transport::kTcp;
  config.buffer_capacity = 1;  // producer blocks after one unacked chunk
  config.progress = [](const core::ProgressEvent& event) {
    if (event.device_index == 1 && event.completed_units == 2) {
      throw Error("downstream device died");
    }
  };
  MultiDeviceEngine engine(config, fleet.pointers());
  auto [a, b] = testutil::related_pair(400, 25);
  EXPECT_THROW((void)engine.run(a, b), Error);
}

TEST(EngineFailureTest, DeviceUsableAfterFailedRun) {
  // A failed run must not poison the device for later runs.
  vgpu::Device good(vgpu::toy_device(10.0));
  vgpu::DeviceSpec tiny_spec = vgpu::toy_device(10.0);
  tiny_spec.memory_bytes = 16;
  vgpu::Device broken(tiny_spec);
  auto [a, b] = testutil::related_pair(200, 24);
  {
    MultiDeviceEngine engine(small_config(), {&good, &broken});
    EXPECT_THROW((void)engine.run(a, b), Error);
  }
  MultiDeviceEngine engine(small_config(), {&good});
  EXPECT_EQ(engine.run(a, b).best,
            linear_score(sw::ScoreScheme{}, a, b));
}

// ---------------------------------------------------------------------------
// block pruning (extension)

TEST(EnginePruningTest, SelfComparisonPrunesAndKeepsScore) {
  const Sequence s = testutil::random_sequence(1200, 18);
  DeviceFleet fleet(1);
  EngineConfig config = small_config();
  MultiDeviceEngine plain(config, fleet.pointers());
  const auto expected = plain.run(s, s);

  config.enable_pruning = true;
  MultiDeviceEngine pruned(config, fleet.pointers());
  const auto result = pruned.run(s, s);

  EXPECT_EQ(result.best.score, expected.best.score);
  std::int64_t pruned_blocks = 0;
  for (const auto& stats : result.devices) {
    pruned_blocks += stats.pruned_blocks;
  }
  // Self-comparison finds the maximum early (main diagonal); a large part
  // of the off-diagonal matrix must get pruned.
  EXPECT_GT(pruned_blocks, 0);
  EXPECT_LT(result.computed_cells, result.matrix_cells);
}

TEST(EnginePruningTest, MultiDevicePruningKeepsScore) {
  const Sequence s = testutil::random_sequence(900, 19);
  DeviceFleet fleet(3);
  EngineConfig config = small_config();
  config.enable_pruning = true;
  MultiDeviceEngine engine(config, fleet.pointers());
  const auto expected = linear_score(config.scheme, s, s);
  EXPECT_EQ(engine.run(s, s).best.score, expected.score);
}

TEST(EnginePruningTest, RandomPairsScoreExactUnderPruning) {
  for (int seed = 0; seed < 5; ++seed) {
    auto [a, b] = testutil::related_pair(
        300, static_cast<std::uint64_t>(seed) + 700);
    DeviceFleet fleet(2);
    EngineConfig config = small_config();
    config.enable_pruning = true;
    MultiDeviceEngine engine(config, fleet.pointers());
    EXPECT_EQ(engine.run(a, b).best.score,
              linear_score(config.scheme, a, b).score)
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// special rows (extension)

TEST(EngineSpecialRowsTest, SavesEveryKthBlockRowAcrossDevices) {
  DeviceFleet fleet(2);
  core::SpecialRowStore store;
  EngineConfig config = small_config();  // block_rows = 32
  config.special_row_interval = 2;       // every 64 matrix rows
  config.special_rows = &store;
  MultiDeviceEngine engine(config, fleet.pointers());
  // 320 query rows = exactly 10 blocks of 32 rows, so every saved row
  // sits at a 64-row boundary.
  auto [a, b] = testutil::related_pair(320, 20);
  (void)engine.run(a, b);

  const auto rows = store.rows();
  ASSERT_FALSE(rows.empty());
  for (const std::int64_t row : rows) {
    EXPECT_EQ((row + 1) % 64, 0) << "row " << row;
    const auto h = store.assemble_row(row, b.size());
    EXPECT_EQ(static_cast<std::int64_t>(h.size()), b.size());
    for (const sw::Score value : h) {
      EXPECT_GE(value, 0);  // local-alignment H is non-negative
    }
  }
}

// ---------------------------------------------------------------------------
// balance / calibration

TEST(BalanceTest, SpecWeights) {
  DeviceFleet fleet(2, 10.0, 30.0);
  const auto weights = core::spec_weights(fleet.pointers());
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 10.0);
  EXPECT_DOUBLE_EQ(weights[1], 40.0);
}

TEST(BalanceTest, CalibrationReturnsPositiveRates) {
  DeviceFleet fleet(2);
  const auto weights = core::calibrate_weights(
      fleet.pointers(), sw::ScoreScheme{}, 256, 256);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(weights[0], 0.0);
  EXPECT_GT(weights[1], 0.0);
}

TEST(BalanceTest, ThrottledDeviceMeasuresSlower) {
  // The 4x-throttled device should measure ~4x slower; a loaded
  // single-core host adds scheduler noise, so require only a clear
  // separation (>1.7x) over a large enough sample to dominate jitter.
  vgpu::Device fast(vgpu::toy_device(10.0));
  vgpu::Device slow(vgpu::toy_device(10.0),
                    vgpu::DeviceOptions{.slowdown = 4.0});
  const auto weights = core::calibrate_weights(
      {&fast, &slow}, sw::ScoreScheme{}, 1024, 1024);
  EXPECT_GT(weights[0], weights[1] * 1.7);
}

}  // namespace
}  // namespace mgpusw
