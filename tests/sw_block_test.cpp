// Tests of the block kernel's border contract: decomposing the matrix
// into arbitrary block grids and stitching the borders must reproduce the
// monolithic scan exactly. This is the property the whole multi-device
// design rests on.
#include <gtest/gtest.h>

#include <vector>

#include "base/math.hpp"
#include "sw/block.hpp"
#include "sw/linear.hpp"
#include "sw/reference.hpp"
#include "tests/test_util.hpp"

namespace mgpusw {
namespace {

using seq::Nt;
using seq::Sequence;
using sw::BlockArgs;
using sw::Score;
using sw::ScoreScheme;

const ScoreScheme kDefault{};

std::vector<Nt> unpack(const Sequence& s) {
  std::vector<Nt> out(static_cast<std::size_t>(s.size()));
  if (s.size() > 0) s.extract(0, s.size(), out.data());
  return out;
}

/// Serial blocked sweep with the exact border bookkeeping the engine
/// uses (aliased in-place borders, per-column corners), in row-major
/// block order — an independent check of compute_block's contract.
sw::ScoreResult blocked_score(const ScoreScheme& scheme, const Sequence& qs,
                              const Sequence& ss, std::int64_t block_rows,
                              std::int64_t block_cols) {
  const std::vector<Nt> query = unpack(qs);
  const std::vector<Nt> subject = unpack(ss);
  const auto rows = static_cast<std::int64_t>(query.size());
  const auto cols = static_cast<std::int64_t>(subject.size());

  const std::int64_t nbr = base::div_ceil(rows, block_rows);
  const std::int64_t nbc = base::div_ceil(cols, block_cols);

  std::vector<Score> row_h(static_cast<std::size_t>(cols), 0);
  std::vector<Score> row_f(static_cast<std::size_t>(cols), sw::kNegInf);
  std::vector<Score> col_h(static_cast<std::size_t>(rows), 0);
  std::vector<Score> col_e(static_cast<std::size_t>(rows), sw::kNegInf);
  std::vector<Score> corner(static_cast<std::size_t>(nbc), 0);

  sw::ScoreResult best;
  for (std::int64_t i = 0; i < nbr; ++i) {
    for (std::int64_t j = 0; j < nbc; ++j) {
      const std::int64_t r0 = i * block_rows;
      const std::int64_t c0 = j * block_cols;
      const std::int64_t bh = std::min(block_rows, rows - r0);
      const std::int64_t bw = std::min(block_cols, cols - c0);

      BlockArgs args;
      args.query = query.data() + r0;
      args.subject = subject.data() + c0;
      args.rows = bh;
      args.cols = bw;
      args.global_row = r0;
      args.global_col = c0;
      args.top_h = row_h.data() + c0;
      args.top_f = row_f.data() + c0;
      args.left_h = col_h.data() + r0;
      args.left_e = col_e.data() + r0;
      args.corner_h = j == 0 ? Score{0}
                             : corner[static_cast<std::size_t>(j)];
      corner[static_cast<std::size_t>(j)] = col_h[static_cast<std::size_t>(
          r0 + bh - 1)];
      args.bottom_h = row_h.data() + c0;
      args.bottom_f = row_f.data() + c0;
      args.right_h = col_h.data() + r0;
      args.right_e = col_e.data() + r0;

      const auto result = compute_block(scheme, args);
      if (sw::improves(result.best, best)) best = result.best;
    }
  }
  return best;
}

TEST(BlockKernelTest, SingleBlockEqualsLinear) {
  const auto a = testutil::random_sequence(90, 1);
  const auto b = testutil::random_sequence(70, 2);
  EXPECT_EQ(blocked_score(kDefault, a, b, 90, 70),
            linear_score(kDefault, a, b));
}

TEST(BlockKernelTest, BorderMaxReported) {
  const Sequence s("s", "ACGTACGT");
  const std::vector<Nt> q = unpack(s);
  std::vector<Score> row_h(8, 0), row_f(8, sw::kNegInf);
  std::vector<Score> col_h(8, 0), col_e(8, sw::kNegInf);
  BlockArgs args;
  args.query = q.data();
  args.subject = q.data();
  args.rows = 8;
  args.cols = 8;
  args.top_h = row_h.data();
  args.top_f = row_f.data();
  args.left_h = col_h.data();
  args.left_e = col_e.data();
  args.bottom_h = row_h.data();
  args.bottom_f = row_f.data();
  args.right_h = col_h.data();
  args.right_e = col_e.data();
  const auto result = compute_block(kDefault, args);
  EXPECT_EQ(result.best.score, 8);
  EXPECT_EQ(result.border_max, 8);  // diagonal ends in the corner
}

// Property: every block geometry reproduces the monolithic result —
// including geometries that do not divide the matrix evenly, single-row
// blocks, single-column blocks, and blocks larger than the matrix.
class BlockGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlockGeometry, EqualsLinearScan) {
  const auto [block_rows, block_cols, seed] = GetParam();
  const auto a = testutil::random_sequence(
      97, static_cast<std::uint64_t>(seed) * 7 + 1);
  const auto b = testutil::random_sequence(
      83, static_cast<std::uint64_t>(seed) * 7 + 2);
  const auto expected = linear_score(kDefault, a, b);
  EXPECT_EQ(blocked_score(kDefault, a, b, block_rows, block_cols), expected)
      << "geometry " << block_rows << "x" << block_cols;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BlockGeometry,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 97, 200),
                       ::testing::Values(1, 3, 8, 83, 100),
                       ::testing::Values(0, 1, 2)));

// Border oracle: compute the full H/E/F matrices directly from the
// recurrences, then check that a 2x2 block decomposition's border arrays
// carry exactly the matrix values at the cut lines. This pins down the
// border *semantics* (H+F across rows, H+E across columns), not just the
// final score.
TEST(BlockKernelTest, BordersMatchFullMatrixAtCuts) {
  const ScoreScheme scheme{2, -2, 2, 1};
  const auto qs = testutil::random_sequence(24, 41);
  const auto ss = testutil::random_sequence(30, 42);
  const std::vector<Nt> q = unpack(qs);
  const std::vector<Nt> s = unpack(ss);
  const std::int64_t m = 24, n = 30;

  // Full matrices, 1-based with boundary row/col 0.
  auto idx = [&](std::int64_t i, std::int64_t j) {
    return static_cast<std::size_t>(i * (n + 1) + j);
  };
  std::vector<Score> H(static_cast<std::size_t>((m + 1) * (n + 1)), 0);
  std::vector<Score> E(H.size(), sw::kNegInf);
  std::vector<Score> F(H.size(), sw::kNegInf);
  for (std::int64_t i = 1; i <= m; ++i) {
    for (std::int64_t j = 1; j <= n; ++j) {
      E[idx(i, j)] = std::max<Score>(E[idx(i, j - 1)] - scheme.gap_extend,
                                     H[idx(i, j - 1)] - scheme.gap_first());
      F[idx(i, j)] = std::max<Score>(F[idx(i - 1, j)] - scheme.gap_extend,
                                     H[idx(i - 1, j)] - scheme.gap_first());
      H[idx(i, j)] = std::max(
          {Score{0},
           H[idx(i - 1, j - 1)] +
               scheme.substitution(q[static_cast<std::size_t>(i - 1)],
                                   s[static_cast<std::size_t>(j - 1)]),
           E[idx(i, j)], F[idx(i, j)]});
    }
  }

  // Blocked sweep with a cut at row 16 and column 20; capture the border
  // arrays right after the top-left block.
  const std::int64_t cut_row = 16, cut_col = 20;
  std::vector<Score> row_h(static_cast<std::size_t>(n), 0);
  std::vector<Score> row_f(static_cast<std::size_t>(n), sw::kNegInf);
  std::vector<Score> col_h(static_cast<std::size_t>(m), 0);
  std::vector<Score> col_e(static_cast<std::size_t>(m), sw::kNegInf);

  BlockArgs args;
  args.query = q.data();
  args.subject = s.data();
  args.rows = cut_row;
  args.cols = cut_col;
  args.top_h = row_h.data();
  args.top_f = row_f.data();
  args.left_h = col_h.data();
  args.left_e = col_e.data();
  args.bottom_h = row_h.data();
  args.bottom_f = row_f.data();
  args.right_h = col_h.data();
  args.right_e = col_e.data();
  (void)compute_block(scheme, args);

  // Bottom border = matrix row `cut_row` (1-based), columns 1..cut_col.
  for (std::int64_t j = 0; j < cut_col; ++j) {
    EXPECT_EQ(row_h[static_cast<std::size_t>(j)], H[idx(cut_row, j + 1)])
        << "H bottom at col " << j;
    EXPECT_EQ(row_f[static_cast<std::size_t>(j)], F[idx(cut_row, j + 1)])
        << "F bottom at col " << j;
  }
  // Right border = matrix column `cut_col`, rows 1..cut_row.
  for (std::int64_t i = 0; i < cut_row; ++i) {
    EXPECT_EQ(col_h[static_cast<std::size_t>(i)], H[idx(i + 1, cut_col)])
        << "H right at row " << i;
    EXPECT_EQ(col_e[static_cast<std::size_t>(i)], E[idx(i + 1, cut_col)])
        << "E right at row " << i;
  }
}

// Property over scoring schemes with related (gap-rich) pairs.
class BlockSchemes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockSchemes, EqualsLinearScan) {
  const auto [scheme_index, seed] = GetParam();
  const ScoreScheme scheme = testutil::test_schemes()[
      static_cast<std::size_t>(scheme_index)];
  auto [a, b] = testutil::related_pair(
      160, static_cast<std::uint64_t>(seed) + 100);
  const auto expected = linear_score(scheme, a, b);
  for (const auto& geometry : {std::pair{5, 5}, {32, 17}, {64, 64}}) {
    EXPECT_EQ(blocked_score(scheme, a, b, geometry.first, geometry.second),
              expected)
        << "scheme " << scheme_index << " geometry " << geometry.first
        << "x" << geometry.second;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, BlockSchemes,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 6)));

}  // namespace
}  // namespace mgpusw
